#include "nlp/text.h"

#include <cctype>
#include <cmath>
#include <set>

#include "util/strings.h"

namespace haven::nlp {

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&]() {
    if (!cur.empty()) {
      out.push_back(util::to_lower(cur));
      cur.clear();
    }
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'') {
      cur += c;
    } else {
      flush();
    }
  }
  flush();
  return out;
}

double jaccard_similarity(std::string_view a, std::string_view b) {
  const auto wa = tokenize_words(a);
  const auto wb = tokenize_words(b);
  const std::set<std::string> sa(wa.begin(), wa.end());
  const std::set<std::string> sb(wb.begin(), wb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (const auto& w : sa) inter += sb.contains(w);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double bow_cosine(std::string_view a, std::string_view b) {
  std::map<std::string, int> ca, cb;
  for (const auto& w : tokenize_words(a)) ++ca[w];
  for (const auto& w : tokenize_words(b)) ++cb[w];
  if (ca.empty() || cb.empty()) return ca.empty() && cb.empty() ? 1.0 : 0.0;
  double dot = 0, na = 0, nb = 0;
  for (const auto& [w, n] : ca) {
    na += static_cast<double>(n) * n;
    const auto it = cb.find(w);
    if (it != cb.end()) dot += static_cast<double>(n) * it->second;
  }
  for (const auto& [w, n] : cb) nb += static_cast<double>(n) * n;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::string expand_template(std::string_view tmpl,
                            const std::map<std::string, std::string>& values) {
  std::string out;
  std::size_t pos = 0;
  while (pos < tmpl.size()) {
    const std::size_t lb = tmpl.find('{', pos);
    if (lb == std::string_view::npos) {
      out.append(tmpl.substr(pos));
      break;
    }
    const std::size_t rb = tmpl.find('}', lb);
    if (rb == std::string_view::npos) {
      out.append(tmpl.substr(pos));
      break;
    }
    out.append(tmpl.substr(pos, lb - pos));
    const std::string key(tmpl.substr(lb + 1, rb - lb - 1));
    const auto it = values.find(key);
    if (it != values.end()) {
      out.append(it->second);
    } else {
      out.append(tmpl.substr(lb, rb - lb + 1));  // leave unknown placeholder
    }
    pos = rb + 1;
  }
  return out;
}

const std::vector<std::string>& synonyms_of(const std::string& word) {
  static const std::vector<std::vector<std::string>> kGroups = {
      {"implement", "design", "create", "build", "write", "develop"},
      {"module", "circuit", "block", "component"},
      {"output", "result"},
      {"signal", "port", "line"},
      {"equals", "is", "becomes"},
      {"when", "if", "whenever"},
      {"below", "following", "given"},
      {"please", "kindly"},
      {"verilog", "rtl", "hdl"},
  };
  static const std::vector<std::string> kEmpty;
  for (const auto& group : kGroups) {
    for (const auto& w : group) {
      if (w == word) return group;
    }
  }
  return kEmpty;
}

}  // namespace haven::nlp
