#include "nlp/evolution.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "nlp/text.h"
#include "util/strings.h"

namespace haven::nlp {

bool is_protected_line(const std::string& line) {
  const std::string t(util::trim(line));
  if (t.empty()) return false;
  // Code / module headers.
  if (util::starts_with(t, "module") || util::starts_with(t, "endmodule") ||
      t.find(";") != std::string::npos) {
    return true;
  }
  // State diagram transitions.
  if (t.find("->") != std::string::npos) return true;
  // Waveform / interpreted rows.
  if (t.find(':') != std::string::npos) return true;
  // Truth-table rows: line of only 0/1/x fields.
  const auto fields = util::split_ws(t);
  if (!fields.empty() && std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
        return f == "0" || f == "1" || f == "x";
      })) {
    return true;
  }
  // Truth-table headers: two or more short signal names, no English filler
  // words (prose sentences are fair game for paraphrasing).
  static const std::set<std::string> kProseWords = {
      "the",  "a",    "an",     "and",   "or",     "of",     "to",    "is",
      "with", "for",  "design", "below", "module", "output", "input", "implement",
      "this", "that", "when",   "then",  "make",   "use",    "carefully", "following",
      "machine", "table", "diagram", "logic", "code"};
  if (fields.size() >= 2 && std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
        return util::is_identifier(f) && f.size() <= 12;
      })) {
    for (const auto& f : fields) {
      if (kProseWords.contains(util::to_lower(f))) return false;
    }
    return true;
  }
  return false;
}

namespace {

// Replace words with synonyms in-place, preserving capitalization of the
// first letter.
std::string synonym_pass(const std::string& line, util::Rng& rng, double rate) {
  std::string out;
  std::string word;
  auto flush = [&]() {
    if (word.empty()) return;
    const std::string lower = util::to_lower(word);
    const auto& group = synonyms_of(lower);
    if (!group.empty() && rng.chance(rate)) {
      std::string repl = rng.choice(group);
      if (std::isupper(static_cast<unsigned char>(word[0])) && !repl.empty()) {
        repl[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(repl[0])));
      }
      out += repl;
    } else {
      out += word;
    }
    word.clear();
  };
  for (char c : line) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      word += c;
    } else {
      flush();
      out += c;
    }
  }
  flush();
  return out;
}

}  // namespace

std::string evolve_instruction(const std::string& instruction, util::Rng& rng,
                               const EvolutionConfig& config) {
  static const std::vector<std::string> kPreambles = {
      "As an HDL engineer,",
      "For this design task,",
      "In Verilog,",
      "Using synthesizable Verilog,",
  };
  static const std::vector<std::string> kSuffixes = {
      "Make sure the code is synthesizable.",
      "Follow standard RTL conventions.",
      "Keep the implementation clean.",
  };

  const std::size_t before_words = util::word_count(instruction);

  std::vector<std::string> lines = util::split_lines(instruction);
  for (auto& line : lines) {
    if (is_protected_line(line)) continue;
    line = synonym_pass(line, rng, config.synonym_rate);
  }
  std::string out = util::join(lines, "\n");

  // Optionally prepend a short preamble and/or append a suffix sentence,
  // within the word budget.
  int budget = config.max_word_delta;
  if (rng.chance(config.preamble_rate)) {
    const std::string& pre = rng.choice(kPreambles);
    const int cost = static_cast<int>(util::word_count(pre));
    if (cost <= budget) {
      // Attach to the first unprotected line.
      for (auto& line : lines) {
        if (!is_protected_line(line) && !util::trim(line).empty()) {
          std::string body(util::trim(line));
          if (!body.empty()) body[0] = static_cast<char>(std::tolower(static_cast<unsigned char>(body[0])));
          line = pre + " " + body;
          budget -= cost;
          break;
        }
      }
      out = util::join(lines, "\n");
    }
  }
  if (budget >= 4 && rng.chance(config.preamble_rate * 0.6)) {
    const std::string& suf = rng.choice(kSuffixes);
    if (static_cast<int>(util::word_count(suf)) <= budget) {
      out += "\n" + suf;
    }
  }

  // Enforce the hard bound defensively (synonyms are 1:1, so only the
  // preamble/suffix can change counts; this is a safety net).
  const std::size_t after_words = util::word_count(out);
  const long delta = static_cast<long>(after_words) - static_cast<long>(before_words);
  if (delta > config.max_word_delta || -delta > config.max_word_delta) {
    return instruction;  // fall back to the original rather than violate
  }
  return out;
}

}  // namespace haven::nlp
