// Instruction evolution (Section III-D, step 12): rewrite an instruction for
// linguistic variety while preserving its semantic core. The paper constrains
// the rewrite to "adding or removing no more than ten words"; we enforce the
// same bound and never touch lines that carry symbolic payloads (tables,
// diagrams, module headers), since mutating those would change semantics.
#pragma once

#include <string>

#include "util/rng.h"

namespace haven::nlp {

struct EvolutionConfig {
  int max_word_delta = 10;      // paper's constraint
  double synonym_rate = 0.35;   // chance of swapping each eligible word
  double preamble_rate = 0.5;   // chance of adding a politeness/context preamble
};

// Returns a paraphrased instruction. Deterministic given the rng state.
// Guarantees |words(out) - words(in)| <= config.max_word_delta.
std::string evolve_instruction(const std::string& instruction, util::Rng& rng,
                               const EvolutionConfig& config = {});

// True if a line must not be mutated (symbolic payload or code).
bool is_protected_line(const std::string& line);

}  // namespace haven::nlp
