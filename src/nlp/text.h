// Lightweight text utilities standing in for the natural-language machinery
// the paper gets from GPT-3.5: word tokenization, bag-of-words similarity
// (used by topic matching to pair vanilla instructions with exemplars), and
// a template expander used by the instruction synthesizers.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace haven::nlp {

// Lowercased word tokens; punctuation separated out, numbers kept.
std::vector<std::string> tokenize_words(std::string_view text);

// Jaccard similarity of the two texts' word sets in [0, 1].
double jaccard_similarity(std::string_view a, std::string_view b);

// Cosine similarity over word-count vectors in [0, 1].
double bow_cosine(std::string_view a, std::string_view b);

// Expand "{key}" placeholders from the map; unknown keys are left verbatim.
std::string expand_template(std::string_view tmpl,
                            const std::map<std::string, std::string>& values);

// Small domain synonym dictionary (implement/design/create/build/write, ...).
// Returns the synonym group for a word, or an empty vector.
const std::vector<std::string>& synonyms_of(const std::string& word);

}  // namespace haven::nlp
