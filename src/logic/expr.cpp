#include "logic/expr.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace haven::logic {

std::string op_name(Op op) {
  switch (op) {
    case Op::kVar: return "var";
    case Op::kConst: return "const";
    case Op::kNot: return "~";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kXor: return "^";
    case Op::kXnor: return "~^";
    case Op::kNand: return "~&";
    case Op::kNor: return "~|";
  }
  return "?";
}

ExprPtr Expr::var(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = Op::kVar;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::constant(bool value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = Op::kConst;
  e->value_ = value;
  return e;
}

ExprPtr Expr::not_(ExprPtr a) {
  if (!a) throw std::invalid_argument("Expr::not_: null operand");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = Op::kNot;
  e->lhs_ = std::move(a);
  return e;
}

ExprPtr Expr::binary(Op op, ExprPtr a, ExprPtr b) {
  switch (op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kXnor:
    case Op::kNand:
    case Op::kNor:
      break;
    default:
      throw std::invalid_argument("Expr::binary: not a binary op");
  }
  if (!a || !b) throw std::invalid_argument("Expr::binary: null operand");
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->lhs_ = std::move(a);
  e->rhs_ = std::move(b);
  return e;
}

bool Expr::eval(const std::vector<std::string>& inputs, std::uint32_t assignment) const {
  switch (op_) {
    case Op::kVar: {
      const auto it = std::find(inputs.begin(), inputs.end(), name_);
      if (it == inputs.end()) throw std::out_of_range("Expr::eval: unbound variable " + name_);
      const auto idx = static_cast<std::size_t>(it - inputs.begin());
      return ((assignment >> idx) & 1u) != 0;
    }
    case Op::kConst: return value_;
    case Op::kNot: return !lhs_->eval(inputs, assignment);
    case Op::kAnd: return lhs_->eval(inputs, assignment) && rhs_->eval(inputs, assignment);
    case Op::kOr: return lhs_->eval(inputs, assignment) || rhs_->eval(inputs, assignment);
    case Op::kXor: return lhs_->eval(inputs, assignment) != rhs_->eval(inputs, assignment);
    case Op::kXnor: return lhs_->eval(inputs, assignment) == rhs_->eval(inputs, assignment);
    case Op::kNand: return !(lhs_->eval(inputs, assignment) && rhs_->eval(inputs, assignment));
    case Op::kNor: return !(lhs_->eval(inputs, assignment) || rhs_->eval(inputs, assignment));
  }
  throw std::logic_error("Expr::eval: corrupt op");
}

namespace {

void collect_rec(const Expr& e, std::vector<std::string>& out,
                 std::unordered_set<std::string>& seen) {
  switch (e.op()) {
    case Op::kVar:
      if (seen.insert(e.name()).second) out.push_back(e.name());
      return;
    case Op::kConst:
      return;
    case Op::kNot:
      collect_rec(*e.lhs(), out, seen);
      return;
    default:
      collect_rec(*e.lhs(), out, seen);
      collect_rec(*e.rhs(), out, seen);
      return;
  }
}

}  // namespace

std::vector<std::string> Expr::collect_vars() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  collect_rec(*this, out, seen);
  return out;
}

std::size_t Expr::size() const {
  switch (op_) {
    case Op::kVar:
    case Op::kConst: return 1;
    case Op::kNot: return 1 + lhs_->size();
    default: return 1 + lhs_->size() + rhs_->size();
  }
}

std::size_t Expr::depth() const {
  switch (op_) {
    case Op::kVar:
    case Op::kConst: return 1;
    case Op::kNot: return 1 + lhs_->depth();
    default: return 1 + std::max(lhs_->depth(), rhs_->depth());
  }
}

std::string Expr::to_verilog() const {
  switch (op_) {
    case Op::kVar: return name_;
    case Op::kConst: return value_ ? "1'b1" : "1'b0";
    case Op::kNot: return "(~" + lhs_->to_verilog() + ")";
    case Op::kAnd: return "(" + lhs_->to_verilog() + " & " + rhs_->to_verilog() + ")";
    case Op::kOr: return "(" + lhs_->to_verilog() + " | " + rhs_->to_verilog() + ")";
    case Op::kXor: return "(" + lhs_->to_verilog() + " ^ " + rhs_->to_verilog() + ")";
    case Op::kXnor: return "(~(" + lhs_->to_verilog() + " ^ " + rhs_->to_verilog() + "))";
    case Op::kNand: return "(~(" + lhs_->to_verilog() + " & " + rhs_->to_verilog() + "))";
    case Op::kNor: return "(~(" + lhs_->to_verilog() + " | " + rhs_->to_verilog() + "))";
  }
  throw std::logic_error("Expr::to_verilog: corrupt op");
}

std::string Expr::to_english() const {
  switch (op_) {
    case Op::kVar: return name_;
    case Op::kConst: return value_ ? "1" : "0";
    case Op::kNot: return "(NOT " + lhs_->to_english() + ")";
    case Op::kAnd: return "(" + lhs_->to_english() + " AND " + rhs_->to_english() + ")";
    case Op::kOr: return "(" + lhs_->to_english() + " OR " + rhs_->to_english() + ")";
    case Op::kXor: return "(" + lhs_->to_english() + " XOR " + rhs_->to_english() + ")";
    case Op::kXnor: return "(" + lhs_->to_english() + " XNOR " + rhs_->to_english() + ")";
    case Op::kNand: return "(" + lhs_->to_english() + " NAND " + rhs_->to_english() + ")";
    case Op::kNor: return "(" + lhs_->to_english() + " NOR " + rhs_->to_english() + ")";
  }
  throw std::logic_error("Expr::to_english: corrupt op");
}

}  // namespace haven::logic
