// Quine-McCluskey two-level minimization. Implements the paper's first
// category of "logical reasoning in Verilog": finding the most concise
// logical expression for a given truth table (Section III-D, step 9).
//
// Exact prime-implicant generation plus essential-prime extraction and a
// greedy set cover for the cyclic remainder; exact enough for the <=8-input
// functions that appear in the generated L-dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/expr.h"
#include "logic/truth_table.h"

namespace haven::logic {

// A product term over n variables: for bit i, (mask>>i)&1 says variable i is
// present, and then (bits>>i)&1 gives its required polarity.
struct Implicant {
  std::uint32_t bits = 0;
  std::uint32_t mask = 0;

  bool covers(std::uint32_t minterm) const { return (minterm & mask) == (bits & mask); }
  // Number of literals in the term.
  int literal_count() const { return __builtin_popcount(mask); }
  bool operator==(const Implicant&) const = default;
};

struct MinimizeResult {
  std::vector<Implicant> cover;  // chosen implicants (possibly empty = constant 0)
  bool is_constant_one = false;  // cover == single all-dont-care implicant
  ExprPtr expr;                  // minimized sum-of-products expression
  int literal_count = 0;         // total literals in the cover
};

// Minimize the function described by `tt` (don't-cares used to enlarge
// implicants but never required to be covered).
MinimizeResult minimize(const TruthTable& tt);

// All prime implicants of the function (exposed for tests and the Karnaugh
// map renderer, which draws prime-implicant groups).
std::vector<Implicant> prime_implicants(const TruthTable& tt);

// Render an implicant as a Verilog product term over the given inputs, e.g.
// "(a & ~b)". An empty-mask implicant renders as "1'b1".
std::string implicant_to_verilog(const Implicant& imp,
                                 const std::vector<std::string>& inputs);

}  // namespace haven::logic
