// Parser for textual boolean expressions in Verilog operator syntax:
//
//   expr   := xor ( ('|' | '~|') xor )*
//   xor    := and ( ('^' | '~^') and )*
//   and    := unary ( ('&' | '~&') unary )*
//   unary  := '~' unary | '!' unary | primary
//   primary:= identifier | '0' | '1' | "1'b0" | "1'b1" | '(' expr ')'
//
// Used by tests (round-tripping) and by the SimLLM instruction parser when an
// instruction embeds an explicit expression ("implement out = a & ~b | c").
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "logic/expr.h"

namespace haven::logic {

struct ParseResult {
  ExprPtr expr;        // null on failure
  std::string error;   // non-empty on failure, includes character offset
};

ParseResult parse_expr(std::string_view text);

// Convenience: parse-or-throw.
ExprPtr parse_expr_or_throw(std::string_view text);

}  // namespace haven::logic
