// Boolean expression AST used throughout HaVen: the L-dataset generator emits
// random expressions from it, the truth-table module tabulates it, the
// Quine-McCluskey minimizer returns minimized forms as it, and the SimLLM
// code generator lowers it to Verilog `assign` statements.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace haven::logic {

enum class Op : std::uint8_t {
  kVar,    // leaf: named variable
  kConst,  // leaf: 0 or 1
  kNot,    // unary
  kAnd,
  kOr,
  kXor,
  kXnor,
  kNand,
  kNor,
};

// Returns the Verilog operator spelling for a binary/unary op ("&", "|", ...).
// kNand/kNor/kXnor have no single Verilog operator and are printed as a
// negated form by Expr::to_verilog.
std::string op_name(Op op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Immutable expression node. Shared subtrees are allowed (DAG), which the
// random generator exploits to produce realistic repeated-subterm logic.
class Expr {
 public:
  // Factory functions (the only way to construct nodes).
  static ExprPtr var(std::string name);
  static ExprPtr constant(bool value);
  static ExprPtr not_(ExprPtr a);
  static ExprPtr binary(Op op, ExprPtr a, ExprPtr b);
  static ExprPtr and_(ExprPtr a, ExprPtr b) { return binary(Op::kAnd, std::move(a), std::move(b)); }
  static ExprPtr or_(ExprPtr a, ExprPtr b) { return binary(Op::kOr, std::move(a), std::move(b)); }
  static ExprPtr xor_(ExprPtr a, ExprPtr b) { return binary(Op::kXor, std::move(a), std::move(b)); }

  Op op() const { return op_; }
  const std::string& name() const { return name_; }  // valid when op == kVar
  bool value() const { return value_; }              // valid when op == kConst
  const ExprPtr& lhs() const { return lhs_; }        // valid for unary/binary
  const ExprPtr& rhs() const { return rhs_; }        // valid for binary

  // Evaluate under an assignment; `inputs` maps variable order (see
  // collect_vars) to bit positions of `assignment`, LSB = inputs[0].
  bool eval(const std::vector<std::string>& inputs, std::uint32_t assignment) const;

  // All distinct variable names, in first-appearance (DFS) order.
  std::vector<std::string> collect_vars() const;

  // Node count (shared nodes counted once per occurrence) and tree depth.
  std::size_t size() const;
  std::size_t depth() const;

  // Verilog expression text, fully parenthesized except leaves, e.g.
  // "(a & (~b | c))". NAND/NOR/XNOR are emitted as ~(a op b).
  std::string to_verilog() const;

  // English rendering used in generated instructions, e.g.
  // "(a AND (NOT b OR c))".
  std::string to_english() const;

 private:
  Expr() = default;

  Op op_ = Op::kConst;
  std::string name_;
  bool value_ = false;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace haven::logic
