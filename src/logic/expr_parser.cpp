#include "logic/expr_parser.h"

#include <cctype>
#include <stdexcept>

#include "util/strings.h"

namespace haven::logic {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    try {
      result.expr = parse_or();
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters");
    } catch (const std::runtime_error& e) {
      result.expr = nullptr;
      result.error = e.what();
    }
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw std::runtime_error(msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Try to consume a two-character operator like "~|"; single '~' followed by
  // an operand must not be consumed here.
  bool eat2(char a, char b) {
    skip_ws();
    if (pos_ + 1 < text_.size() && text_[pos_] == a && text_[pos_ + 1] == b) {
      pos_ += 2;
      return true;
    }
    return false;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_xor();
    while (true) {
      if (eat2('~', '|')) lhs = Expr::binary(Op::kNor, lhs, parse_xor());
      else if (peek_is('|')) {
        eat('|');
        if (eat('|')) {}  // accept "||" as "|" (boolean context)
        lhs = Expr::binary(Op::kOr, lhs, parse_xor());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_xor() {
    ExprPtr lhs = parse_and();
    while (true) {
      if (eat2('~', '^')) lhs = Expr::binary(Op::kXnor, lhs, parse_and());
      else if (eat2('^', '~')) lhs = Expr::binary(Op::kXnor, lhs, parse_and());
      else if (peek_is('^')) {
        eat('^');
        lhs = Expr::binary(Op::kXor, lhs, parse_and());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_unary();
    while (true) {
      if (eat2('~', '&')) lhs = Expr::binary(Op::kNand, lhs, parse_unary());
      else if (peek_is('&')) {
        eat('&');
        if (eat('&')) {}  // accept "&&" as "&"
        lhs = Expr::binary(Op::kAnd, lhs, parse_unary());
      } else {
        return lhs;
      }
    }
  }

  bool peek_is(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    // '~' that begins "~|", "~^", "~&" is an operator, handled by callers; a
    // bare peek on those composites must not match.
    return true;
  }

  ExprPtr parse_unary() {
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == '~' || text_[pos_] == '!')) {
      // Only unary if not a two-char operator start that callers handle; at
      // unary position "~|x" would be malformed anyway, so always unary here.
      ++pos_;
      return Expr::not_(parse_unary());
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of expression");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      ExprPtr inner = parse_or();
      if (!eat(')')) fail("expected ')'");
      return inner;
    }
    if (c == '0' || c == '1') {
      // Accept bare 0/1 and sized literals 1'b0 / 1'b1.
      if (text_.substr(pos_).size() >= 4 && text_.substr(pos_, 1) == "1" &&
          text_[pos_ + 1] == '\'' &&
          (text_[pos_ + 2] == 'b' || text_[pos_ + 2] == 'B') &&
          (text_[pos_ + 3] == '0' || text_[pos_ + 3] == '1')) {
        const bool v = text_[pos_ + 3] == '1';
        pos_ += 4;
        return Expr::constant(v);
      }
      ++pos_;
      return Expr::constant(c == '1');
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
              text_[pos_] == '$')) {
        ++pos_;
      }
      return Expr::var(std::string(text_.substr(start, pos_ - start)));
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseResult parse_expr(std::string_view text) { return Parser(text).run(); }

ExprPtr parse_expr_or_throw(std::string_view text) {
  ParseResult r = parse_expr(text);
  if (!r.expr) throw std::runtime_error("parse_expr: " + r.error);
  return r.expr;
}

}  // namespace haven::logic
