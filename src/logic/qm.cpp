#include "logic/qm.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace haven::logic {

namespace {

// Key for dedup: (bits & mask, mask).
struct ImpKey {
  std::uint32_t bits;
  std::uint32_t mask;
  auto operator<=>(const ImpKey&) const = default;
};

}  // namespace

std::vector<Implicant> prime_implicants(const TruthTable& tt) {
  const std::uint32_t n = static_cast<std::uint32_t>(tt.num_inputs());
  const std::uint32_t full_mask = n >= 32 ? ~0u : ((1u << n) - 1u);

  // Terms that may participate in merging: minterms plus don't-cares.
  std::set<ImpKey> current;
  for (std::uint32_t m : tt.minterms()) current.insert({m, full_mask});
  for (std::uint32_t d : tt.dont_cares()) current.insert({d, full_mask});
  if (current.empty()) return {};

  std::vector<Implicant> primes;
  while (!current.empty()) {
    std::set<ImpKey> next;
    std::set<ImpKey> merged;
    std::vector<ImpKey> items(current.begin(), current.end());
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        if (items[i].mask != items[j].mask) continue;
        const std::uint32_t diff = (items[i].bits ^ items[j].bits) & items[i].mask;
        if (__builtin_popcount(diff) != 1) continue;
        const std::uint32_t new_mask = items[i].mask & ~diff;
        next.insert({items[i].bits & new_mask, new_mask});
        merged.insert(items[i]);
        merged.insert(items[j]);
      }
    }
    for (const auto& it : items) {
      if (!merged.contains(it)) primes.push_back({it.bits & it.mask, it.mask});
    }
    current = std::move(next);
  }

  // Deduplicate (different merge orders can produce the same cube).
  std::sort(primes.begin(), primes.end(), [](const Implicant& a, const Implicant& b) {
    return std::pair{a.mask, a.bits} < std::pair{b.mask, b.bits};
  });
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  return primes;
}

MinimizeResult minimize(const TruthTable& tt) {
  MinimizeResult result;
  const std::vector<std::uint32_t> minterms = tt.minterms();
  if (minterms.empty()) {
    result.expr = Expr::constant(false);
    return result;
  }

  std::vector<Implicant> primes = prime_implicants(tt);

  // Special case: a single prime with empty mask covers everything -> const 1.
  if (primes.size() == 1 && primes[0].mask == 0) {
    result.is_constant_one = true;
    result.cover = primes;
    result.expr = Expr::constant(true);
    return result;
  }

  // Coverage matrix: which primes cover each required minterm.
  std::vector<std::vector<std::size_t>> covers_of(minterms.size());
  for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (primes[pi].covers(minterms[mi])) covers_of[mi].push_back(pi);
    }
    if (covers_of[mi].empty())
      throw std::logic_error("minimize: minterm not covered by any prime implicant");
  }

  std::vector<bool> chosen(primes.size(), false);
  std::vector<bool> satisfied(minterms.size(), false);

  // Essential primes: a minterm covered by exactly one prime forces it.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
      if (satisfied[mi]) continue;
      std::size_t only = primes.size();
      int alive = 0;
      for (std::size_t pi : covers_of[mi]) {
        ++alive;
        only = pi;
      }
      if (alive == 1 && !chosen[only]) {
        chosen[only] = true;
        changed = true;
        for (std::size_t mj = 0; mj < minterms.size(); ++mj) {
          if (!satisfied[mj] && primes[only].covers(minterms[mj])) satisfied[mj] = true;
        }
      } else if (alive == 1 && chosen[only]) {
        satisfied[mi] = true;
      }
    }
    // Re-derive satisfaction from chosen set (covers the alive==1 && chosen case).
    for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
      if (satisfied[mi]) continue;
      for (std::size_t pi = 0; pi < primes.size(); ++pi) {
        if (chosen[pi] && primes[pi].covers(minterms[mi])) {
          satisfied[mi] = true;
          changed = true;
          break;
        }
      }
    }
  }

  // Greedy cover for the cyclic remainder: pick the prime covering the most
  // unsatisfied minterms; tie-break on fewer literals.
  while (true) {
    std::size_t best = primes.size();
    int best_gain = 0;
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (chosen[pi]) continue;
      int gain = 0;
      for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
        if (!satisfied[mi] && primes[pi].covers(minterms[mi])) ++gain;
      }
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < primes.size() &&
           primes[pi].literal_count() < primes[best].literal_count())) {
        best = pi;
        best_gain = gain;
      }
    }
    if (best_gain == 0) break;
    chosen[best] = true;
    for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
      if (!satisfied[mi] && primes[best].covers(minterms[mi])) satisfied[mi] = true;
    }
  }

  for (std::size_t pi = 0; pi < primes.size(); ++pi) {
    if (chosen[pi]) result.cover.push_back(primes[pi]);
  }

  // Build the SOP expression.
  const std::vector<std::string>& inputs = tt.inputs();
  ExprPtr sum;
  for (const Implicant& imp : result.cover) {
    ExprPtr term;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (((imp.mask >> i) & 1u) == 0) continue;
      ExprPtr lit = Expr::var(inputs[i]);
      if (((imp.bits >> i) & 1u) == 0) lit = Expr::not_(lit);
      term = term ? Expr::and_(term, lit) : lit;
    }
    if (!term) term = Expr::constant(true);  // empty-mask implicant
    sum = sum ? Expr::or_(sum, term) : term;
    result.literal_count += imp.literal_count();
  }
  result.expr = sum ? sum : Expr::constant(false);
  return result;
}

std::string implicant_to_verilog(const Implicant& imp,
                                 const std::vector<std::string>& inputs) {
  if (imp.mask == 0) return "1'b1";
  std::string out;
  bool first = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (((imp.mask >> i) & 1u) == 0) continue;
    if (!first) out += " & ";
    if (((imp.bits >> i) & 1u) == 0) out += "~";
    out += inputs[i];
    first = false;
  }
  return "(" + out + ")";
}

}  // namespace haven::logic
