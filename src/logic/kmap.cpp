#include "logic/kmap.h"

#include <stdexcept>

#include "util/strings.h"

namespace haven::logic {

std::vector<std::uint32_t> gray_sequence(std::size_t bits) {
  if (bits == 0) return {0};
  std::vector<std::uint32_t> out(std::size_t{1} << bits);
  for (std::uint32_t i = 0; i < out.size(); ++i) out[i] = i ^ (i >> 1);
  return out;
}

namespace {

std::string bits_label(std::uint32_t value, std::size_t bits) {
  std::string s(bits, '0');
  for (std::size_t i = 0; i < bits; ++i) {
    if ((value >> (bits - 1 - i)) & 1u) s[i] = '1';
  }
  return s;
}

}  // namespace

KarnaughMap::KarnaughMap(const TruthTable& tt) {
  const std::size_t n = tt.num_inputs();
  if (n < 2 || n > 4) throw std::invalid_argument("KarnaughMap: supports 2..4 inputs");

  // Split variables: first half on rows (MSB side), rest on columns. With the
  // LSB-first convention of TruthTable, inputs()[0] is bit 0.
  const std::size_t row_bits = n / 2;        // 2->1, 3->1, 4->2
  const std::size_t col_bits = n - row_bits; // 2->1, 3->2, 4->2

  // Row variables are the high-order inputs, columns the low-order ones, so
  // that a 4-var map over (a,b,c,d) reads ab on rows, cd on columns when the
  // table was built with inputs in MSB-to-LSB order d,c,b,a... To keep the
  // common textbook appearance we treat inputs() as listed a,b,c,d and put
  // the *first* variables on rows.
  for (std::size_t i = 0; i < row_bits; ++i) row_vars_.push_back(tt.inputs()[i]);
  for (std::size_t i = row_bits; i < n; ++i) col_vars_.push_back(tt.inputs()[i]);

  const auto row_gray = gray_sequence(row_bits);
  const auto col_gray = gray_sequence(col_bits);
  for (std::uint32_t g : row_gray) row_labels_.push_back(bits_label(g, row_bits));
  for (std::uint32_t g : col_gray) col_labels_.push_back(bits_label(g, col_bits));

  grid_.assign(row_gray.size(), std::vector<Tri>(col_gray.size(), Tri::kFalse));
  minterm_.assign(row_gray.size(), std::vector<std::uint32_t>(col_gray.size(), 0));
  for (std::size_t r = 0; r < row_gray.size(); ++r) {
    for (std::size_t c = 0; c < col_gray.size(); ++c) {
      // Assemble the assignment: row vars are inputs()[0..row_bits), LSB-first
      // in the truth table. Row label bit j (MSB-first in the label) belongs
      // to row var j, i.e. table bit j.
      std::uint32_t assignment = 0;
      for (std::size_t j = 0; j < row_bits; ++j) {
        const bool bit = ((row_gray[r] >> (row_bits - 1 - j)) & 1u) != 0;
        if (bit) assignment |= (1u << j);
      }
      for (std::size_t j = 0; j < col_bits; ++j) {
        const bool bit = ((col_gray[c] >> (col_bits - 1 - j)) & 1u) != 0;
        if (bit) assignment |= (1u << (row_bits + j));
      }
      grid_[r][c] = tt.row(assignment);
      minterm_[r][c] = assignment;
    }
  }
}

Tri KarnaughMap::cell(std::size_t r, std::size_t c) const {
  if (r >= rows() || c >= cols()) throw std::out_of_range("KarnaughMap::cell");
  return grid_[r][c];
}

std::uint32_t KarnaughMap::cell_minterm(std::size_t r, std::size_t c) const {
  if (r >= rows() || c >= cols()) throw std::out_of_range("KarnaughMap::cell_minterm");
  return minterm_[r][c];
}

std::string KarnaughMap::render() const {
  const std::string rv = util::join(row_vars_, "");
  const std::string cv = util::join(col_vars_, "");
  std::string out;
  // Header line.
  out += std::string(rv.size() + 4, ' ');
  for (const auto& cl : col_labels_) out += " " + cv + "=" + cl;
  out += "\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    out += " " + rv + "=" + row_labels_[r] + " ";
    for (std::size_t c = 0; c < cols(); ++c) {
      const char v = grid_[r][c] == Tri::kTrue ? '1' : (grid_[r][c] == Tri::kFalse ? '0' : 'x');
      const std::size_t width = cv.size() + 1 + col_labels_[c].size() + 1;
      std::string cellstr(width, ' ');
      cellstr[width / 2] = v;
      out += cellstr;
    }
    out += "\n";
  }
  return out;
}

}  // namespace haven::logic
