#include "logic/exprgen.h"

#include <stdexcept>

namespace haven::logic {

std::vector<std::string> ExprGenerator::default_var_names(std::size_t n) {
  static const char* kNames[] = {"a", "b", "c", "d", "e", "f", "g", "h",
                                 "i", "j", "k", "m", "n", "p", "q", "r"};
  if (n > 16) throw std::invalid_argument("ExprGenerator: at most 16 variables");
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.emplace_back(kNames[i]);
  return out;
}

ExprGenerator::ExprGenerator(ExprGenConfig config)
    : config_(config), vars_(default_var_names(config.num_vars)) {
  if (config_.num_vars == 0) throw std::invalid_argument("ExprGenerator: num_vars == 0");
  if (config_.max_depth == 0) throw std::invalid_argument("ExprGenerator: max_depth == 0");
}

ExprPtr ExprGenerator::gen_rec(util::Rng& rng, std::size_t depth) const {
  const bool must_leaf = depth >= config_.max_depth;
  if (must_leaf || rng.chance(config_.leaf_probability)) {
    ExprPtr leaf = rng.chance(config_.const_probability)
                       ? Expr::constant(rng.chance(0.5))
                       : Expr::var(rng.choice(vars_));
    if (rng.chance(config_.not_probability)) leaf = Expr::not_(leaf);
    return leaf;
  }

  std::vector<Op> ops = {Op::kAnd, Op::kOr};
  if (config_.allow_xor) {
    ops.push_back(Op::kXor);
    ops.push_back(Op::kXnor);
  }
  if (config_.allow_nand_nor) {
    ops.push_back(Op::kNand);
    ops.push_back(Op::kNor);
  }
  const Op op = rng.choice(ops);
  ExprPtr node = Expr::binary(op, gen_rec(rng, depth + 1), gen_rec(rng, depth + 1));
  if (rng.chance(config_.not_probability * 0.5)) node = Expr::not_(node);
  return node;
}

ExprPtr ExprGenerator::generate(util::Rng& rng) const { return gen_rec(rng, 1); }

ExprPtr ExprGenerator::generate_nontrivial(util::Rng& rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    ExprPtr e = generate(rng);
    const auto vars = e->collect_vars();
    if (vars.size() < 2) continue;
    // Reject tautologies/contradictions: they make degenerate exercises.
    const TruthTable tt = TruthTable::from_expr(*e);
    const std::size_t ones = tt.count_true();
    if (ones == 0 || ones == tt.num_rows()) continue;
    return e;
  }
  return Expr::and_(Expr::var("a"), Expr::var("b"));
}

TruthTable ExprGenerator::generate_table(util::Rng& rng, double dont_care_fraction) const {
  TruthTable tt(vars_);
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    if (dont_care_fraction > 0.0 && rng.chance(dont_care_fraction)) {
      tt.set_row(a, Tri::kDontCare);
    } else {
      tt.set_row(a, rng.chance(0.5));
    }
  }
  // Ensure at least one defined true and one defined false row so that the
  // exercise is non-degenerate.
  bool has_true = false, has_false = false;
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    has_true |= tt.row(a) == Tri::kTrue;
    has_false |= tt.row(a) == Tri::kFalse;
  }
  if (!has_true) tt.set_row(0, Tri::kTrue);
  if (!has_false) tt.set_row(static_cast<std::uint32_t>(tt.num_rows() - 1), Tri::kFalse);
  return tt;
}

}  // namespace haven::logic
