// Karnaugh map model and renderer for 2-4 variable functions. The L-dataset
// generator (Section III-D, step 10) uses Karnaugh maps as one of its
// "typical logic problems encountered in Verilog"; the symbolic renderer also
// emits them as instruction text for benchmark tasks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truth_table.h"

namespace haven::logic {

class KarnaughMap {
 public:
  // Builds the map from a truth table with 2..4 inputs.
  explicit KarnaughMap(const TruthTable& tt);

  std::size_t rows() const { return row_labels_.size(); }
  std::size_t cols() const { return col_labels_.size(); }

  // Cell value at (row, col) in Gray-code layout.
  Tri cell(std::size_t r, std::size_t c) const;

  // Gray-code labels, e.g. {"00","01","11","10"}.
  const std::vector<std::string>& row_labels() const { return row_labels_; }
  const std::vector<std::string>& col_labels() const { return col_labels_; }
  // Which input names label rows/columns, e.g. "ab" over rows, "cd" columns.
  const std::vector<std::string>& row_vars() const { return row_vars_; }
  const std::vector<std::string>& col_vars() const { return col_vars_; }

  // Minterm index for a (row, col) cell, consistent with the source table.
  std::uint32_t cell_minterm(std::size_t r, std::size_t c) const;

  // ASCII rendering, e.g.
  //        cd=00 cd=01 cd=11 cd=10
  //  ab=00   0     1     1     0
  //  ...
  std::string render() const;

 private:
  std::vector<std::string> row_vars_, col_vars_;
  std::vector<std::string> row_labels_, col_labels_;
  std::vector<std::vector<Tri>> grid_;
  std::vector<std::vector<std::uint32_t>> minterm_;
};

// Standard 2-bit Gray sequence used for map layout: 00,01,11,10.
std::vector<std::uint32_t> gray_sequence(std::size_t bits);

}  // namespace haven::logic
