#include "logic/truth_table.h"

#include <algorithm>
#include <stdexcept>

namespace haven::logic {

TruthTable::TruthTable(std::vector<std::string> inputs, std::string output)
    : inputs_(std::move(inputs)), output_(std::move(output)) {
  if (inputs_.empty()) throw std::invalid_argument("TruthTable: needs at least one input");
  if (inputs_.size() > 16) throw std::invalid_argument("TruthTable: more than 16 inputs");
  rows_.assign(std::size_t{1} << inputs_.size(), Tri::kFalse);
}

TruthTable TruthTable::from_expr(const Expr& e, std::string output) {
  return from_expr(e, e.collect_vars(), std::move(output));
}

TruthTable TruthTable::from_expr(const Expr& e, std::vector<std::string> inputs,
                                 std::string output) {
  if (inputs.empty()) inputs = {"_unused"};
  TruthTable tt(std::move(inputs), std::move(output));
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    tt.set_row(a, e.eval(tt.inputs_, a));
  }
  return tt;
}

Tri TruthTable::row(std::uint32_t assignment) const {
  if (assignment >= rows_.size()) throw std::out_of_range("TruthTable::row");
  return rows_[assignment];
}

void TruthTable::set_row(std::uint32_t assignment, Tri value) {
  if (assignment >= rows_.size()) throw std::out_of_range("TruthTable::set_row");
  rows_[assignment] = value;
}

std::vector<std::uint32_t> TruthTable::minterms() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t a = 0; a < rows_.size(); ++a) {
    if (rows_[a] == Tri::kTrue) out.push_back(a);
  }
  return out;
}

std::vector<std::uint32_t> TruthTable::dont_cares() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t a = 0; a < rows_.size(); ++a) {
    if (rows_[a] == Tri::kDontCare) out.push_back(a);
  }
  return out;
}

std::size_t TruthTable::count_true() const {
  return static_cast<std::size_t>(std::count(rows_.begin(), rows_.end(), Tri::kTrue));
}

bool TruthTable::matches(const Expr& e) const {
  for (std::uint32_t a = 0; a < rows_.size(); ++a) {
    if (rows_[a] == Tri::kDontCare) continue;
    if (e.eval(inputs_, a) != (rows_[a] == Tri::kTrue)) return false;
  }
  return true;
}

bool TruthTable::equivalent(const TruthTable& other) const {
  if (inputs_ != other.inputs_) return false;
  for (std::uint32_t a = 0; a < rows_.size(); ++a) {
    if (rows_[a] == Tri::kDontCare || other.rows_[a] == Tri::kDontCare) continue;
    if (rows_[a] != other.rows_[a]) return false;
  }
  return true;
}

ExprPtr TruthTable::to_sum_of_minterms() const {
  ExprPtr sum;
  for (std::uint32_t m : minterms()) {
    ExprPtr term;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      ExprPtr lit = Expr::var(inputs_[i]);
      if (((m >> i) & 1u) == 0) lit = Expr::not_(lit);
      term = term ? Expr::and_(term, lit) : lit;
    }
    sum = sum ? Expr::or_(sum, term) : term;
  }
  return sum ? sum : Expr::constant(false);
}

bool exprs_equivalent(const Expr& a, const Expr& b) {
  std::vector<std::string> vars = a.collect_vars();
  for (const auto& v : b.collect_vars()) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
  }
  if (vars.size() > 16) throw std::invalid_argument("exprs_equivalent: more than 16 variables");
  const std::uint32_t rows = vars.empty() ? 1 : (1u << vars.size());
  const std::vector<std::string> bind = vars.empty() ? std::vector<std::string>{"_u"} : vars;
  for (std::uint32_t m = 0; m < rows; ++m) {
    if (a.eval(bind, m) != b.eval(bind, m)) return false;
  }
  return true;
}

}  // namespace haven::logic
