// Truth table object: the canonical semantic form for single-output
// combinational functions. Supports don't-care entries so Karnaugh-map
// exercises with undefined rows (a paper taxonomy corner-case trigger) can be
// represented faithfully.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logic/expr.h"

namespace haven::logic {

// Value of one output row: false, true, or don't-care.
enum class Tri : std::uint8_t { kFalse = 0, kTrue = 1, kDontCare = 2 };

class TruthTable {
 public:
  // Constructs an all-false table over the given input names (LSB-first:
  // inputs()[0] is bit 0 of the row index). At most 16 inputs.
  explicit TruthTable(std::vector<std::string> inputs, std::string output = "out");

  // Tabulate an expression; inputs are the expression's variables in
  // first-appearance order unless explicitly given.
  static TruthTable from_expr(const Expr& e, std::string output = "out");
  static TruthTable from_expr(const Expr& e, std::vector<std::string> inputs,
                              std::string output);

  const std::vector<std::string>& inputs() const { return inputs_; }
  const std::string& output() const { return output_; }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  Tri row(std::uint32_t assignment) const;
  void set_row(std::uint32_t assignment, Tri value);
  void set_row(std::uint32_t assignment, bool value) {
    set_row(assignment, value ? Tri::kTrue : Tri::kFalse);
  }

  // Minterm / don't-care index lists (ascending).
  std::vector<std::uint32_t> minterms() const;
  std::vector<std::uint32_t> dont_cares() const;

  std::size_t count_true() const;

  // True if the expression matches this table on every defined row.
  bool matches(const Expr& e) const;

  // Two tables over the same inputs agree on all rows defined in both.
  bool equivalent(const TruthTable& other) const;

  // Canonical sum-of-minterms expression (don't-cares treated as false).
  // For the all-false table returns constant 0.
  ExprPtr to_sum_of_minterms() const;

 private:
  std::vector<std::string> inputs_;
  std::string output_;
  std::vector<Tri> rows_;
};

// Exhaustive equivalence of two expressions over the union of their variable
// sets (up to 16 variables; throws beyond that).
bool exprs_equivalent(const Expr& a, const Expr& b);

}  // namespace haven::logic
