// Random boolean expression generation for the L-dataset (Section III-D,
// step 10: "scripts that produce a wide range of logical expressions and
// their associated input-output mappings").
#pragma once

#include <cstddef>
#include <vector>

#include "logic/expr.h"
#include "logic/truth_table.h"
#include "util/rng.h"

namespace haven::logic {

struct ExprGenConfig {
  std::size_t num_vars = 3;       // distinct variables available (a, b, c, ...)
  std::size_t max_depth = 4;      // maximum tree depth
  double not_probability = 0.25;  // chance of wrapping a subterm in NOT
  bool allow_xor = true;          // include XOR/XNOR operators
  bool allow_nand_nor = false;    // include NAND/NOR (less common in specs)
  double leaf_probability = 0.35; // chance an interior position becomes a leaf
  double const_probability = 0.03;// chance a leaf is a constant instead of var
};

class ExprGenerator {
 public:
  explicit ExprGenerator(ExprGenConfig config = {});

  // Generate one expression; variable names are a,b,c,... (up to 16).
  ExprPtr generate(util::Rng& rng) const;

  // Generate an expression that is non-degenerate: uses at least two distinct
  // variables and is neither a tautology nor a contradiction. Retries
  // internally (bounded), falling back to (a & b) if unlucky.
  ExprPtr generate_nontrivial(util::Rng& rng) const;

  // Generate a random truth table directly (each row true with prob 0.5,
  // optional don't-care fraction) — used for Karnaugh-map style tasks where
  // the function is given extensionally rather than as an expression.
  TruthTable generate_table(util::Rng& rng, double dont_care_fraction = 0.0) const;

  static std::vector<std::string> default_var_names(std::size_t n);

 private:
  ExprPtr gen_rec(util::Rng& rng, std::size_t depth) const;

  ExprGenConfig config_;
  std::vector<std::string> vars_;
};

}  // namespace haven::logic
