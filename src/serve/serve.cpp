#include "serve/serve.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "eval/cache_io.h"
#include "llm/hallucination.h"
#include "util/strings.h"

namespace haven::serve {

namespace detail {

// Shared state behind a JobTicket. The server's dispatcher and any number of
// ticket holders (including coalesced ones) synchronize on `m`/`cv`; the
// routing fields above them are written once at submit time.
struct JobState {
  std::uint64_t id = 0;
  EvalJob job;
  cache::Digest digest;
  std::size_t units = 0;
  double submit_time = 0.0;

  mutable std::mutex m;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;
  eval::SuiteResult result;
  std::string error;
  std::vector<eval::ProgressCallback> subscribers;
};

}  // namespace detail

using detail::JobState;

// --- counters / small helpers ----------------------------------------------

bool serve_counters_consistent(const ServeCounters& c) {
  const std::int64_t values[] = {c.submitted,     c.admitted,      c.coalesced,
                                 c.rejected,      c.expired,       c.completed,
                                 c.failed,        c.repair_rounds, c.repaired_pass,
                                 c.repair_exhausted};
  for (std::int64_t v : values) {
    if (v < 0) return false;
  }
  if (c.submitted != c.admitted + c.coalesced + c.rejected) return false;
  if (c.expired + c.completed + c.failed > c.admitted) return false;
  if (c.repaired_pass + c.repair_exhausted > c.repair_rounds) return false;
  return true;
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kExpired: return "expired";
  }
  return "unknown";
}

bool is_terminal(JobStatus status) {
  return status == JobStatus::kDone || status == JobStatus::kFailed ||
         status == JobStatus::kRejected || status == JobStatus::kExpired;
}

std::size_t job_units(const EvalJob& job) {
  if (job.request.n_samples <= 0) return 0;
  return job.request.temperatures.size() * job.suite.tasks.size() *
         static_cast<std::size_t>(job.request.n_samples);
}

// --- digests ----------------------------------------------------------------

namespace {

void hash_profile(cache::Hasher& h, const llm::HallucinationProfile& profile) {
  for (int axis = 0; axis < llm::kNumHalluAxes; ++axis) {
    h.u64(std::bit_cast<std::uint64_t>(
        llm::profile_axis(profile, static_cast<llm::HalluAxis>(axis))));
  }
}

}  // namespace

cache::Digest job_digest(const llm::SimLlm& model, const eval::Suite& suite,
                         const eval::EvalRequest& request) {
  cache::Hasher h;
  h.bytes("haven.serve.job.v1");
  // Model identity: name + family key the systematic draws, the profile the
  // stochastic ones.
  h.bytes(model.name()).bytes(model.family());
  hash_profile(h, model.profile());
  // Suite identity: per-task cache seed (id, golden, stimulus, budget, lint
  // mode) plus the two generation-side inputs the cache seed does not cover.
  const eval::CacheLintMode lint_mode = request.lint_triage ? eval::CacheLintMode::kTriage
                                        : request.lint      ? eval::CacheLintMode::kObserve
                                                            : eval::CacheLintMode::kOff;
  h.bytes(suite.name);
  h.u64(suite.tasks.size());
  for (const eval::EvalTask& task : suite.tasks) {
    const cache::Digest seed =
        eval::task_cache_seed(task, request.sim_step_budget, lint_mode, request.prove,
                              request.prove_budget, &request.repair);
    h.u64(seed.hi).u64(seed.lo);
    h.bytes(task.prompt);
    h.u32(static_cast<std::uint32_t>(task.modality));
  }
  // Result-affecting request knobs. threads/pool/on_progress/cache are
  // scheduling-only (never change results) and deliberately excluded.
  h.i32(request.n_samples);
  h.u64(request.temperatures.size());
  for (double t : request.temperatures) h.u64(std::bit_cast<std::uint64_t>(t));
  h.boolean(request.use_sicot);
  h.u64(request.seed);
  h.boolean(request.lint).boolean(request.lint_triage);
  // prove is result-affecting in the counter/coalescing sense: two jobs that
  // differ only in prove mode report different counter breakdowns, so they
  // must not coalesce (verdicts, by contract, are identical either way).
  h.boolean(request.prove);
  h.u64(request.prove_budget);
  // Repair knobs bind only when the loop is enabled — the disabled default
  // hashes nothing, so repair-off digests (and their coalescing decisions)
  // stay bit-identical to the pre-repair service.
  if (request.repair.enabled()) {
    h.bytes("repair");
    h.i32(request.repair.max_rounds).i32(request.repair.attempt_budget);
    h.boolean(request.repair.stop_on_pass);
    h.u64(std::bit_cast<std::uint64_t>(request.repair.efficacy));
  }
  h.i32(request.deadline_ms);
  h.u64(request.sim_step_budget);
  h.u32(static_cast<std::uint32_t>(request.sim_backend));
  h.i32(request.retry.max_retries);
  h.boolean(request.fail_fast);
  h.boolean(request.has_cot_model());
  if (request.has_cot_model()) {
    const llm::SimLlm& cot = request.cot_model();
    h.bytes(cot.name()).bytes(cot.family());
    hash_profile(h, cot.profile());
  }
  return h.digest();
}

cache::Digest verdict_digest(const eval::SuiteResult& result) {
  cache::Hasher h;
  h.bytes("haven.serve.verdict.v1");
  h.bytes(result.suite_name).bytes(result.model_name);
  h.u64(std::bit_cast<std::uint64_t>(result.temperature));
  h.u64(result.per_task.size());
  for (const eval::TaskResult& task : result.per_task) {
    h.bytes(task.task_id);
    h.u32(static_cast<std::uint32_t>(task.modality));
    h.i32(task.n).i32(task.syntax_pass).i32(task.func_pass);
  }
  return h.digest();
}

// --- TokenBucket ------------------------------------------------------------

bool TokenBucket::try_acquire(double now) {
  if (burst_ <= 0.0) return true;  // limiting disabled
  if (!primed_) {
    last_ = now;
    primed_ = true;
  }
  tokens_ = std::min(burst_, tokens_ + rate_ * std::max(0.0, now - last_));
  last_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

bool TokenBucket::idle(double now) const {
  if (burst_ <= 0.0 || !primed_) return true;
  return tokens_ + rate_ * std::max(0.0, now - last_) >= burst_;
}

// --- JobTicket --------------------------------------------------------------

namespace {

JobState& deref(const std::shared_ptr<JobState>& state) {
  if (state == nullptr) throw std::logic_error("JobTicket: empty ticket");
  return *state;
}

}  // namespace

std::uint64_t JobTicket::id() const { return deref(state_).id; }

const std::string& JobTicket::tenant() const { return deref(state_).job.tenant; }

JobStatus JobTicket::status() const {
  JobState& s = deref(state_);
  std::lock_guard<std::mutex> lock(s.m);
  return s.status;
}

JobStatus JobTicket::wait() const {
  JobState& s = deref(state_);
  std::unique_lock<std::mutex> lock(s.m);
  s.cv.wait(lock, [&s] { return is_terminal(s.status); });
  return s.status;
}

const eval::SuiteResult& JobTicket::result() const {
  JobState& s = deref(state_);
  std::lock_guard<std::mutex> lock(s.m);
  if (s.status != JobStatus::kDone) {
    throw std::logic_error(std::string("JobTicket::result: job is ") +
                           job_status_name(s.status));
  }
  return s.result;
}

std::string JobTicket::error() const {
  JobState& s = deref(state_);
  std::lock_guard<std::mutex> lock(s.m);
  return s.error;
}

void JobTicket::subscribe(eval::ProgressCallback callback) const {
  if (!callback) return;
  JobState& s = deref(state_);
  std::lock_guard<std::mutex> lock(s.m);
  if (is_terminal(s.status)) return;  // nothing left to stream
  s.subscribers.push_back(std::move(callback));
}

// --- Server -----------------------------------------------------------------

namespace {

// Mark a job terminal and wake every waiter. Never called with the server
// mutex held by callers that also take state->m elsewhere under it —
// lock order is always server mutex_ strictly before state->m or disjoint.
void finish(const std::shared_ptr<JobState>& state, JobStatus status, std::string error,
            eval::SuiteResult* result = nullptr) {
  {
    std::lock_guard<std::mutex> lock(state->m);
    if (result != nullptr) state->result = std::move(*result);
    state->error = std::move(error);
    state->status = status;
  }
  state->cv.notify_all();
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  clock_ = config_.clock ? config_.clock : [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  cache_ = config_.cache;
  if (cache_ == nullptr) {
    cache::CacheConfig cache_config;
    cache_config.max_bytes = config_.cache_mb << 20;
    cache_ = std::make_shared<cache::ResultCache>(cache_config);
  }
  pool_ = std::make_unique<util::ThreadPool>(
      config_.threads <= 0 ? 0 : static_cast<std::size_t>(config_.threads));
  unit_seconds_ewma_ = config_.initial_unit_seconds;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Server::~Server() { stop(); }

JobTicket Server::submit(EvalJob job) {
  auto state = std::make_shared<JobState>();
  state->job = std::move(job);
  state->digest = job_digest(state->job.model, state->job.suite, state->job.request);
  state->units = job_units(state->job);
  // The tenant's own progress callback is subscriber #0 of its computation.
  if (state->job.request.on_progress) {
    state->subscribers.push_back(state->job.request.on_progress);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  state->id = next_id_++;
  state->submit_time = now();
  ++counters_.submitted;

  auto reject = [&](std::string why) {
    ++counters_.rejected;
    state->status = JobStatus::kRejected;  // state not yet shared: no lock needed
    state->error = std::move(why);
    return JobTicket(state, false);
  };

  if (!accepting_) return reject("server is not accepting jobs");

  auto [bucket, inserted] = buckets_.try_emplace(
      state->job.tenant, TokenBucket(config_.tenant_rate, config_.tenant_burst));
  const bool acquired = bucket->second.try_acquire(state->submit_time);
  // Bound the bucket map before (possibly) rejecting, so hostile tenant-name
  // churn cannot grow it without limit. `bucket` is invalid past this point.
  if (inserted && config_.tenant_bucket_capacity > 0 &&
      buckets_.size() > config_.tenant_bucket_capacity) {
    prune_buckets_locked(state->submit_time);
  }
  if (!acquired) {
    return reject("tenant '" + state->job.tenant + "' rate-limited");
  }

  // Coalesce against the completed-result memo: replay immediately.
  if (auto hit = memo_index_.find(state->digest); hit != memo_index_.end()) {
    memo_.splice(memo_.begin(), memo_, hit->second);
    ++counters_.coalesced;
    state->result = hit->second->second;
    state->status = JobStatus::kDone;
    return JobTicket(state, true);
  }

  // Coalesce against a queued/running computation: attach to it.
  if (auto inflight = inflight_.find(state->digest); inflight != inflight_.end()) {
    ++counters_.coalesced;
    if (state->job.request.on_progress) {
      std::lock_guard<std::mutex> state_lock(inflight->second->m);
      inflight->second->subscribers.push_back(state->job.request.on_progress);
    }
    return JobTicket(inflight->second, true);
  }

  // Deadline-aware upfront rejection: don't admit work the backlog estimate
  // says cannot finish in time.
  if (state->job.deadline_ms > 0 && unit_seconds_ewma_ > 0.0) {
    const double estimate_s =
        static_cast<double>(queued_units_ + running_units_ + state->units) *
        unit_seconds_ewma_;
    if (estimate_s * 1000.0 > static_cast<double>(state->job.deadline_ms)) {
      return reject(util::format("deadline %dms infeasible: backlog estimate %.0fms",
                                 state->job.deadline_ms, estimate_s * 1000.0));
    }
  }

  ++counters_.admitted;
  queue_.push_back(state);
  inflight_[state->digest] = state;
  queued_units_ += state->units;
  cv_queue_.notify_one();
  return JobTicket(state, false);
}

void Server::dispatcher_loop() {
  for (;;) {
    std::shared_ptr<JobState> state;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_queue_.wait(lock, [this] { return stop_dispatch_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_dispatch_) return;
        continue;
      }
      state = queue_.front();
      queue_.pop_front();
      queued_units_ -= state->units;
      // Expiry: admitted, but the job deadline lapsed while queued.
      if (state->job.deadline_ms > 0 &&
          (now() - state->submit_time) * 1000.0 >
              static_cast<double>(state->job.deadline_ms)) {
        inflight_.erase(state->digest);
        ++counters_.expired;
        finish(state, JobStatus::kExpired, "job deadline lapsed before dispatch");
        cv_idle_.notify_all();
        continue;
      }
      running_units_ += state->units;
      job_running_ = true;
    }

    finish_running_marker(state);

    // Effective request: the tenant's request verbatim, rescheduled onto the
    // server's shared pool and cache, with progress fanned out to every
    // subscriber (attach point for coalesced tickets).
    eval::EvalRequest request = state->job.request;
    request.pool = pool_.get();
    if (request.cache == nullptr) request.cache = cache_.get();
    std::weak_ptr<JobState> weak = state;
    request.on_progress = [weak](const eval::EvalProgress& progress) {
      const std::shared_ptr<JobState> s = weak.lock();
      if (s == nullptr) return;
      std::vector<eval::ProgressCallback> subscribers;
      {
        std::lock_guard<std::mutex> state_lock(s->m);
        subscribers = s->subscribers;
      }
      for (const eval::ProgressCallback& cb : subscribers) {
        if (cb) cb(progress);
      }
    };
    engine_.request() = std::move(request);  // dispatcher is the engine's only writer

    bool ok = false;
    eval::SuiteResult result;
    std::string error;
    const double started = now();
    try {
      result = engine_.evaluate(state->job.model, state->job.suite);
      ok = true;
    } catch (const std::exception& e) {
      error = e.what();
    }
    const double elapsed = now() - started;

    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_units_ -= state->units;
      job_running_ = false;
      inflight_.erase(state->digest);
      if (ok) {
        ++counters_.completed;
        // Fresh computations only: coalesced/memoized replays reuse this
        // result without re-running the repair loop.
        counters_.repair_rounds += result.counters.repair_rounds;
        counters_.repaired_pass += result.counters.repaired_pass;
        counters_.repair_exhausted += result.counters.repair_exhausted;
        if (state->units > 0 && elapsed > 0.0) {
          const double per_unit = elapsed / static_cast<double>(state->units);
          unit_seconds_ewma_ = unit_seconds_ewma_ <= 0.0
                                   ? per_unit
                                   : config_.ewma_alpha * per_unit +
                                         (1.0 - config_.ewma_alpha) * unit_seconds_ewma_;
        }
        memo_insert_locked(state->digest, result);
      } else {
        ++counters_.failed;
      }
    }
    if (ok) {
      finish(state, JobStatus::kDone, "", &result);
    } else {
      finish(state, JobStatus::kFailed, std::move(error));
    }
    cv_idle_.notify_all();
  }
}

void Server::finish_running_marker(const std::shared_ptr<detail::JobState>& state) {
  std::lock_guard<std::mutex> lock(state->m);
  state->status = JobStatus::kRunning;
}

void Server::memo_insert_locked(const cache::Digest& digest,
                                const eval::SuiteResult& result) {
  if (config_.memo_capacity == 0) return;
  if (auto it = memo_index_.find(digest); it != memo_index_.end()) {
    it->second->second = result;
    memo_.splice(memo_.begin(), memo_, it->second);
    return;
  }
  memo_.emplace_front(digest, result);
  memo_index_[digest] = memo_.begin();
  if (memo_.size() > config_.memo_capacity) {
    memo_index_.erase(memo_.back().first);
    memo_.pop_back();
  }
}

void Server::prune_buckets_locked(double now) {
  // An idle bucket is indistinguishable from a freshly constructed one, so
  // dropping it loses no admission state.
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    it = it->second.idle(now) ? buckets_.erase(it) : std::next(it);
  }
  // Past the hard cap, shed the coldest buckets. Eviction is permissive —
  // the tenant comes back to a fresh full burst — which bounds memory under
  // tenant-name churn without penalizing well-behaved tenants.
  while (buckets_.size() > config_.tenant_bucket_capacity) {
    auto coldest = buckets_.begin();
    for (auto it = std::next(buckets_.begin()); it != buckets_.end(); ++it) {
      if (it->second.last_seen() < coldest->second.last_seen()) coldest = it;
    }
    buckets_.erase(coldest);
  }
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  cv_idle_.wait(lock, [this] { return queue_.empty() && !job_running_; });
}

void Server::stop() {
  std::vector<std::shared_ptr<JobState>> expired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    stop_dispatch_ = true;
    for (const std::shared_ptr<JobState>& state : queue_) {
      inflight_.erase(state->digest);
      queued_units_ -= state->units;
      ++counters_.expired;
      expired.push_back(state);
    }
    queue_.clear();
  }
  cv_queue_.notify_all();
  for (const std::shared_ptr<JobState>& state : expired) {
    finish(state, JobStatus::kExpired, "server stopped");
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  cv_idle_.notify_all();
}

ServeCounters Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::size_t Server::tenant_bucket_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

double Server::estimate_seconds(std::size_t units) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (unit_seconds_ewma_ <= 0.0) return 0.0;
  return static_cast<double>(queued_units_ + running_units_ + units) * unit_seconds_ewma_;
}

}  // namespace haven::serve
