#include "serve/protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>
#include <vector>

#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "sim/backend.h"
#include "util/strings.h"

namespace haven::serve {

namespace {

bool build_suite(const std::string& name, eval::Suite* out) {
  if (name == "machine") *out = eval::build_verilogeval_machine();
  else if (name == "human") *out = eval::build_verilogeval_human();
  else if (name == "v2") *out = eval::build_verilogeval_v2();
  else if (name == "rtllm") *out = eval::build_rtllm();
  else if (name == "symbolic44") *out = eval::build_symbolic44();
  else return false;
  return true;
}

std::string result_line(const std::string& id_field, const eval::SuiteResult& result,
                        bool coalesced) {
  // pass@k needs k <= n for every task; clamp k to the smallest sample count
  // so low-n service jobs still get a defined value, and label the field
  // with the k actually reported (pass2= for the default n=2 job, never a
  // pass@2 value masquerading as pass5=).
  int k = 5;
  for (const eval::TaskResult& task : result.per_task) k = std::min(k, task.n);
  k = std::max(k, 1);
  return util::format(
      "RESULT %s done pass1=%.6f pass%d=%.6f candidates=%lld coalesced=%d verdict=%s",
      id_field.c_str(), result.pass_at(1), k, result.pass_at(k),
      static_cast<long long>(result.counters.candidates), coalesced ? 1 : 0,
      cache::to_hex(verdict_digest(result)).c_str());
}

// Strict numeric knob parsing: the whole value must be consumed and errno
// clean, so "n=abc" is an ERR instead of a silent zero-unit job.
bool parse_i64(const std::string& s, long long* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_f64(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool parse_job(const std::string& tenant, const std::string& model_name,
               const std::string& suite_name, const std::vector<std::string>& knobs,
               EvalJob* out, std::string* error) {
  if (llm::find_model_card(model_name) == nullptr) {
    *error = "unknown model '" + model_name + "'";
    return false;
  }
  EvalJob job;
  job.tenant = tenant;
  job.model = llm::make_model(model_name);
  if (!build_suite(suite_name, &job.suite)) {
    *error = "unknown suite '" + suite_name + "' (want machine|human|v2|rtllm|symbolic44)";
    return false;
  }
  // Service-friendly defaults; every knob below overrides.
  job.request.n_samples = 2;
  job.request.temperatures = {0.2};
  for (const std::string& knob : knobs) {
    const std::size_t eq = knob.find('=');
    if (eq == std::string::npos) {
      *error = "malformed knob '" + knob + "' (want k=v)";
      return false;
    }
    const std::string key = knob.substr(0, eq);
    const std::string value = knob.substr(eq + 1);
    auto bad = [&](const char* want) {
      *error = "knob '" + key + "' wants " + want + ", got '" + value + "'";
      return false;
    };
    constexpr long long kIntMax = std::numeric_limits<int>::max();
    long long i = 0;
    std::uint64_t u = 0;
    if (key == "n") {
      if (!parse_i64(value, &i) || i < 1 || i > kIntMax) return bad("an integer >= 1");
      job.request.n_samples = static_cast<int>(i);
    } else if (key == "temps") {
      std::vector<double> temps;
      for (const std::string& field : util::split(value, ',')) {
        const std::string trimmed{util::trim(field)};
        if (trimmed.empty()) continue;
        double t = 0.0;
        if (!parse_f64(trimmed, &t)) return bad("a comma-separated list of numbers");
        temps.push_back(t);
      }
      if (temps.empty()) return bad("a comma-separated list of numbers");
      job.request.temperatures = std::move(temps);
    } else if (key == "seed") {
      if (!parse_u64(value, &u)) return bad("an unsigned integer");
      job.request.seed = u;
    } else if (key == "tasks") {
      if (!parse_u64(value, &u) || u < 1) return bad("an integer >= 1");
      if (job.suite.tasks.size() > u) job.suite.tasks.resize(u);
    } else if (key == "sicot") {
      if (!parse_i64(value, &i) || (i != 0 && i != 1)) return bad("0 or 1");
      job.request.use_sicot = i != 0;
    } else if (key == "lint") {
      if (!parse_i64(value, &i) || (i != 0 && i != 1)) return bad("0 or 1");
      job.request.lint = i != 0;
    } else if (key == "triage") {
      if (!parse_i64(value, &i) || (i != 0 && i != 1)) return bad("0 or 1");
      job.request.lint_triage = i != 0;
    } else if (key == "deadline") {
      if (!parse_i64(value, &i) || i < 0 || i > kIntMax) return bad("milliseconds >= 0");
      job.deadline_ms = static_cast<int>(i);
    } else if (key == "unit-deadline") {
      if (!parse_i64(value, &i) || i < 0 || i > kIntMax) return bad("milliseconds >= 0");
      job.request.deadline_ms = static_cast<int>(i);
    } else if (key == "budget") {
      if (!parse_u64(value, &u)) return bad("an unsigned integer");
      job.request.sim_step_budget = u;
    } else if (key == "backend") {
      // Validated, never silently defaulted: an unknown backend is an ERR
      // naming the accepted values, same policy as every other knob.
      if (const auto backend = sim::parse_backend(value)) {
        job.request.sim_backend = *backend;
      } else {
        return bad(std::string(sim::kBackendValues).c_str());
      }
    } else if (key == "prove") {
      if (!parse_i64(value, &i) || (i != 0 && i != 1)) return bad("0 or 1");
      job.request.prove = i != 0;
    } else if (key == "prove-budget") {
      if (!parse_u64(value, &u)) return bad("an unsigned integer");
      job.request.prove_budget = u;
    } else if (key == "repair") {
      // repair=1 turns the loop on with the default round count unless
      // repair-rounds= already picked one; repair=0 forces it off.
      if (!parse_i64(value, &i) || (i != 0 && i != 1)) return bad("0 or 1");
      if (i == 0) {
        job.request.repair.max_rounds = 0;
      } else if (job.request.repair.max_rounds == 0) {
        job.request.repair.max_rounds = 2;
      }
    } else if (key == "repair-rounds") {
      if (!parse_i64(value, &i) || i < 0 || i > kIntMax) return bad("an integer >= 0");
      job.request.repair.max_rounds = static_cast<int>(i);
    } else if (key == "repair-budget") {
      if (!parse_i64(value, &i) || i < 0 || i > kIntMax) return bad("an integer >= 0");
      job.request.repair.attempt_budget = static_cast<int>(i);
    } else if (key == "repair-efficacy") {
      double f = 0.0;
      if (!parse_f64(value, &f) || f < 0.0 || f > 1.0) return bad("a number in [0, 1]");
      job.request.repair.efficacy = f;
    } else if (key == "retries") {
      if (!parse_i64(value, &i) || i < 0 || i > kIntMax) return bad("an integer >= 0");
      job.request.retry.max_retries = static_cast<int>(i);
    } else if (key == "fail-fast") {
      if (!parse_i64(value, &i) || (i != 0 && i != 1)) return bad("0 or 1");
      job.request.fail_fast = i != 0;
    } else {
      *error = "unknown knob '" + key + "'";
      return false;
    }
  }
  *out = std::move(job);
  return true;
}

std::size_t LineServer::run() {
  std::size_t handled = 0;
  std::string line;
  while (std::getline(in_, line)) {
    const std::string trimmed{util::trim(line)};
    if (trimmed.empty() || trimmed[0] == '#') continue;
    ++handled;
    if (trimmed == "QUIT") break;
    handle(trimmed);
  }
  return handled;
}

void LineServer::report(std::uint64_t id, const JobTicket& ticket) {
  const JobStatus status = ticket.wait();
  if (status == JobStatus::kDone) {
    out_ << result_line(util::format("%llu", static_cast<unsigned long long>(id)),
                        ticket.result(), ticket.coalesced())
         << "\n";
  } else {
    out_ << "RESULT " << id << " " << job_status_name(status) << " " << ticket.error()
         << "\n";
  }
}

void LineServer::handle(const std::string& line) {
  const std::vector<std::string> words = util::split_ws(line);
  const std::string& command = words.front();

  if (command == "SUBMIT") {
    if (words.size() < 4) {
      out_ << "ERR usage: SUBMIT <tenant> <model> <suite> [k=v ...]\n";
      return;
    }
    EvalJob job;
    std::string error;
    const std::vector<std::string> knobs(words.begin() + 4, words.end());
    if (!parse_job(words[1], words[2], words[3], knobs, &job, &error)) {
      out_ << "ERR " << error << "\n";
      return;
    }
    const JobTicket ticket = server_.submit(std::move(job));
    const std::uint64_t client_id = next_client_id_++;
    tickets_.emplace(client_id, ticket);
    const JobStatus status = ticket.status();
    if (status == JobStatus::kRejected) {
      out_ << "JOB " << client_id << " rejected " << ticket.error() << "\n";
    } else if (ticket.coalesced()) {
      out_ << "JOB " << client_id << " "
           << (status == JobStatus::kDone ? "done" : "coalesced") << "\n";
    } else {
      out_ << "JOB " << client_id << " queued\n";
    }
    return;
  }

  if (command == "WAIT") {
    if (words.size() != 2) {
      out_ << "ERR usage: WAIT <id>|*\n";
      return;
    }
    if (words[1] == "*") {
      for (const auto& [id, ticket] : tickets_) report(id, ticket);
      return;
    }
    const std::uint64_t id = std::strtoull(words[1].c_str(), nullptr, 10);
    const auto it = tickets_.find(id);
    if (it == tickets_.end()) {
      out_ << "ERR unknown job id '" << words[1] << "'\n";
      return;
    }
    report(it->first, it->second);
    return;
  }

  if (command == "ONESHOT") {
    if (words.size() < 3) {
      out_ << "ERR usage: ONESHOT <model> <suite> [k=v ...]\n";
      return;
    }
    EvalJob job;
    std::string error;
    const std::vector<std::string> knobs(words.begin() + 3, words.end());
    if (!parse_job("oneshot", words[1], words[2], knobs, &job, &error)) {
      out_ << "ERR " << error << "\n";
      return;
    }
    try {
      const eval::SuiteResult result =
          eval::EvalEngine(job.request).evaluate(job.model, job.suite);
      out_ << result_line("oneshot", result, false) << "\n";
    } catch (const std::exception& e) {
      out_ << "RESULT oneshot failed " << e.what() << "\n";
    }
    return;
  }

  if (command == "STATS") {
    // Field names and order are part of the wire contract (tests parse this
    // line golden); append, never reorder.
    const ServeCounters c = server_.stats();
    out_ << util::format(
        "STATS submitted=%lld admitted=%lld coalesced=%lld rejected=%lld "
        "expired=%lld completed=%lld failed=%lld repair-rounds=%lld repaired=%lld "
        "repair-exhausted=%lld",
        static_cast<long long>(c.submitted), static_cast<long long>(c.admitted),
        static_cast<long long>(c.coalesced), static_cast<long long>(c.rejected),
        static_cast<long long>(c.expired), static_cast<long long>(c.completed),
        static_cast<long long>(c.failed), static_cast<long long>(c.repair_rounds),
        static_cast<long long>(c.repaired_pass), static_cast<long long>(c.repair_exhausted))
         << "\n";
    return;
  }

  if (command == "DRAIN") {
    server_.drain();
    out_ << "DRAINED\n";
    return;
  }

  out_ << "ERR unknown command '" << command << "'\n";
}

}  // namespace haven::serve
