// haven::serve — a long-lived, multi-tenant evaluation service.
//
// The Server daemon owns one eval::EvalEngine, one util::ThreadPool, and one
// shared cache::ResultCache for its whole lifetime. Tenants submit EvalJobs
// (an eval::EvalRequest embedded verbatim plus model, suite, and a job-level
// deadline) to a thread-safe queue and get back a JobTicket they can wait
// on, poll, or subscribe to for streaming progress.
//
// Three serving-layer behaviors sit in front of the engine (DESIGN.md §11):
//
//  * Request coalescing. Every job is content-addressed by job_digest(),
//    which binds exactly the inputs that determine the verdict: model
//    identity (name, family, hallucination profile), per-task cache seeds +
//    prompts, and the result-affecting request knobs. A submission whose
//    digest matches a queued/in-flight computation attaches to it; one whose
//    digest matches a completed result in the memo LRU replays it
//    immediately. Either way the tenant's SuiteResult is bit-identical to a
//    solo run — coalescing is sound because the engine itself is
//    deterministic for a fixed request at any thread count. Scheduling-only
//    knobs (threads, external pool, progress callback, cache pointer) are
//    deliberately excluded from the digest: they never change results, so
//    they must not prevent two tenants from sharing one computation.
//
//  * Admission control. Per-tenant token buckets bound the submission rate
//    (ServerConfig::tenant_rate / tenant_burst), and jobs carrying a
//    deadline are rejected upfront when the backlog estimate — (queued +
//    running + own work units) x the EWMA of observed per-unit seconds —
//    says they cannot finish in time. Jobs that were admitted but whose
//    deadline lapses before dispatch expire instead of burning workers.
//
//  * Streaming progress. JobTicket::subscribe attaches any number of
//    eval::ProgressCallbacks to the underlying computation; the engine
//    delivers per-unit completion in index order on the evaluating thread.
//    Subscribers attached to a coalesced ticket observe the shared run.
//
// Threading model: a single dispatcher thread pops jobs and runs them on the
// shared pool (each job fans out internally), so exactly one evaluation is
// in flight at a time and the engine's determinism contract applies
// unchanged. ServeCounters carries the service-level accounting identity
//   submitted == admitted + coalesced + rejected
// with every admitted job eventually completed, failed, or expired.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/hash.h"
#include "cache/result_cache.h"
#include "eval/engine.h"
#include "eval/task.h"
#include "llm/simllm.h"
#include "util/thread_pool.h"

namespace haven::serve {

// Service-level accounting. Identity (serve_counters_consistent):
//   submitted == admitted + coalesced + rejected
// and expired + completed + failed <= admitted (== once drained: every
// admitted job reaches exactly one terminal bucket). The repair tallies
// aggregate the engine's per-job EvalCounters over completed computations
// (coalesced/memoized replays do not double-count) and obey
//   repaired_pass + repair_exhausted <= repair_rounds.
struct ServeCounters {
  std::int64_t submitted = 0;  // submit() calls
  std::int64_t admitted = 0;   // fresh computations queued
  std::int64_t coalesced = 0;  // attached to an in-flight or memoized result
  std::int64_t rejected = 0;   // refused upfront (rate / deadline / shutdown)
  std::int64_t expired = 0;    // admitted, but deadline lapsed before dispatch
  std::int64_t completed = 0;  // admitted computations that finished
  std::int64_t failed = 0;     // admitted computations that threw
  std::int64_t repair_rounds = 0;     // engine repair passes across completions
  std::int64_t repaired_pass = 0;     // candidates rescued by the repair loop
  std::int64_t repair_exhausted = 0;  // candidates that exhausted their rounds
};

bool serve_counters_consistent(const ServeCounters& c);

// One tenant submission: the engine request embedded verbatim plus the
// routing envelope. `request.threads`/`request.pool` are overridden by the
// server's shared pool; `request.cache` defaults to the server's shared
// cache when unset.
struct EvalJob {
  std::string tenant;
  llm::SimLlm model{"", llm::HallucinationProfile{}};
  eval::Suite suite;
  eval::EvalRequest request;
  // Job-level deadline in milliseconds from submission (0 = none): used for
  // upfront feasibility rejection at admission and expiry at dispatch.
  // Distinct from request.deadline_ms, which bounds each unit attempt.
  int deadline_ms = 0;
};

enum class JobStatus {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,    // the computation threw (e.g. fail_fast abort)
  kRejected,  // refused at admission
  kExpired,   // admitted, deadline lapsed before dispatch
};
const char* job_status_name(JobStatus status);
bool is_terminal(JobStatus status);

namespace detail {
struct JobState;
}  // namespace detail

// Handle to a submitted job. Copyable; all copies (and every ticket
// coalesced onto the same computation) share one underlying state.
class JobTicket {
 public:
  JobTicket() = default;

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const;
  const std::string& tenant() const;
  // True when this submission attached to another job's computation (or to a
  // memoized result) instead of being admitted as fresh work.
  bool coalesced() const { return coalesced_; }

  JobStatus status() const;
  // Block until the job reaches a terminal status and return it.
  JobStatus wait() const;
  // The SuiteResult; requires status() == kDone (throws std::logic_error
  // otherwise — call wait() first).
  const eval::SuiteResult& result() const;
  // Why the job was rejected / expired / failed ("" otherwise).
  std::string error() const;

  // Attach a streaming-progress subscriber: called per completed work unit,
  // in index order, on the evaluating thread. Subscribing after completion
  // is a harmless no-op; subscribing mid-run observes the remaining units.
  void subscribe(eval::ProgressCallback callback) const;

 private:
  friend class Server;
  JobTicket(std::shared_ptr<detail::JobState> state, bool coalesced)
      : state_(std::move(state)), coalesced_(coalesced) {}

  std::shared_ptr<detail::JobState> state_;
  bool coalesced_ = false;
};

// Token-bucket rate limiter (one per tenant). `burst` is the bucket
// capacity, `rate` the refill in tokens/second; burst <= 0 disables
// limiting. Time is supplied by the caller (the server's injectable clock),
// so policies are testable without sleeping.
class TokenBucket {
 public:
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  // Take one token at time `now` (seconds, monotonic); false = rate-limited.
  bool try_acquire(double now);
  double tokens() const { return tokens_; }
  // True when a refill at `now` returns the bucket to full burst (or
  // limiting is disabled): no admission state distinguishes it from a
  // freshly constructed bucket, so it can be dropped and rebuilt on demand.
  bool idle(double now) const;
  // Time of the last try_acquire (0 before the first): the eviction key for
  // the server's bucket-map cap.
  double last_seen() const { return last_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_ = 0.0;
  bool primed_ = false;
};

struct ServerConfig {
  // Shared pool width (0 = one worker per hardware thread).
  int threads = 0;
  // Per-tenant admission rate: bucket of `tenant_burst` tokens refilled at
  // `tenant_rate`/s; one token per submission. tenant_burst <= 0 = no limit.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  // Hard cap on tracked tenant buckets, so memory stays bounded under
  // hostile tenant-name churn. Idle (refilled-to-burst) buckets are shed
  // first; past the cap the coldest bucket is evicted, returning that
  // tenant to a fresh full burst. 0 = unbounded.
  std::size_t tenant_bucket_capacity = 1024;
  // Completed-result memo (digest -> SuiteResult) LRU capacity, in entries.
  std::size_t memo_capacity = 64;
  // Backlog estimator: EWMA over observed per-unit seconds. The initial
  // value bootstraps feasibility checks before the first completion
  // (0 = estimate nothing, admit everything until calibrated).
  double ewma_alpha = 0.3;
  double initial_unit_seconds = 0.0;
  // Shared result cache: external, or (when null) server-owned in-memory
  // with this budget.
  std::shared_ptr<cache::ResultCache> cache;
  std::size_t cache_mb = 256;
  // Monotonic clock in seconds, injectable for deterministic tests
  // (null = std::chrono::steady_clock).
  std::function<double()> clock;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  // stop(): expires anything still queued, finishes the running job, joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueue a job (thread-safe). Always returns a ticket; rejected
  // submissions come back already terminal with status kRejected.
  JobTicket submit(EvalJob job);

  // Stop admitting and block until the queue is empty and the in-flight job
  // (if any) finished. The server stays alive for stats()/result reads;
  // later submits are rejected.
  void drain();

  // Stop admitting, expire every queued job, finish the running one, join
  // the dispatcher. Idempotent.
  void stop();

  ServeCounters stats() const;
  // Current backlog estimate for a hypothetical job of `units` work units,
  // in seconds (0 when the estimator is uncalibrated).
  double estimate_seconds(std::size_t units) const;
  // Tenant buckets currently tracked (bounded by tenant_bucket_capacity).
  std::size_t tenant_bucket_count() const;

  const cache::ResultCache* cache() const { return cache_.get(); }
  std::size_t pool_width() const { return pool_->worker_count(); }

 private:
  void dispatcher_loop();
  void finish_running_marker(const std::shared_ptr<detail::JobState>& state);
  // Requires mutex_ held.
  void memo_insert_locked(const cache::Digest& digest, const eval::SuiteResult& result);
  // Requires mutex_ held. Sheds idle buckets, then enforces the hard cap.
  void prune_buckets_locked(double now);
  double now() const { return clock_(); }

  ServerConfig config_;
  std::function<double()> clock_;
  std::shared_ptr<cache::ResultCache> cache_;
  std::unique_ptr<util::ThreadPool> pool_;
  // The one engine every computation runs through; its request is swapped
  // per job by the (single) dispatcher thread.
  eval::EvalEngine engine_;

  mutable std::mutex mutex_;
  std::condition_variable cv_queue_;  // dispatcher wakeup
  std::condition_variable cv_idle_;   // drain() wakeup
  std::deque<std::shared_ptr<detail::JobState>> queue_;
  // Digest -> queued-or-running computation (coalescing attach point).
  std::map<cache::Digest, std::shared_ptr<detail::JobState>> inflight_;
  // Completed-result memo, most-recently-used at the front.
  std::list<std::pair<cache::Digest, eval::SuiteResult>> memo_;
  std::map<cache::Digest, std::list<std::pair<cache::Digest, eval::SuiteResult>>::iterator>
      memo_index_;
  std::map<std::string, TokenBucket> buckets_;
  ServeCounters counters_;
  std::size_t queued_units_ = 0;
  std::size_t running_units_ = 0;
  bool job_running_ = false;
  double unit_seconds_ewma_ = 0.0;
  bool accepting_ = true;
  bool stop_dispatch_ = false;
  std::uint64_t next_id_ = 1;
  std::thread dispatcher_;
};

// Content address of one job's computation: everything that determines the
// SuiteResult (model identity incl. hallucination profile, suite tasks via
// their cache seeds + prompts, result-affecting request knobs) and nothing
// that does not (threads, pool, progress, cache pointer).
cache::Digest job_digest(const llm::SimLlm& model, const eval::Suite& suite,
                         const eval::EvalRequest& request);

// Digest of a SuiteResult's deterministic verdict fields (suite, model,
// reported temperature, per-task tallies, verdict counters). Two runs of the
// same job digest to the same value at any thread count; the line protocol
// reports it so clients can check bit-identical replays.
cache::Digest verdict_digest(const eval::SuiteResult& result);

// Work units a job fans out into (temperatures x tasks x samples).
std::size_t job_units(const EvalJob& job);

}  // namespace haven::serve
