// Line protocol front end for haven::serve — one command per line on an
// istream, one reply line (or a small block) per command on an ostream.
// Drives a Server over stdin/stdout in serve_demo and the CI smoke job.
//
// Commands (case-sensitive; [k=v ...] are optional knobs):
//   SUBMIT <tenant> <model> <suite> [k=v ...]
//       -> JOB <id> queued|coalesced|done
//       -> JOB <id> rejected <reason>
//   WAIT <id>|*
//       -> RESULT <id> done pass1=<f> pass<k>=<f> candidates=<n>
//                  coalesced=<0|1> verdict=<32-hex>
//          (k = min(5, smallest per-task n): the label always names the k
//           actually reported, e.g. pass2= for the default n=2 job)
//       -> RESULT <id> failed|rejected|expired <reason>
//   ONESHOT <model> <suite> [k=v ...]
//       -> RESULT oneshot done pass1=... verdict=<32-hex>
//       (runs a fresh EvalEngine directly, bypassing the server — the
//        reference a coalesced verdict must be bit-identical to)
//   STATS   -> STATS submitted=.. admitted=.. coalesced=.. rejected=..
//              expired=.. completed=.. failed=..
//   DRAIN   -> DRAINED
//   QUIT    -> ends the session (EOF does too)
//
// Knobs: n=<samples> temps=<a,b,c> seed=<u64> tasks=<truncate suite to N>
//        sicot=<0|1> lint=<0|1> triage=<0|1> deadline=<job ms>
//        unit-deadline=<ms> budget=<sim steps> retries=<n> fail-fast=<0|1>
// Suites: machine | human | v2 | rtllm | symbolic44.
// Unknown commands/models/suites/knobs — and malformed or out-of-range knob
// values (e.g. n=abc, tasks=0) — answer "ERR <reason>" and the session
// continues.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "serve/serve.h"

namespace haven::serve {

class LineServer {
 public:
  LineServer(Server& server, std::istream& in, std::ostream& out)
      : server_(server), in_(in), out_(out) {}

  // Process commands until QUIT or EOF. Returns the number of commands
  // handled (ERR replies included).
  std::size_t run();

 private:
  void handle(const std::string& line);
  void report(std::uint64_t id, const JobTicket& ticket);

  Server& server_;
  std::istream& in_;
  std::ostream& out_;
  std::map<std::uint64_t, JobTicket> tickets_;
  std::uint64_t next_client_id_ = 1;
};

// Build an EvalJob from protocol operands. Returns false (with *error set)
// on an unknown model/suite/knob or a malformed/out-of-range knob value.
// Exposed for serve_test.
bool parse_job(const std::string& tenant, const std::string& model_name,
               const std::string& suite_name,
               const std::vector<std::string>& knobs, EvalJob* out, std::string* error);

}  // namespace haven::serve
