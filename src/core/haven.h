// HavenPipeline: the end-to-end HaVen framework (Fig 1 + Fig 2).
//
// build() runs the full data side — synthetic corpus, vanilla pairs,
// K-dataset, L-dataset, fine-tuning — producing the HaVen CodeGen-LLM from a
// base model card. generate() runs the inference side: user prompt ->
// SI-CoT prompting model -> refined prompt -> CodeGen-LLM -> Verilog.
//
// This is the library's primary public entry point; the examples and all
// benchmark binaries are built on it.
#pragma once

#include <memory>
#include <string>

#include "cot/sicot.h"
#include "dataset/mix.h"
#include "llm/finetune.h"
#include "llm/model_zoo.h"
#include "llm/simllm.h"
#include "util/rng.h"

namespace haven {

struct HavenConfig {
  std::string base_model = llm::kBaseCodeQwen;
  bool use_sicot = true;

  // Dataset pipeline scale: how many corpus files / L-exercises to actually
  // materialize. Samples are weighted so fine-tuning sees paper-scale
  // coverage (~43k vanilla / 14k K / 5k L) regardless of these knobs.
  std::size_t corpus_size = 1500;
  std::size_t l_count = 300;
  std::uint64_t seed = 0x4841'5645'4eULL;

  // Paper-scale effective counts the weights map to.
  double paper_vanilla = 43000;
  double paper_k = 14000;
  double paper_l = 5000;

  // Which dataset arms to train on (the Fig 3 / Fig 4 ablations toggle
  // these; the full HaVen uses all three = the 62k-sample recipe).
  bool train_vanilla = true;
  double k_fraction = 1.0;  // portion of the K-dataset used (Fig 4 sweep)
  double l_fraction = 1.0;  // portion of the L-dataset used (Fig 4 sweep)
};

struct HavenBuildReport {
  std::size_t corpus_files = 0;
  std::size_t vanilla_pairs = 0;       // valid (compiling) vanilla pairs
  std::size_t k_samples = 0;
  std::size_t l_samples = 0;
  std::size_t kl_samples = 0;          // combined KL dataset size
  llm::HallucinationProfile base_profile;
  llm::HallucinationProfile tuned_profile;
};

class HavenPipeline {
 public:
  // Run the dataset generation + fine-tuning flow. Deterministic for a given
  // config. Throws std::out_of_range for unknown base models.
  static HavenPipeline build(const HavenConfig& config);

  const llm::SimLlm& codegen_model() const { return codegen_; }
  const llm::SimLlm& cot_model() const { return cot_model_; }
  const HavenBuildReport& report() const { return report_; }
  const HavenConfig& config() const { return config_; }

  // End-to-end inference: SI-CoT (if enabled) then code generation.
  std::string generate(const std::string& prompt, double temperature, util::Rng& rng) const;

  // The refined prompt SI-CoT would hand to the CodeGen-LLM (for inspection
  // and the SI-CoT analysis benches).
  std::string refine_prompt(const std::string& prompt, double temperature,
                            util::Rng& rng) const;

 private:
  HavenPipeline(HavenConfig config, llm::SimLlm codegen, llm::SimLlm cot,
                HavenBuildReport report);

  HavenConfig config_;
  llm::SimLlm codegen_;
  llm::SimLlm cot_model_;
  HavenBuildReport report_;
};

// Convenience used by the benches: the fine-tuned HaVen CodeGen model (e.g.
// "HaVen-CodeQwen") for a base card, full recipe.
llm::SimLlm build_haven_model(const std::string& base_model);

}  // namespace haven
