#include "core/haven.h"

#include "dataset/corpus.h"
#include "dataset/kdataset.h"
#include "dataset/ldataset.h"
#include "dataset/vanilla.h"

namespace haven {

HavenPipeline::HavenPipeline(HavenConfig config, llm::SimLlm codegen, llm::SimLlm cot,
                             HavenBuildReport report)
    : config_(std::move(config)),
      codegen_(std::move(codegen)),
      cot_model_(std::move(cot)),
      report_(report) {}

HavenPipeline HavenPipeline::build(const HavenConfig& config) {
  const llm::ModelCard* card = llm::find_model_card(config.base_model);
  if (card == nullptr) throw std::out_of_range("unknown base model '" + config.base_model + "'");

  HavenBuildReport report;
  report.base_profile = card->profile;

  util::Rng rng(config.seed);

  // Fig 2 upper path: corpus -> vanilla pairs.
  const auto corpus = dataset::generate_corpus(config.corpus_size, rng);
  report.corpus_files = corpus.size();
  const auto vanilla_pairs = dataset::build_vanilla_pairs(corpus, rng);

  // Vanilla dataset (weighted to paper scale).
  dataset::Dataset vanilla_ds;
  {
    std::size_t compiling = 0;
    for (const auto& p : vanilla_pairs) compiling += p.compiles;
    report.vanilla_pairs = compiling;
    const double w = compiling == 0 ? 0.0 : config.paper_vanilla / static_cast<double>(compiling);
    vanilla_ds = dataset::build_vanilla_dataset(vanilla_pairs, w);
  }

  // K-dataset.
  dataset::Dataset k_ds;
  {
    util::Rng k_rng = rng.fork();
    auto k_result = dataset::build_k_dataset(vanilla_pairs, k_rng, 1.0);
    const std::size_t n = k_result.dataset.samples.size();
    const double w = n == 0 ? 0.0 : config.paper_k / static_cast<double>(n);
    for (auto& s : k_result.dataset.samples) s.weight = w;
    k_ds = std::move(k_result.dataset);
    report.k_samples = n;
  }

  // L-dataset.
  dataset::Dataset l_ds;
  {
    util::Rng l_rng = rng.fork();
    dataset::LDatasetConfig l_config;
    l_config.count = config.l_count;
    l_ds = dataset::build_l_dataset(l_config, l_rng, 1.0);
    const std::size_t n = l_ds.samples.size();
    const double w = n == 0 ? 0.0 : config.paper_l / static_cast<double>(n);
    for (auto& s : l_ds.samples) s.weight = w;
    report.l_samples = n;
  }

  // Fig 4 composition knobs + Fig 2 shuffle-combine.
  util::Rng mix_rng = rng.fork();
  mix_rng.shuffle(k_ds.samples);
  mix_rng.shuffle(l_ds.samples);
  dataset::Dataset k_part = k_ds.subset(config.k_fraction);
  dataset::Dataset l_part = l_ds.subset(config.l_fraction);
  std::vector<dataset::Dataset> parts;
  if (config.train_vanilla) parts.push_back(vanilla_ds);
  parts.push_back(k_part);
  parts.push_back(l_part);
  const dataset::Dataset kl = dataset::mix(parts, mix_rng);
  report.kl_samples = k_part.samples.size() + l_part.samples.size();

  // Fine-tune. Base models differ in how far fine-tuning can push each axis
  // (the irreducible floors): CodeQwen adapts best to engineer phrasing and
  // logic exercises, DeepSeek-Coder to general comprehension and syntax,
  // CodeLlama trails on everything — reproducing the per-base ordering the
  // paper reports (CodeQwen best on human, DeepSeek best on machine,
  // CodeLlama weakest, consistent with AutoVCoder's observation).
  llm::FineTuneConstants constants = llm::FineTuneConstants::defaults();
  auto scale_floor = [&](llm::HalluAxis a, double f) {
    constants.floor[static_cast<std::size_t>(a)] *= f;
  };
  if (card->name == llm::kBaseCodeQwen) {
    scale_floor(llm::HalluAxis::kMisalignment, 0.5);
    scale_floor(llm::HalluAxis::kLogicExpression, 0.8);
    scale_floor(llm::HalluAxis::kLogicCorner, 0.8);
    scale_floor(llm::HalluAxis::kLogicInstruction, 0.8);
  } else if (card->name == llm::kBaseDeepSeek) {
    scale_floor(llm::HalluAxis::kComprehension, 0.5);
    scale_floor(llm::HalluAxis::kKnowSyntax, 0.5);
    scale_floor(llm::HalluAxis::kKnowConvention, 0.75);
    scale_floor(llm::HalluAxis::kKnowAttribute, 0.75);
  } else if (card->name == llm::kBaseCodeLlama) {
    for (auto& f : constants.floor) f *= 1.9;
  }
  report.tuned_profile = llm::fine_tune(card->profile, kl.stats(), constants);

  // Paper naming: "HaVen-DeepSeek" rather than "HaVen-DeepSeek-Coder".
  const std::string base_short =
      card->name == "DeepSeek-Coder" ? "DeepSeek" : card->name;
  const std::string model_name = "HaVen-" + base_short;
  llm::SimLlm codegen(model_name, report.tuned_profile, card->name);
  // The CoT prompting model is the same fine-tuned model (the paper uses one
  // model for SI-CoT, fine-tuning and code generation).
  llm::SimLlm cot(model_name + "-CoT", report.tuned_profile, card->name);

  return HavenPipeline(config, std::move(codegen), std::move(cot), report);
}

std::string HavenPipeline::refine_prompt(const std::string& prompt, double temperature,
                                         util::Rng& rng) const {
  if (!config_.use_sicot) return prompt;
  cot::SiCotPipeline pipeline(&cot_model_);
  return pipeline.refine(prompt, temperature, rng).prompt;
}

std::string HavenPipeline::generate(const std::string& prompt, double temperature,
                                    util::Rng& rng) const {
  const std::string refined = refine_prompt(prompt, temperature, rng);
  llm::GenerationConfig gen;
  gen.temperature = temperature;
  return codegen_.generate(refined, gen, rng);
}

llm::SimLlm build_haven_model(const std::string& base_model) {
  HavenConfig config;
  config.base_model = base_model;
  return HavenPipeline::build(config).codegen_model();
}

}  // namespace haven
