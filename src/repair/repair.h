// haven::repair — closed-loop self-repair for generated candidates.
//
// The paper mitigates hallucinations by aligning the model itself
// (fine-tuning on the Table-II taxonomy); HDLCoRe shows the complementary
// training-free route: self-verification plus structured feedback at
// generation time. This subsystem is that loop's policy-and-feedback half:
//
//   generate --> lint/prove --> [failed?] --> distill RepairHint --> damp the
//   hinted axes --> regenerate --> simulate --> ...
//
// * FeedbackBuilder::distill turns one failed candidate's evidence — lint
//   findings (already attributed to a hallucination axis), the first sim
//   mismatch counterexample, a prove inequivalence witness, compile
//   diagnostics — into a structured RepairHint: per-axis weights plus the
//   witness text.
// * damping_for converts a hint into an llm::AxisDamping: each hinted axis's
//   probability is multiplied by (1 - efficacy * weight), modeling an LLM
//   that actually reads the feedback. An empty hint yields the identity
//   damping, which is bit-identical to an unhinted generation.
// * RepairPolicy bounds the loop: max rounds per candidate, a total
//   generation budget, stop-on-pass, and the efficacy factor. The engine
//   derives every repair round's RNG deterministically from
//   (seed, unit, attempt, round) with round 0 using the unmodified base
//   derivation — so a repair-disabled run is bit-identical to the
//   pre-repair engine, and round sequences are prefix-stable across
//   different max_rounds settings (pass@k is monotone in rounds by
//   construction). See DESIGN.md §13.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.h"
#include "llm/hallucination.h"

namespace haven::repair {

// Everything the eval engine knows about one failed candidate's verdict,
// handed to FeedbackBuilder::distill. Pointers/views are non-owning and need
// only outlive the distill call.
struct Evidence {
  bool passed = false;          // verdict passed: distills to an empty hint
  bool compile_failed = false;  // rejected by the compile gate
  bool lint_triaged = false;    // failed by a proven lint finding
  bool proven_inequiv = false;  // haven::prove found a witness
  bool sim_mismatch = false;    // the diff testbench found a counterexample
  // Lint findings of the candidate (null or empty when lint was off).
  const std::vector<lint::Finding>* findings = nullptr;
  // Failure witness text: the first diff-sim mismatch ("vector N: output
  // 'y': golden=... dut=...", interface mismatches name the port) or the
  // prove inequivalence witness assignment. Empty when neither applies.
  std::string_view fail_reason;
};

// One hinted axis: which taxonomy class the evidence implicates, how
// strongly, and why.
struct AxisHint {
  llm::HalluAxis axis = llm::HalluAxis::kKnowSyntax;
  double weight = 0.0;  // in (0, 1]: damping strength for this axis
  int findings = 0;     // lint findings attributed to this axis
  std::string detail;   // first attributed finding ("rule: message"), or ""
};

// The structured feedback for one repair round.
struct RepairHint {
  std::vector<AxisHint> axes;   // sorted by axis id; only weights > 0
  std::uint32_t axis_mask = 0;  // bit per llm::HalluAxis in `axes`
  bool compile_failed = false;
  bool lint_triaged = false;
  bool proven_inequiv = false;
  bool sim_mismatch = false;
  // First mismatch counterexample / inequivalence witness, verbatim.
  std::string counterexample;

  bool empty() const { return axes.empty(); }
  // One-line human-readable rendering for logs and progress streams.
  std::string summary() const;
};

// Distills verdict evidence into a RepairHint. Stateless; the class exists
// so callers can hold one builder per engine and future heuristics can gain
// configuration without touching call sites.
class FeedbackBuilder {
 public:
  RepairHint distill(const Evidence& evidence) const;
};

// Bounds for the per-candidate repair loop. All knobs are result-affecting:
// the engine folds them into verdict cache digests and serve::job_digest
// whenever enabled() — and into nothing when disabled, so the default policy
// leaves every digest bit-identical to the pre-repair engine.
struct RepairPolicy {
  // Repair rounds per failed candidate (0 = repair off, the default).
  int max_rounds = 0;
  // Total generations per candidate including round 0 (0 = bounded only by
  // max_rounds). A budget of 1 admits no repair rounds.
  int attempt_budget = 0;
  // Stop as soon as a round passes (default). When false the loop keeps
  // burning rounds for curve measurement; the verdict stays the first
  // passing round's (pass@k remains monotone in rounds either way).
  bool stop_on_pass = true;
  // Calibrated repair-efficacy factor in [0, 1]: how much of a hinted axis's
  // probability the feedback removes (axis scale = 1 - efficacy * weight).
  double efficacy = 0.65;

  bool enabled() const { return max_rounds > 0; }
  // Repair rounds the budget admits after `generations` completed passes.
  bool admits_round(int rounds_done, int generations) const {
    if (rounds_done >= max_rounds) return false;
    return attempt_budget <= 0 || generations < attempt_budget;
  }
};

// Convert a hint into generation-time damping:
//   scale[axis] = clamp(1 - efficacy * min(1, weight), 0, 1)
// for every hinted axis, identity elsewhere. An empty hint returns the exact
// identity damping (bit-identical generation).
llm::AxisDamping damping_for(const RepairHint& hint, double efficacy);

}  // namespace haven::repair
