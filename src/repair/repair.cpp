#include "repair/repair.h"

#include <algorithm>

#include "util/strings.h"

namespace haven::repair {

namespace {

// Per-severity evidence strength of a lint finding. Warnings and errors are
// the analyzer's real predictions; notes are style-grade observations that
// still deserve a nudge.
double finding_weight(const lint::Finding& f) {
  return f.diag.severity == verilog::Severity::kNote ? 0.3 : 1.0;
}

}  // namespace

std::string RepairHint::summary() const {
  if (empty() && counterexample.empty()) return "repair hint: (empty)";
  std::string out = "repair hint:";
  if (compile_failed) out += " compile-failed";
  if (lint_triaged) out += " lint-triaged";
  if (proven_inequiv) out += " proven-inequiv";
  if (sim_mismatch) out += " sim-mismatch";
  if (!axes.empty()) {
    out += " axes=[";
    bool first = true;
    for (const AxisHint& a : axes) {
      if (!first) out += " ";
      first = false;
      out += util::format("%s(%.2f)", llm::hallu_axis_name(a.axis).c_str(), a.weight);
      if (a.findings > 1) out += util::format("x%d", a.findings);
    }
    out += "]";
  }
  if (!counterexample.empty()) out += " witness='" + counterexample + "'";
  return out;
}

RepairHint FeedbackBuilder::distill(const Evidence& e) const {
  RepairHint hint;
  // A passing candidate has nothing to repair: the empty hint maps to the
  // identity damping, so post-pass rounds (stop_on_pass = false) regenerate
  // undamped.
  if (e.passed) return hint;

  hint.compile_failed = e.compile_failed;
  hint.lint_triaged = e.lint_triaged;
  hint.proven_inequiv = e.proven_inequiv;
  hint.sim_mismatch = e.sim_mismatch;

  double weight[llm::kNumHalluAxes] = {};
  int count[llm::kNumHalluAxes] = {};
  std::string detail[llm::kNumHalluAxes];
  auto bump = [&](llm::HalluAxis axis, double w, const std::string& why) {
    const int a = static_cast<int>(axis);
    weight[a] = std::max(weight[a], w);
    if (detail[a].empty() && !why.empty()) detail[a] = why;
  };

  // Lint findings carry the sharpest attribution: each is already keyed to a
  // Table-II axis by the rule that produced it.
  bool lint_attributed = false;
  if (e.findings != nullptr) {
    for (const lint::Finding& f : *e.findings) {
      const double w = finding_weight(f);
      lint_attributed |= w >= 1.0;
      ++count[static_cast<int>(f.axis)];
      bump(f.axis, w, f.diag.rule + ": " + f.diag.message);
    }
  }

  // A compile failure without an attributed syntax finding (lint off) is
  // still a syntax-class signal.
  if (e.compile_failed && weight[static_cast<int>(llm::HalluAxis::kKnowSyntax)] <= 0.0) {
    bump(llm::HalluAxis::kKnowSyntax, 1.0, "candidate does not compile");
  }

  // Failure witness: the first sim mismatch counterexample or the prove
  // inequivalence witness. Interface trouble (the diff harness names the
  // offending port) reads as misalignment; a concrete value miscompare
  // without lint attribution implicates the logic axes first, the symbolic
  // misread axes second.
  if (!e.fail_reason.empty()) {
    hint.counterexample.assign(e.fail_reason.data(), e.fail_reason.size());
    if (hint.counterexample.find("port") != std::string::npos) {
      bump(llm::HalluAxis::kMisalignment, 1.0, "interface mismatch: " + hint.counterexample);
      bump(llm::HalluAxis::kComprehension, 0.5, "interface mismatch");
    } else if (!lint_attributed) {
      bump(llm::HalluAxis::kLogicExpression, 0.6, "value miscompare: " + hint.counterexample);
      bump(llm::HalluAxis::kLogicCorner, 0.6, "");
      bump(llm::HalluAxis::kLogicInstruction, 0.6, "");
      bump(llm::HalluAxis::kSymTruthTable, 0.4, "");
      bump(llm::HalluAxis::kSymWaveform, 0.4, "");
      bump(llm::HalluAxis::kSymStateDiagram, 0.4, "");
    }
  } else if ((e.sim_mismatch || e.proven_inequiv) && !lint_attributed) {
    // Functional failure with neither witness text nor lint attribution:
    // same logic-first nudge, no detail to quote.
    bump(llm::HalluAxis::kLogicExpression, 0.6, "functional mismatch");
    bump(llm::HalluAxis::kLogicCorner, 0.6, "");
    bump(llm::HalluAxis::kLogicInstruction, 0.6, "");
  }

  for (int a = 0; a < llm::kNumHalluAxes; ++a) {
    if (weight[a] <= 0.0) continue;
    AxisHint ah;
    ah.axis = static_cast<llm::HalluAxis>(a);
    ah.weight = std::min(1.0, weight[a]);
    ah.findings = count[a];
    ah.detail = std::move(detail[a]);
    hint.axes.push_back(std::move(ah));
    hint.axis_mask |= std::uint32_t{1} << a;
  }
  return hint;
}

llm::AxisDamping damping_for(const RepairHint& hint, double efficacy) {
  llm::AxisDamping damping;  // identity
  const double e = std::clamp(efficacy, 0.0, 1.0);
  for (const AxisHint& a : hint.axes) {
    damping.set(a.axis, std::clamp(1.0 - e * std::min(1.0, a.weight), 0.0, 1.0));
  }
  return damping;
}

}  // namespace haven::repair
