// SI-CoT: Symbolic-Interpretation Chain-of-Thought (Section III-B, Fig 1).
//
// Step 1  Identify symbolic components (structural detection).
// Step 2  Parse regular modalities (truth tables, waveform charts) with an
//         external parser; interpret state diagrams with the *CoT prompting
//         model* (an LLM — in HaVen the same base model as the CodeGen-LLM),
//         which can itself misinterpret the diagram, albeit at a reduced
//         rate thanks to the structured prompt template.
// Step 3  Add a module header if the instruction lacks one.
//
// The refined prompt replaces the raw symbolic payload with the Table III
// natural-language interpretation, so the CodeGen-LLM's symbolic
// hallucination axes never apply to it.
#pragma once

#include <string>

#include "llm/simllm.h"
#include "symbolic/modality.h"
#include "util/rng.h"

namespace haven::cot {

struct SiCotResult {
  std::string prompt;       // refined (or original) prompt
  bool transformed = false; // any interpretation applied
  bool header_added = false;
  symbolic::Modality modality = symbolic::Modality::kNone;
};

class SiCotPipeline {
 public:
  // `cot_model` interprets state diagrams; it must outlive the pipeline.
  // `interpretation_scale` is the factor applied to the CoT model's
  // sym_state_diagram axis (structured prompting reduces misreads).
  explicit SiCotPipeline(const llm::SimLlm* cot_model, double interpretation_scale = 0.35);

  SiCotResult refine(const std::string& prompt, double temperature, util::Rng& rng) const;

 private:
  const llm::SimLlm* cot_model_;
  double interpretation_scale_;
};

}  // namespace haven::cot
