#include "cot/sicot.h"

#include <algorithm>

#include "llm/spec_parser.h"
#include "symbolic/state_diagram.h"
#include "symbolic/truth_table_text.h"
#include "symbolic/waveform.h"
#include "util/strings.h"

namespace haven::cot {

using symbolic::Modality;

namespace {

// Is this line part of a raw symbolic payload (to be replaced)?
bool is_symbolic_payload_line(const std::string& line, Modality m) {
  const std::string t(util::trim(line));
  if (t.empty()) return false;
  switch (m) {
    case Modality::kStateDiagram:
      return t.find("->") != std::string::npos && t.find('[') != std::string::npos;
    case Modality::kWaveform: {
      const std::size_t colon = t.find(':');
      if (colon == std::string::npos) return false;
      const auto vals = util::split_ws(t.substr(colon + 1));
      return !vals.empty() && std::all_of(vals.begin(), vals.end(), [](const std::string& v) {
        return std::all_of(v.begin(), v.end(),
                           [](char c) { return c >= '0' && c <= '9'; });
      });
    }
    case Modality::kTruthTable: {
      const auto fields = util::split_ws(t);
      if (fields.size() < 2) return false;
      const bool all_bits = std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
        return f == "0" || f == "1" || f == "x" || f == "X" || f == "-";
      });
      if (all_bits) return true;
      // Header row: short identifiers only, and not a sentence (no common
      // English function words).
      const bool all_idents =
          std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
            return util::is_identifier(f) && f.size() <= 12;
          });
      if (!all_idents) return false;
      for (const auto& f : fields) {
        const std::string lower = util::to_lower(f);
        if (lower == "the" || lower == "implement" || lower == "below" || lower == "module") {
          return false;
        }
      }
      return true;
    }
    case Modality::kNone:
      return false;
  }
  return false;
}

std::string strip_payload(const std::string& prompt, Modality m) {
  std::string out;
  bool in_payload = false;
  for (const auto& line : util::split_lines(prompt)) {
    if (is_symbolic_payload_line(line, m)) {
      in_payload = true;
      continue;
    }
    // time(ns) row of a waveform has "time" prefix — also payload.
    if (m == Modality::kWaveform && util::starts_with(util::trim(line), "time")) continue;
    (void)in_payload;
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace

SiCotPipeline::SiCotPipeline(const llm::SimLlm* cot_model, double interpretation_scale)
    : cot_model_(cot_model), interpretation_scale_(interpretation_scale) {}

SiCotResult SiCotPipeline::refine(const std::string& prompt, double temperature,
                                  util::Rng& rng) const {
  SiCotResult result;
  result.prompt = prompt;

  // Step 1: identify symbolic components. Already-interpreted prompts pass
  // through (they carry no raw payload to translate).
  if (symbolic::is_interpreted(prompt)) return result;
  result.modality = symbolic::detect_modality(prompt);

  std::string interpreted_block;
  switch (result.modality) {
    case Modality::kTruthTable: {
      // Step 2a: regular modality — external parser.
      auto parsed = symbolic::parse_truth_table(prompt);
      if (parsed.table) {
        interpreted_block = symbolic::interpret_truth_table(*parsed.table);
      }
      break;
    }
    case Modality::kWaveform: {
      auto parsed = symbolic::parse_waveform(prompt);
      if (parsed.waveform) {
        interpreted_block = symbolic::interpret_waveform(*parsed.waveform);
      }
      break;
    }
    case Modality::kStateDiagram: {
      // Step 2b: the CoT prompting model interprets the diagram; it can
      // misread it (reduced rate thanks to the structured template).
      std::string block;
      for (const auto& line : util::split_lines(prompt)) {
        if (line.find("->") != std::string::npos && line.find('[') != std::string::npos) {
          block += line + "\n";
        }
      }
      auto parsed = symbolic::parse_state_diagram(block);
      if (parsed.diagram) {
        symbolic::StateDiagram sd = *parsed.diagram;
        // The structured template reduces the CoT model's misread rate; how
        // much also depends on its alignment with the rule format.
        const double align =
            cot_model_ == nullptr
                ? 1.0
                : std::clamp(0.3 + 2.2 * cot_model_->profile().misalignment, 0.45, 1.1);
        if (cot_model_ != nullptr &&
            cot_model_->draw_axis(llm::HalluAxis::kSymStateDiagram, prompt, 0.5, temperature,
                                  rng, interpretation_scale_ * align)) {
          sd = llm::corrupt_state_diagram(sd, rng);
        }
        interpreted_block = symbolic::interpret_state_diagram(sd);
      }
      break;
    }
    case Modality::kNone:
      break;
  }

  std::string refined = prompt;
  if (!interpreted_block.empty()) {
    refined = strip_payload(prompt, result.modality);
    // Insert the interpretation where the payload used to be (append keeps
    // the leading task sentence first, trailing header last).
    const auto header = llm::extract_header_line(refined);
    if (header) {
      const std::size_t pos = refined.find(*header);
      refined = refined.substr(0, pos) + interpreted_block + refined.substr(pos);
    } else {
      refined += interpreted_block;
    }
    result.transformed = true;
  }

  // Step 3: add a module header when missing, derived from the (refined)
  // instruction's semantics.
  if (!llm::extract_header_line(refined)) {
    llm::ParsedInstruction reparsed = llm::parse_instruction(refined);
    if (reparsed.ok()) {
      refined += reparsed.spec->header_line() + "\n";
      result.header_added = true;
      result.transformed = true;
    }
  }

  result.prompt = std::move(refined);
  return result;
}

}  // namespace haven::cot
