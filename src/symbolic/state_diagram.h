// Moore state-diagram model with the textual notation used throughout the
// paper (Table II / Table III):
//
//   A[out=0]-[x=0]->B
//   A[out=0]-[x=1]->A
//   B[out=1]-[x=0]->A
//   B[out=1]-[x=1]->B
//
// Each line: FROM[out=V]-[IN=V]->TO. One 1-bit input variable and one 1-bit
// Moore output. The model supports parsing the notation, rendering it,
// producing the SI-CoT natural-language interpretation (Table III), random
// generation for task/dataset synthesis, and reference simulation.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace haven::symbolic {

struct StateDiagram {
  // State names in declaration order; index is the encoding used by the
  // generated Verilog.
  std::vector<std::string> states;
  // Moore output per state (parallel to `states`).
  std::vector<int> outputs;
  // next_state[s][v] = state index after reading input value v in state s.
  std::vector<std::array<int, 2>> next_state;
  std::string input_name = "x";
  std::string output_name = "out";
  int reset_state = 0;

  std::size_t num_states() const { return states.size(); }
  int state_index(const std::string& name) const;  // -1 if unknown

  // Minimum register width to hold all states.
  int state_bits() const;

  // Reference semantics: next state / output.
  int step(int state, int input_value) const { return next_state[static_cast<std::size_t>(state)][input_value]; }
  int output_of(int state) const { return outputs[static_cast<std::size_t>(state)]; }

  // Structural validity: nonempty, all transitions in range, outputs 0/1.
  bool valid() const;

  // Behavioural equivalence from the reset states (product construction over
  // reachable pairs). Diagrams may have different state names/encodings.
  bool equivalent(const StateDiagram& other) const;
};

// --- notation ----------------------------------------------------------------

// Render to the paper's notation, one transition per line.
std::string render_state_diagram(const StateDiagram& sd);

struct StateDiagramParseResult {
  std::optional<StateDiagram> diagram;
  std::string error;
};

// Parse the notation. Tolerates whitespace; requires every state to have a
// transition for both input values.
StateDiagramParseResult parse_state_diagram(const std::string& text);

// SI-CoT interpretation (Table III right column):
//   States&Outputs: 1. state A(out=0); 2. state B(out=1)
//   State transition:
//   1. From state A: If x = 0, then transit to state B; If x = 1, ...
std::string interpret_state_diagram(const StateDiagram& sd);

// Parse the *interpreted* form back into a diagram (the CodeGen-LLM's view
// of a SI-CoT refined prompt).
StateDiagramParseResult parse_interpreted_state_diagram(const std::string& text);

// --- generation ----------------------------------------------------------------

struct StateDiagramGenConfig {
  int min_states = 2;
  int max_states = 5;
  std::string input_name = "x";
  std::string output_name = "out";
};

// Random strongly-connected-ish diagram: every state reachable from reset.
StateDiagram generate_state_diagram(util::Rng& rng, const StateDiagramGenConfig& config = {});

}  // namespace haven::symbolic
