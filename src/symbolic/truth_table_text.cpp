#include "symbolic/truth_table_text.h"

#include <algorithm>

#include "util/strings.h"

namespace haven::symbolic {

using logic::Tri;
using logic::TruthTable;

std::string render_truth_table(const TruthTable& tt) {
  std::string out = util::join(tt.inputs(), " ") + " " + tt.output() + "\n";
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    // Display convention: the leftmost column is the first input; row bits
    // are LSB-first internally, so bit i belongs to column i.
    for (std::size_t i = 0; i < tt.num_inputs(); ++i) {
      out += ((a >> i) & 1u) ? "1 " : "0 ";
    }
    const Tri v = tt.row(a);
    out += v == Tri::kTrue ? "1" : (v == Tri::kFalse ? "0" : "x");
    out += "\n";
  }
  return out;
}

TruthTableParseResult parse_truth_table(const std::string& text) {
  TruthTableParseResult result;
  std::vector<std::string> header;
  std::vector<std::pair<std::uint32_t, Tri>> rows;
  bool in_table = false;

  for (const auto& raw_line : util::split_lines(text)) {
    const auto fields = util::split_ws(raw_line);
    if (fields.empty()) {
      if (in_table) break;  // blank line after the table ends it
      continue;
    }
    const bool all_bits = std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
      return f == "0" || f == "1" || f == "x" || f == "X" || f == "-";
    });
    if (!in_table) {
      // Header: two or more identifiers.
      if (fields.size() >= 2 && std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
            return util::is_identifier(f);
          })) {
        header = fields;
        in_table = true;
      }
      continue;
    }
    if (!all_bits || fields.size() != header.size()) {
      if (rows.empty()) {
        result.error = "row arity mismatch after header";
        return result;
      }
      break;  // trailing prose after the table
    }
    std::uint32_t assignment = 0;
    for (std::size_t i = 0; i + 1 < fields.size(); ++i) {
      if (fields[i] == "x" || fields[i] == "X" || fields[i] == "-") {
        result.error = "don't-care input bits are not supported";
        return result;
      }
      if (fields[i] == "1") assignment |= (1u << i);
    }
    const std::string& out_field = fields.back();
    const Tri v = out_field == "1" ? Tri::kTrue
                  : (out_field == "0" ? Tri::kFalse : Tri::kDontCare);
    rows.emplace_back(assignment, v);
  }

  if (header.size() < 2) {
    result.error = "no truth table header found";
    return result;
  }
  if (rows.empty()) {
    result.error = "header without any value rows";
    return result;
  }
  if (header.size() > 17) {
    result.error = "too many columns";
    return result;
  }
  std::vector<std::string> inputs(header.begin(), header.end() - 1);
  TruthTable tt(inputs, header.back());
  // Unlisted rows are don't-care (partially specified tables are common in
  // exercises, cf. the "partially omitted" note in Table II).
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) tt.set_row(a, Tri::kDontCare);
  for (const auto& [assignment, v] : rows) {
    if (assignment >= tt.num_rows()) {
      result.error = "row out of range";
      return result;
    }
    tt.set_row(assignment, v);
  }
  result.table = std::move(tt);
  return result;
}

std::string interpret_truth_table(const TruthTable& tt) {
  std::string out = "Variables: ";
  for (std::size_t i = 0; i < tt.num_inputs(); ++i) {
    out += util::format("%zu. %s(input); ", i + 1, tt.inputs()[i].c_str());
  }
  out += util::format("%zu. %s(output)\n", tt.num_inputs() + 1, tt.output().c_str());
  out += "Rules: ";
  std::size_t rule = 0;
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    if (tt.row(a) == logic::Tri::kDontCare) continue;
    ++rule;
    out += util::format("%zu. If ", rule);
    for (std::size_t i = 0; i < tt.num_inputs(); ++i) {
      out += util::format("%s=%u, ", tt.inputs()[i].c_str(), (a >> i) & 1u);
    }
    out += util::format("then %s=%d; ", tt.output().c_str(),
                        tt.row(a) == logic::Tri::kTrue ? 1 : 0);
  }
  out += "\n";
  return out;
}

TruthTableParseResult parse_interpreted_truth_table(const std::string& text) {
  TruthTableParseResult result;
  std::vector<std::string> inputs;
  std::string output;

  // Variables line.
  const std::size_t vars_kw = text.find("Variables:");
  if (vars_kw == std::string::npos) {
    result.error = "no Variables line";
    return result;
  }
  const std::size_t vars_end = text.find('\n', vars_kw);
  const std::string vars_line =
      text.substr(vars_kw, (vars_end == std::string::npos ? text.size() : vars_end) - vars_kw);
  for (const std::string& entry : util::split(vars_line, ';')) {
    const std::size_t lp = entry.find('(');
    const std::size_t rp = entry.find(')', lp);
    if (lp == std::string::npos || rp == std::string::npos) continue;
    // Name is the last word before '('.
    const std::string before = entry.substr(0, lp);
    const auto words = util::split_ws(before);
    if (words.empty()) continue;
    std::string name = words.back();
    // Strip a leading "N." ordinal glued to the name if present.
    const std::size_t dot = name.rfind('.');
    if (dot != std::string::npos) name = name.substr(dot + 1);
    const std::string role = entry.substr(lp + 1, rp - lp - 1);
    if (role == "input") inputs.push_back(name);
    else if (role == "output") output = name;
  }
  if (inputs.empty() || output.empty()) {
    result.error = "could not extract variables";
    return result;
  }
  if (inputs.size() > 16) {
    result.error = "too many inputs";
    return result;
  }

  logic::TruthTable tt(inputs, output);
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) tt.set_row(a, Tri::kDontCare);

  // Rules: "If a=0, b=1, then out=0;" possibly many per line.
  std::size_t pos = text.find("Rules:");
  if (pos == std::string::npos) {
    result.error = "no Rules section";
    return result;
  }
  while (true) {
    const std::size_t if_kw = text.find("If ", pos);
    if (if_kw == std::string::npos) break;
    const std::size_t then_kw = text.find("then", if_kw);
    if (then_kw == std::string::npos) break;
    // Input bindings between If and then.
    std::uint32_t assignment = 0;
    bool bad = false;
    std::vector<bool> bound(inputs.size(), false);
    for (const std::string& binding :
         util::split(text.substr(if_kw + 3, then_kw - if_kw - 3), ',')) {
      const std::size_t eq = binding.find('=');
      if (eq == std::string::npos) continue;
      const std::string name(util::trim(binding.substr(0, eq)));
      const std::string val(util::trim(binding.substr(eq + 1)));
      const auto it = std::find(inputs.begin(), inputs.end(), name);
      if (it == inputs.end()) {
        bad = true;
        break;
      }
      const std::size_t idx = static_cast<std::size_t>(it - inputs.begin());
      bound[idx] = true;
      if (val == "1") assignment |= (1u << idx);
    }
    // Output binding after then: "out=V".
    const std::size_t eq = text.find('=', then_kw);
    std::size_t end = eq + 1;
    while (end < text.size() && (text[end] == ' ')) ++end;
    const char out_ch = end < text.size() ? text[end] : '?';
    if (!bad && eq != std::string::npos && (out_ch == '0' || out_ch == '1') &&
        std::all_of(bound.begin(), bound.end(), [](bool b) { return b; })) {
      tt.set_row(assignment, out_ch == '1');
    }
    pos = then_kw + 4;
  }

  // Require at least one defined row.
  if (tt.minterms().empty() && tt.dont_cares().size() == tt.num_rows()) {
    result.error = "no rules parsed";
    return result;
  }
  result.table = std::move(tt);
  return result;
}

}  // namespace haven::symbolic
