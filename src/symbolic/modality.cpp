#include "symbolic/modality.h"

#include <algorithm>

#include "util/strings.h"

namespace haven::symbolic {

std::string modality_name(Modality m) {
  switch (m) {
    case Modality::kNone: return "none";
    case Modality::kTruthTable: return "truth_table";
    case Modality::kWaveform: return "waveform";
    case Modality::kStateDiagram: return "state_diagram";
  }
  return "?";
}

Modality detect_modality(const std::string& prompt) {
  int diagram_lines = 0, waveform_lines = 0;
  bool saw_time_row = false;

  const auto lines = util::split_lines(prompt);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string line(util::trim(lines[li]));
    if (line.empty()) continue;
    // State diagram: FROM[..]-[..]->TO
    if (line.find("->") != std::string::npos && line.find('[') != std::string::npos &&
        line.find(']') != std::string::npos) {
      ++diagram_lines;
      continue;
    }
    // Waveform: "name: v v v ..." with >= 2 numeric samples.
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos && colon > 0) {
      const std::string name(util::trim(line.substr(0, colon)));
      const auto vals = util::split_ws(line.substr(colon + 1));
      const bool numeric = vals.size() >= 2 &&
                           std::all_of(vals.begin(), vals.end(), [](const std::string& v) {
                             return std::all_of(v.begin(), v.end(), [](char c) {
                               return c >= '0' && c <= '9';
                             });
                           });
      if (numeric && util::starts_with(name, "time")) {
        saw_time_row = true;
        ++waveform_lines;
        continue;
      }
      if (numeric && util::is_identifier(name)) {
        ++waveform_lines;
        continue;
      }
    }
  }
  if (diagram_lines >= 2) return Modality::kStateDiagram;
  if (waveform_lines >= 2 && (saw_time_row || waveform_lines >= 3)) return Modality::kWaveform;

  // Truth table: a header of >=2 identifiers followed directly by a 0/1 row
  // of the same arity.
  for (std::size_t li = 0; li + 1 < lines.size(); ++li) {
    const auto header = util::split_ws(lines[li]);
    if (header.size() < 2) continue;
    if (!std::all_of(header.begin(), header.end(),
                     [](const std::string& f) { return util::is_identifier(f); })) {
      continue;
    }
    // Reject lines that are prose: all fields must be short names.
    if (!std::all_of(header.begin(), header.end(),
                     [](const std::string& f) { return f.size() <= 12; })) {
      continue;
    }
    const auto row = util::split_ws(lines[li + 1]);
    if (row.size() != header.size()) continue;
    if (std::all_of(row.begin(), row.end(), [](const std::string& f) {
          return f == "0" || f == "1" || f == "x" || f == "X" || f == "-";
        })) {
      return Modality::kTruthTable;
    }
  }
  return Modality::kNone;
}

bool is_interpreted(const std::string& prompt) {
  return (prompt.find("Rules:") != std::string::npos &&
          prompt.find("Variables:") != std::string::npos) ||
         prompt.find("State transition:") != std::string::npos;
}

}  // namespace haven::symbolic
