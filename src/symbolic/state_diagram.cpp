#include "symbolic/state_diagram.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace haven::symbolic {

int StateDiagram::state_index(const std::string& name) const {
  const auto it = std::find(states.begin(), states.end(), name);
  return it == states.end() ? -1 : static_cast<int>(it - states.begin());
}

int StateDiagram::state_bits() const {
  int bits = 1;
  while ((std::size_t{1} << bits) < states.size()) ++bits;
  return bits;
}

bool StateDiagram::valid() const {
  const std::size_t n = states.size();
  if (n == 0 || outputs.size() != n || next_state.size() != n) return false;
  if (reset_state < 0 || static_cast<std::size_t>(reset_state) >= n) return false;
  std::set<std::string> seen;
  for (const auto& s : states) {
    if (!util::is_identifier(s) || !seen.insert(s).second) return false;
  }
  for (int o : outputs) {
    if (o != 0 && o != 1) return false;
  }
  for (const auto& t : next_state) {
    for (int v : {0, 1}) {
      if (t[static_cast<std::size_t>(v)] < 0 ||
          static_cast<std::size_t>(t[static_cast<std::size_t>(v)]) >= n) {
        return false;
      }
    }
  }
  return true;
}

bool StateDiagram::equivalent(const StateDiagram& other) const {
  if (!valid() || !other.valid()) return false;
  // BFS over reachable state pairs from the two reset states.
  std::set<std::pair<int, int>> visited;
  std::vector<std::pair<int, int>> queue = {{reset_state, other.reset_state}};
  while (!queue.empty()) {
    const auto [a, b] = queue.back();
    queue.pop_back();
    if (!visited.insert({a, b}).second) continue;
    if (output_of(a) != other.output_of(b)) return false;
    for (int v : {0, 1}) {
      queue.emplace_back(step(a, v), other.step(b, v));
    }
  }
  return true;
}

std::string render_state_diagram(const StateDiagram& sd) {
  std::string out;
  for (std::size_t s = 0; s < sd.states.size(); ++s) {
    for (int v : {0, 1}) {
      out += util::format("%s[%s=%d]-[%s=%d]->%s\n", sd.states[s].c_str(),
                          sd.output_name.c_str(), sd.outputs[s], sd.input_name.c_str(), v,
                          sd.states[static_cast<std::size_t>(sd.step(static_cast<int>(s), v))].c_str());
    }
  }
  return out;
}

StateDiagramParseResult parse_state_diagram(const std::string& text) {
  StateDiagramParseResult result;
  StateDiagram sd;
  sd.input_name.clear();
  sd.output_name.clear();

  struct RawTransition {
    std::string from, to;
    int out_value = 0, in_value = 0;
  };
  std::vector<RawTransition> raw;

  for (const std::string& line_str : util::split_lines(text)) {
    const std::string line(util::trim(line_str));
    if (line.empty()) continue;
    // FROM[out=V]-[in=V]->TO
    const std::size_t lb1 = line.find('[');
    const std::size_t rb1 = line.find(']', lb1);
    const std::size_t dash = line.find("-[", rb1);
    const std::size_t rb2 = line.find(']', dash);
    const std::size_t arrow = line.find("->", rb2);
    if (lb1 == std::string::npos || rb1 == std::string::npos || dash == std::string::npos ||
        rb2 == std::string::npos || arrow == std::string::npos) {
      result.error = "malformed transition line: " + line;
      return result;
    }
    RawTransition t;
    t.from = std::string(util::trim(line.substr(0, lb1)));
    t.to = std::string(util::trim(line.substr(arrow + 2)));
    auto parse_binding = [&](std::string_view binding, std::string* name, int* value) {
      const std::size_t eq = binding.find('=');
      if (eq == std::string_view::npos) return false;
      *name = std::string(util::trim(binding.substr(0, eq)));
      const std::string_view v = util::trim(binding.substr(eq + 1));
      if (v == "0") *value = 0;
      else if (v == "1") *value = 1;
      else return false;
      return true;
    };
    std::string out_name, in_name;
    if (!parse_binding(line.substr(lb1 + 1, rb1 - lb1 - 1), &out_name, &t.out_value) ||
        !parse_binding(line.substr(dash + 2, rb2 - dash - 2), &in_name, &t.in_value)) {
      result.error = "malformed binding in line: " + line;
      return result;
    }
    if (!util::is_identifier(t.from) || !util::is_identifier(t.to)) {
      result.error = "bad state name in line: " + line;
      return result;
    }
    if (sd.output_name.empty()) sd.output_name = out_name;
    if (sd.input_name.empty()) sd.input_name = in_name;
    if (out_name != sd.output_name || in_name != sd.input_name) {
      result.error = "inconsistent signal names in line: " + line;
      return result;
    }
    raw.push_back(std::move(t));
  }
  if (raw.empty()) {
    result.error = "no transitions found";
    return result;
  }

  // Collect states in first-appearance order.
  auto intern = [&](const std::string& name) {
    int idx = sd.state_index(name);
    if (idx < 0) {
      idx = static_cast<int>(sd.states.size());
      sd.states.push_back(name);
      sd.outputs.push_back(0);
      sd.next_state.push_back({-1, -1});
    }
    return idx;
  };
  std::vector<bool> out_known;
  for (const auto& t : raw) {
    const int from = intern(t.from);
    const int to = intern(t.to);
    out_known.resize(sd.states.size(), false);
    if (out_known[static_cast<std::size_t>(from)] &&
        sd.outputs[static_cast<std::size_t>(from)] != t.out_value) {
      result.error = "conflicting outputs for state " + t.from;
      return result;
    }
    sd.outputs[static_cast<std::size_t>(from)] = t.out_value;
    out_known[static_cast<std::size_t>(from)] = true;
    int& slot = sd.next_state[static_cast<std::size_t>(from)][static_cast<std::size_t>(t.in_value)];
    if (slot >= 0 && slot != to) {
      result.error = util::format("duplicate transition from %s on %s=%d", t.from.c_str(),
                                  sd.input_name.c_str(), t.in_value);
      return result;
    }
    slot = to;
  }
  for (std::size_t s = 0; s < sd.states.size(); ++s) {
    for (int v : {0, 1}) {
      if (sd.next_state[s][static_cast<std::size_t>(v)] < 0) {
        result.error = util::format("state %s has no transition for %s=%d",
                                    sd.states[s].c_str(), sd.input_name.c_str(), v);
        return result;
      }
    }
  }
  sd.reset_state = 0;
  result.diagram = std::move(sd);
  return result;
}

std::string interpret_state_diagram(const StateDiagram& sd) {
  std::string out = "States&Outputs: ";
  for (std::size_t s = 0; s < sd.states.size(); ++s) {
    out += util::format("%zu. state %s(%s=%d)", s + 1, sd.states[s].c_str(),
                        sd.output_name.c_str(), sd.outputs[s]);
    out += s + 1 < sd.states.size() ? "; " : "\n";
  }
  out += "State transition:\n";
  for (std::size_t s = 0; s < sd.states.size(); ++s) {
    out += util::format("%zu. From state %s: ", s + 1, sd.states[s].c_str());
    for (int v : {0, 1}) {
      out += util::format("If %s = %d, then transit to state %s", sd.input_name.c_str(), v,
                          sd.states[static_cast<std::size_t>(sd.step(static_cast<int>(s), v))].c_str());
      out += v == 0 ? "; " : "\n";
    }
  }
  out += util::format("The reset state is %s.\n", sd.states[static_cast<std::size_t>(sd.reset_state)].c_str());
  return out;
}

StateDiagramParseResult parse_interpreted_state_diagram(const std::string& text) {
  StateDiagramParseResult result;
  StateDiagram sd;
  sd.output_name.clear();
  sd.input_name.clear();

  const auto lines = util::split_lines(text);
  // Pass 1: the States&Outputs line.
  for (const auto& raw_line : lines) {
    const std::string line(util::trim(raw_line));
    if (!util::starts_with(line, "States&Outputs:")) continue;
    std::string rest = line.substr(std::string("States&Outputs:").size());
    for (const std::string& part : util::split(rest, ';')) {
      // "1. state A(out=0)"
      const std::size_t state_kw = part.find("state ");
      const std::size_t lp = part.find('(', state_kw);
      const std::size_t eq = part.find('=', lp);
      const std::size_t rp = part.find(')', eq);
      if (state_kw == std::string::npos || lp == std::string::npos ||
          eq == std::string::npos || rp == std::string::npos) {
        result.error = "malformed state entry: " + part;
        return result;
      }
      const std::string name(util::trim(part.substr(state_kw + 6, lp - state_kw - 6)));
      const std::string out_name(util::trim(part.substr(lp + 1, eq - lp - 1)));
      const std::string out_val(util::trim(part.substr(eq + 1, rp - eq - 1)));
      if (sd.output_name.empty()) sd.output_name = out_name;
      sd.states.push_back(name);
      sd.outputs.push_back(out_val == "1" ? 1 : 0);
      sd.next_state.push_back({-1, -1});
    }
  }
  if (sd.states.empty()) {
    result.error = "no States&Outputs line";
    return result;
  }

  // Pass 2: transition lines "N. From state A: If x = 0, then transit to
  // state B; If x = 1, then transit to state A".
  for (const auto& raw_line : lines) {
    const std::string line(util::trim(raw_line));
    const std::size_t from_kw = line.find("From state ");
    if (from_kw == std::string::npos) continue;
    const std::size_t colon = line.find(':', from_kw);
    if (colon == std::string::npos) continue;
    const std::string from_name(
        util::trim(line.substr(from_kw + 11, colon - from_kw - 11)));
    const int from = sd.state_index(from_name);
    if (from < 0) {
      result.error = "transition from unknown state " + from_name;
      return result;
    }
    std::size_t pos = colon;
    while (true) {
      const std::size_t if_kw = line.find("If ", pos);
      if (if_kw == std::string::npos) break;
      const std::size_t eq = line.find('=', if_kw);
      const std::size_t comma = line.find(',', eq);
      const std::size_t to_kw = line.find("state ", comma);
      if (eq == std::string::npos || comma == std::string::npos || to_kw == std::string::npos)
        break;
      const std::string in_name(util::trim(line.substr(if_kw + 3, eq - if_kw - 3)));
      if (sd.input_name.empty()) sd.input_name = in_name;
      const std::string val_str(util::trim(line.substr(eq + 1, comma - eq - 1)));
      std::size_t to_end = to_kw + 6;
      while (to_end < line.size() && line[to_end] != ';' && line[to_end] != '.' &&
             line[to_end] != ',') {
        ++to_end;
      }
      const std::string to_name(util::trim(line.substr(to_kw + 6, to_end - to_kw - 6)));
      const int to = sd.state_index(to_name);
      const int v = val_str == "1" ? 1 : 0;
      if (to < 0) {
        result.error = "transition to unknown state " + to_name;
        return result;
      }
      sd.next_state[static_cast<std::size_t>(from)][static_cast<std::size_t>(v)] = to;
      pos = to_end;
    }
  }

  // Pass 3: reset state if declared.
  for (const auto& raw_line : lines) {
    const std::string line(util::trim(raw_line));
    const std::size_t kw = line.find("reset state is ");
    if (kw == std::string::npos) continue;
    std::size_t end = kw + 15;
    while (end < line.size() && line[end] != '.' && line[end] != ';') ++end;
    const int idx = sd.state_index(std::string(util::trim(line.substr(kw + 15, end - kw - 15))));
    if (idx >= 0) sd.reset_state = idx;
  }

  if (!sd.valid()) {
    result.error = "incomplete interpreted diagram";
    return result;
  }
  result.diagram = std::move(sd);
  return result;
}

StateDiagram generate_state_diagram(util::Rng& rng, const StateDiagramGenConfig& config) {
  StateDiagram sd;
  sd.input_name = config.input_name;
  sd.output_name = config.output_name;
  const int n = static_cast<int>(rng.uniform_int(config.min_states, config.max_states));
  static const char* kNames[] = {"A", "B", "C", "D", "E", "F", "G", "H"};
  for (int i = 0; i < n; ++i) {
    sd.states.emplace_back(kNames[i]);
    sd.outputs.push_back(static_cast<int>(rng.uniform_int(0, 1)));
    sd.next_state.push_back({0, 0});
  }
  // Guarantee reachability: state i+1 reachable from i on a random input
  // value; the other transition is uniform.
  for (int i = 0; i < n; ++i) {
    const int chain_v = static_cast<int>(rng.uniform_int(0, 1));
    const int chain_to = i + 1 < n ? i + 1 : static_cast<int>(rng.uniform_int(0, n - 1));
    sd.next_state[static_cast<std::size_t>(i)][static_cast<std::size_t>(chain_v)] = chain_to;
    sd.next_state[static_cast<std::size_t>(i)][static_cast<std::size_t>(1 - chain_v)] =
        static_cast<int>(rng.uniform_int(0, n - 1));
  }
  // Avoid the degenerate all-same-output machine (output would be constant).
  bool has0 = false, has1 = false;
  for (int o : sd.outputs) (o ? has1 : has0) = true;
  if (!has0) sd.outputs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] = 0;
  if (!has1) sd.outputs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] = 1;
  sd.reset_state = 0;
  return sd;
}

}  // namespace haven::symbolic
