// Waveform-chart modality (Table II / Table III):
//
//   a: 0 1 1 0
//   b: 1 0 1 0
//   out: 1 0 0 1
//   time(ns): 0 10 20 30
//
// For combinational specifications each column is an observation
// out[t] = f(inputs[t]). The model stores named sample rows; conversion
// to/from a (partial) logic::TruthTable gives the underlying function.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "logic/truth_table.h"
#include "util/rng.h"

namespace haven::symbolic {

struct Waveform {
  std::vector<std::string> inputs;
  std::string output = "out";
  // samples[i][t]: value of inputs[i] at column t.
  std::vector<std::vector<int>> input_samples;
  std::vector<int> output_samples;
  int time_step_ns = 10;

  std::size_t num_columns() const { return output_samples.size(); }
  bool valid() const;

  // Partial truth table defined only on observed assignments. Columns that
  // disagree (same inputs, different output) make the result nullopt.
  std::optional<logic::TruthTable> to_truth_table() const;
};

// Build a waveform observing `tt` on the given assignment sequence.
Waveform waveform_from_table(const logic::TruthTable& tt,
                             const std::vector<std::uint32_t>& columns, int time_step_ns = 10);

// Build a waveform whose columns exhaustively cover every defined row of `tt`
// in a shuffled order (the usual benchmark presentation).
Waveform waveform_covering_table(const logic::TruthTable& tt, util::Rng& rng,
                                 int time_step_ns = 10);

std::string render_waveform(const Waveform& wf);

struct WaveformParseResult {
  std::optional<Waveform> waveform;
  std::string error;
};

WaveformParseResult parse_waveform(const std::string& text);

// SI-CoT interpretation (Table III):
//   Variables: 1. a(input); 2. b(input); 3. out(output)
//   Rules: When time is 0ns, a=0, b=1, out=1; When time is 10ns, ...
std::string interpret_waveform(const Waveform& wf);

WaveformParseResult parse_interpreted_waveform(const std::string& text);

}  // namespace haven::symbolic
