// Modality detection: SI-CoT step 1 ("Identify Symbolic Components").
// Given an instruction text, decide whether it embeds a state diagram,
// truth table, or waveform chart, and locate the symbolic block.
#pragma once

#include <string>

namespace haven::symbolic {

enum class Modality : int {
  kNone = 0,
  kTruthTable,
  kWaveform,
  kStateDiagram,
};

std::string modality_name(Modality m);

// Detect the dominant symbolic modality in a prompt. Detection is purely
// structural (no task-spec knowledge): "->" transition arrows with bracketed
// bindings mean state diagram; "name: 0 1 ..." rows mean waveform; a header
// of identifiers followed by 0/1 rows means truth table.
Modality detect_modality(const std::string& prompt);

// True if the text already looks like an SI-CoT interpretation (contains the
// "Rules:" / "State transition:" structured sections) — interpreted prompts
// are not re-interpreted.
bool is_interpreted(const std::string& prompt);

}  // namespace haven::symbolic
