// Textual truth-table modality (Table I / Table III):
//
//   a b out
//   0 0 0
//   0 1 0
//   1 0 0
//   1 1 1
//
// Rendering, parsing, and the SI-CoT interpretation ("Variables: ... Rules:
// ...") over the semantic logic::TruthTable.
#pragma once

#include <optional>
#include <string>

#include "logic/truth_table.h"

namespace haven::symbolic {

// Render with rows in ascending assignment order. Columns are the table's
// inputs followed by its output name; don't-care rows render as 'x'.
std::string render_truth_table(const logic::TruthTable& tt);

struct TruthTableParseResult {
  std::optional<logic::TruthTable> table;
  std::string error;
};

// Parse the textual format. Rows may appear in any order; missing rows become
// don't-cares; 'x'/'-' output marks a don't-care.
TruthTableParseResult parse_truth_table(const std::string& text);

// SI-CoT interpretation (Table III):
//   Variables: 1. a(input); 2. b(input); 3. out(output)
//   Rules: 1. If a=0, b=0, then out=0; 2. ...
std::string interpret_truth_table(const logic::TruthTable& tt);

// Parse the interpreted "Rules:" form back into a table.
TruthTableParseResult parse_interpreted_truth_table(const std::string& text);

}  // namespace haven::symbolic
