#include "symbolic/waveform.h"

#include <algorithm>

#include "util/strings.h"

namespace haven::symbolic {

using logic::Tri;
using logic::TruthTable;

bool Waveform::valid() const {
  if (inputs.empty() || inputs.size() != input_samples.size()) return false;
  if (output_samples.empty()) return false;
  for (const auto& row : input_samples) {
    if (row.size() != output_samples.size()) return false;
    for (int v : row) {
      if (v != 0 && v != 1) return false;
    }
  }
  for (int v : output_samples) {
    if (v != 0 && v != 1) return false;
  }
  return true;
}

std::optional<TruthTable> Waveform::to_truth_table() const {
  if (!valid() || inputs.size() > 16) return std::nullopt;
  TruthTable tt(inputs, output);
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) tt.set_row(a, Tri::kDontCare);
  for (std::size_t t = 0; t < num_columns(); ++t) {
    std::uint32_t assignment = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (input_samples[i][t]) assignment |= (1u << i);
    }
    const Tri want = output_samples[t] ? Tri::kTrue : Tri::kFalse;
    const Tri have = tt.row(assignment);
    if (have != Tri::kDontCare && have != want) return std::nullopt;  // contradictory chart
    tt.set_row(assignment, want);
  }
  return tt;
}

Waveform waveform_from_table(const TruthTable& tt, const std::vector<std::uint32_t>& columns,
                             int time_step_ns) {
  Waveform wf;
  wf.inputs = tt.inputs();
  wf.output = tt.output();
  wf.time_step_ns = time_step_ns;
  wf.input_samples.assign(wf.inputs.size(), {});
  for (std::uint32_t a : columns) {
    for (std::size_t i = 0; i < wf.inputs.size(); ++i) {
      wf.input_samples[i].push_back(static_cast<int>((a >> i) & 1u));
    }
    wf.output_samples.push_back(tt.row(a) == Tri::kTrue ? 1 : 0);
  }
  return wf;
}

Waveform waveform_covering_table(const TruthTable& tt, util::Rng& rng, int time_step_ns) {
  std::vector<std::uint32_t> columns;
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    if (tt.row(a) != Tri::kDontCare) columns.push_back(a);
  }
  rng.shuffle(columns);
  return waveform_from_table(tt, columns, time_step_ns);
}

std::string render_waveform(const Waveform& wf) {
  std::string out;
  auto emit_row = [&](const std::string& name, const std::vector<int>& vals) {
    out += name + ":";
    for (int v : vals) out += util::format(" %d", v);
    out += "\n";
  };
  for (std::size_t i = 0; i < wf.inputs.size(); ++i) emit_row(wf.inputs[i], wf.input_samples[i]);
  emit_row(wf.output, wf.output_samples);
  out += "time(ns):";
  for (std::size_t t = 0; t < wf.num_columns(); ++t) {
    out += util::format(" %zu", t * static_cast<std::size_t>(wf.time_step_ns));
  }
  out += "\n";
  return out;
}

WaveformParseResult parse_waveform(const std::string& text) {
  WaveformParseResult result;
  struct Row {
    std::string name;
    std::vector<int> values;
  };
  std::vector<Row> rows;
  bool saw_time = false;
  std::vector<int> times;

  for (const auto& raw_line : util::split_lines(text)) {
    const std::string line(util::trim(raw_line));
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name(util::trim(line.substr(0, colon)));
    const auto values = util::split_ws(line.substr(colon + 1));
    if (values.empty()) continue;
    const bool numeric = std::all_of(values.begin(), values.end(), [](const std::string& v) {
      return !v.empty() && std::all_of(v.begin(), v.end(), [](char c) {
        return c >= '0' && c <= '9';
      });
    });
    if (!numeric) continue;
    if (util::starts_with(name, "time")) {
      saw_time = true;
      for (const auto& v : values) times.push_back(std::stoi(v));
      continue;
    }
    if (!util::is_identifier(name)) continue;
    Row row{std::move(name), {}};
    bool bits = true;
    for (const auto& v : values) {
      if (v != "0" && v != "1") {
        bits = false;
        break;
      }
      row.values.push_back(v == "1");
    }
    if (bits) rows.push_back(std::move(row));
  }

  if (rows.size() < 2) {
    result.error = "need at least one input row and one output row";
    return result;
  }
  Waveform wf;
  // Convention: the last signal row is the output.
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    wf.inputs.push_back(rows[i].name);
    wf.input_samples.push_back(rows[i].values);
  }
  wf.output = rows.back().name;
  wf.output_samples = rows.back().values;
  if (saw_time && times.size() >= 2) wf.time_step_ns = times[1] - times[0];
  if (!wf.valid()) {
    result.error = "inconsistent waveform row lengths";
    return result;
  }
  result.waveform = std::move(wf);
  return result;
}

std::string interpret_waveform(const Waveform& wf) {
  std::string out = "Variables: ";
  for (std::size_t i = 0; i < wf.inputs.size(); ++i) {
    out += util::format("%zu. %s(input); ", i + 1, wf.inputs[i].c_str());
  }
  out += util::format("%zu. %s(output)\n", wf.inputs.size() + 1, wf.output.c_str());
  out += "Rules: ";
  for (std::size_t t = 0; t < wf.num_columns(); ++t) {
    out += util::format("When time is %zuns, ", t * static_cast<std::size_t>(wf.time_step_ns));
    for (std::size_t i = 0; i < wf.inputs.size(); ++i) {
      out += util::format("%s=%d, ", wf.inputs[i].c_str(), wf.input_samples[i][t]);
    }
    out += util::format("%s=%d; ", wf.output.c_str(), wf.output_samples[t]);
  }
  out += "\n";
  return out;
}

WaveformParseResult parse_interpreted_waveform(const std::string& text) {
  WaveformParseResult result;
  // Reuse the truth-table "Variables:" extraction, then scan "When time is".
  std::vector<std::string> inputs;
  std::string output;
  const std::size_t vars_kw = text.find("Variables:");
  if (vars_kw == std::string::npos) {
    result.error = "no Variables line";
    return result;
  }
  const std::size_t vars_end = text.find('\n', vars_kw);
  const std::string vars_line =
      text.substr(vars_kw, (vars_end == std::string::npos ? text.size() : vars_end) - vars_kw);
  for (const std::string& entry : util::split(vars_line, ';')) {
    const std::size_t lp = entry.find('(');
    const std::size_t rp = entry.find(')', lp);
    if (lp == std::string::npos || rp == std::string::npos) continue;
    const auto words = util::split_ws(entry.substr(0, lp));
    if (words.empty()) continue;
    std::string name = words.back();
    const std::size_t dot = name.rfind('.');
    if (dot != std::string::npos) name = name.substr(dot + 1);
    const std::string role = entry.substr(lp + 1, rp - lp - 1);
    if (role == "input") inputs.push_back(name);
    else if (role == "output") output = name;
  }
  if (inputs.empty() || output.empty()) {
    result.error = "could not extract variables";
    return result;
  }

  Waveform wf;
  wf.inputs = inputs;
  wf.output = output;
  wf.input_samples.assign(inputs.size(), {});

  std::size_t pos = 0;
  int first_time = -1, second_time = -1;
  while (true) {
    const std::size_t when = text.find("When time is", pos);
    if (when == std::string::npos) break;
    std::size_t end = text.find("When time is", when + 1);
    if (end == std::string::npos) end = text.size();
    const std::string clause = text.substr(when, end - when);
    // Extract the time value.
    const std::size_t is_kw = clause.find("is");
    int t_ns = 0;
    if (is_kw != std::string::npos) {
      std::size_t p = is_kw + 2;
      while (p < clause.size() && clause[p] == ' ') ++p;
      std::string digits;
      while (p < clause.size() && std::isdigit(static_cast<unsigned char>(clause[p]))) {
        digits += clause[p++];
      }
      if (!digits.empty()) t_ns = std::stoi(digits);
    }
    if (first_time < 0) first_time = t_ns;
    else if (second_time < 0) second_time = t_ns;
    // Bindings name=value.
    std::vector<int> in_vals(inputs.size(), -1);
    int out_val = -1;
    std::size_t bp = 0;
    while (true) {
      const std::size_t eq = clause.find('=', bp);
      if (eq == std::string::npos) break;
      // Name: identifier characters immediately before '='.
      std::size_t ns = eq;
      while (ns > 0 && (std::isalnum(static_cast<unsigned char>(clause[ns - 1])) ||
                        clause[ns - 1] == '_')) {
        --ns;
      }
      const std::string name = clause.substr(ns, eq - ns);
      std::size_t vp = eq + 1;
      while (vp < clause.size() && clause[vp] == ' ') ++vp;
      const char vc = vp < clause.size() ? clause[vp] : '?';
      if (vc == '0' || vc == '1') {
        const int v = vc - '0';
        const auto it = std::find(inputs.begin(), inputs.end(), name);
        if (it != inputs.end()) in_vals[static_cast<std::size_t>(it - inputs.begin())] = v;
        else if (name == output) out_val = v;
      }
      bp = eq + 1;
    }
    const bool complete = out_val >= 0 && std::all_of(in_vals.begin(), in_vals.end(),
                                                      [](int v) { return v >= 0; });
    if (complete) {
      for (std::size_t i = 0; i < inputs.size(); ++i) wf.input_samples[i].push_back(in_vals[i]);
      wf.output_samples.push_back(out_val);
    }
    pos = end;
  }
  if (second_time > first_time && first_time >= 0) wf.time_step_ns = second_time - first_time;
  if (!wf.valid()) {
    result.error = "no complete observations parsed";
    return result;
  }
  result.waveform = std::move(wf);
  return result;
}

}  // namespace haven::symbolic
