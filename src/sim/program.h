// Flat bytecode program compiled from an ElabDesign, plus the
// CompiledSimulator that executes it.
//
// The IR is a register machine over a dense file of sim::Value registers.
// The first `signals.size()` registers ARE the signal state (reading a
// signal costs nothing — the operand just names its slot); the rest are
// per-process scratch temporaries. Expressions are linearized into three-
// address ops that call the exact v_* semantics from sim/value.h, so the
// compiled backend cannot drift from the interpreter's four-state algebra.
// Statements lower to branchy opcodes (conditional jumps, case compares,
// loop guards) with resolved signal slots and constant bit ranges; blocking
// writes go through the same masked read-modify-write as the interpreter and
// nonblocking writes accumulate in an NBA queue committed in the NBA region.
//
// Constructs the interpreter only faults on *lazily* (undeclared
// identifiers, unsupported lvalues/operators) compile to kThrow ops at the
// exact evaluation point, so a design that never executes the offending
// branch behaves identically on both backends.
//
// Scheduling (see DESIGN.md §10): CompiledSimulator reproduces the
// interpreter's stratified event queue — active-region combinational
// settling, edge detection against the last quiescent state, clocked
// execution with NBA commit, delta/round caps setting converged() = false,
// X power-up, and the statement+activation step budget. When the
// combinational process graph is acyclic, single-writer, and throw-free, the
// active region is *levelized*: affected processes run once each in
// topological order instead of iterating to a fixpoint. Otherwise the
// event-driven delta loop is kept (the fallback rule), which is what makes
// zero-delay oscillation detection — and therefore every verdict — agree
// with the interpreter bit for bit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/backend.h"
#include "sim/elaborate.h"
#include "sim/simulator.h"  // BudgetExceeded
#include "sim/value.h"

namespace haven::sim {

// Opcode set. Unless noted, operands name registers (dst, a, b, c) and the
// semantics are exactly the v_* helper of the same name.
enum class Op : std::uint8_t {
  // Values.
  kConst,    // r[dst] = consts[a]
  kMove,     // r[dst] = r[a]
  // Binary (dst, a, b).
  kAnd, kOr, kXor, kAdd, kSub, kMul, kDiv, kMod, kShl, kShr,
  kEq, kNeq, kCaseEq, kLt, kLe, kGt, kGe, kLogAnd, kLogOr,
  kPow,      // the interpreter's ** loop (width of a, X on any unknown)
  // Unary (dst, a).
  kNot, kNeg, kLogNot, kRedAnd, kRedOr, kRedXor,
  // Structure.
  kSelect,     // strict ternary: r[dst] = r[a] truthy ? r[b]
               //                 : defined ? r[c] : merge(r[b], r[c])
  kMergeX,     // r[dst] = X-merge(r[a], r[b])  (undefined-condition ternary)
  kConcat,     // r[dst] = v_concat(r[a], r[b])
  kReplicate,  // r[dst] = {b{r[a]}} with the interpreter's >64-bit throw
  kSlice,      // r[dst] = with_xz(r[a].bits >> b, r[a].xz >> b, width c)
  kBitDyn,     // r[dst] = r[a][r[b]] (X/out-of-range index -> 1'bx)
  kResize,     // r[dst] = r[a].resized(b)
  kCaseCmp,    // r[dst] = 1 iff r[a] matches label r[b] under CaseKind mode
  // Control flow (jump target in dst).
  kJump,          // pc = dst
  kJumpIfTrue,    // if r[a] truthy: pc = dst
  kJumpIfFalse,   // if !r[a].truthy(): pc = dst
  kJumpIfDefined, // if r[a] fully defined: pc = dst
  kLoopInit,      // loop_counter[a] = 0
  kLoopGuard,     // if ++loop_counter[a] > cap: converged = false, pc = dst
  kStep,          // statement boundary: bump steps, check budget
  // Signal writes (signal slot in dst, value in a).
  kStoreSig,     // blocking write of r[a] into bits [b:c] of signal dst
  kStoreBitDyn,  // blocking write of r[a] into bit r[b] (skip on X/OOR index)
  kNbaSig,       // nonblocking: queue r[a] into bits [b:c] of signal dst
  kNbaBitDyn,    // nonblocking bit write (index drawn now, skip on X/OOR)
  // Lazy faults.
  kThrow,  // throw ElabError(messages[a])
};

struct Instr {
  Op op = Op::kStep;
  std::uint8_t mode = 0;  // verilog::CaseKind for kCaseCmp
  std::uint32_t dst = 0, a = 0, b = 0, c = 0;
};

struct ProgSignal {
  std::string name;
  int width = 1;
  bool is_input = false;
  bool is_output = false;
};

struct ProgProcess {
  ProcessKind kind = ProcessKind::kComb;
  std::uint32_t begin = 0, end = 0;  // [begin, end) in Program::code
  // kClocked: (signal slot, edge) sensitivity items, in declaration order.
  std::vector<std::pair<std::uint32_t, verilog::Edge>> edges;
};

// A literal whose width falls outside Value's 1..64 range: materialized at
// evaluation time (kConst mode 1) so the invalid_argument throw stays as
// lazy as the interpreter's.
struct RawNumber {
  std::uint64_t bits = 0, xz = 0;
  int width = 32;
};

// The compiled design: immutable after compile(), shareable across
// CompiledSimulator instances.
struct Program {
  std::string top;
  std::vector<ProgSignal> signals;
  std::map<std::string, std::uint32_t> signal_slots;
  std::vector<std::string> inputs, outputs;  // port order preserved

  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<RawNumber> raw_numbers;  // kConst mode 1 pool
  std::vector<std::string> messages;   // kThrow texts
  std::vector<ProgProcess> processes;
  std::vector<std::uint32_t> initial_procs;  // kInitial processes, in order

  // Per signal slot: combinational/continuous processes reading it, and
  // clocked processes edge-sensitive to it (ascending process ids — the
  // interpreter's execution order).
  std::vector<std::vector<std::uint32_t>> comb_watchers;
  std::vector<std::vector<std::uint32_t>> edge_watchers;
  std::vector<std::uint32_t> edge_sigs;  // slots with >= 1 edge watcher

  std::uint32_t num_regs = 0;   // signals + scratch temporaries
  std::uint32_t num_loops = 0;  // loop-guard counter slots

  // Levelized combinational schedule (empty <=> event-driven fallback):
  // comb_order lists comb/cont processes in topological order; comb_rank
  // maps process id -> rank in that order (UINT32_MAX for non-comb).
  bool levelized = false;
  std::vector<std::uint32_t> comb_order;
  std::vector<std::uint32_t> comb_rank;

  std::uint32_t slot_of(const std::string& name) const;  // throws ElabError
};

// Executes a Program with the interpreter's stratified-event-queue
// semantics. The public surface mirrors sim::Simulator (string overloads
// included) plus the interned-slot fast path shared through SignalHandle.
class CompiledSimulator {
 public:
  // Compile-and-run convenience; `step_budget` = 0 means unlimited and also
  // covers initial blocks + the first settle inside this constructor.
  explicit CompiledSimulator(const ElabDesign& design, std::uint64_t step_budget = 0);
  explicit CompiledSimulator(Program program, std::uint64_t step_budget = 0);

  void set_step_budget(std::uint64_t max_steps) { step_budget_ = max_steps; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t activations() const { return activations_; }
  bool converged() const { return converged_; }
  const Program& program() const { return program_; }

  // Interned fast path.
  SignalHandle resolve(const std::string& name) const;  // throws ElabError
  void poke(SignalHandle h, std::uint64_t value);
  void poke_x(SignalHandle h);
  Value peek(SignalHandle h) const;

  // String convenience overloads (one map lookup per call, like the
  // interpreter's historical API).
  void poke(const std::string& input, std::uint64_t value);
  void poke_x(const std::string& input);
  Value peek(const std::string& signal) const;
  void clock_cycle(const std::string& clk = "clk");

 private:
  void init();
  void bump_steps();
  void run_initial_blocks();
  void mark_dirty(std::uint32_t slot);
  void update();
  bool settle_event_driven();  // false on delta-cap blowup (oscillation)
  void settle_levelized();
  void run_process(const ProgProcess& proc);
  void exec(std::uint32_t pc, std::uint32_t end);
  void write_signal(std::uint32_t slot, int hi, int lo, const Value& v);

  Program program_;
  std::vector<Value> regs_;       // [0, nsignals) = signal state, then temps
  std::vector<Value> prev_edge_;  // last quiescent value of edge-watched slots
                                  // (indexed by slot; others stay power-up X)
  struct NbaEntry {
    std::uint32_t slot;
    int hi, lo;
    Value value;
  };
  std::vector<NbaEntry> nba_queue_;
  std::vector<NbaEntry> nba_scratch_;  // reused NBA commit buffer (no per-round alloc)
  std::vector<std::uint64_t> dirty_;    // signal bitmask
  std::vector<std::uint64_t> pending_;  // scratch: proc (or rank) bitmask
  std::vector<std::uint64_t> fired_;    // scratch: clocked proc bitmask
  std::vector<int> loop_counters_;
  bool any_dirty_ = false;
  bool converged_ = true;
  std::uint64_t activations_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t step_budget_ = 0;  // 0 = unlimited
};

}  // namespace haven::sim
