// The simulation-backend seam. Two executors implement the same stratified
// event-queue semantics over an ElabDesign:
//
//  * SimBackend::kInterpreter — sim::Simulator, the original AST-walking
//    event-driven interpreter (re-walks shared_ptr expression trees).
//  * SimBackend::kCompiled — sim::CompiledSimulator, a one-shot compile of
//    the design into a flat bytecode program executed over a dense register
//    file (see sim/compile.h and DESIGN.md §10).
//
// The backends are bit-identical on every observable: peeked values,
// convergence flags, differential-test verdicts, and the testbench stimulus
// stream (which is drawn before simulation and never touched by either
// executor). Everything downstream — Testbench, EvalEngine, the
// hallucination injector's behavioural checks — selects a backend through
// this enum (StimulusSpec::backend / EvalRequest::sim_backend); the compiled
// backend is the default everywhere, the interpreter stays available as the
// differential-testing oracle via --sim-backend=interp.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace haven::sim {

enum class SimBackend : std::uint8_t { kInterpreter = 0, kCompiled = 1 };

inline constexpr SimBackend kDefaultSimBackend = SimBackend::kCompiled;

constexpr const char* backend_name(SimBackend b) {
  return b == SimBackend::kInterpreter ? "interp" : "compiled";
}

// Canonical list of accepted backend spellings. Every surface that rejects a
// backend value (eval::RequestOptions, the serve line protocol) names these
// in its error message, so the valid set is stated in exactly one place.
inline constexpr std::string_view kBackendValues = "interp|interpreter|compiled|compile";

// Parse a --sim-backend= value ("interp"/"interpreter" or "compiled"/
// "compile"; keep kBackendValues in sync); nullopt on anything else.
inline std::optional<SimBackend> parse_backend(std::string_view name) {
  if (name == "interp" || name == "interpreter") return SimBackend::kInterpreter;
  if (name == "compiled" || name == "compile") return SimBackend::kCompiled;
  return std::nullopt;
}

// Interned signal slot: resolve a top-level name once, then poke/peek
// through the handle with no per-call string map lookup. Handles are only
// meaningful on the simulator instance that resolved them (both backends
// number slots identically — by ElabDesign signal id — but validity is not
// checked across instances beyond a bounds check).
struct SignalHandle {
  std::uint32_t slot = UINT32_MAX;
  bool valid() const { return slot != UINT32_MAX; }
};

}  // namespace haven::sim
