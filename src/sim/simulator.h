// Event-driven interpreter over an ElabDesign.
//
// Scheduling model (a faithful miniature of the stratified event queue of
// IEEE 1364 for the synthesizable subset):
//  * poke() on an input records the change, then update() runs to quiescence:
//      1. combinational processes and continuous assigns whose read sets
//         intersect the changed-signal set re-execute (active region) until
//         fixpoint (delta cycles, bounded to detect zero-delay oscillation);
//      2. clocked processes whose edge expressions fired execute, with
//         nonblocking assignments accumulated in an NBA queue;
//      3. the NBA queue commits (NBA region), possibly waking combinational
//         processes again -> back to 1.
//  * Registers power up as X; initial blocks run once at construction.
//
// A design that fails to converge (combinational loop) sets converged() =
// false instead of throwing, so the testbench can count it as a functional
// failure — exactly how a hallucinated `assign a = ~a;` should score.
//
// Runaway protection: the per-update delta/loop caps above bound any single
// poke, but a long stimulus against a pathological design can still burn
// unbounded total work. An optional hard *step budget* (counted in executed
// statements + process activations) turns that into a BudgetExceeded throw;
// the simulator must be discarded afterwards (mid-update state is torn).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/backend.h"
#include "sim/elaborate.h"
#include "sim/value.h"

namespace haven::sim {

// Thrown when a step budget is exhausted: the design is doing unbounded
// work for its stimulus. Deliberately NOT a util::TransientError — a
// deterministic runaway re-fails on retry.
struct BudgetExceeded : std::runtime_error {
  explicit BudgetExceeded(const std::string& what) : std::runtime_error(what) {}
};

class Simulator {
 public:
  // `step_budget` = 0 means unlimited; a non-zero budget also covers the
  // initial-block execution and first settle inside this constructor.
  explicit Simulator(ElabDesign design, std::uint64_t step_budget = 0);

  // Replace the step budget (0 = unlimited). Steps already consumed count
  // against the new budget.
  void set_step_budget(std::uint64_t max_steps) { step_budget_ = max_steps; }
  // Statements executed + processes activated so far.
  std::uint64_t steps() const { return steps_; }

  // Drive a top-level input. Throws ElabError for unknown/non-input names.
  void poke(const std::string& input, std::uint64_t value);
  void poke_x(const std::string& input);

  // Observe any signal.
  Value peek(const std::string& signal) const;

  // Interned fast path: resolve a name once, then drive/observe through the
  // handle with no per-call string-map lookup. Handles are plain signal ids,
  // interchangeable with CompiledSimulator handles for the same design.
  SignalHandle resolve(const std::string& name) const {
    return SignalHandle{static_cast<std::uint32_t>(id_of(name))};
  }
  void poke(SignalHandle h, std::uint64_t value);
  void poke_x(SignalHandle h);
  Value peek(SignalHandle h) const { return state_[h.slot]; }

  // Convenience: full clock cycle on `clk` (0 then 1, settling after each).
  void clock_cycle(const std::string& clk = "clk");

  // False once a zero-delay oscillation was detected; sticky.
  bool converged() const { return converged_; }

  const ElabDesign& design() const { return design_; }

  // Total process executions so far (microbenchmark instrumentation).
  std::uint64_t activations() const { return activations_; }

 private:
  std::size_t id_of(const std::string& name) const;
  void bump_steps();
  void run_initial_blocks();
  void update(std::set<std::size_t>& dirty);
  void execute_process(const ElabProcess& proc, bool clocked, std::set<std::size_t>& dirty);

  Value eval(const verilog::ExprPtr& e) const;
  void exec_stmt(const verilog::StmtPtr& s, bool clocked, std::set<std::size_t>& dirty);
  void assign_lvalue(const verilog::ExprPtr& lhs, const Value& v, bool nonblocking,
                     std::set<std::size_t>& dirty);
  void write_signal(std::size_t id, int hi, int lo, const Value& v, std::set<std::size_t>& dirty);

  ElabDesign design_;
  std::vector<Value> state_;
  std::vector<Value> prev_edge_state_;  // last seen value of every signal, for edges
  // For each signal: combinational processes reading it / clocked processes
  // edge-sensitive to it.
  std::vector<std::vector<std::size_t>> comb_watchers_;
  std::vector<std::vector<std::size_t>> edge_watchers_;
  struct NbaEntry {
    std::size_t id;
    int hi, lo;
    Value value;
  };
  std::vector<NbaEntry> nba_queue_;
  bool converged_ = true;
  std::uint64_t activations_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t step_budget_ = 0;  // 0 = unlimited
  int loop_depth_ = 0;
};

}  // namespace haven::sim
