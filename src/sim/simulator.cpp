#include "sim/simulator.h"

#include <algorithm>

#include "util/fault.h"
#include "util/strings.h"

namespace haven::sim {

using verilog::CaseKind;
using verilog::Edge;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::StmtKind;
using verilog::StmtPtr;

namespace {
constexpr int kMaxDeltaCycles = 1000;
constexpr int kMaxLoopIterations = 1 << 16;
}  // namespace

Simulator::Simulator(ElabDesign design, std::uint64_t step_budget)
    : design_(std::move(design)), step_budget_(step_budget) {
  state_.reserve(design_.signals.size());
  for (const auto& sig : design_.signals) state_.emplace_back(Value::all_x(sig.width));

  comb_watchers_.assign(design_.signals.size(), {});
  edge_watchers_.assign(design_.signals.size(), {});
  for (std::size_t pi = 0; pi < design_.processes.size(); ++pi) {
    const ElabProcess& p = design_.processes[pi];
    if (p.kind == ProcessKind::kComb || p.kind == ProcessKind::kContAssign) {
      for (const auto& name : p.read_set) {
        const auto it = design_.signal_ids.find(name);
        if (it != design_.signal_ids.end()) comb_watchers_[it->second].push_back(pi);
      }
    } else if (p.kind == ProcessKind::kClocked) {
      for (const auto& e : p.edges) {
        const auto it = design_.signal_ids.find(e.signal);
        if (it == design_.signal_ids.end())
          throw ElabError("edge on unknown signal '" + e.signal + "'");
        edge_watchers_[it->second].push_back(pi);
      }
    }
  }

  run_initial_blocks();

  // Settle everything once from the initial state.
  std::set<std::size_t> dirty;
  for (std::size_t i = 0; i < state_.size(); ++i) dirty.insert(i);
  prev_edge_state_ = state_;
  update(dirty);
  prev_edge_state_ = state_;
}

void Simulator::bump_steps() {
  ++steps_;
  if (step_budget_ != 0 && steps_ > step_budget_) {
    throw BudgetExceeded(util::format("simulation step budget exhausted (%llu steps)",
                                      static_cast<unsigned long long>(step_budget_)));
  }
}

std::size_t Simulator::id_of(const std::string& name) const {
  const auto it = design_.signal_ids.find(name);
  if (it == design_.signal_ids.end()) throw ElabError("unknown signal '" + name + "'");
  return it->second;
}

void Simulator::run_initial_blocks() {
  std::set<std::size_t> dirty;
  for (const auto& p : design_.processes) {
    if (p.kind == ProcessKind::kInitial && p.body) {
      exec_stmt(p.body, /*clocked=*/false, dirty);
    }
  }
  // Initial-block nonblocking assigns commit immediately after.
  for (const auto& nba : nba_queue_) {
    std::set<std::size_t> d2;
    write_signal(nba.id, nba.hi, nba.lo, nba.value, d2);
  }
  nba_queue_.clear();
}

void Simulator::poke(SignalHandle h, std::uint64_t value) {
  const std::size_t id = h.slot;
  if (!design_.signals[id].is_input)
    throw ElabError("poke on non-input signal '" + design_.signals[id].name + "'");
  const Value v = Value::of(value, design_.signals[id].width);
  if (state_[id].identical(v)) return;
  state_[id] = v;
  std::set<std::size_t> dirty{id};
  update(dirty);
}

void Simulator::poke_x(SignalHandle h) {
  const std::size_t id = h.slot;
  if (!design_.signals[id].is_input)
    throw ElabError("poke_x on non-input signal '" + design_.signals[id].name + "'");
  const Value v = Value::all_x(design_.signals[id].width);
  if (state_[id].identical(v)) return;
  state_[id] = v;
  std::set<std::size_t> dirty{id};
  update(dirty);
}

void Simulator::poke(const std::string& input, std::uint64_t value) {
  poke(resolve(input), value);
}

void Simulator::poke_x(const std::string& input) { poke_x(resolve(input)); }

Value Simulator::peek(const std::string& signal) const { return state_[id_of(signal)]; }

void Simulator::clock_cycle(const std::string& clk) {
  poke(clk, 0);
  poke(clk, 1);
}

void Simulator::update(std::set<std::size_t>& dirty) {
  util::maybe_inject(util::kSiteSimRun);
  for (int round = 0; round < kMaxDeltaCycles; ++round) {
    // 1. Combinational fixpoint.
    int delta = 0;
    while (!dirty.empty()) {
      if (++delta > kMaxDeltaCycles) {
        converged_ = false;
        return;
      }
      std::set<std::size_t> procs;
      for (std::size_t id : dirty) {
        for (std::size_t pi : comb_watchers_[id]) procs.insert(pi);
      }
      std::set<std::size_t> new_dirty;
      for (std::size_t pi : procs) {
        execute_process(design_.processes[pi], /*clocked=*/false, new_dirty);
      }
      // Edge bookkeeping: remember levels before declaring quiescence so
      // edges are detected against the pre-change state below.
      dirty = std::move(new_dirty);
    }

    // 2. Detect edges against the last quiescent state.
    std::set<std::size_t> fired;
    for (std::size_t id = 0; id < state_.size(); ++id) {
      if (edge_watchers_[id].empty()) continue;
      const Value& old_v = prev_edge_state_[id];
      const Value& new_v = state_[id];
      if (old_v.identical(new_v)) continue;
      const bool old1 = old_v.is_fully_defined() && (old_v.bits() & 1u);
      const bool old0 = old_v.is_fully_defined() && !(old_v.bits() & 1u);
      const bool new1 = new_v.is_fully_defined() && (new_v.bits() & 1u);
      const bool new0 = new_v.is_fully_defined() && !(new_v.bits() & 1u);
      for (std::size_t pi : edge_watchers_[id]) {
        for (const auto& e : design_.processes[pi].edges) {
          if (design_.signal_ids.at(e.signal) != id) continue;
          const bool pos = !old1 && new1;          // to-1 transition
          const bool neg = !old0 && new0;          // to-0 transition
          if ((e.edge == Edge::kPos && pos) || (e.edge == Edge::kNeg && neg)) {
            fired.insert(pi);
          }
        }
      }
    }
    prev_edge_state_ = state_;
    if (fired.empty()) return;

    // 3. Execute clocked processes (NBA accumulate), then commit NBAs.
    std::set<std::size_t> post_dirty;
    for (std::size_t pi : fired) {
      execute_process(design_.processes[pi], /*clocked=*/true, post_dirty);
    }
    std::vector<NbaEntry> queue;
    queue.swap(nba_queue_);
    for (const auto& nba : queue) {
      write_signal(nba.id, nba.hi, nba.lo, nba.value, post_dirty);
    }
    dirty = std::move(post_dirty);
    if (dirty.empty()) return;
    // Loop: comb settles again, and a clocked process may fire off a derived
    // clock (e.g. clock divider output feeding another always block).
  }
  converged_ = false;
}

void Simulator::execute_process(const ElabProcess& proc, bool clocked,
                                std::set<std::size_t>& dirty) {
  ++activations_;
  bump_steps();
  if (proc.kind == ProcessKind::kContAssign) {
    assign_lvalue(proc.lhs, eval(proc.rhs), /*nonblocking=*/false, dirty);
    return;
  }
  if (proc.body) exec_stmt(proc.body, clocked, dirty);
}

// --- expression evaluation ---------------------------------------------------

Value Simulator::eval(const ExprPtr& e) const {
  switch (e->kind) {
    case ExprKind::kNumber:
      return Value::with_xz(e->number.value, e->number.xz_mask, e->number.width);
    case ExprKind::kIdent: {
      const auto it = design_.signal_ids.find(e->ident);
      if (it == design_.signal_ids.end())
        throw ElabError("evaluation of undeclared identifier '" + e->ident + "'");
      return state_[it->second];
    }
    case ExprKind::kBitSelect: {
      const auto it = design_.signal_ids.find(e->ident);
      if (it == design_.signal_ids.end())
        throw ElabError("evaluation of undeclared identifier '" + e->ident + "'");
      const Value base = state_[it->second];
      const Value idx = eval(e->operands[0]);
      if (!idx.is_fully_defined()) return Value::all_x(1);
      const std::uint64_t i = idx.bits();
      if (i >= static_cast<std::uint64_t>(base.width())) return Value::all_x(1);
      return Value::with_xz((base.bits() >> i) & 1u, (base.xz() >> i) & 1u, 1);
    }
    case ExprKind::kPartSelect: {
      const auto it = design_.signal_ids.find(e->ident);
      if (it == design_.signal_ids.end())
        throw ElabError("evaluation of undeclared identifier '" + e->ident + "'");
      const Value base = state_[it->second];
      const int hi = std::max(e->msb, e->lsb);
      const int lo = std::min(e->msb, e->lsb);
      const int w = hi - lo + 1;
      if (lo >= base.width()) return Value::all_x(w);
      return Value::with_xz(base.bits() >> lo, base.xz() >> lo, w);
    }
    case ExprKind::kUnary: {
      const Value a = eval(e->operands[0]);
      const std::string& op = e->op;
      if (op == "~") return v_not(a);
      if (op == "!") return v_logical_not(a);
      if (op == "-") return v_neg(a);
      if (op == "&") return v_red_and(a);
      if (op == "|") return v_red_or(a);
      if (op == "^") return v_red_xor(a);
      if (op == "~&") return v_not(v_red_and(a));
      if (op == "~|") return v_not(v_red_or(a));
      if (op == "~^" || op == "^~") return v_not(v_red_xor(a));
      throw ElabError("unsupported unary operator '" + op + "'");
    }
    case ExprKind::kBinary: {
      const Value a = eval(e->operands[0]);
      const Value b = eval(e->operands[1]);
      const std::string& op = e->op;
      if (op == "&") return v_and(a, b);
      if (op == "|") return v_or(a, b);
      if (op == "^") return v_xor(a, b);
      if (op == "~^" || op == "^~") return v_not(v_xor(a, b));
      if (op == "~&") return v_not(v_and(a, b));
      if (op == "~|") return v_not(v_or(a, b));
      if (op == "+") return v_add(a, b);
      if (op == "-") return v_sub(a, b);
      if (op == "*") return v_mul(a, b);
      if (op == "/") return v_div(a, b);
      if (op == "%") return v_mod(a, b);
      if (op == "<<" || op == "<<<") return v_shl(a, b);
      if (op == ">>" || op == ">>>") return v_shr(a, b);
      if (op == "==") return v_eq(a, b);
      if (op == "!=") return v_neq(a, b);
      if (op == "===") return v_case_eq(a, b);
      if (op == "!==") return v_logical_not(v_case_eq(a, b));
      if (op == "<") return v_lt(a, b);
      if (op == "<=") return v_le(a, b);
      if (op == ">") return v_gt(a, b);
      if (op == ">=") return v_ge(a, b);
      if (op == "&&") return v_logical_and(a, b);
      if (op == "||") return v_logical_or(a, b);
      if (op == "**") {
        if (!a.is_fully_defined() || !b.is_fully_defined()) return Value::all_x(a.width());
        std::uint64_t r = 1;
        for (std::uint64_t i = 0; i < b.bits() && i < 64; ++i) r *= a.bits();
        return Value::of(r, a.width());
      }
      throw ElabError("unsupported binary operator '" + op + "'");
    }
    case ExprKind::kTernary: {
      const Value c = eval(e->operands[0]);
      if (c.truthy()) return eval(e->operands[1]);
      if (c.is_fully_defined()) return eval(e->operands[2]);
      // Unknown condition: merge branches bitwise (Verilog semantics).
      const Value t = eval(e->operands[1]);
      const Value f = eval(e->operands[2]);
      const int w = std::max(t.width(), f.width());
      const Value tr = t.resized(w), fr = f.resized(w);
      const std::uint64_t agree = ~(tr.bits() ^ fr.bits()) & ~tr.xz() & ~fr.xz();
      return Value::with_xz(tr.bits() & agree, ~agree, w);
    }
    case ExprKind::kConcat: {
      Value acc = eval(e->operands[0]);
      for (std::size_t i = 1; i < e->operands.size(); ++i) {
        acc = v_concat(acc, eval(e->operands[i]));
      }
      return acc;
    }
    case ExprKind::kReplicate: {
      const Value inner = eval(e->operands[0]);
      if (e->repeat * static_cast<std::uint64_t>(inner.width()) > 64)
        throw ElabError("replication wider than 64 bits");
      Value acc = inner;
      for (std::uint64_t i = 1; i < e->repeat; ++i) acc = v_concat(acc, inner);
      return acc;
    }
  }
  throw ElabError("corrupt expression node");
}

// --- statement execution ------------------------------------------------------

void Simulator::exec_stmt(const StmtPtr& s, bool clocked, std::set<std::size_t>& dirty) {
  if (!s) return;
  bump_steps();
  switch (s->kind) {
    case StmtKind::kBlock:
      for (const auto& c : s->stmts) exec_stmt(c, clocked, dirty);
      return;
    case StmtKind::kBlockingAssign:
      assign_lvalue(s->lhs, eval(s->rhs), /*nonblocking=*/false, dirty);
      return;
    case StmtKind::kNonblockingAssign:
      assign_lvalue(s->lhs, eval(s->rhs), /*nonblocking=*/true, dirty);
      return;
    case StmtKind::kIf:
      if (eval(s->cond).truthy()) exec_stmt(s->then_branch, clocked, dirty);
      else exec_stmt(s->else_branch, clocked, dirty);
      return;
    case StmtKind::kCase: {
      const Value subject = eval(s->cond);
      const verilog::CaseItem* default_item = nullptr;
      for (const auto& item : s->case_items) {
        if (item.labels.empty()) {
          default_item = &item;
          continue;
        }
        for (const auto& label_expr : item.labels) {
          const Value label = eval(label_expr);
          const int w = std::max(subject.width(), label.width());
          const Value sv = subject.resized(w), lv = label.resized(w);
          std::uint64_t wildcard = 0;
          if (s->case_kind == CaseKind::kCasez) wildcard = lv.xz();
          else if (s->case_kind == CaseKind::kCasex) wildcard = lv.xz() | sv.xz();
          const std::uint64_t care = sv.mask() & ~wildcard;
          const bool match = ((sv.bits() ^ lv.bits()) & care) == 0 &&
                             ((sv.xz() ^ lv.xz()) & care) == 0;
          if (match) {
            exec_stmt(item.body, clocked, dirty);
            return;
          }
        }
      }
      if (default_item) exec_stmt(default_item->body, clocked, dirty);
      return;
    }
    case StmtKind::kFor: {
      assign_lvalue(s->lhs, eval(s->rhs), false, dirty);
      int iterations = 0;
      while (eval(s->cond).truthy()) {
        if (++iterations > kMaxLoopIterations) {
          converged_ = false;
          return;
        }
        exec_stmt(s->body, clocked, dirty);
        assign_lvalue(s->step_lhs, eval(s->step_rhs), false, dirty);
      }
      return;
    }
  }
}

void Simulator::assign_lvalue(const ExprPtr& lhs, const Value& v, bool nonblocking,
                              std::set<std::size_t>& dirty) {
  if (lhs->kind == ExprKind::kConcat) {
    // Distribute bits MSB-first across the parts.
    int total = 0;
    std::vector<int> widths;
    for (const auto& part : lhs->operands) {
      int w = 1;
      if (part->kind == ExprKind::kIdent) {
        w = design_.signals[id_of(part->ident)].width;
      } else if (part->kind == ExprKind::kBitSelect) {
        w = 1;
      } else if (part->kind == ExprKind::kPartSelect) {
        w = std::abs(part->msb - part->lsb) + 1;
      } else {
        throw ElabError("unsupported concat lvalue part");
      }
      widths.push_back(w);
      total += w;
    }
    const Value vv = v.resized(total);
    int offset = total;
    for (std::size_t i = 0; i < lhs->operands.size(); ++i) {
      offset -= widths[i];
      const Value slice =
          Value::with_xz(vv.bits() >> offset, vv.xz() >> offset, widths[i]);
      assign_lvalue(lhs->operands[i], slice, nonblocking, dirty);
    }
    return;
  }

  const std::size_t id = id_of(lhs->ident);
  int hi, lo;
  if (lhs->kind == ExprKind::kIdent) {
    hi = design_.signals[id].width - 1;
    lo = 0;
  } else if (lhs->kind == ExprKind::kBitSelect) {
    const Value idx = eval(lhs->operands[0]);
    if (!idx.is_fully_defined()) return;  // x index: no assignment
    if (idx.bits() >= static_cast<std::uint64_t>(design_.signals[id].width)) return;
    hi = lo = static_cast<int>(idx.bits());
  } else if (lhs->kind == ExprKind::kPartSelect) {
    hi = std::max(lhs->msb, lhs->lsb);
    lo = std::min(lhs->msb, lhs->lsb);
  } else {
    throw ElabError("unsupported lvalue");
  }

  if (nonblocking) {
    nba_queue_.push_back({id, hi, lo, v.resized(hi - lo + 1)});
  } else {
    write_signal(id, hi, lo, v.resized(hi - lo + 1), dirty);
  }
}

void Simulator::write_signal(std::size_t id, int hi, int lo, const Value& v,
                             std::set<std::size_t>& dirty) {
  const ElabSignal& sig = design_.signals[id];
  Value cur = state_[id];
  const int w = hi - lo + 1;
  const std::uint64_t field_mask =
      (w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1)) << lo;
  const Value vv = v.resized(w);
  const std::uint64_t new_bits = (cur.bits() & ~field_mask) | ((vv.bits() << lo) & field_mask);
  const std::uint64_t new_xz = (cur.xz() & ~field_mask) | ((vv.xz() << lo) & field_mask);
  const Value next = Value::with_xz(new_bits, new_xz, sig.width);
  if (next.identical(cur)) return;
  state_[id] = next;
  dirty.insert(id);
}

}  // namespace haven::sim
