#include "sim/elaborate.h"

#include <algorithm>

#include "util/strings.h"

namespace haven::sim {

using verilog::AlwaysBlock;
using verilog::ContAssign;
using verilog::Dir;
using verilog::Edge;
using verilog::Expr;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::InitialBlock;
using verilog::Instance;
using verilog::Module;
using verilog::NetDecl;
using verilog::NetType;
using verilog::ParameterDecl;
using verilog::SensItem;
using verilog::SourceFile;
using verilog::Stmt;
using verilog::StmtKind;
using verilog::StmtPtr;

const ElabSignal& ElabDesign::signal(const std::string& name) const {
  const auto it = signal_ids.find(name);
  if (it == signal_ids.end()) throw ElabError("unknown signal '" + name + "'");
  return signals[it->second];
}

namespace {

void expr_read_idents(const ExprPtr& e, std::set<std::string>& out) {
  if (!e) return;
  switch (e->kind) {
    case ExprKind::kIdent:
    case ExprKind::kBitSelect:
    case ExprKind::kPartSelect:
      out.insert(e->ident);
      break;
    default:
      break;
  }
  for (const auto& c : e->operands) expr_read_idents(c, out);
}

// For an assignment target, index expressions are *read* but the base is not.
void lvalue_read_idents(const ExprPtr& lhs, std::set<std::string>& out) {
  if (!lhs) return;
  if (lhs->kind == ExprKind::kConcat) {
    for (const auto& p : lhs->operands) lvalue_read_idents(p, out);
    return;
  }
  for (const auto& c : lhs->operands) expr_read_idents(c, out);
}

void stmt_read_idents(const StmtPtr& s, std::set<std::string>& out) {
  if (!s) return;
  switch (s->kind) {
    case StmtKind::kBlock:
      for (const auto& c : s->stmts) stmt_read_idents(c, out);
      break;
    case StmtKind::kBlockingAssign:
    case StmtKind::kNonblockingAssign:
      lvalue_read_idents(s->lhs, out);
      expr_read_idents(s->rhs, out);
      break;
    case StmtKind::kIf:
      expr_read_idents(s->cond, out);
      stmt_read_idents(s->then_branch, out);
      stmt_read_idents(s->else_branch, out);
      break;
    case StmtKind::kCase:
      expr_read_idents(s->cond, out);
      for (const auto& item : s->case_items) {
        for (const auto& l : item.labels) expr_read_idents(l, out);
        stmt_read_idents(item.body, out);
      }
      break;
    case StmtKind::kFor:
      lvalue_read_idents(s->lhs, out);
      expr_read_idents(s->rhs, out);
      expr_read_idents(s->cond, out);
      lvalue_read_idents(s->step_lhs, out);
      expr_read_idents(s->step_rhs, out);
      stmt_read_idents(s->body, out);
      break;
  }
}

// Rewrite every identifier reference in an expression with a prefix (for
// hierarchy flattening).
ExprPtr prefix_expr(const ExprPtr& e, const std::string& prefix) {
  if (!e) return e;
  auto copy = std::make_shared<Expr>(*e);
  if (e->kind == ExprKind::kIdent || e->kind == ExprKind::kBitSelect ||
      e->kind == ExprKind::kPartSelect) {
    copy->ident = prefix + e->ident;
  }
  copy->operands.clear();
  for (const auto& c : e->operands) copy->operands.push_back(prefix_expr(c, prefix));
  return copy;
}

StmtPtr prefix_stmt(const StmtPtr& s, const std::string& prefix) {
  if (!s) return s;
  auto copy = std::make_shared<Stmt>(*s);
  copy->lhs = prefix_expr(s->lhs, prefix);
  copy->rhs = prefix_expr(s->rhs, prefix);
  copy->cond = prefix_expr(s->cond, prefix);
  copy->step_lhs = prefix_expr(s->step_lhs, prefix);
  copy->step_rhs = prefix_expr(s->step_rhs, prefix);
  copy->then_branch = prefix_stmt(s->then_branch, prefix);
  copy->else_branch = prefix_stmt(s->else_branch, prefix);
  copy->body = prefix_stmt(s->body, prefix);
  copy->stmts.clear();
  for (const auto& c : s->stmts) copy->stmts.push_back(prefix_stmt(c, prefix));
  copy->case_items.clear();
  for (const auto& item : s->case_items) {
    verilog::CaseItem ci;
    for (const auto& l : item.labels) ci.labels.push_back(prefix_expr(l, prefix));
    ci.body = prefix_stmt(item.body, prefix);
    copy->case_items.push_back(std::move(ci));
  }
  return copy;
}

class Elaborator {
 public:
  Elaborator(const Module& top, const SourceFile* file) : top_(top), file_(file) {}

  ElabDesign run() {
    design_.top = top_.name;
    elaborate_module(top_, /*prefix=*/"", /*depth=*/0, /*is_top=*/true);
    return std::move(design_);
  }

 private:
  void add_signal(const std::string& name, int width, bool is_reg, bool is_input,
                  bool is_output) {
    if (width < 1 || width > 64)
      throw ElabError("signal '" + name + "' has unsupported width " +
                      std::to_string(width));
    auto it = design_.signal_ids.find(name);
    if (it != design_.signal_ids.end()) {
      // Port re-declared as wire/reg in the body refines reg-ness and width.
      ElabSignal& s = design_.signals[it->second];
      s.is_reg = s.is_reg || is_reg;
      s.width = std::max(s.width, width);
      return;
    }
    design_.signal_ids[name] = design_.signals.size();
    design_.signals.push_back({name, width, is_reg, is_input, is_output});
  }

  void elaborate_module(const Module& m, const std::string& prefix, int depth, bool is_top) {
    if (depth > 8) throw ElabError("instance hierarchy deeper than 8 (recursive instantiation?)");

    for (const auto& p : m.ports) {
      add_signal(prefix + p.name, p.width(), p.is_reg, is_top && p.dir == Dir::kInput,
                 is_top && p.dir == Dir::kOutput);
      if (is_top) {
        if (p.dir == Dir::kInput) design_.inputs.push_back(p.name);
        else if (p.dir == Dir::kOutput) design_.outputs.push_back(p.name);
        else throw ElabError("inout ports are not supported by the simulator");
      }
    }
    for (const auto& item : m.items) {
      if (const auto* d = std::get_if<NetDecl>(&item)) {
        const int width = d->type == NetType::kInteger ? 32 : (d->range ? d->range->width() : 1);
        for (const auto& name : d->names) {
          add_signal(prefix + name, width, d->type != NetType::kWire, false, false);
        }
        if (d->init) {
          if (d->type == NetType::kWire) {
            ElabProcess proc;
            proc.kind = ProcessKind::kContAssign;
            proc.lhs = Expr::make_ident(prefix + d->names.back());
            proc.rhs = prefix_expr(d->init, prefix);
            expr_read_idents(proc.rhs, proc.read_set);
            design_.processes.push_back(std::move(proc));
          } else {
            // reg r = expr: initial value.
            ElabProcess proc;
            proc.kind = ProcessKind::kInitial;
            proc.body = Stmt::make_assign(true, Expr::make_ident(prefix + d->names.back()),
                                          prefix_expr(d->init, prefix));
            design_.processes.push_back(std::move(proc));
          }
        }
      }
    }

    for (const auto& item : m.items) {
      if (std::holds_alternative<NetDecl>(item) || std::holds_alternative<ParameterDecl>(item))
        continue;
      if (const auto* a = std::get_if<ContAssign>(&item)) {
        ElabProcess proc;
        proc.kind = ProcessKind::kContAssign;
        proc.lhs = prefix_expr(a->lhs, prefix);
        proc.rhs = prefix_expr(a->rhs, prefix);
        expr_read_idents(proc.rhs, proc.read_set);
        lvalue_read_idents(proc.lhs, proc.read_set);
        design_.processes.push_back(std::move(proc));
      } else if (const auto* ab = std::get_if<AlwaysBlock>(&item)) {
        ElabProcess proc;
        proc.body = prefix_stmt(ab->body, prefix);
        const bool clocked = !ab->star && std::any_of(ab->sens.begin(), ab->sens.end(),
                                                      [](const SensItem& s) {
                                                        return s.edge != Edge::kLevel;
                                                      });
        if (clocked) {
          proc.kind = ProcessKind::kClocked;
          for (const auto& s : ab->sens) {
            if (s.edge == Edge::kLevel) {
              throw ElabError("mixed edge and level sensitivity is not supported");
            }
            proc.edges.push_back({s.edge, prefix + s.signal});
          }
        } else {
          proc.kind = ProcessKind::kComb;
          if (ab->star) {
            stmt_read_idents(proc.body, proc.read_set);
          } else {
            for (const auto& s : ab->sens) proc.read_set.insert(prefix + s.signal);
            // Incomplete sensitivity lists simulate per spec: only listed
            // signals trigger. (The analyzer warns; the simulator is honest.)
          }
        }
        design_.processes.push_back(std::move(proc));
      } else if (const auto* ib = std::get_if<InitialBlock>(&item)) {
        ElabProcess proc;
        proc.kind = ProcessKind::kInitial;
        proc.body = prefix_stmt(ib->body, prefix);
        design_.processes.push_back(std::move(proc));
      } else if (const auto* inst = std::get_if<Instance>(&item)) {
        elaborate_instance(*inst, prefix, depth);
      }
    }
  }

  void elaborate_instance(const Instance& inst, const std::string& prefix, int depth) {
    if (file_ == nullptr)
      throw ElabError("instance of '" + inst.module_name + "' but no sibling modules provided");
    const Module* def = file_->find_module(inst.module_name);
    if (def == nullptr) throw ElabError("instance of unknown module '" + inst.module_name + "'");

    const std::string child_prefix = prefix + inst.instance_name + "__";
    elaborate_module(*def, child_prefix, depth + 1, /*is_top=*/false);

    // Positional -> named normalization.
    std::vector<std::pair<std::string, ExprPtr>> conns;
    const bool named = !inst.connections.empty() && !inst.connections.front().port.empty();
    if (named) {
      for (const auto& c : inst.connections) {
        if (c.port.empty()) throw ElabError("mixed named and positional connections");
        conns.emplace_back(c.port, c.expr);
      }
    } else {
      if (inst.connections.size() != def->ports.size())
        throw ElabError("positional connection count mismatch for instance '" +
                        inst.instance_name + "'");
      for (std::size_t i = 0; i < inst.connections.size(); ++i) {
        conns.emplace_back(def->ports[i].name, inst.connections[i].expr);
      }
    }

    for (const auto& [port_name, expr] : conns) {
      const verilog::Port* port = def->find_port(port_name);
      if (port == nullptr)
        throw ElabError("connection to unknown port '" + port_name + "' of '" +
                        inst.module_name + "'");
      if (!expr) continue;  // unconnected port floats (stays X)
      ExprPtr parent_expr = prefix_expr(expr, prefix);
      ExprPtr child_sig = Expr::make_ident(child_prefix + port_name);
      ElabProcess proc;
      proc.kind = ProcessKind::kContAssign;
      if (port->dir == Dir::kInput) {
        proc.lhs = child_sig;
        proc.rhs = parent_expr;
      } else if (port->dir == Dir::kOutput) {
        // Parent side must be an assignable expression (ident/select/concat).
        proc.lhs = parent_expr;
        proc.rhs = child_sig;
      } else {
        throw ElabError("inout instance ports are not supported");
      }
      expr_read_idents(proc.rhs, proc.read_set);
      lvalue_read_idents(proc.lhs, proc.read_set);
      design_.processes.push_back(std::move(proc));
    }
  }

  const Module& top_;
  const SourceFile* file_;
  ElabDesign design_;
};

}  // namespace

ElabDesign elaborate(const Module& top, const SourceFile* file) {
  return Elaborator(top, file).run();
}

std::set<std::string> statement_read_set(const StmtPtr& body) {
  std::set<std::string> out;
  stmt_read_idents(body, out);
  return out;
}

}  // namespace haven::sim
