// VCD (Value Change Dump, IEEE 1364 §18) trace writer. Lets library users
// inspect simulations with standard waveform viewers (GTKWave etc.) — the
// debugging companion to the differential testbench: when a candidate
// diverges from the golden module, dump both and diff the waves.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace haven::sim {

class VcdTrace {
 public:
  // Trace the given signals of `sim` (empty = all signals). The simulator
  // must outlive the trace.
  VcdTrace(const Simulator& sim, std::vector<std::string> signals = {},
           std::string top_name = "top");

  // Record the current values at the given timestamp (monotonically
  // increasing; equal timestamps collapse onto the same #time).
  void sample(std::uint64_t time);

  // Full VCD file contents.
  std::string to_string() const;

  std::size_t num_samples() const { return samples_; }

 private:
  struct Entry {
    std::string name;
    std::string id;   // VCD short identifier
    int width = 1;
    Value last;
    bool has_last = false;
  };

  static std::string make_id(std::size_t index);
  static std::string value_text(const Value& v, const std::string& id);

  const Simulator& sim_;
  std::string top_name_;
  std::vector<Entry> entries_;
  std::string body_;
  std::uint64_t last_time_ = 0;
  bool time_emitted_ = false;
  std::size_t samples_ = 0;
};

}  // namespace haven::sim
