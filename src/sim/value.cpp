#include "sim/value.h"

#include <algorithm>
#include <stdexcept>

namespace haven::sim {

Value::Value(int width) : width_(width) {
  if (width < 1 || width > 64) throw std::invalid_argument("Value: width out of range 1..64");
  xz_ = mask();
}

std::uint64_t Value::mask() const {
  return width_ >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width_) - 1);
}

void Value::normalize() {
  const std::uint64_t m = mask();
  xz_ &= m;
  bits_ &= m & ~xz_;  // unknown bits carry no defined value
}

Value Value::of(std::uint64_t bits, int width) {
  Value v(width);
  v.bits_ = bits;
  v.xz_ = 0;
  v.normalize();
  return v;
}

Value Value::with_xz(std::uint64_t bits, std::uint64_t xz, int width) {
  Value v(width);
  v.bits_ = bits;
  v.xz_ = xz;
  v.normalize();
  return v;
}

bool Value::identical(const Value& o) const {
  return width_ == o.width_ && bits_ == o.bits_ && xz_ == o.xz_;
}

Value Value::resized(int new_width) const {
  Value v(new_width);
  v.bits_ = bits_;
  v.xz_ = xz_;
  v.normalize();
  return v;
}

std::string Value::to_string() const {
  std::string s = std::to_string(width_) + "'b";
  for (int i = width_ - 1; i >= 0; --i) {
    if ((xz_ >> i) & 1u) s += 'x';
    else s += ((bits_ >> i) & 1u) ? '1' : '0';
  }
  return s;
}

namespace {
int max_w(const Value& a, const Value& b) { return std::max(a.width(), b.width()); }
}  // namespace

Value v_and(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  // Bit is 0 if either side is a defined 0; unknown if both could be 1 and
  // either is unknown.
  const std::uint64_t zero_a = ~a.bits_ & ~a.xz_;
  const std::uint64_t zero_b = ~b.bits_ & ~b.xz_;
  const std::uint64_t known_zero = zero_a | zero_b;
  const std::uint64_t known_one = (a.bits_ & ~a.xz_) & (b.bits_ & ~b.xz_);
  const std::uint64_t unknown = ~(known_zero | known_one);
  return Value::with_xz(known_one, unknown, w);
}

Value v_or(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  const std::uint64_t one_a = a.bits_ & ~a.xz_;
  const std::uint64_t one_b = b.bits_ & ~b.xz_;
  const std::uint64_t known_one = one_a | one_b;
  const std::uint64_t known_zero = (~a.bits_ & ~a.xz_) & (~b.bits_ & ~b.xz_);
  const std::uint64_t unknown = ~(known_zero | known_one);
  return Value::with_xz(known_one, unknown, w);
}

Value v_xor(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  const std::uint64_t unknown = a.xz_ | b.xz_;
  return Value::with_xz((a.bits_ ^ b.bits_) & ~unknown, unknown, w);
}

Value v_not(const Value& a) {
  return Value::with_xz(~a.bits_ & ~a.xz_, a.xz_, a.width());
}

Value v_add(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined()) return Value::all_x(w);
  return Value::of(a0.bits_ + b0.bits_, w);
}

Value v_sub(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined()) return Value::all_x(w);
  return Value::of(a0.bits_ - b0.bits_, w);
}

Value v_mul(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined()) return Value::all_x(w);
  return Value::of(a0.bits_ * b0.bits_, w);
}

Value v_div(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined() || b0.bits_ == 0) return Value::all_x(w);
  return Value::of(a0.bits_ / b0.bits_, w);
}

Value v_mod(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined() || b0.bits_ == 0) return Value::all_x(w);
  return Value::of(a0.bits_ % b0.bits_, w);
}

Value v_neg(const Value& a) {
  if (!a.is_fully_defined()) return Value::all_x(a.width());
  return Value::of(~a.bits_ + 1, a.width());
}

Value v_shl(const Value& a, const Value& b) {
  if (!b.is_fully_defined()) return Value::all_x(a.width());
  const std::uint64_t sh = b.bits_;
  if (sh >= 64) return Value::of(0, a.width());
  return Value::with_xz(a.bits_ << sh, a.xz_ << sh, a.width());
}

Value v_shr(const Value& a, const Value& b) {
  if (!b.is_fully_defined()) return Value::all_x(a.width());
  const std::uint64_t sh = b.bits_;
  if (sh >= 64) return Value::of(0, a.width());
  return Value::with_xz(a.bits_ >> sh, a.xz_ >> sh, a.width());
}

Value v_eq(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  // Definite 0 if any bit defined on both sides differs.
  const std::uint64_t both_defined = ~a.xz_ & ~b.xz_;
  if ((a.bits_ ^ b.bits_) & both_defined) return Value::of(0, 1);
  if (a.xz_ | b.xz_) return Value::all_x(1);
  return Value::of(1, 1);
}

Value v_neq(const Value& a, const Value& b) {
  const Value e = v_eq(a, b);
  if (!e.is_fully_defined()) return e;
  return Value::of(e.bits_ ? 0 : 1, 1);
}

namespace {
Value compare(const Value& a, const Value& b, bool (*cmp)(std::uint64_t, std::uint64_t)) {
  if (!a.is_fully_defined() || !b.is_fully_defined()) return Value::all_x(1);
  return Value::of(cmp(a.bits(), b.bits()) ? 1 : 0, 1);
}
}  // namespace

Value v_lt(const Value& a, const Value& b) {
  return compare(a, b, [](std::uint64_t x, std::uint64_t y) { return x < y; });
}
Value v_le(const Value& a, const Value& b) {
  return compare(a, b, [](std::uint64_t x, std::uint64_t y) { return x <= y; });
}
Value v_gt(const Value& a, const Value& b) {
  return compare(a, b, [](std::uint64_t x, std::uint64_t y) { return x > y; });
}
Value v_ge(const Value& a, const Value& b) {
  return compare(a, b, [](std::uint64_t x, std::uint64_t y) { return x >= y; });
}

Value v_case_eq(const Value& a0, const Value& b0) {
  const int w = max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  return Value::of(a.bits_ == b.bits_ && a.xz_ == b.xz_ ? 1 : 0, 1);
}

Value v_logical_not(const Value& a) {
  if (a.bits_ != 0) return Value::of(0, 1);     // some defined 1 -> value nonzero
  if (a.xz_ != 0) return Value::all_x(1);       // all-zero-or-unknown -> unknown
  return Value::of(1, 1);
}

Value v_logical_and(const Value& a, const Value& b) {
  const Value na = v_logical_not(a), nb = v_logical_not(b);
  // a truthy <=> !a == 0.
  auto truth = [](const Value& n) -> int {  // 1 true, 0 false, -1 unknown
    if (!n.is_fully_defined()) return -1;
    return n.bits() == 0 ? 1 : 0;
  };
  const int ta = truth(na), tb = truth(nb);
  if (ta == 0 || tb == 0) return Value::of(0, 1);
  if (ta == 1 && tb == 1) return Value::of(1, 1);
  return Value::all_x(1);
}

Value v_logical_or(const Value& a, const Value& b) {
  const Value na = v_logical_not(a), nb = v_logical_not(b);
  auto truth = [](const Value& n) -> int {
    if (!n.is_fully_defined()) return -1;
    return n.bits() == 0 ? 1 : 0;
  };
  const int ta = truth(na), tb = truth(nb);
  if (ta == 1 || tb == 1) return Value::of(1, 1);
  if (ta == 0 && tb == 0) return Value::of(0, 1);
  return Value::all_x(1);
}

Value v_red_and(const Value& a) {
  // 0 if any defined 0 bit; else X if any unknown; else 1.
  if ((~a.bits_ & ~a.xz_ & a.mask()) != 0) return Value::of(0, 1);
  if (a.xz_ != 0) return Value::all_x(1);
  return Value::of(1, 1);
}

Value v_red_or(const Value& a) {
  if (a.bits_ != 0) return Value::of(1, 1);
  if (a.xz_ != 0) return Value::all_x(1);
  return Value::of(0, 1);
}

Value v_red_xor(const Value& a) {
  if (a.xz_ != 0) return Value::all_x(1);
  return Value::of(static_cast<std::uint64_t>(__builtin_popcountll(a.bits_) & 1), 1);
}

Value v_concat(const Value& hi, const Value& lo) {
  const int w = hi.width() + lo.width();
  if (w > 64) throw std::invalid_argument("v_concat: result wider than 64 bits");
  Value v(w);
  return Value::with_xz((hi.bits() << lo.width()) | lo.bits(),
                        (hi.xz() << lo.width()) | lo.xz(), w);
}

}  // namespace haven::sim
