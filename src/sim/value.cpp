#include "sim/value.h"

namespace haven::sim {

std::string Value::to_string() const {
  std::string s = std::to_string(width_) + "'b";
  for (int i = width_ - 1; i >= 0; --i) {
    if ((xz_ >> i) & 1u) s += 'x';
    else s += ((bits_ >> i) & 1u) ? '1' : '0';
  }
  return s;
}

}  // namespace haven::sim
