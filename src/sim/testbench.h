// Differential functional checking: run a candidate DUT and a golden
// reference module side by side under identical stimulus and compare their
// outputs. This is HaVen's substitute for the VerilogEval / RTLLM testbench
// infrastructure: a candidate passes functionally iff it matches the golden
// module on every driven vector/cycle.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "util/retry.h"
#include "util/rng.h"
#include "verilog/ast.h"

namespace haven::sim {

struct StimulusSpec {
  bool sequential = false;
  std::string clock = "clk";
  std::string reset;               // empty => no reset signal
  bool reset_active_low = false;
  int cycles = 48;                 // sequential test length
  int max_exhaustive_bits = 12;    // comb: exhaustive when total input bits fit
  int random_vectors = 256;        // comb fallback vector count
  bool mid_test_reset = true;      // re-assert reset mid-run (corner case)
  // Hard per-simulator step budget (0 = unlimited). Exceeding it throws
  // sim::BudgetExceeded out of the diff test, so a runaway candidate can
  // never pin a worker; the eval engine records it as a unit fault.
  std::uint64_t step_budget = 0;
  // Which simulator executes both sides of the diff test. Backends are
  // verdict-identical (DESIGN.md §10), so this is a pure performance knob;
  // it is deliberately EXCLUDED from the eval result-cache key so a warm
  // cache replays across backend switches (see eval/cache_io.cpp).
  SimBackend backend = kDefaultSimBackend;
};

struct DiffResult {
  bool passed = false;
  std::string reason;  // first mismatch / failure description
  int vectors = 0;     // vectors or cycles actually compared
};

// Structural port-interface comparison (names, directions, widths against the
// golden module's ports). Shared by the diff harness and the haven::prove
// equivalence fast-path so an interface mismatch yields the same functional
// failure, with the same reason string, on either verdict path.
DiffResult check_interface(const verilog::Module& dut, const verilog::Module& golden);

// Compare candidate `dut` against `golden`. The respective SourceFiles
// provide instance definitions (may be null). Any elaboration failure,
// interface mismatch, non-convergence, or output divergence fails the test
// with a human-readable reason.
//
// `deadline`, when non-null and active, is checked between vectors/cycles
// (watchdog granularity) and throws util::DeadlineExceeded — a harness
// abort, deliberately distinct from a DUT verdict.
DiffResult run_diff_test(const verilog::Module& dut, const verilog::SourceFile* dut_file,
                         const verilog::Module& golden, const verilog::SourceFile* golden_file,
                         const StimulusSpec& spec, util::Rng& rng,
                         const util::Deadline* deadline = nullptr);

// Convenience overload working on source text; parse failures of the DUT
// fail the test (the golden source must be valid — throws otherwise).
DiffResult run_diff_test(const std::string& dut_source, const std::string& golden_source,
                         const StimulusSpec& spec, util::Rng& rng,
                         const util::Deadline* deadline = nullptr);

}  // namespace haven::sim
