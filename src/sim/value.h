// Four-state logic values for vectors up to 64 bits, with Verilog-faithful
// operator semantics (pessimistic X propagation for arithmetic, per-bit
// short-circuit for & and |, 1-bit unknown results for comparisons touching
// X). The simulator, the differential testbench, and the hallucination
// injector's behavioural checks all operate on this type.
//
// Everything except to_string() is defined inline: the v_* kernels are the
// innermost loop of both simulator backends, and keeping them visible to the
// compiler lets the bytecode executor fold an op sequence into straight-line
// bit arithmetic instead of a call per op.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace haven::sim {

class Value {
 public:
  // All-X value of the given width.
  explicit Value(int width = 1) : width_(width) {
    if (width < 1 || width > 64) throw std::invalid_argument("Value: width out of range 1..64");
    xz_ = mask();
  }

  // Fully-defined value (truncated to width).
  static Value of(std::uint64_t bits, int width) {
    Value v(width);
    v.bits_ = bits;
    v.xz_ = 0;
    v.normalize();
    return v;
  }
  // Value with explicit unknown mask.
  static Value with_xz(std::uint64_t bits, std::uint64_t xz, int width) {
    Value v(width);
    v.bits_ = bits;
    v.xz_ = xz;
    v.normalize();
    return v;
  }
  static Value all_x(int width) { return Value(width); }

  int width() const { return width_; }
  std::uint64_t bits() const { return bits_; }
  std::uint64_t xz() const { return xz_; }

  bool is_fully_defined() const { return xz_ == 0; }
  bool is_all_x() const { return xz_ == mask(); }

  // Defined-and-nonzero (Verilog truthiness for if/ternary conditions; an
  // unknown condition behaves as false in our simulator, matching common
  // event-driven simulator behaviour for 2-valued branching).
  bool truthy() const { return xz_ == 0 && bits_ != 0; }

  // Exact state equality (like ===): same width after normalization, same
  // bits, same unknowns.
  bool identical(const Value& o) const {
    return width_ == o.width_ && bits_ == o.bits_ && xz_ == o.xz_;
  }

  // Zero-extend or truncate to a new width.
  Value resized(int new_width) const {
    Value v(new_width);
    v.bits_ = bits_;
    v.xz_ = xz_;
    v.normalize();
    return v;
  }

  std::uint64_t mask() const {
    return width_ >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width_) - 1);
  }

  // Verilog string like 4'b10x1 (binary always, for test legibility).
  std::string to_string() const;

  // --- operators (widths: result max(w1,w2) unless stated) ---
  friend Value v_and(const Value& a, const Value& b);
  friend Value v_or(const Value& a, const Value& b);
  friend Value v_xor(const Value& a, const Value& b);
  friend Value v_not(const Value& a);

  friend Value v_add(const Value& a, const Value& b);
  friend Value v_sub(const Value& a, const Value& b);
  friend Value v_mul(const Value& a, const Value& b);
  friend Value v_div(const Value& a, const Value& b);
  friend Value v_mod(const Value& a, const Value& b);
  friend Value v_neg(const Value& a);

  friend Value v_shl(const Value& a, const Value& b);  // width of a
  friend Value v_shr(const Value& a, const Value& b);  // width of a

  // Relational/equality: 1-bit result, X if any participating bit unknown
  // (except == where mismatching defined bits give a definite 0).
  friend Value v_eq(const Value& a, const Value& b);
  friend Value v_neq(const Value& a, const Value& b);
  friend Value v_lt(const Value& a, const Value& b);
  friend Value v_le(const Value& a, const Value& b);
  friend Value v_gt(const Value& a, const Value& b);
  friend Value v_ge(const Value& a, const Value& b);
  friend Value v_case_eq(const Value& a, const Value& b);  // === (always defined)

  // Logical: 1-bit.
  friend Value v_logical_not(const Value& a);
  friend Value v_logical_and(const Value& a, const Value& b);
  friend Value v_logical_or(const Value& a, const Value& b);

  // Reductions: 1-bit.
  friend Value v_red_and(const Value& a);
  friend Value v_red_or(const Value& a);
  friend Value v_red_xor(const Value& a);

  friend Value v_concat(const Value& hi, const Value& lo);

 private:
  int width_ = 1;
  std::uint64_t bits_ = 0;
  std::uint64_t xz_ = 0;

  void normalize() {
    const std::uint64_t m = mask();
    xz_ &= m;
    bits_ &= m & ~xz_;  // unknown bits carry no defined value
  }

  static int max_w(const Value& a, const Value& b) { return std::max(a.width_, b.width_); }
};

inline Value v_and(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  // Bit is 0 if either side is a defined 0; unknown if both could be 1 and
  // either is unknown.
  const std::uint64_t zero_a = ~a.bits_ & ~a.xz_;
  const std::uint64_t zero_b = ~b.bits_ & ~b.xz_;
  const std::uint64_t known_zero = zero_a | zero_b;
  const std::uint64_t known_one = (a.bits_ & ~a.xz_) & (b.bits_ & ~b.xz_);
  const std::uint64_t unknown = ~(known_zero | known_one);
  return Value::with_xz(known_one, unknown, w);
}

inline Value v_or(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  const std::uint64_t one_a = a.bits_ & ~a.xz_;
  const std::uint64_t one_b = b.bits_ & ~b.xz_;
  const std::uint64_t known_one = one_a | one_b;
  const std::uint64_t known_zero = (~a.bits_ & ~a.xz_) & (~b.bits_ & ~b.xz_);
  const std::uint64_t unknown = ~(known_zero | known_one);
  return Value::with_xz(known_one, unknown, w);
}

inline Value v_xor(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  const std::uint64_t unknown = a.xz_ | b.xz_;
  return Value::with_xz((a.bits_ ^ b.bits_) & ~unknown, unknown, w);
}

inline Value v_not(const Value& a) {
  return Value::with_xz(~a.bits_ & ~a.xz_, a.xz_, a.width());
}

inline Value v_add(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined()) return Value::all_x(w);
  return Value::of(a0.bits_ + b0.bits_, w);
}

inline Value v_sub(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined()) return Value::all_x(w);
  return Value::of(a0.bits_ - b0.bits_, w);
}

inline Value v_mul(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined()) return Value::all_x(w);
  return Value::of(a0.bits_ * b0.bits_, w);
}

inline Value v_div(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined() || b0.bits_ == 0) return Value::all_x(w);
  return Value::of(a0.bits_ / b0.bits_, w);
}

inline Value v_mod(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  if (!a0.is_fully_defined() || !b0.is_fully_defined() || b0.bits_ == 0) return Value::all_x(w);
  return Value::of(a0.bits_ % b0.bits_, w);
}

inline Value v_neg(const Value& a) {
  if (!a.is_fully_defined()) return Value::all_x(a.width());
  return Value::of(~a.bits_ + 1, a.width());
}

inline Value v_shl(const Value& a, const Value& b) {
  if (!b.is_fully_defined()) return Value::all_x(a.width());
  const std::uint64_t sh = b.bits_;
  if (sh >= 64) return Value::of(0, a.width());
  return Value::with_xz(a.bits_ << sh, a.xz_ << sh, a.width());
}

inline Value v_shr(const Value& a, const Value& b) {
  if (!b.is_fully_defined()) return Value::all_x(a.width());
  const std::uint64_t sh = b.bits_;
  if (sh >= 64) return Value::of(0, a.width());
  return Value::with_xz(a.bits_ >> sh, a.xz_ >> sh, a.width());
}

inline Value v_eq(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  // Definite 0 if any bit defined on both sides differs.
  const std::uint64_t both_defined = ~a.xz_ & ~b.xz_;
  if ((a.bits_ ^ b.bits_) & both_defined) return Value::of(0, 1);
  if (a.xz_ | b.xz_) return Value::all_x(1);
  return Value::of(1, 1);
}

inline Value v_neq(const Value& a, const Value& b) {
  const Value e = v_eq(a, b);
  if (!e.is_fully_defined()) return e;
  return Value::of(e.bits_ ? 0 : 1, 1);
}

inline Value v_lt(const Value& a, const Value& b) {
  if (!a.is_fully_defined() || !b.is_fully_defined()) return Value::all_x(1);
  return Value::of(a.bits_ < b.bits_ ? 1 : 0, 1);
}
inline Value v_le(const Value& a, const Value& b) {
  if (!a.is_fully_defined() || !b.is_fully_defined()) return Value::all_x(1);
  return Value::of(a.bits_ <= b.bits_ ? 1 : 0, 1);
}
inline Value v_gt(const Value& a, const Value& b) {
  if (!a.is_fully_defined() || !b.is_fully_defined()) return Value::all_x(1);
  return Value::of(a.bits_ > b.bits_ ? 1 : 0, 1);
}
inline Value v_ge(const Value& a, const Value& b) {
  if (!a.is_fully_defined() || !b.is_fully_defined()) return Value::all_x(1);
  return Value::of(a.bits_ >= b.bits_ ? 1 : 0, 1);
}

inline Value v_case_eq(const Value& a0, const Value& b0) {
  const int w = Value::max_w(a0, b0);
  const Value a = a0.resized(w), b = b0.resized(w);
  return Value::of(a.bits_ == b.bits_ && a.xz_ == b.xz_ ? 1 : 0, 1);
}

inline Value v_logical_not(const Value& a) {
  if (a.bits_ != 0) return Value::of(0, 1);     // some defined 1 -> value nonzero
  if (a.xz_ != 0) return Value::all_x(1);       // all-zero-or-unknown -> unknown
  return Value::of(1, 1);
}

inline Value v_logical_and(const Value& a, const Value& b) {
  const Value na = v_logical_not(a), nb = v_logical_not(b);
  // a truthy <=> !a == 0.
  auto truth = [](const Value& n) -> int {  // 1 true, 0 false, -1 unknown
    if (!n.is_fully_defined()) return -1;
    return n.bits() == 0 ? 1 : 0;
  };
  const int ta = truth(na), tb = truth(nb);
  if (ta == 0 || tb == 0) return Value::of(0, 1);
  if (ta == 1 && tb == 1) return Value::of(1, 1);
  return Value::all_x(1);
}

inline Value v_logical_or(const Value& a, const Value& b) {
  const Value na = v_logical_not(a), nb = v_logical_not(b);
  auto truth = [](const Value& n) -> int {
    if (!n.is_fully_defined()) return -1;
    return n.bits() == 0 ? 1 : 0;
  };
  const int ta = truth(na), tb = truth(nb);
  if (ta == 1 || tb == 1) return Value::of(1, 1);
  if (ta == 0 && tb == 0) return Value::of(0, 1);
  return Value::all_x(1);
}

inline Value v_red_and(const Value& a) {
  // 0 if any defined 0 bit; else X if any unknown; else 1.
  if ((~a.bits_ & ~a.xz_ & a.mask()) != 0) return Value::of(0, 1);
  if (a.xz_ != 0) return Value::all_x(1);
  return Value::of(1, 1);
}

inline Value v_red_or(const Value& a) {
  if (a.bits_ != 0) return Value::of(1, 1);
  if (a.xz_ != 0) return Value::all_x(1);
  return Value::of(0, 1);
}

inline Value v_red_xor(const Value& a) {
  if (a.xz_ != 0) return Value::all_x(1);
  return Value::of(static_cast<std::uint64_t>(__builtin_popcountll(a.bits_) & 1), 1);
}

inline Value v_concat(const Value& hi, const Value& lo) {
  const int w = hi.width() + lo.width();
  if (w > 64) throw std::invalid_argument("v_concat: result wider than 64 bits");
  return Value::with_xz((hi.bits() << lo.width()) | lo.bits(),
                        (hi.xz() << lo.width()) | lo.xz(), w);
}

}  // namespace haven::sim
