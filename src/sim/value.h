// Four-state logic values for vectors up to 64 bits, with Verilog-faithful
// operator semantics (pessimistic X propagation for arithmetic, per-bit
// short-circuit for & and |, 1-bit unknown results for comparisons touching
// X). The simulator, the differential testbench, and the hallucination
// injector's behavioural checks all operate on this type.
#pragma once

#include <cstdint>
#include <string>

namespace haven::sim {

class Value {
 public:
  // All-X value of the given width.
  explicit Value(int width = 1);

  // Fully-defined value (truncated to width).
  static Value of(std::uint64_t bits, int width);
  // Value with explicit unknown mask.
  static Value with_xz(std::uint64_t bits, std::uint64_t xz, int width);
  static Value all_x(int width) { return Value(width); }

  int width() const { return width_; }
  std::uint64_t bits() const { return bits_; }
  std::uint64_t xz() const { return xz_; }

  bool is_fully_defined() const { return xz_ == 0; }
  bool is_all_x() const { return xz_ == mask(); }

  // Defined-and-nonzero (Verilog truthiness for if/ternary conditions; an
  // unknown condition behaves as false in our simulator, matching common
  // event-driven simulator behaviour for 2-valued branching).
  bool truthy() const { return xz_ == 0 && bits_ != 0; }

  // Exact state equality (like ===): same width after normalization, same
  // bits, same unknowns.
  bool identical(const Value& o) const;

  // Zero-extend or truncate to a new width.
  Value resized(int new_width) const;

  std::uint64_t mask() const;

  // Verilog string like 4'b10x1 (binary always, for test legibility).
  std::string to_string() const;

  // --- operators (widths: result max(w1,w2) unless stated) ---
  friend Value v_and(const Value& a, const Value& b);
  friend Value v_or(const Value& a, const Value& b);
  friend Value v_xor(const Value& a, const Value& b);
  friend Value v_not(const Value& a);

  friend Value v_add(const Value& a, const Value& b);
  friend Value v_sub(const Value& a, const Value& b);
  friend Value v_mul(const Value& a, const Value& b);
  friend Value v_div(const Value& a, const Value& b);
  friend Value v_mod(const Value& a, const Value& b);
  friend Value v_neg(const Value& a);

  friend Value v_shl(const Value& a, const Value& b);  // width of a
  friend Value v_shr(const Value& a, const Value& b);  // width of a

  // Relational/equality: 1-bit result, X if any participating bit unknown
  // (except == where mismatching defined bits give a definite 0).
  friend Value v_eq(const Value& a, const Value& b);
  friend Value v_neq(const Value& a, const Value& b);
  friend Value v_lt(const Value& a, const Value& b);
  friend Value v_le(const Value& a, const Value& b);
  friend Value v_gt(const Value& a, const Value& b);
  friend Value v_ge(const Value& a, const Value& b);
  friend Value v_case_eq(const Value& a, const Value& b);  // === (always defined)

  // Logical: 1-bit.
  friend Value v_logical_not(const Value& a);
  friend Value v_logical_and(const Value& a, const Value& b);
  friend Value v_logical_or(const Value& a, const Value& b);

  // Reductions: 1-bit.
  friend Value v_red_and(const Value& a);
  friend Value v_red_or(const Value& a);
  friend Value v_red_xor(const Value& a);

  friend Value v_concat(const Value& hi, const Value& lo);

 private:
  int width_ = 1;
  std::uint64_t bits_ = 0;
  std::uint64_t xz_ = 0;

  void normalize();
};

}  // namespace haven::sim
