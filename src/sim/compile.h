// One-shot compiler from an elaborated design to a flat bytecode Program
// (see sim/program.h for the IR and executor, DESIGN.md §10 for the
// equivalence argument).
//
// Lowering rules that preserve the interpreter's lazy-error contract:
//  * references to undeclared identifiers, unsupported operators, and
//    unsupported lvalue shapes compile to kThrow ops placed at the exact
//    point the interpreter would fault, so designs that never execute the
//    offending code behave identically;
//  * ternaries whose branches are provably throw-free lower to a strict
//    kSelect (both branches evaluated, branch-free); otherwise to the
//    branchy form that evaluates exactly the branches the interpreter would;
//  * literals and selects with out-of-range widths materialize lazily.
//
// Levelization: when every combinational process is a pure, throw-free,
// path-independent function of signals it does not write (the precise
// conditions are documented in DESIGN.md §10), the combinational graph is
// topologically sorted and the active region executes each affected process
// once in dependency order. Any violation — cycles, potential throws,
// latch-shaped bodies, dynamic-index writes, multi-driven bits, NBAs or for
// loops in comb processes, over-deep chains — falls back to the
// interpreter-identical event-driven delta loop for the whole design.
#pragma once

#include "sim/elaborate.h"
#include "sim/program.h"

namespace haven::sim {

// Throws ElabError for the same eager faults as the Simulator constructor
// (an edge on an unknown signal); everything else stays lazy.
Program compile(const ElabDesign& design);

}  // namespace haven::sim
