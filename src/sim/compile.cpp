#include "sim/compile.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace haven::sim {

using verilog::CaseKind;
using verilog::Edge;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::StmtKind;
using verilog::StmtPtr;

namespace {

// Levelized combinational chains deeper than this fall back to event-driven
// execution: the interpreter's delta cap (1000) could fire on very deep
// chains, and staying far below it keeps the convergence flag provably
// identical between backends. Real designs are nowhere near this.
constexpr int kMaxCombDepth = 64;

// Per-signal bit masks definitely/possibly written by a statement.
using WriteMap = std::map<std::uint32_t, std::uint64_t>;

bool is_known_unary(const std::string& op) {
  return op == "~" || op == "!" || op == "-" || op == "&" || op == "|" ||
         op == "^" || op == "~&" || op == "~|" || op == "~^" || op == "^~";
}

bool is_known_binary(const std::string& op) {
  static const std::set<std::string> kOps = {
      "&",  "|",  "^",  "~^", "^~", "~&", "~|", "+",  "-",   "*",  "/",
      "%",  "<<", "<<<", ">>", ">>>", "==", "!=", "===", "!==", "<",
      "<=", ">",  ">=", "&&", "||", "**"};
  return kOps.contains(op);
}

class Compiler {
 public:
  explicit Compiler(const ElabDesign& design) : design_(design) {}

  Program run() {
    prog_.top = design_.top;
    const std::size_t nsig = design_.signals.size();
    nsig_ = static_cast<std::uint32_t>(nsig);
    max_regs_ = nsig_;
    prog_.signals.reserve(nsig);
    for (const auto& sig : design_.signals) {
      prog_.signals.push_back({sig.name, sig.width, sig.is_input, sig.is_output});
    }
    for (const auto& [name, id] : design_.signal_ids) {
      prog_.signal_slots[name] = static_cast<std::uint32_t>(id);
    }
    prog_.inputs = design_.inputs;
    prog_.outputs = design_.outputs;

    for (std::size_t pi = 0; pi < design_.processes.size(); ++pi) {
      const ElabProcess& p = design_.processes[pi];
      ProgProcess pp;
      pp.kind = p.kind;
      if (p.kind == ProcessKind::kClocked) {
        for (const auto& e : p.edges) {
          const auto sl = slot(e.signal);
          if (!sl) throw ElabError("edge on unknown signal '" + e.signal + "'");
          pp.edges.emplace_back(*sl, e.edge);
        }
      }
      next_temp_ = nsig_;
      pp.begin = here();
      if (p.kind == ProcessKind::kContAssign) {
        const std::uint32_t rv = compile_expr(p.rhs);
        compile_store(p.lhs, rv, /*nonblocking=*/false);
      } else if (p.body) {
        compile_stmt(p.body);
      }
      pp.end = here();
      prog_.processes.push_back(std::move(pp));
      if (p.kind == ProcessKind::kInitial) {
        prog_.initial_procs.push_back(static_cast<std::uint32_t>(pi));
      }
    }
    prog_.num_regs = max_regs_;

    build_watchers();
    levelize();
    return std::move(prog_);
  }

 private:
  // --- emission helpers ------------------------------------------------------

  std::uint32_t here() const { return static_cast<std::uint32_t>(prog_.code.size()); }

  std::uint32_t emit(Op op, std::uint8_t mode = 0, std::uint32_t dst = 0,
                     std::uint32_t a = 0, std::uint32_t b = 0, std::uint32_t c = 0) {
    prog_.code.push_back({op, mode, dst, a, b, c});
    return here() - 1;
  }

  void patch(std::uint32_t at) { prog_.code[at].dst = here(); }

  std::uint32_t temp() {
    const std::uint32_t t = next_temp_++;
    max_regs_ = std::max(max_regs_, next_temp_);
    return t;
  }

  std::uint32_t const_id(const Value& v) {
    const auto key = std::make_tuple(v.bits(), v.xz(), v.width());
    const auto it = const_pool_.find(key);
    if (it != const_pool_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(prog_.consts.size());
    prog_.consts.push_back(v);
    const_pool_[key] = id;
    return id;
  }

  // Emit a lazy fault at this execution point; returns a scratch register so
  // expression lowering can keep a (dead) operand to hand upward.
  std::uint32_t throw_op(const std::string& msg) {
    const auto it = msg_pool_.find(msg);
    std::uint32_t id;
    if (it != msg_pool_.end()) {
      id = it->second;
    } else {
      id = static_cast<std::uint32_t>(prog_.messages.size());
      prog_.messages.push_back(msg);
      msg_pool_[msg] = id;
    }
    emit(Op::kThrow, 0, 0, id);
    return temp();
  }

  std::optional<std::uint32_t> slot(const std::string& name) const {
    const auto it = design_.signal_ids.find(name);
    if (it == design_.signal_ids.end()) return std::nullopt;
    return static_cast<std::uint32_t>(it->second);
  }

  // --- static analysis -------------------------------------------------------

  // Width of an expression when statically determined; nullopt when dynamic
  // (e.g. a ternary with different branch widths) or faulting.
  std::optional<int> static_width(const ExprPtr& e) const {
    switch (e->kind) {
      case ExprKind::kNumber:
        if (e->number.width < 1 || e->number.width > 64) return std::nullopt;
        return e->number.width;
      case ExprKind::kIdent: {
        const auto sl = slot(e->ident);
        if (!sl) return std::nullopt;
        return design_.signals[*sl].width;
      }
      case ExprKind::kUnary: {
        const std::string& op = e->op;
        if (op == "~" || op == "-") return static_width(e->operands[0]);
        if (is_known_unary(op)) return 1;
        return std::nullopt;
      }
      case ExprKind::kBinary: {
        const std::string& op = e->op;
        if (op == "&" || op == "|" || op == "^" || op == "~^" || op == "^~" ||
            op == "~&" || op == "~|" || op == "+" || op == "-" || op == "*" ||
            op == "/" || op == "%") {
          const auto a = static_width(e->operands[0]);
          const auto b = static_width(e->operands[1]);
          if (!a || !b) return std::nullopt;
          return std::max(*a, *b);
        }
        if (op == "<<" || op == "<<<" || op == ">>" || op == ">>>" || op == "**") {
          return static_width(e->operands[0]);
        }
        if (is_known_binary(op)) return 1;  // comparisons and logicals
        return std::nullopt;
      }
      case ExprKind::kTernary: {
        const auto t = static_width(e->operands[1]);
        const auto f = static_width(e->operands[2]);
        if (t && f && *t == *f) return *t;
        return std::nullopt;
      }
      case ExprKind::kConcat: {
        int total = 0;
        for (const auto& c : e->operands) {
          const auto w = static_width(c);
          if (!w) return std::nullopt;
          total += *w;
        }
        return total;
      }
      case ExprKind::kReplicate: {
        if (e->repeat > 64) return std::nullopt;
        const auto w = static_width(e->operands[0]);
        if (!w) return std::nullopt;
        return static_cast<int>(e->repeat) * *w;
      }
      case ExprKind::kBitSelect:
        return 1;
      case ExprKind::kPartSelect:
        return std::abs(e->msb - e->lsb) + 1;
    }
    return std::nullopt;
  }

  // Whether evaluating this expression can throw (lazy ElabError on
  // undeclared identifiers / unsupported operators, invalid_argument on
  // out-of-range widths). Conservative: unknown-width concats count.
  bool can_throw(const ExprPtr& e) const {
    switch (e->kind) {
      case ExprKind::kNumber:
        return e->number.width < 1 || e->number.width > 64;
      case ExprKind::kIdent:
        return !slot(e->ident);
      case ExprKind::kBitSelect:
        return !slot(e->ident) || can_throw(e->operands[0]);
      case ExprKind::kPartSelect:
        return !slot(e->ident) || std::abs(e->msb - e->lsb) + 1 > 64;
      case ExprKind::kUnary:
        return !is_known_unary(e->op) || can_throw(e->operands[0]);
      case ExprKind::kBinary:
        return !is_known_binary(e->op) || can_throw(e->operands[0]) ||
               can_throw(e->operands[1]);
      case ExprKind::kTernary:
        return can_throw(e->operands[0]) || can_throw(e->operands[1]) ||
               can_throw(e->operands[2]);
      case ExprKind::kConcat: {
        for (const auto& c : e->operands) {
          if (can_throw(c)) return true;
        }
        const auto w = static_width(e);
        return !w || *w > 64;
      }
      case ExprKind::kReplicate: {
        if (can_throw(e->operands[0])) return true;
        if (e->repeat > 64) return true;
        const auto w = static_width(e->operands[0]);
        return !w || static_cast<std::uint64_t>(e->repeat) * *w > 64;
      }
    }
    return true;
  }

  // --- expression lowering ---------------------------------------------------

  // Returns the register holding the value: a signal slot for plain
  // identifier reads, a fresh scratch register otherwise.
  std::uint32_t compile_expr(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kNumber: {
        const auto& n = e->number;
        const std::uint32_t t = temp();
        if (n.width >= 1 && n.width <= 64) {
          emit(Op::kConst, 0, t, const_id(Value::with_xz(n.value, n.xz_mask, n.width)));
        } else {
          const auto id = static_cast<std::uint32_t>(prog_.raw_numbers.size());
          prog_.raw_numbers.push_back({n.value, n.xz_mask, n.width});
          emit(Op::kConst, 1, t, id);
        }
        return t;
      }
      case ExprKind::kIdent: {
        const auto sl = slot(e->ident);
        if (!sl) return throw_op("evaluation of undeclared identifier '" + e->ident + "'");
        return *sl;
      }
      case ExprKind::kBitSelect: {
        const auto base = slot(e->ident);
        if (!base) return throw_op("evaluation of undeclared identifier '" + e->ident + "'");
        const std::uint32_t ri = compile_expr(e->operands[0]);
        const std::uint32_t t = temp();
        emit(Op::kBitDyn, 0, t, *base, ri);
        return t;
      }
      case ExprKind::kPartSelect: {
        const auto base = slot(e->ident);
        if (!base) return throw_op("evaluation of undeclared identifier '" + e->ident + "'");
        const int hi = std::max(e->msb, e->lsb);
        const int lo = std::min(e->msb, e->lsb);
        const int w = hi - lo + 1;
        const std::uint32_t t = temp();
        if (lo >= design_.signals[*base].width) {
          emit(Op::kSlice, 1, t, 0, 0, static_cast<std::uint32_t>(w));
        } else {
          emit(Op::kSlice, 0, t, *base, static_cast<std::uint32_t>(lo),
               static_cast<std::uint32_t>(w));
        }
        return t;
      }
      case ExprKind::kUnary: {
        const std::uint32_t a = compile_expr(e->operands[0]);
        const std::string& op = e->op;
        const auto un = [&](Op o) {
          const std::uint32_t t = temp();
          emit(o, 0, t, a);
          return t;
        };
        const auto un_not = [&](Op o) {
          const std::uint32_t r1 = un(o);
          const std::uint32_t t = temp();
          emit(Op::kNot, 0, t, r1);
          return t;
        };
        if (op == "~") return un(Op::kNot);
        if (op == "!") return un(Op::kLogNot);
        if (op == "-") return un(Op::kNeg);
        if (op == "&") return un(Op::kRedAnd);
        if (op == "|") return un(Op::kRedOr);
        if (op == "^") return un(Op::kRedXor);
        if (op == "~&") return un_not(Op::kRedAnd);
        if (op == "~|") return un_not(Op::kRedOr);
        if (op == "~^" || op == "^~") return un_not(Op::kRedXor);
        return throw_op("unsupported unary operator '" + op + "'");
      }
      case ExprKind::kBinary: {
        const std::uint32_t a = compile_expr(e->operands[0]);
        const std::uint32_t b = compile_expr(e->operands[1]);
        const std::string& op = e->op;
        const auto bin = [&](Op o) {
          const std::uint32_t t = temp();
          emit(o, 0, t, a, b);
          return t;
        };
        const auto bin_not = [&](Op o) {
          const std::uint32_t r1 = bin(o);
          const std::uint32_t t = temp();
          emit(Op::kNot, 0, t, r1);
          return t;
        };
        if (op == "&") return bin(Op::kAnd);
        if (op == "|") return bin(Op::kOr);
        if (op == "^") return bin(Op::kXor);
        if (op == "~^" || op == "^~") return bin_not(Op::kXor);
        if (op == "~&") return bin_not(Op::kAnd);
        if (op == "~|") return bin_not(Op::kOr);
        if (op == "+") return bin(Op::kAdd);
        if (op == "-") return bin(Op::kSub);
        if (op == "*") return bin(Op::kMul);
        if (op == "/") return bin(Op::kDiv);
        if (op == "%") return bin(Op::kMod);
        if (op == "<<" || op == "<<<") return bin(Op::kShl);
        if (op == ">>" || op == ">>>") return bin(Op::kShr);
        if (op == "==") return bin(Op::kEq);
        if (op == "!=") return bin(Op::kNeq);
        if (op == "===") return bin(Op::kCaseEq);
        if (op == "!==") {
          const std::uint32_t r1 = bin(Op::kCaseEq);
          const std::uint32_t t = temp();
          emit(Op::kLogNot, 0, t, r1);
          return t;
        }
        if (op == "<") return bin(Op::kLt);
        if (op == "<=") return bin(Op::kLe);
        if (op == ">") return bin(Op::kGt);
        if (op == ">=") return bin(Op::kGe);
        if (op == "&&") return bin(Op::kLogAnd);
        if (op == "||") return bin(Op::kLogOr);
        if (op == "**") return bin(Op::kPow);
        return throw_op("unsupported binary operator '" + op + "'");
      }
      case ExprKind::kTernary: {
        const std::uint32_t rc = compile_expr(e->operands[0]);
        if (!can_throw(e->operands[1]) && !can_throw(e->operands[2])) {
          // Both branches are pure: evaluate strictly, select branch-free.
          const std::uint32_t rt = compile_expr(e->operands[1]);
          const std::uint32_t rf = compile_expr(e->operands[2]);
          const std::uint32_t t = temp();
          emit(Op::kSelect, 0, t, rc, rt, rf);
          return t;
        }
        // A branch may fault: evaluate exactly what the interpreter would.
        const std::uint32_t t = temp();
        const std::uint32_t j_then = emit(Op::kJumpIfTrue, 0, 0, rc);
        const std::uint32_t j_else = emit(Op::kJumpIfDefined, 0, 0, rc);
        {  // undefined condition: both branches, X-merged
          const std::uint32_t rt = compile_expr(e->operands[1]);
          const std::uint32_t rf = compile_expr(e->operands[2]);
          emit(Op::kMergeX, 0, t, rt, rf);
        }
        const std::uint32_t j_end1 = emit(Op::kJump);
        patch(j_then);
        {
          const std::uint32_t rt = compile_expr(e->operands[1]);
          emit(Op::kMove, 0, t, rt);
        }
        const std::uint32_t j_end2 = emit(Op::kJump);
        patch(j_else);
        {
          const std::uint32_t rf = compile_expr(e->operands[2]);
          emit(Op::kMove, 0, t, rf);
        }
        patch(j_end1);
        patch(j_end2);
        return t;
      }
      case ExprKind::kConcat: {
        std::uint32_t acc = compile_expr(e->operands[0]);
        for (std::size_t i = 1; i < e->operands.size(); ++i) {
          const std::uint32_t b = compile_expr(e->operands[i]);
          const std::uint32_t t = temp();
          emit(Op::kConcat, 0, t, acc, b);
          acc = t;
        }
        return acc;
      }
      case ExprKind::kReplicate: {
        const std::uint32_t inner = compile_expr(e->operands[0]);
        if (e->repeat > 64) return throw_op("replication wider than 64 bits");
        const std::uint32_t t = temp();
        emit(Op::kReplicate, 0, t, inner, static_cast<std::uint32_t>(e->repeat));
        return t;
      }
    }
    return throw_op("corrupt expression node");
  }

  // --- statement lowering ----------------------------------------------------

  void compile_stmt(const StmtPtr& s) {
    if (!s) return;
    emit(Op::kStep);  // the interpreter bumps once per executed statement
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& c : s->stmts) compile_stmt(c);
        return;
      case StmtKind::kBlockingAssign: {
        const std::uint32_t rv = compile_expr(s->rhs);
        compile_store(s->lhs, rv, /*nonblocking=*/false);
        return;
      }
      case StmtKind::kNonblockingAssign: {
        const std::uint32_t rv = compile_expr(s->rhs);
        compile_store(s->lhs, rv, /*nonblocking=*/true);
        return;
      }
      case StmtKind::kIf: {
        const std::uint32_t rc = compile_expr(s->cond);
        const std::uint32_t j_false = emit(Op::kJumpIfFalse, 0, 0, rc);
        compile_stmt(s->then_branch);
        if (s->else_branch) {
          const std::uint32_t j_end = emit(Op::kJump);
          patch(j_false);
          compile_stmt(s->else_branch);
          patch(j_end);
        } else {
          patch(j_false);
        }
        return;
      }
      case StmtKind::kCase: {
        const std::uint32_t rs = compile_expr(s->cond);
        // Label tests in item order (first match wins), then the default
        // body inline on fall-through, then the labelled bodies.
        const verilog::CaseItem* default_item = nullptr;
        std::vector<std::pair<const verilog::CaseItem*, std::vector<std::uint32_t>>> bodies;
        for (const auto& item : s->case_items) {
          if (item.labels.empty()) {
            default_item = &item;
            continue;
          }
          std::vector<std::uint32_t> jumps;
          for (const auto& label : item.labels) {
            const std::uint32_t rl = compile_expr(label);
            const std::uint32_t rm = temp();
            emit(Op::kCaseCmp, static_cast<std::uint8_t>(s->case_kind), rm, rs, rl);
            jumps.push_back(emit(Op::kJumpIfTrue, 0, 0, rm));
          }
          bodies.emplace_back(&item, std::move(jumps));
        }
        if (default_item) compile_stmt(default_item->body);
        std::vector<std::uint32_t> ends;
        ends.push_back(emit(Op::kJump));
        for (const auto& [item, jumps] : bodies) {
          for (const std::uint32_t j : jumps) patch(j);
          compile_stmt(item->body);
          ends.push_back(emit(Op::kJump));
        }
        for (const std::uint32_t j : ends) patch(j);
        return;
      }
      case StmtKind::kFor: {
        const std::uint32_t rv = compile_expr(s->rhs);
        compile_store(s->lhs, rv, /*nonblocking=*/false);
        const std::uint32_t counter = prog_.num_loops++;
        emit(Op::kLoopInit, 0, 0, counter);
        const std::uint32_t head = here();
        const std::uint32_t rc = compile_expr(s->cond);
        const std::uint32_t j_exit = emit(Op::kJumpIfFalse, 0, 0, rc);
        const std::uint32_t j_guard = emit(Op::kLoopGuard, 0, 0, counter);
        compile_stmt(s->body);
        const std::uint32_t rstep = compile_expr(s->step_rhs);
        compile_store(s->step_lhs, rstep, /*nonblocking=*/false);
        emit(Op::kJump, 0, head);
        patch(j_exit);
        patch(j_guard);
        return;
      }
    }
  }

  // Store the value in `rv` into an lvalue, preserving the interpreter's
  // fault points and evaluation order (widths before distribution, base
  // resolution before index evaluation).
  void compile_store(const ExprPtr& lhs, std::uint32_t rv, bool nonblocking) {
    if (lhs->kind == ExprKind::kConcat) {
      int total = 0;
      std::vector<int> widths;
      for (const auto& part : lhs->operands) {
        int w = 1;
        if (part->kind == ExprKind::kIdent) {
          const auto sl = slot(part->ident);
          if (!sl) {
            throw_op("unknown signal '" + part->ident + "'");
            return;
          }
          w = design_.signals[*sl].width;
        } else if (part->kind == ExprKind::kBitSelect) {
          w = 1;
        } else if (part->kind == ExprKind::kPartSelect) {
          w = std::abs(part->msb - part->lsb) + 1;
        } else {
          throw_op("unsupported concat lvalue part");
          return;
        }
        widths.push_back(w);
        total += w;
      }
      const std::uint32_t rvv = temp();
      emit(Op::kResize, 0, rvv, rv, static_cast<std::uint32_t>(total));
      int offset = total;
      for (std::size_t i = 0; i < lhs->operands.size(); ++i) {
        offset -= widths[i];
        const std::uint32_t rs = temp();
        emit(Op::kSlice, 0, rs, rvv, static_cast<std::uint32_t>(offset),
             static_cast<std::uint32_t>(widths[i]));
        store_simple(lhs->operands[i], rs, nonblocking);
      }
      return;
    }
    store_simple(lhs, rv, nonblocking);
  }

  void store_simple(const ExprPtr& lhs, std::uint32_t rv, bool nonblocking) {
    const auto sl = slot(lhs->ident);
    if (!sl) {
      throw_op("unknown signal '" + lhs->ident + "'");
      return;
    }
    if (lhs->kind == ExprKind::kIdent) {
      const int hi = design_.signals[*sl].width - 1;
      emit(nonblocking ? Op::kNbaSig : Op::kStoreSig, 0, *sl, rv,
           static_cast<std::uint32_t>(hi), 0);
    } else if (lhs->kind == ExprKind::kBitSelect) {
      const std::uint32_t ri = compile_expr(lhs->operands[0]);
      emit(nonblocking ? Op::kNbaBitDyn : Op::kStoreBitDyn, 0, *sl, rv, ri);
    } else if (lhs->kind == ExprKind::kPartSelect) {
      const int hi = std::max(lhs->msb, lhs->lsb);
      const int lo = std::min(lhs->msb, lhs->lsb);
      emit(nonblocking ? Op::kNbaSig : Op::kStoreSig, 0, *sl, rv,
           static_cast<std::uint32_t>(hi), static_cast<std::uint32_t>(lo));
    } else {
      throw_op("unsupported lvalue");
    }
  }

  // --- watcher tables --------------------------------------------------------

  void build_watchers() {
    prog_.comb_watchers.assign(nsig_, {});
    prog_.edge_watchers.assign(nsig_, {});
    for (std::size_t pi = 0; pi < design_.processes.size(); ++pi) {
      const ElabProcess& p = design_.processes[pi];
      if (p.kind == ProcessKind::kComb || p.kind == ProcessKind::kContAssign) {
        for (const auto& name : p.read_set) {
          const auto sl = slot(name);
          if (sl) prog_.comb_watchers[*sl].push_back(static_cast<std::uint32_t>(pi));
        }
      } else if (p.kind == ProcessKind::kClocked) {
        for (const auto& [eslot, edge] : prog_.processes[pi].edges) {
          (void)edge;
          prog_.edge_watchers[eslot].push_back(static_cast<std::uint32_t>(pi));
        }
      }
    }
    for (std::uint32_t s = 0; s < nsig_; ++s) {
      if (!prog_.edge_watchers[s].empty()) prog_.edge_sigs.push_back(s);
    }
  }

  // --- levelization ----------------------------------------------------------

  // Bit mask of a statically-shaped lvalue; nullopt for dynamic indices,
  // undeclared bases, or unsupported shapes.
  std::optional<WriteMap> lvalue_mask(const ExprPtr& lhs) const {
    WriteMap m;
    const auto add = [&](std::uint32_t sl, int hi, int lo) {
      if (lo >= 64 || lo < 0 || hi < lo) return;
      const int w = hi - lo + 1;
      const std::uint64_t field =
          (w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1)) << lo;
      const int sw = design_.signals[sl].width;
      const std::uint64_t sig_mask =
          sw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << sw) - 1);
      if (field & sig_mask) m[sl] |= field & sig_mask;
    };
    const auto one = [&](const ExprPtr& part) -> bool {
      const auto sl = slot(part->ident);
      if (!sl) return false;
      if (part->kind == ExprKind::kIdent) {
        add(*sl, design_.signals[*sl].width - 1, 0);
        return true;
      }
      if (part->kind == ExprKind::kPartSelect) {
        add(*sl, std::max(part->msb, part->lsb), std::min(part->msb, part->lsb));
        return true;
      }
      return false;  // dynamic bit select or unsupported shape
    };
    if (lhs->kind == ExprKind::kConcat) {
      for (const auto& part : lhs->operands) {
        if (!one(part)) return std::nullopt;
      }
      return m;
    }
    if (!one(lhs)) return std::nullopt;
    return m;
  }

  struct MaskInfo {
    WriteMap may, must;
    bool ok = true;
    static MaskInfo failed() {
      MaskInfo m;
      m.ok = false;
      return m;
    }
  };

  // may = bits written on some path, must = bits written on every path. A
  // body is path-independent (safe to run once with final inputs) iff
  // may == must: the final execution then overwrites everything any earlier
  // partial-input execution could have written.
  MaskInfo stmt_masks(const StmtPtr& s) const {
    MaskInfo info;
    if (!s) return info;
    const auto merge_union = [](WriteMap& into, const WriteMap& from) {
      for (const auto& [sl, mask] : from) into[sl] |= mask;
    };
    const auto merge_intersect = [](const WriteMap& a, const WriteMap& b) {
      WriteMap out;
      for (const auto& [sl, mask] : a) {
        const auto it = b.find(sl);
        if (it != b.end() && (mask & it->second)) out[sl] = mask & it->second;
      }
      return out;
    };
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& c : s->stmts) {
          const MaskInfo ci = stmt_masks(c);
          if (!ci.ok) return MaskInfo::failed();
          merge_union(info.may, ci.may);
          merge_union(info.must, ci.must);
        }
        return info;
      case StmtKind::kBlockingAssign: {
        const auto m = lvalue_mask(s->lhs);
        if (!m) return MaskInfo::failed();
        info.may = *m;
        info.must = *m;
        return info;
      }
      case StmtKind::kNonblockingAssign:
        // NBAs queued during combinational settling commit whenever the next
        // edge fires — keep the event-driven schedule for those designs.
        return MaskInfo::failed();
      case StmtKind::kIf: {
        const MaskInfo a = stmt_masks(s->then_branch);
        const MaskInfo b = stmt_masks(s->else_branch);
        if (!a.ok || !b.ok) return MaskInfo::failed();
        info.may = a.may;
        merge_union(info.may, b.may);
        info.must = merge_intersect(a.must, b.must);
        return info;
      }
      case StmtKind::kCase: {
        bool have_default = false;
        bool first = true;
        for (const auto& item : s->case_items) {
          if (item.labels.empty()) have_default = true;
          const MaskInfo ci = stmt_masks(item.body);
          if (!ci.ok) return MaskInfo::failed();
          merge_union(info.may, ci.may);
          if (first) {
            info.must = ci.must;
            first = false;
          } else {
            info.must = merge_intersect(info.must, ci.must);
          }
        }
        // Without a default, a no-match execution writes nothing.
        if (!have_default) info.must.clear();
        return info;
      }
      case StmtKind::kFor:
        // A loop executed with skewed intermediate inputs could trip the
        // iteration guard (converged := false) where the final-input
        // execution would not; keep those event-driven.
        return MaskInfo::failed();
    }
    return MaskInfo::failed();
  }

  // No expression anywhere in the body may fault: an intermediate-input
  // execution of the event-driven schedule could take a faulting branch the
  // final-input execution (the only one levelized mode runs) would not.
  bool body_throw_free(const StmtPtr& s) const {
    if (!s) return true;
    switch (s->kind) {
      case StmtKind::kBlock:
        return std::all_of(s->stmts.begin(), s->stmts.end(),
                           [&](const StmtPtr& c) { return body_throw_free(c); });
      case StmtKind::kBlockingAssign:
      case StmtKind::kNonblockingAssign:
        return !can_throw(s->rhs);
      case StmtKind::kIf:
        return !can_throw(s->cond) && body_throw_free(s->then_branch) &&
               body_throw_free(s->else_branch);
      case StmtKind::kCase: {
        if (can_throw(s->cond)) return false;
        for (const auto& item : s->case_items) {
          for (const auto& l : item.labels) {
            if (can_throw(l)) return false;
          }
          if (!body_throw_free(item.body)) return false;
        }
        return true;
      }
      case StmtKind::kFor:
        return false;  // excluded by stmt_masks anyway
    }
    return false;
  }

  // --- write-before-read self-reads ------------------------------------------

  // True iff every read in `e` of a signal in `targets` sees all of that
  // signal's target bits already must-written (`written`): the body's entry
  // value for the signal is dead at such a read.
  bool expr_reads_dominated(const ExprPtr& e, const WriteMap& targets,
                            const WriteMap& written) const {
    const auto covered = [&](const std::string& name) {
      const auto sl = slot(name);
      if (!sl) return true;  // undeclared reads are rejected by can_throw
      const auto t = targets.find(*sl);
      if (t == targets.end()) return true;  // not written by this body
      const auto w = written.find(*sl);
      return w != written.end() && (w->second & t->second) == t->second;
    };
    switch (e->kind) {
      case ExprKind::kIdent:
      case ExprKind::kBitSelect:
      case ExprKind::kPartSelect:
        if (!covered(e->ident)) return false;
        break;
      default:
        break;
    }
    for (const auto& c : e->operands) {
      if (!expr_reads_dominated(c, targets, written)) return false;
    }
    return true;
  }

  // Walks a body in execution order tracking the bits must-written so far;
  // false as soon as a read of a self-written signal can precede its write.
  bool stmt_reads_dominated(const StmtPtr& s, const WriteMap& targets,
                            WriteMap& written) const {
    if (!s) return true;
    const auto intersect = [](const WriteMap& a, const WriteMap& b) {
      WriteMap out;
      for (const auto& [sl, mask] : a) {
        const auto it = b.find(sl);
        if (it != b.end() && (mask & it->second)) out[sl] = mask & it->second;
      }
      return out;
    };
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& c : s->stmts) {
          if (!stmt_reads_dominated(c, targets, written)) return false;
        }
        return true;
      case StmtKind::kBlockingAssign: {
        if (!expr_reads_dominated(s->rhs, targets, written)) return false;
        const auto m = lvalue_mask(s->lhs);
        if (!m) return false;  // dynamic lvalues are rejected by stmt_masks
        for (const auto& [sl, mask] : *m) written[sl] |= mask;
        return true;
      }
      case StmtKind::kIf: {
        if (!expr_reads_dominated(s->cond, targets, written)) return false;
        WriteMap then_written = written;
        WriteMap else_written = written;
        if (!stmt_reads_dominated(s->then_branch, targets, then_written)) return false;
        if (!stmt_reads_dominated(s->else_branch, targets, else_written)) return false;
        written = intersect(then_written, else_written);
        return true;
      }
      case StmtKind::kCase: {
        if (!expr_reads_dominated(s->cond, targets, written)) return false;
        // Labels are evaluated before any body runs; check them all against
        // the entry state.
        for (const auto& item : s->case_items) {
          for (const auto& l : item.labels) {
            if (!expr_reads_dominated(l, targets, written)) return false;
          }
        }
        bool have_default = false;
        WriteMap out;
        bool first = true;
        for (const auto& item : s->case_items) {
          if (item.labels.empty()) have_default = true;
          WriteMap body_written = written;
          if (!stmt_reads_dominated(item.body, targets, body_written)) return false;
          if (first) {
            out = std::move(body_written);
            first = false;
          } else {
            out = intersect(out, body_written);
          }
        }
        if (!have_default || first) out = first ? written : intersect(out, written);
        written = std::move(out);
        return true;
      }
      case StmtKind::kNonblockingAssign:
      case StmtKind::kFor:
        return false;  // excluded by stmt_masks before this runs
    }
    return false;
  }

  void levelize() {
    std::vector<std::uint32_t> comb;
    for (std::size_t pi = 0; pi < design_.processes.size(); ++pi) {
      const ProcessKind k = design_.processes[pi].kind;
      if (k == ProcessKind::kComb || k == ProcessKind::kContAssign) {
        comb.push_back(static_cast<std::uint32_t>(pi));
      }
    }
    prog_.comb_rank.assign(design_.processes.size(), UINT32_MAX);
    if (comb.empty()) {
      prog_.levelized = true;  // nothing combinational to schedule
      return;
    }

    const std::size_t n = comb.size();
    std::vector<WriteMap> writes(n);
    for (std::size_t k = 0; k < n; ++k) {
      const ElabProcess& p = design_.processes[comb[k]];
      std::optional<WriteMap> wm;
      if (p.kind == ProcessKind::kContAssign) {
        if (can_throw(p.rhs)) return;
        wm = lvalue_mask(p.lhs);
      } else {
        const MaskInfo info = stmt_masks(p.body);
        if (!info.ok || info.may != info.must || !body_throw_free(p.body)) return;
        // The sensitivity list must cover every read, otherwise the
        // event-driven schedule deliberately *keeps* stale values that a
        // dependency-ordered schedule would refresh.
        for (const auto& name : statement_read_set(p.body)) {
          if (!p.read_set.contains(name)) return;
        }
        wm = info.may;
      }
      if (!wm) return;
      // Self reads are allowed only in write-before-read position: every read
      // of a signal the body writes must be preceded, on every path, by
      // must-writes covering all the bits the body ever writes to it. The
      // entry value is then dead, so one final-input execution computes the
      // event-driven fixpoint (the FSM `next`-then-output idiom). Anything
      // that can see its previous iteration's value — a continuous assign
      // reading its lvalue, a latch, an oscillator — keeps the delta loop.
      bool self_read = false;
      for (const auto& [sl, mask] : *wm) {
        (void)mask;
        if (p.read_set.contains(design_.signals[sl].name)) {
          self_read = true;
          break;
        }
      }
      if (self_read) {
        if (p.kind != ProcessKind::kComb) return;
        WriteMap written;
        if (!stmt_reads_dominated(p.body, *wm, written)) return;
      }
      writes[k] = std::move(*wm);
    }

    // Every driven bit needs exactly one combinational writer, or the
    // last-writer-wins order of the delta loop becomes observable.
    std::map<std::uint32_t, std::uint64_t> driven;
    std::map<std::uint32_t, std::vector<std::uint32_t>> writers_of;
    for (std::size_t k = 0; k < n; ++k) {
      for (const auto& [sl, mask] : writes[k]) {
        if (driven[sl] & mask) return;
        driven[sl] |= mask;
        writers_of[sl].push_back(static_cast<std::uint32_t>(k));
      }
    }

    // Dependency graph: writer -> reader, topologically sorted (ascending
    // process id among ready nodes for determinism), depth-capped.
    std::vector<std::vector<std::uint32_t>> adj(n);
    std::vector<std::uint32_t> indeg(n, 0);
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::size_t k2 = 0; k2 < n; ++k2) {
      for (const auto& name : design_.processes[comb[k2]].read_set) {
        const auto sl = slot(name);
        if (!sl) continue;
        const auto it = writers_of.find(*sl);
        if (it == writers_of.end()) continue;
        for (const std::uint32_t k1 : it->second) {
          if (k1 == k2) continue;  // write-before-read self-reads carry no edge
          if (seen.emplace(k1, static_cast<std::uint32_t>(k2)).second) {
            adj[k1].push_back(static_cast<std::uint32_t>(k2));
            ++indeg[k2];
          }
        }
      }
    }
    std::set<std::uint32_t> ready;
    for (std::uint32_t k = 0; k < n; ++k) {
      if (indeg[k] == 0) ready.insert(k);
    }
    std::vector<std::uint32_t> order;
    std::vector<int> depth(n, 1);
    while (!ready.empty()) {
      const std::uint32_t k = *ready.begin();
      ready.erase(ready.begin());
      order.push_back(comb[k]);
      for (const std::uint32_t k2 : adj[k]) {
        depth[k2] = std::max(depth[k2], depth[k] + 1);
        if (--indeg[k2] == 0) ready.insert(k2);
      }
    }
    if (order.size() != n) return;  // combinational cycle
    if (*std::max_element(depth.begin(), depth.end()) > kMaxCombDepth) return;

    prog_.levelized = true;
    prog_.comb_order = std::move(order);
    for (std::uint32_t rank = 0; rank < prog_.comb_order.size(); ++rank) {
      prog_.comb_rank[prog_.comb_order[rank]] = rank;
    }

    // A levelized process's self-reads are write-before-read (checked above),
    // so its self-retrigger is provably a no-op; drop the self-watch entries
    // to keep the rank sweep's invariant that a write only ever queues ranks
    // strictly ahead of the process that performed it.
    for (std::size_t k = 0; k < n; ++k) {
      for (const auto& [sl, mask] : writes[k]) {
        (void)mask;
        auto& ws = prog_.comb_watchers[sl];
        ws.erase(std::remove(ws.begin(), ws.end(), comb[k]), ws.end());
      }
    }
  }

  const ElabDesign& design_;
  Program prog_;
  std::uint32_t nsig_ = 0;
  std::uint32_t next_temp_ = 0;
  std::uint32_t max_regs_ = 0;
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, std::uint32_t> const_pool_;
  std::map<std::string, std::uint32_t> msg_pool_;
};

}  // namespace

Program compile(const ElabDesign& design) { return Compiler(design).run(); }

}  // namespace haven::sim
