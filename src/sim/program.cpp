#include "sim/program.h"

#include <algorithm>

#include "sim/compile.h"
#include "util/fault.h"
#include "util/strings.h"

namespace haven::sim {

using verilog::CaseKind;
using verilog::Edge;

namespace {
// Identical to the interpreter's caps so oscillation and runaway-loop
// detection fire at exactly the same points.
constexpr int kMaxDeltaCycles = 1000;
constexpr int kMaxLoopIterations = 1 << 16;

inline int ctz64(std::uint64_t x) { return __builtin_ctzll(x); }
}  // namespace

std::uint32_t Program::slot_of(const std::string& name) const {
  const auto it = signal_slots.find(name);
  if (it == signal_slots.end()) throw ElabError("unknown signal '" + name + "'");
  return it->second;
}

CompiledSimulator::CompiledSimulator(const ElabDesign& design, std::uint64_t step_budget)
    : CompiledSimulator(compile(design), step_budget) {}

CompiledSimulator::CompiledSimulator(Program program, std::uint64_t step_budget)
    : program_(std::move(program)), step_budget_(step_budget) {
  init();
}

void CompiledSimulator::init() {
  const std::size_t nsig = program_.signals.size();
  regs_.assign(program_.num_regs, Value(1));
  for (std::size_t i = 0; i < nsig; ++i) regs_[i] = Value::all_x(program_.signals[i].width);
  prev_edge_.assign(nsig, Value(1));
  dirty_.assign((nsig + 63) / 64, 0);
  const std::size_t proc_words = (program_.processes.size() + 63) / 64;
  pending_.assign(std::max<std::size_t>(proc_words, 1), 0);
  fired_.assign(std::max<std::size_t>(proc_words, 1), 0);
  loop_counters_.assign(program_.num_loops, 0);

  run_initial_blocks();

  // Settle everything once from the initial state (all signals dirty), with
  // edge bookkeeping primed to the post-initial values — the interpreter's
  // constructor sequence.
  std::fill(dirty_.begin(), dirty_.end(), 0);
  for (std::size_t i = 0; i < nsig; ++i) dirty_[i >> 6] |= std::uint64_t{1} << (i & 63);
  any_dirty_ = nsig > 0;
  for (std::uint32_t slot : program_.edge_sigs) prev_edge_[slot] = regs_[slot];
  update();
  for (std::uint32_t slot : program_.edge_sigs) prev_edge_[slot] = regs_[slot];
}

void CompiledSimulator::bump_steps() {
  ++steps_;
  if (step_budget_ != 0 && steps_ > step_budget_) {
    throw BudgetExceeded(util::format("simulation step budget exhausted (%llu steps)",
                                      static_cast<unsigned long long>(step_budget_)));
  }
}

void CompiledSimulator::run_initial_blocks() {
  for (std::uint32_t pi : program_.initial_procs) {
    const ProgProcess& p = program_.processes[pi];
    exec(p.begin, p.end);
  }
  // Initial-block nonblocking assigns commit immediately after; any dirty
  // marks are subsumed by the mark-everything in init().
  std::vector<NbaEntry> queue;
  queue.swap(nba_queue_);
  for (const auto& nba : queue) write_signal(nba.slot, nba.hi, nba.lo, nba.value);
}

void CompiledSimulator::mark_dirty(std::uint32_t slot) {
  dirty_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  any_dirty_ = true;
}

SignalHandle CompiledSimulator::resolve(const std::string& name) const {
  return SignalHandle{program_.slot_of(name)};
}

void CompiledSimulator::poke(SignalHandle h, std::uint64_t value) {
  const ProgSignal& sig = program_.signals[h.slot];
  if (!sig.is_input) throw ElabError("poke on non-input signal '" + sig.name + "'");
  const Value v = Value::of(value, sig.width);
  if (regs_[h.slot].identical(v)) return;
  regs_[h.slot] = v;
  // Seed a fresh dirty set, like the interpreter's per-poke local set: any
  // leftovers from a non-convergent previous update are dropped.
  std::fill(dirty_.begin(), dirty_.end(), 0);
  mark_dirty(h.slot);
  update();
}

void CompiledSimulator::poke_x(SignalHandle h) {
  const ProgSignal& sig = program_.signals[h.slot];
  if (!sig.is_input) throw ElabError("poke_x on non-input signal '" + sig.name + "'");
  const Value v = Value::all_x(sig.width);
  if (regs_[h.slot].identical(v)) return;
  regs_[h.slot] = v;
  std::fill(dirty_.begin(), dirty_.end(), 0);
  mark_dirty(h.slot);
  update();
}

Value CompiledSimulator::peek(SignalHandle h) const { return regs_[h.slot]; }

void CompiledSimulator::poke(const std::string& input, std::uint64_t value) {
  const std::uint32_t slot = program_.slot_of(input);
  if (!program_.signals[slot].is_input)
    throw ElabError("poke on non-input signal '" + input + "'");
  poke(SignalHandle{slot}, value);
}

void CompiledSimulator::poke_x(const std::string& input) {
  const std::uint32_t slot = program_.slot_of(input);
  if (!program_.signals[slot].is_input)
    throw ElabError("poke_x on non-input signal '" + input + "'");
  poke_x(SignalHandle{slot});
}

Value CompiledSimulator::peek(const std::string& signal) const {
  return regs_[program_.slot_of(signal)];
}

void CompiledSimulator::clock_cycle(const std::string& clk) {
  poke(clk, 0);
  poke(clk, 1);
}

void CompiledSimulator::update() {
  util::maybe_inject(util::kSiteSimRun);
  for (int round = 0; round < kMaxDeltaCycles; ++round) {
    // 1. Combinational settling (active region).
    if (program_.levelized) {
      settle_levelized();
    } else if (!settle_event_driven()) {
      return;  // zero-delay oscillation: converged_ already cleared
    }

    // 2. Detect edges against the last quiescent state.
    std::fill(fired_.begin(), fired_.end(), 0);
    bool any_fired = false;
    for (std::uint32_t slot : program_.edge_sigs) {
      const Value& old_v = prev_edge_[slot];
      const Value& new_v = regs_[slot];
      if (old_v.identical(new_v)) continue;
      const bool old1 = old_v.is_fully_defined() && (old_v.bits() & 1u);
      const bool old0 = old_v.is_fully_defined() && !(old_v.bits() & 1u);
      const bool new1 = new_v.is_fully_defined() && (new_v.bits() & 1u);
      const bool new0 = new_v.is_fully_defined() && !(new_v.bits() & 1u);
      const bool pos = !old1 && new1;  // to-1 transition
      const bool neg = !old0 && new0;  // to-0 transition
      for (std::uint32_t pi : program_.edge_watchers[slot]) {
        for (const auto& [eslot, edge] : program_.processes[pi].edges) {
          if (eslot != slot) continue;
          if ((edge == Edge::kPos && pos) || (edge == Edge::kNeg && neg)) {
            fired_[pi >> 6] |= std::uint64_t{1} << (pi & 63);
            any_fired = true;
          }
        }
      }
    }
    for (std::uint32_t slot : program_.edge_sigs) prev_edge_[slot] = regs_[slot];
    if (!any_fired) return;

    // 3. Execute clocked processes (NBA accumulate), then commit NBAs.
    for (std::size_t w = 0; w < fired_.size(); ++w) {
      std::uint64_t word = fired_[w];
      while (word) {
        const int b = ctz64(word);
        word &= word - 1;
        run_process(program_.processes[w * 64 + b]);
      }
    }
    nba_scratch_.clear();
    nba_scratch_.swap(nba_queue_);
    for (const auto& nba : nba_scratch_) write_signal(nba.slot, nba.hi, nba.lo, nba.value);
    if (!any_dirty_) return;
    // Loop: comb settles again, and a clocked process may fire off a derived
    // clock (e.g. clock divider output feeding another always block).
  }
  converged_ = false;
}

bool CompiledSimulator::settle_event_driven() {
  int delta = 0;
  while (any_dirty_) {
    if (++delta > kMaxDeltaCycles) {
      converged_ = false;
      return false;
    }
    // Gather the wavefront's processes, then clear dirty: writes during the
    // wavefront form the next one (the interpreter's new_dirty).
    std::fill(pending_.begin(), pending_.end(), 0);
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
      std::uint64_t word = dirty_[w];
      while (word) {
        const int b = ctz64(word);
        word &= word - 1;
        for (std::uint32_t pi : program_.comb_watchers[w * 64 + b]) {
          pending_[pi >> 6] |= std::uint64_t{1} << (pi & 63);
        }
      }
    }
    std::fill(dirty_.begin(), dirty_.end(), 0);
    any_dirty_ = false;
    for (std::size_t w = 0; w < pending_.size(); ++w) {
      std::uint64_t word = pending_[w];
      while (word) {
        const int b = ctz64(word);
        word &= word - 1;
        run_process(program_.processes[w * 64 + b]);
      }
    }
  }
  return true;
}

void CompiledSimulator::settle_levelized() {
  if (!any_dirty_) return;
  std::fill(pending_.begin(), pending_.end(), 0);
  // Watchers of a written signal always have a strictly greater rank than its
  // writer, so draining dirty signals into the pending-rank mask only ever
  // sets bits ahead of the sweep cursor.
  const auto drain = [this] {
    if (!any_dirty_) return;
    for (std::size_t w = 0; w < dirty_.size(); ++w) {
      std::uint64_t word = dirty_[w];
      while (word) {
        const int b = ctz64(word);
        word &= word - 1;
        for (std::uint32_t pi : program_.comb_watchers[w * 64 + b]) {
          const std::uint32_t rank = program_.comb_rank[pi];
          pending_[rank >> 6] |= std::uint64_t{1} << (rank & 63);
        }
      }
    }
    std::fill(dirty_.begin(), dirty_.end(), 0);
    any_dirty_ = false;
  };
  drain();
  const std::size_t rank_words = (program_.comb_order.size() + 63) / 64;
  for (std::size_t w = 0; w < rank_words; ++w) {
    while (std::uint64_t word = pending_[w]) {
      const int b = ctz64(word);
      pending_[w] &= ~(std::uint64_t{1} << b);
      run_process(program_.processes[program_.comb_order[w * 64 + b]]);
      drain();
    }
  }
}

void CompiledSimulator::run_process(const ProgProcess& proc) {
  ++activations_;
  bump_steps();
  exec(proc.begin, proc.end);
}

void CompiledSimulator::write_signal(std::uint32_t slot, int hi, int lo, const Value& v) {
  Value& cur = regs_[slot];
  const int w = hi - lo + 1;
  const std::uint64_t field_mask =
      (w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1)) << lo;
  const Value vv = v.resized(w);
  const std::uint64_t new_bits =
      (cur.bits() & ~field_mask) | ((vv.bits() << lo) & field_mask);
  const std::uint64_t new_xz = (cur.xz() & ~field_mask) | ((vv.xz() << lo) & field_mask);
  const Value next = Value::with_xz(new_bits, new_xz, program_.signals[slot].width);
  if (next.identical(cur)) return;
  cur = next;
  mark_dirty(slot);
}

void CompiledSimulator::exec(std::uint32_t pc, std::uint32_t end) {
  const Instr* code = program_.code.data();
  Value* r = regs_.data();
  while (pc < end) {
    const Instr& in = code[pc];
    switch (in.op) {
      case Op::kConst:
        // mode 1: a width-faulting literal built lazily so the invalid_argument
        // surfaces at evaluation time, exactly like the interpreter.
        if (in.mode == 0) {
          r[in.dst] = program_.consts[in.a];
        } else {
          const RawNumber& n = program_.raw_numbers[in.a];
          r[in.dst] = Value::with_xz(n.bits, n.xz, n.width);
        }
        ++pc;
        break;
      case Op::kMove: r[in.dst] = r[in.a]; ++pc; break;
      case Op::kAnd: r[in.dst] = v_and(r[in.a], r[in.b]); ++pc; break;
      case Op::kOr: r[in.dst] = v_or(r[in.a], r[in.b]); ++pc; break;
      case Op::kXor: r[in.dst] = v_xor(r[in.a], r[in.b]); ++pc; break;
      case Op::kAdd: r[in.dst] = v_add(r[in.a], r[in.b]); ++pc; break;
      case Op::kSub: r[in.dst] = v_sub(r[in.a], r[in.b]); ++pc; break;
      case Op::kMul: r[in.dst] = v_mul(r[in.a], r[in.b]); ++pc; break;
      case Op::kDiv: r[in.dst] = v_div(r[in.a], r[in.b]); ++pc; break;
      case Op::kMod: r[in.dst] = v_mod(r[in.a], r[in.b]); ++pc; break;
      case Op::kShl: r[in.dst] = v_shl(r[in.a], r[in.b]); ++pc; break;
      case Op::kShr: r[in.dst] = v_shr(r[in.a], r[in.b]); ++pc; break;
      case Op::kEq: r[in.dst] = v_eq(r[in.a], r[in.b]); ++pc; break;
      case Op::kNeq: r[in.dst] = v_neq(r[in.a], r[in.b]); ++pc; break;
      case Op::kCaseEq: r[in.dst] = v_case_eq(r[in.a], r[in.b]); ++pc; break;
      case Op::kLt: r[in.dst] = v_lt(r[in.a], r[in.b]); ++pc; break;
      case Op::kLe: r[in.dst] = v_le(r[in.a], r[in.b]); ++pc; break;
      case Op::kGt: r[in.dst] = v_gt(r[in.a], r[in.b]); ++pc; break;
      case Op::kGe: r[in.dst] = v_ge(r[in.a], r[in.b]); ++pc; break;
      case Op::kLogAnd: r[in.dst] = v_logical_and(r[in.a], r[in.b]); ++pc; break;
      case Op::kLogOr: r[in.dst] = v_logical_or(r[in.a], r[in.b]); ++pc; break;
      case Op::kPow: {
        const Value& a = r[in.a];
        const Value& b = r[in.b];
        if (!a.is_fully_defined() || !b.is_fully_defined()) {
          r[in.dst] = Value::all_x(a.width());
        } else {
          std::uint64_t p = 1;
          for (std::uint64_t i = 0; i < b.bits() && i < 64; ++i) p *= a.bits();
          r[in.dst] = Value::of(p, a.width());
        }
        ++pc;
        break;
      }
      case Op::kNot: r[in.dst] = v_not(r[in.a]); ++pc; break;
      case Op::kNeg: r[in.dst] = v_neg(r[in.a]); ++pc; break;
      case Op::kLogNot: r[in.dst] = v_logical_not(r[in.a]); ++pc; break;
      case Op::kRedAnd: r[in.dst] = v_red_and(r[in.a]); ++pc; break;
      case Op::kRedOr: r[in.dst] = v_red_or(r[in.a]); ++pc; break;
      case Op::kRedXor: r[in.dst] = v_red_xor(r[in.a]); ++pc; break;
      case Op::kSelect: {
        const Value& c = r[in.a];
        if (c.truthy()) {
          r[in.dst] = r[in.b];
        } else if (c.is_fully_defined()) {
          r[in.dst] = r[in.c];
        } else {
          const Value& t = r[in.b];
          const Value& f = r[in.c];
          const int w = std::max(t.width(), f.width());
          const Value tr = t.resized(w), fr = f.resized(w);
          const std::uint64_t agree = ~(tr.bits() ^ fr.bits()) & ~tr.xz() & ~fr.xz();
          r[in.dst] = Value::with_xz(tr.bits() & agree, ~agree, w);
        }
        ++pc;
        break;
      }
      case Op::kMergeX: {
        const Value& t = r[in.a];
        const Value& f = r[in.b];
        const int w = std::max(t.width(), f.width());
        const Value tr = t.resized(w), fr = f.resized(w);
        const std::uint64_t agree = ~(tr.bits() ^ fr.bits()) & ~tr.xz() & ~fr.xz();
        r[in.dst] = Value::with_xz(tr.bits() & agree, ~agree, w);
        ++pc;
        break;
      }
      case Op::kConcat: r[in.dst] = v_concat(r[in.a], r[in.b]); ++pc; break;
      case Op::kReplicate: {
        const Value inner = r[in.a];
        if (static_cast<std::uint64_t>(in.b) * static_cast<std::uint64_t>(inner.width()) > 64)
          throw ElabError("replication wider than 64 bits");
        Value acc = inner;
        for (std::uint32_t i = 1; i < in.b; ++i) acc = v_concat(acc, inner);
        r[in.dst] = acc;
        ++pc;
        break;
      }
      case Op::kSlice:
        // mode 1: part select whose low bound is past the signal — all-X of
        // the select width (which may itself be out of range and throw).
        if (in.mode == 0) {
          const Value& a = r[in.a];
          r[in.dst] = Value::with_xz(a.bits() >> in.b, a.xz() >> in.b,
                                     static_cast<int>(in.c));
        } else {
          r[in.dst] = Value::all_x(static_cast<int>(in.c));
        }
        ++pc;
        break;
      case Op::kBitDyn: {
        const Value& base = r[in.a];
        const Value& idx = r[in.b];
        if (!idx.is_fully_defined()) {
          r[in.dst] = Value::all_x(1);
        } else {
          const std::uint64_t i = idx.bits();
          if (i >= static_cast<std::uint64_t>(base.width())) {
            r[in.dst] = Value::all_x(1);
          } else {
            r[in.dst] = Value::with_xz((base.bits() >> i) & 1u, (base.xz() >> i) & 1u, 1);
          }
        }
        ++pc;
        break;
      }
      case Op::kResize: r[in.dst] = r[in.a].resized(static_cast<int>(in.b)); ++pc; break;
      case Op::kCaseCmp: {
        const Value& subj = r[in.a];
        const Value& label = r[in.b];
        const int w = std::max(subj.width(), label.width());
        const Value sv = subj.resized(w), lv = label.resized(w);
        std::uint64_t wildcard = 0;
        const auto kind = static_cast<CaseKind>(in.mode);
        if (kind == CaseKind::kCasez) wildcard = lv.xz();
        else if (kind == CaseKind::kCasex) wildcard = lv.xz() | sv.xz();
        const std::uint64_t care = sv.mask() & ~wildcard;
        const bool match = ((sv.bits() ^ lv.bits()) & care) == 0 &&
                           ((sv.xz() ^ lv.xz()) & care) == 0;
        r[in.dst] = Value::of(match ? 1 : 0, 1);
        ++pc;
        break;
      }
      case Op::kJump: pc = in.dst; break;
      case Op::kJumpIfTrue: pc = r[in.a].truthy() ? in.dst : pc + 1; break;
      case Op::kJumpIfFalse: pc = r[in.a].truthy() ? pc + 1 : in.dst; break;
      case Op::kJumpIfDefined: pc = r[in.a].is_fully_defined() ? in.dst : pc + 1; break;
      case Op::kLoopInit: loop_counters_[in.a] = 0; ++pc; break;
      case Op::kLoopGuard:
        if (++loop_counters_[in.a] > kMaxLoopIterations) {
          converged_ = false;
          pc = in.dst;  // abandon the loop; the enclosing block continues
        } else {
          ++pc;
        }
        break;
      case Op::kStep: bump_steps(); ++pc; break;
      case Op::kStoreSig:
        write_signal(in.dst, static_cast<int>(in.b), static_cast<int>(in.c), r[in.a]);
        ++pc;
        break;
      case Op::kStoreBitDyn: {
        const Value& idx = r[in.b];
        if (idx.is_fully_defined() &&
            idx.bits() < static_cast<std::uint64_t>(program_.signals[in.dst].width)) {
          const int i = static_cast<int>(idx.bits());
          write_signal(in.dst, i, i, r[in.a]);
        }
        ++pc;
        break;
      }
      case Op::kNbaSig: {
        const int hi = static_cast<int>(in.b), lo = static_cast<int>(in.c);
        nba_queue_.push_back({in.dst, hi, lo, r[in.a].resized(hi - lo + 1)});
        ++pc;
        break;
      }
      case Op::kNbaBitDyn: {
        const Value& idx = r[in.b];
        if (idx.is_fully_defined() &&
            idx.bits() < static_cast<std::uint64_t>(program_.signals[in.dst].width)) {
          const int i = static_cast<int>(idx.bits());
          nba_queue_.push_back({in.dst, i, i, r[in.a].resized(1)});
        }
        ++pc;
        break;
      }
      case Op::kThrow: throw ElabError(program_.messages[in.a]);
    }
  }
}

}  // namespace haven::sim
