// Elaboration: turn a parsed module (plus sibling definitions for its
// instances) into a flat ElabDesign the simulator can execute. Hierarchy is
// flattened by splicing child processes with prefixed signal names and
// connecting ports with continuous assignments, mirroring what a synthesis
// elaborator does before technology mapping.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "verilog/ast.h"

namespace haven::sim {

// Elaboration failures (unknown instance module, unsupported constructs,
// width limits) throw ElabError; the testbench harness converts this into a
// functional failure for the offending candidate.
struct ElabError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ElabSignal {
  std::string name;
  int width = 1;
  bool is_reg = false;
  bool is_input = false;
  bool is_output = false;
};

enum class ProcessKind : std::uint8_t { kContAssign, kComb, kClocked, kInitial };

struct ElabProcess {
  ProcessKind kind = ProcessKind::kComb;
  // kContAssign: lhs/rhs. Others: body.
  verilog::ExprPtr lhs, rhs;
  verilog::StmtPtr body;
  // kClocked: edge-sensitive items. kComb/kContAssign: read set drives
  // re-evaluation.
  std::vector<verilog::SensItem> edges;
  std::set<std::string> read_set;
};

struct ElabDesign {
  std::string top;
  std::vector<ElabSignal> signals;               // index = signal id
  std::map<std::string, std::size_t> signal_ids; // name -> index
  std::vector<ElabProcess> processes;
  std::vector<std::string> inputs;   // port order preserved
  std::vector<std::string> outputs;

  const ElabSignal& signal(const std::string& name) const;
  bool has_signal(const std::string& name) const { return signal_ids.contains(name); }
};

// Elaborate `top`; `file` supplies definitions for instantiated modules (may
// be null if the design has no instances).
ElabDesign elaborate(const verilog::Module& top, const verilog::SourceFile* file = nullptr);

// Collect the identifiers *read* by a statement body (rhs values, conditions,
// case labels and lvalue index expressions, but not assignment targets).
std::set<std::string> statement_read_set(const verilog::StmtPtr& body);

}  // namespace haven::sim
