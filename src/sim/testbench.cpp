#include "sim/testbench.h"

#include <algorithm>
#include <stdexcept>

#include "util/strings.h"
#include "verilog/parser.h"

namespace haven::sim {

using verilog::Dir;
using verilog::Module;
using verilog::SourceFile;

namespace {

// Compare one output: where the golden value is defined, the DUT must match
// exactly; golden X bits are unconstrained (the specification leaves them
// free, so any DUT value is acceptable there).
bool outputs_match(const Value& golden, const Value& dut, std::string* why,
                   const std::string& name) {
  if (golden.width() != dut.width()) {
    *why = util::format("output '%s' width mismatch (golden %d, dut %d)", name.c_str(),
                        golden.width(), dut.width());
    return false;
  }
  const std::uint64_t care = ~golden.xz() & golden.mask();
  const bool bits_ok = ((golden.bits() ^ dut.bits()) & care) == 0;
  const bool defined_ok = (dut.xz() & care) == 0;
  if (bits_ok && defined_ok) return true;
  *why = util::format("output '%s': golden=%s dut=%s", name.c_str(),
                      golden.to_string().c_str(), dut.to_string().c_str());
  return false;
}

struct Harness {
  Simulator golden;
  Simulator dut;
  std::vector<std::string> data_inputs;  // inputs except clock/reset
  std::vector<int> data_widths;
  std::vector<std::string> outputs;
};

DiffResult interface_check(const Module& dut, const Module& golden) {
  DiffResult r;
  for (const auto& gp : golden.ports) {
    const verilog::Port* dp = dut.find_port(gp.name);
    if (dp == nullptr) {
      r.reason = "missing port '" + gp.name + "'";
      return r;
    }
    if (dp->dir != gp.dir) {
      r.reason = "port '" + gp.name + "' direction mismatch";
      return r;
    }
    if (dp->width() != gp.width()) {
      r.reason = util::format("port '%s' width mismatch (golden %d, dut %d)", gp.name.c_str(),
                              gp.width(), dp->width());
      return r;
    }
  }
  for (const auto& dp : dut.ports) {
    if (golden.find_port(dp.name) == nullptr) {
      r.reason = "extra port '" + dp.name + "'";
      return r;
    }
  }
  r.passed = true;
  return r;
}

}  // namespace

DiffResult run_diff_test(const Module& dut_mod, const SourceFile* dut_file,
                         const Module& golden_mod, const SourceFile* golden_file,
                         const StimulusSpec& spec, util::Rng& rng,
                         const util::Deadline* deadline) {
  DiffResult iface = interface_check(dut_mod, golden_mod);
  if (!iface.passed) return iface;

  // Watchdog: checked between vectors/cycles; sim::BudgetExceeded and
  // util::DeadlineExceeded both escape this function as harness faults,
  // never as DUT verdicts.
  auto check_deadline = [&](const char* where) {
    if (deadline != nullptr) deadline->check(where);
  };

  DiffResult result;
  try {
    ElabDesign golden_design = elaborate(golden_mod, golden_file);
    ElabDesign dut_design;
    try {
      dut_design = elaborate(dut_mod, dut_file);
    } catch (const ElabError& e) {
      result.reason = std::string("dut elaboration failed: ") + e.what();
      return result;
    }

    Harness h{Simulator(std::move(golden_design), spec.step_budget),
              Simulator(std::move(dut_design), spec.step_budget), {}, {}, {}};
    for (const auto& p : golden_mod.ports) {
      if (p.dir == Dir::kOutput) {
        h.outputs.push_back(p.name);
      } else if (p.name != spec.clock && p.name != spec.reset) {
        h.data_inputs.push_back(p.name);
        h.data_widths.push_back(p.width());
      }
    }

    auto drive_both = [&](const std::string& name, std::uint64_t v) {
      h.golden.poke(name, v);
      h.dut.poke(name, v);
    };
    // Strict comparison: DUT must match every golden-defined bit.
    auto compare_outputs = [&](const char* when) -> bool {
      if (!h.dut.converged()) {
        result.reason = util::format("dut failed to converge (%s)", when);
        return false;
      }
      if (!h.golden.converged()) {
        // A golden oscillation is a harness bug, not a DUT failure.
        throw std::logic_error("golden model failed to converge");
      }
      for (const auto& out : h.outputs) {
        std::string why;
        if (!outputs_match(h.golden.peek(out), h.dut.peek(out), &why, out)) {
          result.reason = util::format("%s: %s", when, why.c_str());
          return false;
        }
      }
      return true;
    };
    auto randomize_inputs = [&]() {
      for (std::size_t i = 0; i < h.data_inputs.size(); ++i) {
        const int w = h.data_widths[i];
        const std::uint64_t mask = w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        drive_both(h.data_inputs[i], rng.next() & mask);
      }
    };

    if (!spec.sequential) {
      int total_bits = 0;
      for (int w : h.data_widths) total_bits += w;
      if (total_bits <= spec.max_exhaustive_bits && total_bits <= 20) {
        const std::uint64_t limit = std::uint64_t{1} << total_bits;
        for (std::uint64_t vec = 0; vec < limit; ++vec) {
          check_deadline("exhaustive vector sweep");
          std::uint64_t rest = vec;
          for (std::size_t i = 0; i < h.data_inputs.size(); ++i) {
            const int w = h.data_widths[i];
            const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
            drive_both(h.data_inputs[i], rest & mask);
            rest >>= w;
          }
          ++result.vectors;
          if (!compare_outputs(util::format("vector %llu",
                                            static_cast<unsigned long long>(vec))
                                   .c_str())) {
            return result;
          }
        }
      } else {
        for (int v = 0; v < spec.random_vectors; ++v) {
          check_deadline("random vector sweep");
          randomize_inputs();
          ++result.vectors;
          if (!compare_outputs(util::format("random vector %d", v).c_str())) return result;
        }
      }
      result.passed = true;
      return result;
    }

    // Sequential protocol: hold reset asserted for two cycles, release, then
    // drive random data each cycle; optionally re-assert mid-run.
    const std::uint64_t reset_on = spec.reset_active_low ? 0 : 1;
    const std::uint64_t reset_off = spec.reset_active_low ? 1 : 0;
    drive_both(spec.clock, 0);
    for (std::size_t i = 0; i < h.data_inputs.size(); ++i) drive_both(h.data_inputs[i], 0);
    // Lenient comparison for the pre-reset window: power-on X in the DUT is
    // not a functional error (real testbenches only sample after reset), but
    // *defined* disagreement — an async golden already reset while the DUT
    // holds a defined stale value — is.
    auto compare_defined_only = [&](const char* when) -> bool {
      if (!h.dut.converged()) {
        result.reason = util::format("dut failed to converge (%s)", when);
        return false;
      }
      for (const auto& out : h.outputs) {
        const Value g = h.golden.peek(out);
        const Value d = h.dut.peek(out);
        if (!g.is_fully_defined() || !d.is_fully_defined()) continue;
        std::string why;
        if (!outputs_match(g, d, &why, out)) {
          result.reason = util::format("%s: %s", when, why.c_str());
          return false;
        }
      }
      return true;
    };

    if (!spec.reset.empty()) {
      drive_both(spec.reset, reset_on);
      ++result.vectors;
      if (!compare_defined_only("initial reset assertion")) return result;
      for (int c = 0; c < 2; ++c) {
        drive_both(spec.clock, 0);
        drive_both(spec.clock, 1);
      }
      drive_both(spec.clock, 0);
      drive_both(spec.reset, reset_off);
      ++result.vectors;
      if (!compare_outputs("after reset")) return result;
    }

    // Two mid-run reset pulses: comparing immediately after assertion (before
    // any clock edge) is the window where an asynchronous golden and a
    // hallucinated synchronous DUT are distinguishable. Two pulses at
    // different machine states make the defined-value divergence likely even
    // for 1-bit outputs.
    const int reassert_a = spec.mid_test_reset && !spec.reset.empty() ? spec.cycles / 3 : -1;
    const int reassert_b = spec.mid_test_reset && !spec.reset.empty() ? spec.cycles * 2 / 3 : -1;
    for (int cycle = 0; cycle < spec.cycles; ++cycle) {
      check_deadline("cycle loop");
      if (cycle == reassert_a || cycle == reassert_b) {
        drive_both(spec.reset, reset_on);
        ++result.vectors;
        if (!compare_outputs("mid-test reset assertion")) return result;
      } else if ((cycle == reassert_a + 1 && reassert_a >= 0) ||
                 (cycle == reassert_b + 1 && reassert_b >= 0)) {
        drive_both(spec.reset, reset_off);
      }
      randomize_inputs();
      drive_both(spec.clock, 0);
      // Half-cycle comparison: a design hallucinated onto the wrong clock
      // edge updates here while the golden design does not.
      ++result.vectors;
      if (!compare_outputs(util::format("cycle %d (half)", cycle).c_str())) return result;
      drive_both(spec.clock, 1);
      ++result.vectors;
      if (!compare_outputs(util::format("cycle %d", cycle).c_str())) return result;
    }
    result.passed = true;
    return result;
  } catch (const ElabError& e) {
    // Golden-side elaboration errors indicate a broken task definition.
    throw std::logic_error(std::string("golden elaboration failed: ") + e.what());
  }
}

DiffResult run_diff_test(const std::string& dut_source, const std::string& golden_source,
                         const StimulusSpec& spec, util::Rng& rng,
                         const util::Deadline* deadline) {
  DiffResult result;
  verilog::ParseOutput dut_parsed = verilog::parse_source(dut_source);
  if (!dut_parsed.ok() || dut_parsed.file.modules.empty()) {
    result.reason = "dut parse failed";
    if (!dut_parsed.diagnostics.empty()) {
      result.reason += ": " + dut_parsed.diagnostics.front().to_string();
    }
    return result;
  }
  verilog::ParseOutput golden_parsed = verilog::parse_source(golden_source);
  if (!golden_parsed.ok() || golden_parsed.file.modules.empty()) {
    throw std::invalid_argument("golden source does not parse");
  }
  return run_diff_test(dut_parsed.file.modules.front(), &dut_parsed.file,
                       golden_parsed.file.modules.front(), &golden_parsed.file, spec, rng,
                       deadline);
}

}  // namespace haven::sim
