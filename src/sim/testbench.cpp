#include "sim/testbench.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/program.h"
#include "util/strings.h"
#include "verilog/parser.h"

namespace haven::sim {

using verilog::Dir;
using verilog::Module;
using verilog::SourceFile;

namespace {

// Compare one output: where the golden value is defined, the DUT must match
// exactly; golden X bits are unconstrained (the specification leaves them
// free, so any DUT value is acceptable there).
bool outputs_match(const Value& golden, const Value& dut, std::string* why,
                   const std::string& name) {
  if (golden.width() != dut.width()) {
    *why = util::format("output '%s' width mismatch (golden %d, dut %d)", name.c_str(),
                        golden.width(), dut.width());
    return false;
  }
  const std::uint64_t care = ~golden.xz() & golden.mask();
  const bool bits_ok = ((golden.bits() ^ dut.bits()) & care) == 0;
  const bool defined_ok = (dut.xz() & care) == 0;
  if (bits_ok && defined_ok) return true;
  *why = util::format("output '%s': golden=%s dut=%s", name.c_str(),
                      golden.to_string().c_str(), dut.to_string().c_str());
  return false;
}

// Backend-erased simulator: exactly one of the two members is live. A plain
// branch per call beats virtual dispatch here and keeps both concrete classes
// free of vtables on their hot paths.
class AnySim {
 public:
  AnySim(ElabDesign design, SimBackend backend, std::uint64_t step_budget) {
    if (backend == SimBackend::kCompiled) {
      comp_ = std::make_unique<CompiledSimulator>(design, step_budget);
    } else {
      interp_ = std::make_unique<Simulator>(std::move(design), step_budget);
    }
  }
  SignalHandle resolve(const std::string& name) const {
    return comp_ ? comp_->resolve(name) : interp_->resolve(name);
  }
  void poke(SignalHandle h, std::uint64_t v) {
    if (comp_) {
      comp_->poke(h, v);
    } else {
      interp_->poke(h, v);
    }
  }
  Value peek(SignalHandle h) const { return comp_ ? comp_->peek(h) : interp_->peek(h); }
  bool converged() const { return comp_ ? comp_->converged() : interp_->converged(); }

 private:
  std::unique_ptr<Simulator> interp_;
  std::unique_ptr<CompiledSimulator> comp_;
};

// A named port resolved to its slot handle on both simulators: the string
// lookup happens once per unit here, never per stimulus vector.
struct PortPair {
  std::string name;
  int width = 0;
  SignalHandle golden;
  SignalHandle dut;
};

struct Harness {
  AnySim golden;
  AnySim dut;
  std::vector<PortPair> data_inputs;  // inputs except clock/reset
  std::vector<PortPair> outputs;
};

}  // namespace

DiffResult check_interface(const Module& dut, const Module& golden) {
  DiffResult r;
  for (const auto& gp : golden.ports) {
    const verilog::Port* dp = dut.find_port(gp.name);
    if (dp == nullptr) {
      r.reason = "missing port '" + gp.name + "'";
      return r;
    }
    if (dp->dir != gp.dir) {
      r.reason = "port '" + gp.name + "' direction mismatch";
      return r;
    }
    if (dp->width() != gp.width()) {
      r.reason = util::format("port '%s' width mismatch (golden %d, dut %d)", gp.name.c_str(),
                              gp.width(), dp->width());
      return r;
    }
  }
  for (const auto& dp : dut.ports) {
    if (golden.find_port(dp.name) == nullptr) {
      r.reason = "extra port '" + dp.name + "'";
      return r;
    }
  }
  r.passed = true;
  return r;
}

DiffResult run_diff_test(const Module& dut_mod, const SourceFile* dut_file,
                         const Module& golden_mod, const SourceFile* golden_file,
                         const StimulusSpec& spec, util::Rng& rng,
                         const util::Deadline* deadline) {
  DiffResult iface = check_interface(dut_mod, golden_mod);
  if (!iface.passed) return iface;

  // Watchdog: checked between vectors/cycles; sim::BudgetExceeded and
  // util::DeadlineExceeded both escape this function as harness faults,
  // never as DUT verdicts.
  auto check_deadline = [&](const char* where) {
    if (deadline != nullptr) deadline->check(where);
  };

  DiffResult result;
  try {
    ElabDesign golden_design = elaborate(golden_mod, golden_file);
    ElabDesign dut_design;
    try {
      dut_design = elaborate(dut_mod, dut_file);
    } catch (const ElabError& e) {
      result.reason = std::string("dut elaboration failed: ") + e.what();
      return result;
    }

    Harness h{AnySim(std::move(golden_design), spec.backend, spec.step_budget),
              AnySim(std::move(dut_design), spec.backend, spec.step_budget), {}, {}};
    auto resolve_pair = [&](const std::string& name, int width) {
      return PortPair{name, width, h.golden.resolve(name), h.dut.resolve(name)};
    };
    for (const auto& p : golden_mod.ports) {
      if (p.dir == Dir::kOutput) {
        h.outputs.push_back(resolve_pair(p.name, p.width()));
      } else if (p.name != spec.clock && p.name != spec.reset) {
        h.data_inputs.push_back(resolve_pair(p.name, p.width()));
      }
    }
    // Clock/reset handles are only resolved when the protocol drives them, so
    // combinational specs keep working against clockless modules.
    PortPair clock_pair, reset_pair;
    if (spec.sequential) clock_pair = resolve_pair(spec.clock, 1);
    if (spec.sequential && !spec.reset.empty()) reset_pair = resolve_pair(spec.reset, 1);

    auto drive_both = [&](const PortPair& p, std::uint64_t v) {
      h.golden.poke(p.golden, v);
      h.dut.poke(p.dut, v);
    };
    // Strict comparison: DUT must match every golden-defined bit.
    auto compare_outputs = [&](const char* when) -> bool {
      if (!h.dut.converged()) {
        result.reason = util::format("dut failed to converge (%s)", when);
        return false;
      }
      if (!h.golden.converged()) {
        // A golden oscillation is a harness bug, not a DUT failure.
        throw std::logic_error("golden model failed to converge");
      }
      for (const auto& out : h.outputs) {
        std::string why;
        if (!outputs_match(h.golden.peek(out.golden), h.dut.peek(out.dut), &why, out.name)) {
          result.reason = util::format("%s: %s", when, why.c_str());
          return false;
        }
      }
      return true;
    };
    auto randomize_inputs = [&]() {
      for (const auto& in : h.data_inputs) {
        const std::uint64_t mask =
            in.width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << in.width) - 1);
        drive_both(in, rng.next() & mask);
      }
    };

    if (!spec.sequential) {
      int total_bits = 0;
      for (const auto& in : h.data_inputs) total_bits += in.width;
      if (total_bits <= spec.max_exhaustive_bits && total_bits <= 20) {
        const std::uint64_t limit = std::uint64_t{1} << total_bits;
        for (std::uint64_t vec = 0; vec < limit; ++vec) {
          check_deadline("exhaustive vector sweep");
          std::uint64_t rest = vec;
          for (const auto& in : h.data_inputs) {
            const std::uint64_t mask = (std::uint64_t{1} << in.width) - 1;
            drive_both(in, rest & mask);
            rest >>= in.width;
          }
          ++result.vectors;
          if (!compare_outputs(util::format("vector %llu",
                                            static_cast<unsigned long long>(vec))
                                   .c_str())) {
            return result;
          }
        }
      } else {
        for (int v = 0; v < spec.random_vectors; ++v) {
          check_deadline("random vector sweep");
          randomize_inputs();
          ++result.vectors;
          if (!compare_outputs(util::format("random vector %d", v).c_str())) return result;
        }
      }
      result.passed = true;
      return result;
    }

    // Sequential protocol: hold reset asserted for two cycles, release, then
    // drive random data each cycle; optionally re-assert mid-run.
    const std::uint64_t reset_on = spec.reset_active_low ? 0 : 1;
    const std::uint64_t reset_off = spec.reset_active_low ? 1 : 0;
    drive_both(clock_pair, 0);
    for (const auto& in : h.data_inputs) drive_both(in, 0);
    // Lenient comparison for the pre-reset window: power-on X in the DUT is
    // not a functional error (real testbenches only sample after reset), but
    // *defined* disagreement — an async golden already reset while the DUT
    // holds a defined stale value — is.
    auto compare_defined_only = [&](const char* when) -> bool {
      if (!h.dut.converged()) {
        result.reason = util::format("dut failed to converge (%s)", when);
        return false;
      }
      for (const auto& out : h.outputs) {
        const Value g = h.golden.peek(out.golden);
        const Value d = h.dut.peek(out.dut);
        if (!g.is_fully_defined() || !d.is_fully_defined()) continue;
        std::string why;
        if (!outputs_match(g, d, &why, out.name)) {
          result.reason = util::format("%s: %s", when, why.c_str());
          return false;
        }
      }
      return true;
    };

    if (!spec.reset.empty()) {
      drive_both(reset_pair, reset_on);
      ++result.vectors;
      if (!compare_defined_only("initial reset assertion")) return result;
      for (int c = 0; c < 2; ++c) {
        drive_both(clock_pair, 0);
        drive_both(clock_pair, 1);
      }
      drive_both(clock_pair, 0);
      drive_both(reset_pair, reset_off);
      ++result.vectors;
      if (!compare_outputs("after reset")) return result;
    }

    // Two mid-run reset pulses: comparing immediately after assertion (before
    // any clock edge) is the window where an asynchronous golden and a
    // hallucinated synchronous DUT are distinguishable. Two pulses at
    // different machine states make the defined-value divergence likely even
    // for 1-bit outputs.
    const int reassert_a = spec.mid_test_reset && !spec.reset.empty() ? spec.cycles / 3 : -1;
    const int reassert_b = spec.mid_test_reset && !spec.reset.empty() ? spec.cycles * 2 / 3 : -1;
    for (int cycle = 0; cycle < spec.cycles; ++cycle) {
      check_deadline("cycle loop");
      if (cycle == reassert_a || cycle == reassert_b) {
        drive_both(reset_pair, reset_on);
        ++result.vectors;
        if (!compare_outputs("mid-test reset assertion")) return result;
      } else if ((cycle == reassert_a + 1 && reassert_a >= 0) ||
                 (cycle == reassert_b + 1 && reassert_b >= 0)) {
        drive_both(reset_pair, reset_off);
      }
      randomize_inputs();
      drive_both(clock_pair, 0);
      // Half-cycle comparison: a design hallucinated onto the wrong clock
      // edge updates here while the golden design does not.
      ++result.vectors;
      if (!compare_outputs(util::format("cycle %d (half)", cycle).c_str())) return result;
      drive_both(clock_pair, 1);
      ++result.vectors;
      if (!compare_outputs(util::format("cycle %d", cycle).c_str())) return result;
    }
    result.passed = true;
    return result;
  } catch (const ElabError& e) {
    // Golden-side elaboration errors indicate a broken task definition.
    throw std::logic_error(std::string("golden elaboration failed: ") + e.what());
  }
}

DiffResult run_diff_test(const std::string& dut_source, const std::string& golden_source,
                         const StimulusSpec& spec, util::Rng& rng,
                         const util::Deadline* deadline) {
  DiffResult result;
  verilog::ParseOutput dut_parsed = verilog::parse_source(dut_source);
  if (!dut_parsed.ok() || dut_parsed.file.modules.empty()) {
    result.reason = "dut parse failed";
    if (!dut_parsed.diagnostics.empty()) {
      result.reason += ": " + dut_parsed.diagnostics.front().to_string();
    }
    return result;
  }
  verilog::ParseOutput golden_parsed = verilog::parse_source(golden_source);
  if (!golden_parsed.ok() || golden_parsed.file.modules.empty()) {
    throw std::invalid_argument("golden source does not parse");
  }
  return run_diff_test(dut_parsed.file.modules.front(), &dut_parsed.file,
                       golden_parsed.file.modules.front(), &golden_parsed.file, spec, rng,
                       deadline);
}

}  // namespace haven::sim
