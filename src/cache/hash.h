// Content hashing for haven::cache — a stable, in-repo 128-bit digest built
// from two independent FNV-1a streams, plus the Verilog source
// canonicalization the result cache keys on.
//
// Design constraints (see DESIGN.md §9):
//  * Stable across runs, platforms, and standard-library vendors: the cache
//    persists to disk, so the digest is part of the on-disk contract. No
//    std::hash, no pointer-derived state.
//  * Cheap: hashing runs once per candidate on the eval hot path.
//  * Not cryptographic: a 128-bit FNV-derived address is collision-safe at
//    cache scale (birthday bound ~2^64 entries), not adversary-safe. Cache
//    keys are derived from trusted local artifacts only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace haven::cache {

// 128-bit content address. Ordered + hashable so it can key maps directly.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Digest& a, const Digest& b) { return !(a == b); }
  friend bool operator<(const Digest& a, const Digest& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

// "0123456789abcdef..." 32-char lowercase hex form (artifact file names).
std::string to_hex(const Digest& d);

// Classic 64-bit FNV-1a over a byte string (offset basis 0xcbf29ce484222325,
// prime 0x100000001b3). Exposed for tests and for payload checksums in the
// artifact store.
std::uint64_t fnv1a(std::string_view bytes);

// Streaming 128-bit hasher: two FNV-1a accumulators with different offset
// bases and a per-stream input whitening byte, each finalized with a
// splitmix64-style avalanche. Field order matters: update calls are
// length-prefixed internally, so ("ab","c") and ("a","bc") digest
// differently.
class Hasher {
 public:
  Hasher();

  Hasher& bytes(std::string_view s);
  Hasher& u64(std::uint64_t v);
  Hasher& u32(std::uint32_t v) { return u64(v); }
  Hasher& i32(std::int32_t v) { return u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  Hasher& boolean(bool v) { return u64(v ? 1 : 0); }

  // Finalize (non-destructive: the hasher can keep accumulating).
  Digest digest() const;

 private:
  void feed(unsigned char c);

  std::uint64_t a_;
  std::uint64_t b_;
};

// Canonicalize Verilog source for content addressing: normalize CRLF/CR line
// endings to LF, strip trailing spaces/tabs from every line, and trim
// trailing blank lines (a single final newline remains). Purely lexical —
// never changes program semantics — so byte-different but
// rendering-identical candidates share one cache entry.
std::string canonical_verilog(std::string_view source);

}  // namespace haven::cache
