#include "cache/result_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

namespace haven::cache {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kArtifactMagic = 0x434e5648;  // "HVNC" little-endian
// Fixed per-entry bookkeeping charge (list node, map slot, key) so that an
// entry with a tiny payload still has nonzero weight against the byte budget.
constexpr std::size_t kEntryOverhead = 64;

std::size_t round_up_pow2(std::size_t v) {
  if (v <= 1) return 1;
  std::size_t p = 1;
  while (p < v && p < (std::size_t{1} << 30)) p <<= 1;
  return p;
}

std::size_t entry_weight(const std::string& payload) { return payload.size() + kEntryOverhead; }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

// Header: magic u32, version u32, key.hi u64, key.lo u64, payload size u64,
// payload FNV-1a checksum u64. All little-endian.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8 + 8 + 8;

// Process-wide counter making temp-file names unique across threads and
// across ResultCache instances sharing one directory.
std::atomic<std::uint64_t> g_tmp_counter{0};

}  // namespace

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config)) {
  const std::size_t n = round_up_pow2(config_.shards == 0 ? 1 : config_.shards);
  config_.shards = n;
  shard_mask_ = n - 1;
  shard_byte_budget_ = config_.max_bytes == 0 ? 0 : std::max<std::size_t>(1, config_.max_bytes / n);
  shard_entry_budget_ = config_.max_entries == 0 ? 0 : std::max<std::size_t>(1, config_.max_entries / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ResultCache::~ResultCache() = default;

ResultCache::Shard& ResultCache::shard_for(const Digest& key) {
  return *shards_[static_cast<std::size_t>(key.lo) & shard_mask_];
}

std::optional<std::string> ResultCache::lookup(const Digest& key) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
      ++shard.hits;
      return it->second->payload;
    }
  }
  if (disk_enabled()) {
    std::optional<std::string> payload = read_artifact(key, shard);
    if (payload.has_value()) {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.hits;
      ++shard.disk_hits;
      insert_locked(shard, key, *payload);  // promote
      return payload;
    }
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.misses;
  return std::nullopt;
}

void ResultCache::insert(const Digest& key, std::string payload) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.insertions;
    insert_locked(shard, key, payload);
  }
  if (disk_enabled()) write_artifact(key, payload, shard);
}

void ResultCache::insert_locked(Shard& shard, const Digest& key, std::string payload) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Overwrite in place and touch.
    shard.bytes -= entry_weight(it->second->payload);
    it->second->payload = std::move(payload);
    shard.bytes += entry_weight(it->second->payload);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(payload)});
    shard.bytes += entry_weight(shard.lru.front().payload);
    shard.index.emplace(key, shard.lru.begin());
  }
  // Evict LRU until within budget; never evict the entry just inserted.
  while (shard.lru.size() > 1 &&
         ((shard_byte_budget_ != 0 && shard.bytes > shard_byte_budget_) ||
          (shard_entry_budget_ != 0 && shard.lru.size() > shard_entry_budget_))) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= entry_weight(victim.payload);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::clear_memory() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.disk_hits += shard->disk_hits;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.disk_writes += shard->disk_writes;
    total.disk_errors += shard->disk_errors;
    total.entries += static_cast<std::int64_t>(shard->lru.size());
    total.bytes += static_cast<std::int64_t>(shard->bytes);
  }
  return total;
}

std::string ResultCache::artifact_path(const Digest& key) const {
  if (config_.dir.empty()) return "";
  return (fs::path(config_.dir) / (to_hex(key) + ".hvc")).string();
}

bool ResultCache::write_artifact(const Digest& key, std::string_view payload, Shard& shard) {
  {
    // Create the directory once; a failure (permissions, path is a file)
    // disables persistence for this cache rather than failing inserts.
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!dir_ready_) {
      std::error_code ec;
      fs::create_directories(config_.dir, ec);
      dir_ready_ = true;
      if (ec && !fs::is_directory(config_.dir, ec)) {
        std::lock_guard<std::mutex> slock(shard.mu);
        ++shard.disk_errors;
        disk_disabled_.store(true, std::memory_order_relaxed);
        return false;
      }
    }
  }
  if (!disk_enabled()) return false;

  std::string blob;
  blob.reserve(kHeaderSize + payload.size());
  put_u32(blob, kArtifactMagic);
  put_u32(blob, kArtifactVersion);
  put_u64(blob, key.hi);
  put_u64(blob, key.lo);
  put_u64(blob, payload.size());
  put_u64(blob, fnv1a(payload));
  blob.append(payload.data(), payload.size());

  const std::string path = artifact_path(key);
  const std::string tmp =
      path + ".tmp" + std::to_string(g_tmp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.write(blob.data(), static_cast<std::streamsize>(blob.size()))) {
      std::error_code ec;
      fs::remove(tmp, ec);
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.disk_errors;
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.disk_errors;
    return false;
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.disk_writes;
  return true;
}

std::optional<std::string> ResultCache::read_artifact(const Digest& key, Shard& shard) {
  const std::string path = artifact_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // absent: a plain miss, not an error

  std::string blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  auto reject = [&]() -> std::optional<std::string> {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.disk_errors;
    return std::nullopt;
  };
  if (blob.size() < kHeaderSize) return reject();
  const char* p = blob.data();
  if (get_u32(p) != kArtifactMagic) return reject();
  if (get_u32(p + 4) != kArtifactVersion) return reject();
  const Digest stored{get_u64(p + 8), get_u64(p + 16)};
  if (stored != key) return reject();  // stale/renamed artifact
  const std::uint64_t size = get_u64(p + 24);
  const std::uint64_t checksum = get_u64(p + 32);
  if (blob.size() - kHeaderSize != size) return reject();  // truncated/padded
  std::string payload = blob.substr(kHeaderSize);
  if (fnv1a(payload) != checksum) return reject();  // corrupt
  return payload;
}

}  // namespace haven::cache
