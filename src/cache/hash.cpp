#include "cache/hash.h"

namespace haven::cache {
namespace {

constexpr std::uint64_t kFnvBasisA = 0xcbf29ce484222325ULL;  // standard 64-bit basis
constexpr std::uint64_t kFnvBasisB = 0x6c62272e07bb0142ULL;  // hi word of the 128-bit basis
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
// Stream B sees every byte xored with this constant, decorrelating the two
// accumulators even though they share the FNV-1a recurrence.
constexpr unsigned char kWhitenB = 0xa5;

// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
std::uint64_t avalanche(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvBasisA;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

Hasher::Hasher() : a_(kFnvBasisA), b_(kFnvBasisB) {}

void Hasher::feed(unsigned char c) {
  a_ ^= c;
  a_ *= kFnvPrime;
  b_ ^= static_cast<unsigned char>(c ^ kWhitenB);
  b_ *= kFnvPrime;
}

Hasher& Hasher::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) feed(static_cast<unsigned char>(v >> (8 * i)));
  return *this;
}

Hasher& Hasher::bytes(std::string_view s) {
  // Length prefix makes the update boundaries part of the digest.
  u64(s.size());
  for (unsigned char c : s) feed(c);
  return *this;
}

Digest Hasher::digest() const {
  // Cross-mix the streams before finalizing so each output word depends on
  // both accumulators.
  Digest d;
  d.hi = avalanche(a_ ^ (b_ * 0x9e3779b97f4a7c15ULL));
  d.lo = avalanche(b_ ^ (a_ * 0xda942042e4dd58b5ULL));
  return d;
}

std::string to_hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? d.hi : d.lo;
    const int shift = 60 - 8 * (i % 8) - 0;
    out[static_cast<std::size_t>(2 * i)] = kHex[(word >> shift) & 0xf];
    out[static_cast<std::size_t>(2 * i + 1)] = kHex[(word >> (shift - 4)) & 0xf];
  }
  return out;
}

std::string canonical_verilog(std::string_view source) {
  std::string out;
  out.reserve(source.size() + 1);
  std::string line;
  auto flush_line = [&] {
    // Strip trailing spaces/tabs.
    std::size_t end = line.size();
    while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\t')) --end;
    out.append(line, 0, end);
    out.push_back('\n');
    line.clear();
  };
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    if (c == '\r') {
      if (i + 1 < source.size() && source[i + 1] == '\n') ++i;
      flush_line();
    } else if (c == '\n') {
      flush_line();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) flush_line();
  // Trim trailing blank lines down to a single final newline.
  while (out.size() >= 2 && out[out.size() - 1] == '\n' && out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  return out;
}

}  // namespace haven::cache
