// haven::cache — sharded, content-addressed result cache with an optional
// persistent artifact store.
//
// The cache maps a 128-bit content Digest (see cache/hash.h) to an opaque
// payload blob. It knows nothing about what the payload encodes: the eval
// engine stores serialized candidate verdicts, but any deterministic
// pipeline can memoize through it.
//
// Concurrency: the key space is striped over N independent shards, each a
// mutex-guarded LRU list + hash map. Lookups and inserts take exactly one
// shard lock; shards never lock each other, so the cache stays contention-
// free under the ThreadPool's full fan-out (different keys on different
// shards proceed in parallel).
//
// Capacity: per-shard byte and entry budgets (the configured totals divided
// evenly). Inserting past a budget evicts least-recently-used entries from
// that shard only. Eviction never touches the disk store: evicted entries
// remain replayable from their artifact files.
//
// Persistence (CacheConfig::dir): every insert also writes one artifact file
// `<32-hex-digest>.hvc` with a versioned header and a payload checksum; a
// memory miss falls back to reading the artifact, promoting it back into
// memory on success. Reads are tolerant in the PR-2 jsonl spirit: a corrupt,
// truncated, wrong-version, or wrong-key file is counted in
// CacheStats::disk_errors and treated as a miss — never fatal. Writes go to
// a temp file and are renamed into place, so concurrent writers of the same
// key are safe (last rename wins; contents are identical by construction).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/hash.h"

namespace haven::cache {

struct CacheConfig {
  // Shard count; rounded up to a power of two, minimum 1.
  std::size_t shards = 16;
  // Total in-memory payload budget in bytes (split evenly across shards).
  // 0 = entries only limited by max_entries.
  std::size_t max_bytes = std::size_t{256} << 20;  // 256 MiB
  // Total in-memory entry budget (split evenly across shards). 0 = no
  // entry-count limit.
  std::size_t max_entries = 0;
  // Artifact directory. "" = in-memory only. Created on first use.
  std::string dir;
};

// Monotonic counters + gauges, aggregated across shards on read. `hits`
// counts both memory and disk hits (`disk_hits` is the disk-served subset).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t disk_hits = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t disk_writes = 0;
  std::int64_t disk_errors = 0;  // unreadable/corrupt/stale artifacts skipped
  std::int64_t entries = 0;      // gauge: live in-memory entries
  std::int64_t bytes = 0;        // gauge: live in-memory payload bytes
};

class ResultCache {
 public:
  explicit ResultCache(CacheConfig config = {});
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Fetch the payload for `key`: memory first, then (when configured) the
  // artifact store. A disk hit is promoted into memory. std::nullopt = miss.
  std::optional<std::string> lookup(const Digest& key);

  // Store `payload` under `key` (overwriting any previous value), evicting
  // LRU entries as needed, and persist an artifact when a dir is configured.
  void insert(const Digest& key, std::string payload);

  // Drop every in-memory entry (artifacts stay). Counts no evictions.
  void clear_memory();

  // Aggregate counters across all shards. Consistent per shard, not a
  // cross-shard atomic snapshot — fine for telemetry.
  CacheStats stats() const;

  const CacheConfig& config() const { return config_; }

  // Artifact file path for `key` ("" when no dir is configured). Exposed for
  // tests and tooling; the layout (flat dir of <hex>.hvc files) is part of
  // the on-disk contract.
  std::string artifact_path(const Digest& key) const;

  // On-disk format version. Bump on any artifact layout change: readers skip
  // versions they do not understand.
  static constexpr std::uint32_t kArtifactVersion = 1;

 private:
  struct Entry {
    Digest key;
    std::string payload;
  };
  // Map hash for Digest keys: fold the words to one u64. The map resolves
  // fold collisions through Digest equality, so a fold collision costs a
  // probe, never a wrong payload.
  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Digest, std::list<Entry>::iterator, DigestHash> index;
    std::size_t bytes = 0;
    // Shard-local counters (summed by stats()).
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t disk_hits = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    std::int64_t disk_writes = 0;
    std::int64_t disk_errors = 0;
  };

  Shard& shard_for(const Digest& key);

  // Insert into one shard's map/LRU (lock held by caller), evicting to
  // budget. Returns evictions performed.
  void insert_locked(Shard& shard, const Digest& key, std::string payload);

  // Artifact IO. Return false on any error; read_artifact bumps disk_errors
  // on corrupt/stale files (missing files are silent misses).
  bool write_artifact(const Digest& key, std::string_view payload, Shard& shard);
  std::optional<std::string> read_artifact(const Digest& key, Shard& shard);

  // Disk store usable: a dir is configured and no unrecoverable setup error
  // (e.g. the dir cannot be created) has disabled it.
  bool disk_enabled() const {
    return !config_.dir.empty() && !disk_disabled_.load(std::memory_order_relaxed);
  }

  CacheConfig config_;
  std::size_t shard_mask_ = 0;
  std::size_t shard_byte_budget_ = 0;   // 0 = unlimited
  std::size_t shard_entry_budget_ = 0;  // 0 = unlimited
  std::vector<std::unique_ptr<Shard>> shards_;
  bool dir_ready_ = false;  // created lazily, sticky on failure
  std::mutex dir_mu_;
  std::atomic<bool> disk_disabled_{false};
};

}  // namespace haven::cache
