#include "llm/spec_parser.h"

#include <algorithm>
#include <cctype>

#include "logic/expr_parser.h"
#include "symbolic/state_diagram.h"
#include "symbolic/truth_table_text.h"
#include "symbolic/waveform.h"
#include "util/strings.h"
#include "verilog/parser.h"

namespace haven::llm {

namespace {

using util::icontains;

// First occurrence of "<digits><suffix>" (e.g. "4-bit"); -1 if absent.
int find_number_before(const std::string& text, const std::string& suffix) {
  std::size_t pos = 0;
  while ((pos = text.find(suffix, pos)) != std::string::npos) {
    std::size_t start = pos;
    while (start > 0 && std::isdigit(static_cast<unsigned char>(text[start - 1]))) --start;
    if (start < pos) return std::stoi(text.substr(start, pos - start));
    ++pos;
  }
  return -1;
}

// First integer after a marker phrase ("modulo-", "by "); -1 if absent.
int find_number_after(const std::string& text, const std::string& marker) {
  const std::size_t pos = text.find(marker);
  if (pos == std::string::npos) return -1;
  std::size_t p = pos + marker.size();
  while (p < text.size() && (text[p] == ' ' || text[p] == '\'')) ++p;
  std::string digits;
  while (p < text.size() && std::isdigit(static_cast<unsigned char>(text[p]))) digits += text[p++];
  return digits.empty() ? -1 : std::stoi(digits);
}

SeqAttributes parse_seq_attributes(const std::string& lower) {
  SeqAttributes seq;
  const bool mentions_reset = lower.find("reset") != std::string::npos ||
                              lower.find("'rst") != std::string::npos;
  if (mentions_reset) {
    seq.reset = lower.find("asynchronous") != std::string::npos ? ResetKind::kAsync
                                                                : ResetKind::kSync;
    // Polarity: the active-low/high qualifier nearest to "reset".
    const std::size_t reset_pos = lower.find("reset");
    const std::size_t low_pos = lower.find("active-low");
    if (low_pos != std::string::npos && reset_pos != std::string::npos &&
        low_pos < reset_pos + 20 && (reset_pos < 20 || low_pos + 30 > reset_pos)) {
      // active-low mentioned before "reset" within a window
      if (reset_pos > low_pos && reset_pos - low_pos < 24) seq.reset_active_low = true;
    }
    if (lower.find("rst_n") != std::string::npos) seq.reset_active_low = true;
  } else {
    seq.reset = ResetKind::kNone;
  }
  if (lower.find("enable") != std::string::npos || lower.find("'en'") != std::string::npos ||
      lower.find("'en_n'") != std::string::npos) {
    const std::size_t en_pos = lower.find("enable");
    const std::size_t low_pos = lower.rfind("active-low", en_pos);
    seq.enable = EnableKind::kActiveHigh;
    if (low_pos != std::string::npos && en_pos != std::string::npos && en_pos > low_pos &&
        en_pos - low_pos < 24) {
      seq.enable = EnableKind::kActiveLow;
    }
    if (lower.find("en_n") != std::string::npos) seq.enable = EnableKind::kActiveLow;
  }
  if (lower.find("negative edge") != std::string::npos ||
      lower.find("negedge") != std::string::npos) {
    seq.negedge_clock = true;
  }
  return seq;
}

// English boolean text -> logic expression, e.g. "(a AND b) OR (NOT c)".
logic::ExprPtr parse_english_expr(std::string text) {
  text = util::replace_all(text, " XNOR ", " ~^ ");
  text = util::replace_all(text, " NAND ", " ~& ");
  text = util::replace_all(text, " NOR ", " ~| ");
  text = util::replace_all(text, " XOR ", " ^ ");
  text = util::replace_all(text, " AND ", " & ");
  text = util::replace_all(text, " OR ", " | ");
  text = util::replace_all(text, "NOT ", " ~ ");
  const auto parsed = logic::parse_expr(text);
  return parsed.expr;
}

// Parse the KarnaughMap::render output:
//        cd=00 cd=01 cd=11 cd=10
//  ab=00   0     1     1     0
// Variables are single letters (row label prefix "ab" = vars a,b; row label
// bit j belongs to table bit j; columns likewise at offset |rows|).
std::optional<logic::TruthTable> parse_kmap_text(const std::string& text,
                                                 const std::string& output_name) {
  std::vector<std::string> col_labels;
  std::string row_vars, col_vars;
  struct Row {
    std::string label;
    std::vector<char> cells;
  };
  std::vector<Row> rows;

  for (const auto& raw_line : util::split_lines(text)) {
    const auto fields = util::split_ws(raw_line);
    if (fields.empty()) continue;
    // Header line: every field is "vars=bits".
    const bool all_labeled = std::all_of(fields.begin(), fields.end(), [](const std::string& f) {
      return f.find('=') != std::string::npos;
    });
    if (all_labeled && col_labels.empty() && fields.size() >= 2) {
      for (const auto& f : fields) {
        const std::size_t eq = f.find('=');
        if (col_vars.empty()) col_vars = f.substr(0, eq);
        col_labels.push_back(f.substr(eq + 1));
      }
      continue;
    }
    // Row line: "ab=00" followed by cell values.
    if (!fields.empty() && fields[0].find('=') != std::string::npos) {
      const std::size_t eq = fields[0].find('=');
      if (row_vars.empty()) row_vars = fields[0].substr(0, eq);
      Row row;
      row.label = fields[0].substr(eq + 1);
      for (std::size_t i = 1; i < fields.size(); ++i) {
        if (fields[i] == "0" || fields[i] == "1" || fields[i] == "x") {
          row.cells.push_back(fields[i][0]);
        }
      }
      if (!row.cells.empty()) rows.push_back(std::move(row));
    }
  }

  if (col_labels.empty() || rows.empty() || row_vars.empty() || col_vars.empty()) {
    return std::nullopt;
  }
  std::vector<std::string> inputs;
  for (char c : row_vars) inputs.emplace_back(1, c);
  for (char c : col_vars) inputs.emplace_back(1, c);

  logic::TruthTable tt(inputs, output_name);
  const std::size_t row_bits = row_vars.size();
  for (const auto& row : rows) {
    if (row.cells.size() != col_labels.size()) return std::nullopt;
    for (std::size_t c = 0; c < col_labels.size(); ++c) {
      std::uint32_t assignment = 0;
      for (std::size_t j = 0; j < row.label.size(); ++j) {
        if (row.label[j] == '1') assignment |= (1u << j);
      }
      for (std::size_t j = 0; j < col_labels[c].size(); ++j) {
        if (col_labels[c][j] == '1') assignment |= (1u << (row_bits + j));
      }
      const char v = row.cells[c];
      tt.set_row(assignment, v == '1' ? logic::Tri::kTrue
                                      : (v == '0' ? logic::Tri::kFalse : logic::Tri::kDontCare));
    }
  }
  return tt;
}

// Vanilla FSM prose: "If the current state is A and x is 0, then the next
// state is B and out is 0."
std::optional<symbolic::StateDiagram> parse_fsm_prose(const std::string& text) {
  symbolic::StateDiagram sd;
  sd.input_name.clear();
  sd.output_name.clear();

  auto intern = [&](const std::string& name) {
    int idx = sd.state_index(name);
    if (idx < 0) {
      idx = static_cast<int>(sd.states.size());
      sd.states.push_back(name);
      sd.outputs.push_back(0);
      sd.next_state.push_back({-1, -1});
    }
    return idx;
  };

  std::size_t pos = 0;
  int sentences = 0;
  while (true) {
    const std::size_t cur = text.find("current state is ", pos);
    if (cur == std::string::npos) break;
    std::size_t p = cur + 17;
    auto read_word = [&]() {
      while (p < text.size() && text[p] == ' ') ++p;
      std::string w;
      while (p < text.size() && (std::isalnum(static_cast<unsigned char>(text[p])) ||
                                 text[p] == '_')) {
        w += text[p++];
      }
      return w;
    };
    const std::string from = read_word();
    const std::size_t and_kw = text.find(" and ", p);
    if (and_kw == std::string::npos) break;
    p = and_kw + 5;
    const std::string input_name = read_word();
    const std::size_t is_kw = text.find(" is ", p - 1);
    if (is_kw == std::string::npos) break;
    p = is_kw + 4;
    const std::string in_val = read_word();
    const std::size_t next_kw = text.find("next state is ", p);
    if (next_kw == std::string::npos) break;
    p = next_kw + 14;
    const std::string to = read_word();
    const std::size_t and2 = text.find(" and ", p);
    std::string out_name, out_val;
    if (and2 != std::string::npos) {
      p = and2 + 5;
      out_name = read_word();
      const std::size_t is2 = text.find(" is ", p - 1);
      if (is2 != std::string::npos) {
        p = is2 + 4;
        out_val = read_word();
      }
    }
    if (from.empty() || to.empty() || (in_val != "0" && in_val != "1")) {
      pos = cur + 17;
      continue;
    }
    const int fi = intern(from);
    const int ti = intern(to);
    if (sd.input_name.empty()) sd.input_name = input_name;
    sd.next_state[static_cast<std::size_t>(fi)][static_cast<std::size_t>(in_val == "1")] = ti;
    if (!out_name.empty() && (out_val == "0" || out_val == "1")) {
      if (sd.output_name.empty()) sd.output_name = out_name;
      sd.outputs[static_cast<std::size_t>(fi)] = out_val == "1";
    }
    ++sentences;
    pos = p;
  }
  if (sentences < 2) return std::nullopt;

  // Reset/initial state.
  for (const char* marker : {"initial state is ", "reset state is ", "Reset state is "}) {
    const std::size_t kw = text.find(marker);
    if (kw == std::string::npos) continue;
    std::size_t p = kw + std::char_traits<char>::length(marker);
    std::string name;
    while (p < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[p])) || text[p] == '_')) {
      name += text[p++];
    }
    const int idx = sd.state_index(name);
    if (idx >= 0) sd.reset_state = idx;
  }
  if (sd.output_name.empty()) sd.output_name = "out";
  if (sd.input_name.empty()) sd.input_name = "x";
  return sd.valid() ? std::optional<symbolic::StateDiagram>(sd) : std::nullopt;
}

}  // namespace

std::optional<std::string> extract_header_line(const std::string& prompt) {
  for (const auto& raw_line : util::split_lines(prompt)) {
    const std::string line(util::trim(raw_line));
    if (util::starts_with(line, "module ") && line.find(';') != std::string::npos) {
      return line;
    }
  }
  return std::nullopt;
}

ParsedInstruction parse_instruction(const std::string& prompt) {
  ParsedInstruction result;

  // Strip chat framing.
  std::string text = prompt;
  const std::size_t q = text.find("Question:");
  if (q != std::string::npos) {
    std::size_t a = text.find("Answer:");
    if (a == std::string::npos) a = text.size();
    text = text.substr(q + 9, a - q - 9);
  }
  const std::string lower = util::to_lower(text);

  TaskSpec spec;

  // Header (interface + module name).
  std::optional<verilog::Module> header_module;
  const auto header = extract_header_line(text);
  if (header) {
    result.had_header = true;
    verilog::ParseOutput parsed = verilog::parse_source(*header + " endmodule");
    if (parsed.ok() && !parsed.file.modules.empty()) {
      header_module = parsed.file.modules.front();
      spec.module_name = header_module->name;
    }
  }

  // "The module inputs are a, b, c and the output is 'out'." — the prose
  // interface declaration used by headerless combinational prompts.
  auto apply_prose_interface = [&](TaskSpec& s) {
    const std::size_t kw = text.find("module inputs are ");
    if (kw == std::string::npos) return;
    std::size_t end = text.find(" and the output", kw);
    if (end == std::string::npos) end = text.find('\n', kw);
    if (end == std::string::npos) end = text.size();
    std::vector<std::string> ins;
    for (const std::string& part : util::split(text.substr(kw + 18, end - kw - 18), ',')) {
      const std::string name(util::trim(part));
      if (util::is_identifier(name)) ins.push_back(name);
    }
    if (!ins.empty()) s.comb_inputs = ins;
    const std::size_t op = text.find("output is '", kw);
    if (op != std::string::npos) {
      std::size_t p = op + 11;
      std::string n;
      while (p < text.size() && text[p] != '\'') n += text[p++];
      if (util::is_identifier(n)) s.comb_output = n;
    }
  };

  // A declared interface is authoritative for combinational tasks: the
  // expression may not mention every input, but the ports must match.
  auto apply_header_interface = [&](TaskSpec& s) {
    if (s.kind == TaskKind::kCombExpr && !header_module) apply_prose_interface(s);
    if (!header_module || s.kind != TaskKind::kCombExpr) return;
    std::vector<std::string> ins;
    std::string out_name;
    for (const auto& p : header_module->ports) {
      if (p.width() != 1) return;  // not a 1-bit comb interface; keep parsed
      if (p.dir == verilog::Dir::kInput) ins.push_back(p.name);
      else if (p.dir == verilog::Dir::kOutput && out_name.empty()) out_name = p.name;
    }
    if (!ins.empty()) s.comb_inputs = ins;
    if (!out_name.empty()) s.comb_output = out_name;
  };

  result.raw_modality = symbolic::detect_modality(text);
  result.was_interpreted = symbolic::is_interpreted(text);

  // --- FSM ------------------------------------------------------------------
  const bool fsm_hint = lower.find("state machine") != std::string::npos ||
                        lower.find("state diagram") != std::string::npos ||
                        lower.find("state transition:") != std::string::npos ||
                        result.raw_modality == symbolic::Modality::kStateDiagram;
  if (fsm_hint) {
    spec.kind = TaskKind::kFsm;
    std::optional<symbolic::StateDiagram> sd;
    if (result.raw_modality == symbolic::Modality::kStateDiagram) {
      // Collect only transition lines for the notation parser.
      std::string block;
      for (const auto& line : util::split_lines(text)) {
        if (line.find("->") != std::string::npos && line.find('[') != std::string::npos) {
          block += line + "\n";
        }
      }
      auto parsed = symbolic::parse_state_diagram(block);
      if (parsed.diagram) sd = std::move(parsed.diagram);
      else result.error = parsed.error;
    } else if (result.was_interpreted) {
      auto parsed = symbolic::parse_interpreted_state_diagram(text);
      if (parsed.diagram) sd = std::move(parsed.diagram);
      else result.error = parsed.error;
    } else {
      sd = parse_fsm_prose(text);
      if (!sd) result.error = "could not parse FSM prose";
    }
    if (!sd) {
      if (result.error.empty()) result.error = "could not parse state diagram";
      return result;
    }
    // Reset state sentence overrides (notation path does not carry it).
    for (const char* marker : {"reset state is ", "initial state is "}) {
      const std::size_t kw = lower.find(marker);
      if (kw == std::string::npos) continue;
      std::size_t p = kw + std::char_traits<char>::length(marker);
      std::string name;
      while (p < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[p])) || text[p] == '_')) {
        name += text[p++];
      }
      const int idx = sd->state_index(name);
      if (idx >= 0) sd->reset_state = idx;
    }
    spec.diagram = std::move(*sd);
    spec.seq = parse_seq_attributes(lower);
    if (spec.seq.reset == ResetKind::kNone) spec.seq.reset = ResetKind::kSync;
    result.spec = std::move(spec);
    return result;
  }

  // --- parametric prose kinds -------------------------------------------------
  auto finish_parametric = [&](TaskKind kind) {
    spec.kind = kind;
    const int w = find_number_before(lower, "-bit");
    if (w > 0 && w <= 64) spec.width = w;
    spec.seq = parse_seq_attributes(lower);
    if (spec.sequential() && spec.seq.reset == ResetKind::kNone) {
      // Benchmarks always give sequential designs a reset; default sync.
      spec.seq.reset = ResetKind::kSync;
    }
    result.spec = std::move(spec);
  };

  if (lower.find("clock divider") != std::string::npos ||
      lower.find("divides 'clk'") != std::string::npos) {
    const int n = find_number_after(lower, "by ");
    if (n > 0) spec.divide_by = n;
    finish_parametric(TaskKind::kClockDivider);
    return result;
  }
  if (lower.find("counter") != std::string::npos) {
    spec.count_down = lower.find(" down counter") != std::string::npos;
    const int m = find_number_after(lower, "modulo-");
    if (m > 0) spec.modulus = m;
    finish_parametric(TaskKind::kCounter);
    return result;
  }
  if (lower.find("shift register") != std::string::npos) {
    spec.shift_left = lower.find("shifting right") == std::string::npos;
    finish_parametric(TaskKind::kShiftRegister);
    return result;
  }
  if (lower.find("d register") != std::string::npos ||
      lower.find("'q' follows input 'd'") != std::string::npos) {
    finish_parametric(TaskKind::kRegister);
    return result;
  }
  if (lower.find("alu") != std::string::npos) {
    finish_parametric(TaskKind::kAlu);
    return result;
  }
  if (lower.find("adder") != std::string::npos) {
    finish_parametric(TaskKind::kAdder);
    return result;
  }
  if (lower.find("multiplexer") != std::string::npos ||
      lower.find("mux") != std::string::npos) {
    const int n = find_number_before(lower, "-to-1");
    if (n == 2 || n == 4) spec.mux_inputs = n;
    // width: "N-bit data"
    finish_parametric(TaskKind::kMux);
    return result;
  }
  if (lower.find("decoder") != std::string::npos) {
    const int n = find_number_before(lower, "-to-");
    if (n >= 1 && n <= 4) spec.sel_width = n;
    finish_parametric(TaskKind::kDecoder);
    return result;
  }
  if (lower.find("comparator") != std::string::npos) {
    finish_parametric(TaskKind::kComparator);
    return result;
  }
  if (lower.find("parity") != std::string::npos) {
    finish_parametric(TaskKind::kParity);
    return result;
  }
  if (lower.find("edge detector") != std::string::npos ||
      lower.find("-edge detector") != std::string::npos) {
    spec.detect_falling = lower.find("falling") != std::string::npos;
    finish_parametric(TaskKind::kEdgeDetector);
    return result;
  }

  // --- combinational ------------------------------------------------------------
  spec.kind = TaskKind::kCombExpr;
  spec.want_minimal = lower.find("most concise") != std::string::npos;

  std::optional<logic::TruthTable> tt;
  if (lower.find("karnaugh") != std::string::npos) {
    std::string out_name = "out";
    const std::size_t op = text.find("Output is '");
    if (op != std::string::npos) {
      std::size_t p = op + 11;
      std::string n;
      while (p < text.size() && text[p] != '\'') n += text[p++];
      if (!n.empty()) out_name = n;
    }
    tt = parse_kmap_text(text, out_name);
    if (!tt) {
      result.error = "could not parse Karnaugh map";
      return result;
    }
  } else if (result.raw_modality == symbolic::Modality::kTruthTable) {
    auto parsed = symbolic::parse_truth_table(text);
    if (!parsed.table) {
      result.error = parsed.error;
      return result;
    }
    tt = std::move(parsed.table);
  } else if (result.raw_modality == symbolic::Modality::kWaveform) {
    auto parsed = symbolic::parse_waveform(text);
    if (!parsed.waveform) {
      result.error = parsed.error;
      return result;
    }
    tt = parsed.waveform->to_truth_table();
    if (!tt) {
      result.error = "contradictory waveform";
      return result;
    }
  } else if (result.was_interpreted) {
    // Interpreted truth table and waveform share the Variables/Rules format;
    // the waveform one mentions time.
    if (text.find("When time is") != std::string::npos) {
      auto parsed = symbolic::parse_interpreted_waveform(text);
      if (parsed.waveform) tt = parsed.waveform->to_truth_table();
    } else {
      auto parsed = symbolic::parse_interpreted_truth_table(text);
      if (parsed.table) tt = std::move(parsed.table);
    }
    if (!tt) {
      result.error = "could not parse interpreted rules";
      return result;
    }
  }

  if (tt) {
    spec.comb_inputs = tt->inputs();
    spec.comb_output = tt->output();
    spec.expr = tt->to_sum_of_minterms();
    spec.presentation = CombPresentation::kTruthTable;
    apply_header_interface(spec);
    result.spec = std::move(spec);
    return result;
  }

  // Expression text: "<out> = <expr>" after "logic:".
  const std::size_t logic_kw = text.find("logic: ");
  if (logic_kw != std::string::npos) {
    const std::size_t eq = text.find('=', logic_kw);
    if (eq != std::string::npos) {
      const std::string out_name(
          util::trim(text.substr(logic_kw + 7, eq - logic_kw - 7)));
      std::size_t end = text.find('\n', eq);
      if (end == std::string::npos) end = text.size();
      const auto parsed = logic::parse_expr(text.substr(eq + 1, end - eq - 1));
      if (parsed.expr && util::is_identifier(out_name)) {
        spec.comb_output = out_name;
        spec.expr = parsed.expr;
        spec.comb_inputs = parsed.expr->collect_vars();
        std::sort(spec.comb_inputs.begin(), spec.comb_inputs.end());
        spec.presentation = CombPresentation::kExpressionText;
        apply_header_interface(spec);
        result.spec = std::move(spec);
        return result;
      }
    }
  }

  // English: "output 'out' equals <ENGLISH>."
  const std::size_t equals_kw = text.find("equals ");
  if (equals_kw != std::string::npos) {
    std::string out_name = "out";
    const std::size_t op = text.rfind("output '", equals_kw);
    if (op != std::string::npos) {
      std::size_t p = op + 8;
      std::string n;
      while (p < text.size() && text[p] != '\'') n += text[p++];
      if (!n.empty()) out_name = n;
    }
    std::size_t end = text.find_first_of(".\n", equals_kw);
    if (end == std::string::npos) end = text.size();
    const auto expr = parse_english_expr(text.substr(equals_kw + 7, end - equals_kw - 7));
    if (expr) {
      spec.comb_output = out_name;
      spec.expr = expr;
      spec.comb_inputs = expr->collect_vars();
      std::sort(spec.comb_inputs.begin(), spec.comb_inputs.end());
      spec.presentation = CombPresentation::kEnglishText;
      apply_header_interface(spec);
      result.spec = std::move(spec);
      return result;
    }
  }

  result.error = "could not understand the instruction";
  return result;
}

}  // namespace haven::llm
