#include "llm/hallucination.h"

#include <algorithm>

#include "util/strings.h"

namespace haven::llm {

HallucinationProfile HallucinationProfile::scaled(double factor) const {
  HallucinationProfile p = *this;
  auto s = [factor](double v) { return std::clamp(v * factor, 0.0, 1.0); };
  p.sym_truth_table = s(p.sym_truth_table);
  p.sym_waveform = s(p.sym_waveform);
  p.sym_state_diagram = s(p.sym_state_diagram);
  p.know_convention = s(p.know_convention);
  p.know_syntax = s(p.know_syntax);
  p.know_attribute = s(p.know_attribute);
  p.logic_expression = s(p.logic_expression);
  p.logic_corner = s(p.logic_corner);
  p.logic_instruction = s(p.logic_instruction);
  p.misalignment = s(p.misalignment);
  p.comprehension = s(p.comprehension);
  return p;
}

std::string hallu_axis_name(HalluAxis axis) {
  switch (axis) {
    case HalluAxis::kSymTruthTable: return "sym_truth_table";
    case HalluAxis::kSymWaveform: return "sym_waveform";
    case HalluAxis::kSymStateDiagram: return "sym_state_diagram";
    case HalluAxis::kKnowConvention: return "know_convention";
    case HalluAxis::kKnowSyntax: return "know_syntax";
    case HalluAxis::kKnowAttribute: return "know_attribute";
    case HalluAxis::kLogicExpression: return "logic_expression";
    case HalluAxis::kLogicCorner: return "logic_corner";
    case HalluAxis::kLogicInstruction: return "logic_instruction";
    case HalluAxis::kMisalignment: return "misalignment";
    case HalluAxis::kComprehension: return "comprehension";
  }
  return "?";
}

std::string hallu_site_name(HalluAxis axis) { return "hallu." + hallu_axis_name(axis); }

double profile_axis(const HallucinationProfile& p, HalluAxis axis) {
  switch (axis) {
    case HalluAxis::kSymTruthTable: return p.sym_truth_table;
    case HalluAxis::kSymWaveform: return p.sym_waveform;
    case HalluAxis::kSymStateDiagram: return p.sym_state_diagram;
    case HalluAxis::kKnowConvention: return p.know_convention;
    case HalluAxis::kKnowSyntax: return p.know_syntax;
    case HalluAxis::kKnowAttribute: return p.know_attribute;
    case HalluAxis::kLogicExpression: return p.logic_expression;
    case HalluAxis::kLogicCorner: return p.logic_corner;
    case HalluAxis::kLogicInstruction: return p.logic_instruction;
    case HalluAxis::kMisalignment: return p.misalignment;
    case HalluAxis::kComprehension: return p.comprehension;
  }
  return 0;
}

symbolic::StateDiagram corrupt_state_diagram(const symbolic::StateDiagram& sd, util::Rng& rng) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    symbolic::StateDiagram out = sd;
    const int n = static_cast<int>(out.num_states());
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    if (mode == 0 && n >= 2) {
      // The paper's canonical example: two states' roles reversed in the
      // transition table.
      const int a = static_cast<int>(rng.uniform_int(0, n - 1));
      int b = static_cast<int>(rng.uniform_int(0, n - 1));
      if (a == b) b = (b + 1) % n;
      for (auto& t : out.next_state) {
        for (int v : {0, 1}) {
          int& slot = t[static_cast<std::size_t>(v)];
          if (slot == a) slot = b;
          else if (slot == b) slot = a;
        }
      }
    } else if (mode == 1) {
      // Swap the outputs of two states (or invert one when outputs differ).
      const int a = static_cast<int>(rng.uniform_int(0, n - 1));
      out.outputs[static_cast<std::size_t>(a)] ^= 1;
    } else {
      // Redirect one transition.
      const int s = static_cast<int>(rng.uniform_int(0, n - 1));
      const int v = static_cast<int>(rng.uniform_int(0, 1));
      int& slot = out.next_state[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)];
      slot = static_cast<int>(rng.uniform_int(0, n - 1)) == slot && n >= 2
                 ? (slot + 1) % n
                 : static_cast<int>(rng.uniform_int(0, n - 1));
    }
    if (out.valid() && !out.equivalent(sd)) return out;
  }
  // Deterministic fallback: invert the reset state's output.
  symbolic::StateDiagram out = sd;
  out.outputs[static_cast<std::size_t>(out.reset_state)] ^= 1;
  return out;
}

logic::TruthTable corrupt_truth_table(const logic::TruthTable& tt, util::Rng& rng) {
  logic::TruthTable out = tt;
  const int flips = rng.chance(0.3) ? 2 : 1;
  std::int64_t first_flipped = -1;
  for (int f = 0; f < flips; ++f) {
    // Flip a random defined row, never the same row twice (that would undo
    // the corruption).
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto row = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(tt.num_rows()) - 1));
      if (static_cast<std::int64_t>(row) == first_flipped) continue;
      const logic::Tri v = out.row(row);
      if (v == logic::Tri::kDontCare) continue;
      out.set_row(row, v == logic::Tri::kTrue ? logic::Tri::kFalse : logic::Tri::kTrue);
      if (first_flipped < 0) first_flipped = row;
      break;
    }
  }
  return out;
}

namespace {

using logic::Expr;
using logic::ExprPtr;
using logic::Op;

// Rebuild the tree, applying `mutate` at node index `target` (preorder).
ExprPtr rewrite(const ExprPtr& e, int& counter, int target, util::Rng& rng) {
  const int my_index = counter++;
  if (my_index == target) {
    switch (e->op()) {
      case Op::kAnd: return Expr::binary(Op::kOr, e->lhs(), e->rhs());
      case Op::kOr: return Expr::binary(Op::kAnd, e->lhs(), e->rhs());
      case Op::kXor: return Expr::binary(rng.chance(0.5) ? Op::kOr : Op::kXnor, e->lhs(), e->rhs());
      case Op::kXnor: return Expr::binary(Op::kXor, e->lhs(), e->rhs());
      case Op::kNand: return Expr::binary(Op::kAnd, e->lhs(), e->rhs());
      case Op::kNor: return Expr::binary(Op::kOr, e->lhs(), e->rhs());
      case Op::kNot: return e->lhs();  // dropped negation
      case Op::kVar: return Expr::not_(e);
      case Op::kConst: return Expr::constant(!e->value());
    }
  }
  switch (e->op()) {
    case Op::kVar:
    case Op::kConst:
      return e;
    case Op::kNot: {
      ExprPtr inner = rewrite(e->lhs(), counter, target, rng);
      return Expr::not_(inner);
    }
    default: {
      ExprPtr l = rewrite(e->lhs(), counter, target, rng);
      ExprPtr r = rewrite(e->rhs(), counter, target, rng);
      return Expr::binary(e->op(), l, r);
    }
  }
}

}  // namespace

logic::ExprPtr corrupt_expr(const logic::ExprPtr& expr, util::Rng& rng) {
  const int size = static_cast<int>(expr->size());
  for (int attempt = 0; attempt < 24; ++attempt) {
    const int target = static_cast<int>(rng.uniform_int(0, size - 1));
    int counter = 0;
    ExprPtr out = rewrite(expr, counter, target, rng);
    if (!logic::exprs_equivalent(*out, *expr)) return out;
  }
  // Fallback: global negation is always inequivalent.
  return Expr::not_(expr);
}

SeqAttributes corrupt_attributes(const SeqAttributes& seq, util::Rng& rng) {
  SeqAttributes out = seq;
  std::vector<int> knobs;
  if (seq.reset != ResetKind::kNone) {
    knobs.push_back(0);  // sync <-> async
    knobs.push_back(1);  // polarity
  }
  knobs.push_back(2);  // clock edge
  if (seq.enable != EnableKind::kNone) knobs.push_back(3);
  switch (rng.choice(knobs)) {
    case 0:
      out.reset = seq.reset == ResetKind::kAsync ? ResetKind::kSync : ResetKind::kAsync;
      break;
    case 1:
      // Polarity confusion: the reset *pin name* stays what the interface
      // says, but the logic tests the wrong level. We model this by flipping
      // the active level only (name derivation must not change, so callers
      // restore the name via the interface; see SimLlm).
      out.reset_active_low = !seq.reset_active_low;
      break;
    case 2:
      out.negedge_clock = !seq.negedge_clock;
      break;
    case 3:
      out.enable = seq.enable == EnableKind::kActiveLow ? EnableKind::kActiveHigh
                                                        : EnableKind::kActiveLow;
      break;
  }
  return out;
}

std::string corrupt_syntax(const std::string& source, util::Rng& rng) {
  const int mode = static_cast<int>(rng.uniform_int(0, 4));
  switch (mode) {
    case 0: {
      // Python-style definition (Table II example).
      const std::size_t kw = source.find("module ");
      if (kw != std::string::npos) {
        std::string out = source;
        out.replace(kw, 6, "def");
        const std::size_t end = out.rfind("endmodule");
        if (end != std::string::npos) out.erase(end, 9);
        return out;
      }
      return "def " + source;
    }
    case 1: {
      // Drop the final endmodule.
      const std::size_t end = source.rfind("endmodule");
      if (end != std::string::npos) return source.substr(0, end);
      return source + "\n(";
    }
    case 2: {
      // Remove a semicolon (the middle one).
      std::vector<std::size_t> semis;
      for (std::size_t i = 0; i < source.size(); ++i) {
        if (source[i] == ';') semis.push_back(i);
      }
      if (!semis.empty()) {
        std::string out = source;
        out.erase(semis[semis.size() / 2], 1);
        return out;
      }
      return source + ";;(";
    }
    case 3: {
      // Misspell a keyword.
      for (const char* kw : {"always", "assign", "endcase"}) {
        const std::size_t pos = source.find(kw);
        if (pos != std::string::npos) {
          std::string out = source;
          out.insert(pos + 3, "z");
          return out;
        }
      }
      std::string out = source;
      const std::size_t kw = out.find("module");
      if (kw != std::string::npos) out.insert(kw + 3, "z");
      return out;
    }
    default: {
      // Unbalanced begin/end.
      const std::size_t pos = source.rfind("\n  end");
      if (pos != std::string::npos) {
        std::string out = source;
        out.erase(pos + 1, 5);
        return out;
      }
      return source + "\nbegin";
    }
  }
}

TaskSpec corrupt_alignment(const TaskSpec& spec, bool had_header, util::Rng& rng) {
  TaskSpec out = spec;
  std::vector<int> modes;
  const bool parametric = spec.kind != TaskKind::kCombExpr && spec.kind != TaskKind::kFsm;
  if (parametric) modes.push_back(0);                      // width off by one
  if (spec.modulus > 0) modes.push_back(1);                // ignore modulus
  if (spec.seq.enable != EnableKind::kNone) modes.push_back(2);  // ignore enable
  if (!had_header && (spec.kind == TaskKind::kCombExpr || spec.kind == TaskKind::kFsm)) {
    modes.push_back(3);  // guess a different output name -> interface mismatch
  }
  if (spec.kind == TaskKind::kCounter) modes.push_back(4); // up/down confusion
  if (spec.kind == TaskKind::kCombExpr && spec.expr) modes.push_back(6);  // misread phrasing
  if (spec.kind == TaskKind::kFsm) modes.push_back(7);     // wrong reset state
  if (modes.empty()) modes.push_back(5);                   // generic: misread as register
  switch (rng.choice(modes)) {
    case 0:
      out.width = spec.width > 2 && rng.chance(0.5) ? spec.width - 1 : spec.width + 1;
      break;
    case 1:
      out.modulus = 0;
      break;
    case 2:
      out.seq.enable = EnableKind::kNone;
      break;
    case 3:
      if (out.kind == TaskKind::kCombExpr) out.comb_output = spec.comb_output == "y" ? "out" : "y";
      else out.diagram.output_name = spec.diagram.output_name == "z" ? "out" : "z";
      break;
    case 4:
      out.count_down = !spec.count_down;
      break;
    case 6:
      // Engineer phrasing misread: the recovered function is subtly wrong.
      out.expr = corrupt_expr(spec.expr, rng);
      break;
    case 7:
      // Reset state misread (prose: "the initial state is ...").
      out.diagram.reset_state =
          (spec.diagram.reset_state + 1) % static_cast<int>(spec.diagram.num_states());
      break;
    default:
      out.kind = TaskKind::kRegister;
      out.width = std::max(2, spec.width);
      break;
  }
  return out;
}

}  // namespace haven::llm
