#include "llm/task_spec.h"

#include <algorithm>
#include <stdexcept>

#include "logic/exprgen.h"
#include "util/strings.h"

namespace haven::llm {

std::string task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::kCombExpr: return "comb_expr";
    case TaskKind::kFsm: return "fsm";
    case TaskKind::kCounter: return "counter";
    case TaskKind::kShiftRegister: return "shift_register";
    case TaskKind::kRegister: return "register";
    case TaskKind::kAdder: return "adder";
    case TaskKind::kMux: return "mux";
    case TaskKind::kDecoder: return "decoder";
    case TaskKind::kComparator: return "comparator";
    case TaskKind::kParity: return "parity";
    case TaskKind::kAlu: return "alu";
    case TaskKind::kClockDivider: return "clock_divider";
    case TaskKind::kEdgeDetector: return "edge_detector";
  }
  return "?";
}

bool task_kind_sequential(TaskKind k) {
  switch (k) {
    case TaskKind::kFsm:
    case TaskKind::kCounter:
    case TaskKind::kShiftRegister:
    case TaskKind::kRegister:
    case TaskKind::kClockDivider:
    case TaskKind::kEdgeDetector:
      return true;
    default:
      return false;
  }
}

std::vector<TaskSpec::PortInfo> TaskSpec::interface() const {
  std::vector<PortInfo> ports;
  auto in = [&](const std::string& n, int w = 1) { ports.push_back({n, w, true}); };
  auto out = [&](const std::string& n, int w = 1) { ports.push_back({n, w, false}); };

  if (sequential()) {
    in("clk");
    if (seq.reset != ResetKind::kNone) in(seq.reset_name());
    if (seq.enable != EnableKind::kNone) in(seq.enable_name());
  }

  switch (kind) {
    case TaskKind::kCombExpr:
      for (const auto& name : comb_inputs) in(name);
      out(comb_output);
      break;
    case TaskKind::kFsm:
      in(diagram.input_name);
      out(diagram.output_name);
      break;
    case TaskKind::kCounter:
      out("q", width);
      break;
    case TaskKind::kShiftRegister:
      in("din");
      out("q", width);
      break;
    case TaskKind::kRegister:
      in("d", width);
      out("q", width);
      break;
    case TaskKind::kAdder:
      in("a", width);
      in("b", width);
      in("cin");
      out("sum", width);
      out("cout");
      break;
    case TaskKind::kMux:
      in("sel", mux_inputs == 2 ? 1 : 2);
      for (int i = 0; i < mux_inputs; ++i) in(util::format("d%d", i), width);
      out("y", width);
      break;
    case TaskKind::kDecoder:
      in("sel", sel_width);
      out("y", 1 << sel_width);
      break;
    case TaskKind::kComparator:
      in("a", width);
      in("b", width);
      out("eq");
      out("lt");
      out("gt");
      break;
    case TaskKind::kParity:
      in("data", width);
      out("parity");
      break;
    case TaskKind::kAlu:
      in("op", 2);
      in("a", width);
      in("b", width);
      out("y", width);
      break;
    case TaskKind::kClockDivider:
      out("clk_out");
      break;
    case TaskKind::kEdgeDetector:
      in("sig");
      out("pulse");
      break;
  }
  return ports;
}

std::string TaskSpec::header_line() const {
  std::string line = "module " + module_name + "(";
  const auto ports = interface();
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const auto& p = ports[i];
    line += p.is_input ? "input " : "output ";
    if (p.width > 1) line += util::format("[%d:0] ", p.width - 1);
    line += p.name;
    if (i + 1 < ports.size()) line += ", ";
  }
  line += ");";
  return line;
}

double TaskSpec::difficulty() const {
  double d = 0.2;
  switch (kind) {
    case TaskKind::kCombExpr: {
      // Scale with the input count (the specification size), NOT the
      // expression tree size: a truth table parsed into a sum of minterms
      // describes the same task regardless of its internal representation.
      const std::size_t nvars = comb_inputs.empty() ? 3 : comb_inputs.size();
      d = 0.12 + 0.07 * static_cast<double>(std::min<std::size_t>(nvars, 6));
      if (presentation == CombPresentation::kTruthTable) d += 0.15;
      if (presentation == CombPresentation::kWaveform) d += 0.2;
      if (presentation == CombPresentation::kKarnaughMap) d += 0.2;
      if (want_minimal) d += 0.05;
      break;
    }
    case TaskKind::kFsm:
      d = 0.25 + 0.06 * static_cast<double>(diagram.num_states());
      break;
    case TaskKind::kAlu:
      d = 0.45;
      break;
    case TaskKind::kClockDivider:
      d = 0.5;
      break;
    case TaskKind::kCounter:
      d = 0.3 + (modulus != 0 ? 0.1 : 0.0);
      break;
    case TaskKind::kShiftRegister:
    case TaskKind::kEdgeDetector:
      d = 0.35;
      break;
    case TaskKind::kRegister:
      d = 0.2;
      break;
    case TaskKind::kAdder:
    case TaskKind::kMux:
    case TaskKind::kDecoder:
    case TaskKind::kComparator:
    case TaskKind::kParity:
      d = 0.25;
      break;
  }
  // Wider datapaths are harder to get fully right (RTLLM-scale designs).
  if (kind != TaskKind::kCombExpr && kind != TaskKind::kFsm) {
    d += 0.012 * static_cast<double>(std::min(width, 32));
  }
  if (seq.reset == ResetKind::kAsync) d += 0.05;
  if (seq.reset_active_low) d += 0.04;
  if (seq.negedge_clock) d += 0.05;
  if (seq.enable != EnableKind::kNone) d += 0.05;
  return std::clamp(d, 0.05, 1.0);
}

std::uint64_t TaskSpec::fingerprint() const {
  // FNV-1a over the structural description.
  std::string desc = task_kind_name(kind) + "|" + module_name + "|" + header_line();
  if (expr) desc += expr->to_verilog();
  if (kind == TaskKind::kFsm) desc += symbolic::render_state_diagram(diagram);
  desc += util::format("|w%d m%d d%d", width, modulus, static_cast<int>(presentation));
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : desc) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

TaskSpec generate_task(util::Rng& rng, const TaskGenConfig& config) {
  const std::vector<std::pair<TaskKind, double>> weights = {
      {TaskKind::kCombExpr, config.w_comb},
      {TaskKind::kFsm, config.w_fsm},
      {TaskKind::kCounter, config.w_counter},
      {TaskKind::kShiftRegister, config.w_shift},
      {TaskKind::kRegister, config.w_register},
      {TaskKind::kAdder, config.w_adder},
      {TaskKind::kMux, config.w_mux},
      {TaskKind::kDecoder, config.w_decoder},
      {TaskKind::kComparator, config.w_comparator},
      {TaskKind::kParity, config.w_parity},
      {TaskKind::kAlu, config.w_alu},
      {TaskKind::kClockDivider, config.w_clock_divider},
      {TaskKind::kEdgeDetector, config.w_edge_detector},
  };
  double total = 0;
  for (const auto& [k, w] : weights) total += w;
  if (total <= 0) throw std::invalid_argument("generate_task: all weights zero");
  double pick = rng.uniform(0, total);
  TaskKind kind = TaskKind::kCombExpr;
  for (const auto& [k, w] : weights) {
    if (pick < w) {
      kind = k;
      break;
    }
    pick -= w;
  }

  TaskSpec spec;
  spec.kind = kind;
  spec.module_name = "top_module";

  if (kind == TaskKind::kCombExpr) {
    const std::size_t nvars = static_cast<std::size_t>(
        rng.uniform_int(config.comb_min_vars, config.comb_max_vars));
    logic::ExprGenConfig egc;
    egc.num_vars = nvars;
    egc.max_depth = nvars <= 2 ? 3 : 4;
    logic::ExprGenerator gen(egc);
    spec.expr = gen.generate_nontrivial(rng);
    spec.comb_inputs = logic::ExprGenerator::default_var_names(nvars);
    spec.comb_output = "out";
    const double r = rng.uniform01();
    if (r < config.p_truth_table) spec.presentation = CombPresentation::kTruthTable;
    else if (r < config.p_truth_table + config.p_waveform)
      spec.presentation = CombPresentation::kWaveform;
    else if (r < config.p_truth_table + config.p_waveform + config.p_kmap)
      spec.presentation = CombPresentation::kKarnaughMap;
    else
      spec.presentation = rng.chance(0.5) ? CombPresentation::kExpressionText
                                          : CombPresentation::kEnglishText;
    spec.want_minimal = spec.presentation == CombPresentation::kKarnaughMap ||
                        (spec.presentation == CombPresentation::kTruthTable && rng.chance(0.4));
  } else if (kind == TaskKind::kFsm) {
    symbolic::StateDiagramGenConfig sgc;
    sgc.min_states = config.fsm_min_states;
    sgc.max_states = config.fsm_max_states;
    spec.diagram = symbolic::generate_state_diagram(rng, sgc);
  } else {
    spec.width = static_cast<int>(rng.uniform_int(2, config.max_width));
    if (kind == TaskKind::kCounter) {
      spec.count_down = rng.chance(0.25);
      if (rng.chance(0.3)) {
        spec.modulus = static_cast<int>(rng.uniform_int(3, (1 << std::min(spec.width, 4)) - 1));
      }
    }
    if (kind == TaskKind::kShiftRegister) spec.shift_left = rng.chance(0.6);
    if (kind == TaskKind::kMux) {
      spec.mux_inputs = rng.chance(0.5) ? 2 : 4;
      spec.width = static_cast<int>(rng.uniform_int(1, 4));
    }
    if (kind == TaskKind::kDecoder) spec.sel_width = static_cast<int>(rng.uniform_int(2, 3));
    if (kind == TaskKind::kClockDivider) {
      spec.divide_by = 2 * static_cast<int>(rng.uniform_int(1, 5));
    }
    if (kind == TaskKind::kEdgeDetector) spec.detect_falling = rng.chance(0.3);
  }

  if (spec.sequential()) {
    spec.seq.reset = rng.chance(config.p_async_reset) ? ResetKind::kAsync : ResetKind::kSync;
    spec.seq.reset_active_low = rng.chance(config.p_active_low);
    spec.seq.negedge_clock = rng.chance(config.p_negedge);
    const bool enable_ok = kind == TaskKind::kCounter || kind == TaskKind::kRegister ||
                           kind == TaskKind::kShiftRegister;
    if (enable_ok && rng.chance(config.p_enable)) {
      spec.seq.enable = rng.chance(0.3) ? EnableKind::kActiveLow : EnableKind::kActiveHigh;
    }
  }
  return spec;
}

}  // namespace haven::llm
