// Spec-to-Verilog code generation: the "knows the correct answer" generator.
// It produces the conventional, HDL-engineer-style implementation of a
// TaskSpec (the style the paper's exemplars teach: three-block FSMs,
// nonblocking clocked assignments, complete case statements).
//
// It serves three roles:
//  * golden references for the evaluation suites,
//  * exemplar code for the K-dataset,
//  * the SimLlm's pre-corruption output (hallucination injectors then damage
//    either the spec it generates from or the generated code).
//
// CodegenOptions expose the convention knobs the injectors turn: they exist
// so that a *specific taxonomy failure* (Table II) can be produced
// mechanically rather than by ad-hoc string surgery.
#pragma once

#include <string>

#include "llm/task_spec.h"
#include "verilog/ast.h"

namespace haven::llm {

struct CodegenOptions {
  // FSM conventions (Table II, "Digital Design Convention Misapplication").
  bool fsm_separate_blocks = true;     // false: single-block mess
  bool fsm_write_state_in_comb = false;  // true: "state" instead of "next_state"
  // Corner-case handling (Table II, "Incorrect Handling of Corner Cases").
  bool include_default_case = true;
  bool include_trailing_else = true;
  // Render a kCombExpr as a case statement over the concatenated inputs that
  // enumerates ONLY the true rows, with no default — the taxonomy's literal
  // "case({a, b}) 2'b11: out = 1; endcase" failure. Unlisted rows latch.
  bool comb_as_incomplete_case = false;
  // Omit the (index mod #items)-th non-default case item from the FSM
  // next-state / ALU / wide-mux case: that branch silently latches.
  int omit_case_item = -1;
  // Convention for clocked logic; false uses blocking assignments (lint
  // violation that also breaks multi-register designs).
  bool nonblocking_in_clocked = true;
};

// Build the module AST for a spec. Throws std::invalid_argument on malformed
// specs (e.g. kCombExpr without an expression).
verilog::Module generate_module(const TaskSpec& spec, const CodegenOptions& options = {});

// Convenience: AST -> source text.
std::string generate_source(const TaskSpec& spec, const CodegenOptions& options = {});

}  // namespace haven::llm
