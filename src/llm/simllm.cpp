#include "llm/simllm.h"

#include <algorithm>

#include "llm/codegen.h"
#include "llm/instruction.h"
#include "logic/truth_table.h"
#include "util/fault.h"
#include "util/strings.h"
#include "verilog/parser.h"
#include "verilog/pretty.h"

namespace haven::llm {

namespace {

// Fraction of each axis probability that is systematic (per model+prompt)
// rather than per-sample stochastic.
constexpr double kSystematicShare = 0.65;

double temperature_multiplier(double t) { return 0.55 + 0.75 * t; }
double difficulty_multiplier(double d) { return std::min(0.7 + 1.1 * d, 1.5); }

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xcbf29ce484222325ULL) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool looks_vanilla(const std::string& prompt) {
  return prompt.find("part of a larger design") != std::string::npos ||
         prompt.find("current state is") != std::string::npos;
}

}  // namespace

SimLlm::SimLlm(std::string name, HallucinationProfile profile, std::string family)
    : name_(std::move(name)),
      family_(family.empty() ? name_ : std::move(family)),
      profile_(profile) {}

std::uint64_t SimLlm::prompt_hash(const std::string& prompt) const {
  return fnv1a(prompt, fnv1a(name_));
}

bool SimLlm::draw_axis(HalluAxis axis, std::uint64_t key, double difficulty,
                       double temperature, util::Rng& rng, double scale) const {
  // Chaos override: an installed FaultInjector with the axis's site armed
  // ("hallu.<axis>") replaces the stochastic draw with its deterministic,
  // context-keyed coin — the lint-correlation tests arm one axis at p=1 to
  // force that hallucination class. Consumes nothing from `rng`, and unarmed
  // sites (probability 0) fall through, so ordinary chaos runs and all
  // profile-driven draws are untouched.
  if (const util::FaultInjector* injector = util::FaultInjector::current()) {
    const std::string site = hallu_site_name(axis);
    if (injector->probability(site) > 0) return injector->should_fail(site);
  }
  const double p = profile_axis(profile_, axis) * scale;
  if (p <= 0) return false;
  const double dm = difficulty_multiplier(difficulty);
  // Total firing probability is target = p * dm (clamped); the systematic
  // share of it is a per-(family, task, axis) coin, the rest is drawn per
  // sample (scaled by temperature). At target = 1 the axis always fires.
  const double target = std::clamp(p * dm, 0.0, 1.0);
  const double p_sys = target * kSystematicShare;
  // Keyed on (family, task, axis) but NOT on the probability: a lower p
  // (fine-tuned model, interpreted prompt) fires on a strict subset of the
  // tasks a higher p fires on — intervention effects are paired per task.
  util::Rng sys_rng(fnv1a(family_, key) ^
                    (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                static_cast<int>(axis) + 1)));
  if (sys_rng.chance(p_sys)) return true;
  const double p_sto = std::clamp(
      (target - p_sys) / (1.0 - p_sys) * temperature_multiplier(temperature), 0.0, 1.0);
  return rng.chance(p_sto);
}

bool SimLlm::draw_axis(HalluAxis axis, const std::string& prompt, double difficulty,
                       double temperature, util::Rng& rng, double scale) const {
  return draw_axis(axis, prompt_hash(prompt), difficulty, temperature, rng, scale);
}

std::string SimLlm::fallback_module(const ParsedInstruction& parsed, const std::string& prompt,
                                    util::Rng& rng) const {
  // The model "did not understand" — it still emits syntactically plausible
  // Verilog: the declared interface (if any) with outputs tied low, or a
  // guessed generic module otherwise.
  const auto header = extract_header_line(prompt);
  if (parsed.had_header && header) {
    verilog::ParseOutput out = verilog::parse_source(*header + " endmodule");
    if (out.ok() && !out.file.modules.empty()) {
      verilog::Module m = out.file.modules.front();
      for (const auto& port : m.ports) {
        if (port.dir != verilog::Dir::kOutput) continue;
        verilog::ContAssign ca;
        ca.lhs = verilog::Expr::make_ident(port.name);
        ca.rhs = verilog::Expr::make_number(0, std::max(port.width(), 1), true);
        m.items.emplace_back(std::move(ca));
      }
      return verilog::print_module(m);
    }
  }
  // No header: guess a trivial interface (almost surely a mismatch).
  const char* guesses[] = {
      "module top_module(input a, input b, output out);\n  assign out = a & b;\nendmodule\n",
      "module top_module(input clk, input rst, output reg q);\n  always @(posedge clk)\n"
      "    if (rst) q <= 1'b0;\n    else q <= ~q;\nendmodule\n",
      "module top_module(input x, output y);\n  assign y = x;\nendmodule\n",
  };
  return guesses[rng.uniform_int(0, 2)];
}

std::string SimLlm::generate(const std::string& prompt, const GenerationConfig& config,
                             util::Rng& rng) const {
  return generate_impl(prompt, config, nullptr, rng);
}

std::string SimLlm::generate_with_hints(const std::string& prompt,
                                        const GenerationConfig& config,
                                        const AxisDamping& damping, util::Rng& rng) const {
  return generate_impl(prompt, config, &damping, rng);
}

std::string SimLlm::generate_impl(const std::string& prompt, const GenerationConfig& config,
                                  const AxisDamping* damping, util::Rng& rng) const {
  // Chaos hook: a real inference backend fails here (timeout, OOM, truncated
  // response); the injected stand-in lets the eval harness prove it survives.
  util::maybe_inject(util::kSiteLlmGenerate);
  const double t = config.temperature;

  ParsedInstruction parsed = parse_instruction(prompt);
  if (!parsed.ok()) return fallback_module(parsed, prompt, rng);

  TaskSpec spec = *parsed.spec;
  const double difficulty = spec.difficulty();
  // Systematic draws key on the task semantics, not the prompt spelling:
  // SI-CoT re-phrasing changes the axis *probabilities*, not the coin.
  const std::uint64_t task_key = spec.fingerprint();

  // Repair damping multiplies into each axis's scale. With no damping (or
  // the identity) the multiplication is exact (scale * 1.0 == scale), so the
  // undamped path is bit-identical to the historical generate().
  auto fired = [&](HalluAxis axis, double scale = 1.0) {
    if (damping != nullptr) scale *= damping->of(axis);
    return draw_axis(axis, task_key, difficulty, t, rng, scale);
  };

  // General comprehension failure: emits a stub.
  if (fired(HalluAxis::kComprehension)) return fallback_module(parsed, prompt, rng);

  // Misalignment with engineer phrasing (Table I): vanilla-style prompts are
  // the training distribution of vanilla-tuned models, engineer-style prompts
  // are where the gap shows. On tasks whose payload is symbolic (raw or
  // interpreted) the symbolic axes already model the format misread, so
  // misalignment draws at a reduced rate to avoid double counting.
  const bool symbolic_payload =
      parsed.raw_modality != symbolic::Modality::kNone || parsed.was_interpreted ||
      prompt.find("Karnaugh") != std::string::npos;
  double misalignment_scale = looks_vanilla(prompt) ? 0.25 : 1.0;
  if (symbolic_payload) misalignment_scale *= 0.3;
  if (fired(HalluAxis::kMisalignment, misalignment_scale)) {
    spec = corrupt_alignment(spec, parsed.had_header, rng);
  }

  // Symbolic hallucination. Raw payloads draw the full axis; SI-CoT
  // interpreted payloads draw a *reduced* residual (the Table III rule lists
  // are plain language but still long and misreadable — the paper's Table V
  // shows waveforms remain hardest even for HaVen). The reduction factors
  // encode how much each modality benefits from interpretation.
  {
    const bool interp = parsed.was_interpreted;
    // Consuming the interpreted rule lists correctly is itself an alignment
    // skill: models fine-tuned on HDL-aligned pairs (low misalignment) get
    // more out of SI-CoT than commercial models do (Table V vs Table VI).
    const double align = std::clamp(0.3 + 2.2 * profile_.misalignment, 0.45, 1.1);
    const double tt_scale = interp ? 0.5 * align : 1.0;
    const double wf_scale = interp ? std::max(0.85 * align, 0.55) : 1.0;
    const double sd_scale = interp ? 0.45 * align : 1.0;
    auto corrupt_comb_table = [&]() {
      logic::TruthTable tt =
          logic::TruthTable::from_expr(*spec.expr, spec.comb_inputs, spec.comb_output);
      spec.expr = corrupt_truth_table(tt, rng).to_sum_of_minterms();
    };
    if (spec.kind == TaskKind::kCombExpr &&
        (parsed.raw_modality == symbolic::Modality::kTruthTable ||
         (interp && spec.presentation == CombPresentation::kTruthTable &&
          prompt.find("When time is") == std::string::npos)) &&
        fired(HalluAxis::kSymTruthTable, tt_scale)) {
      corrupt_comb_table();
    } else if (spec.kind == TaskKind::kCombExpr &&
               (parsed.raw_modality == symbolic::Modality::kWaveform ||
                (interp && prompt.find("When time is") != std::string::npos)) &&
               fired(HalluAxis::kSymWaveform, wf_scale)) {
      corrupt_comb_table();
    } else if (spec.kind == TaskKind::kFsm &&
               (parsed.raw_modality == symbolic::Modality::kStateDiagram || interp) &&
               fired(HalluAxis::kSymStateDiagram, sd_scale)) {
      spec.diagram = corrupt_state_diagram(spec.diagram, rng);
    } else if (spec.kind == TaskKind::kCombExpr && !interp &&
               parsed.raw_modality == symbolic::Modality::kNone &&
               spec.presentation == CombPresentation::kTruthTable &&
               prompt.find("Karnaugh") != std::string::npos &&
               fired(HalluAxis::kSymTruthTable)) {
      // Karnaugh maps draw the truth-table axis (no separate lexical marker).
      corrupt_comb_table();
    }
  }

  // Verilog-specific attribute misunderstanding. The declared pin names stay
  // (the header fixes the interface); the *logic* tests the wrong level,
  // edge, or reset mechanism.
  if (spec.sequential() && fired(HalluAxis::kKnowAttribute)) {
    const std::string reset_name = spec.seq.reset_name();
    const std::string enable_name = spec.seq.enable_name();
    spec.seq = corrupt_attributes(spec.seq, rng);
    spec.seq.reset_port = reset_name;
    spec.seq.enable_port = enable_name;
  }

  // Logical hallucination on the function itself.
  if (spec.kind == TaskKind::kCombExpr && spec.expr) {
    const bool prose_logic = spec.presentation == CombPresentation::kEnglishText;
    if (prose_logic) {
      if (fired(HalluAxis::kLogicInstruction)) spec.expr = corrupt_expr(spec.expr, rng);
    } else if (spec.presentation == CombPresentation::kExpressionText ||
               spec.presentation == CombPresentation::kKarnaughMap) {
      if (fired(HalluAxis::kLogicExpression)) spec.expr = corrupt_expr(spec.expr, rng);
    }
  }

  // Choose codegen options: convention and corner-case axes.
  CodegenOptions options;
  if (spec.sequential() && fired(HalluAxis::kKnowConvention)) {
    if (spec.kind == TaskKind::kFsm && rng.chance(0.6)) {
      options.fsm_write_state_in_comb = true;  // "state" instead of "next_state"
    } else {
      options.nonblocking_in_clocked = false;  // blocking in clocked logic
    }
  }
  // Corner-case axis: full rate on structured designs; halved on plain
  // combinational functions (the missing-default failure needs the model to
  // have chosen a case-shaped implementation in the first place).
  if (fired(HalluAxis::kLogicCorner, spec.kind == TaskKind::kCombExpr ? 0.5 : 1.0)) {
    if (spec.kind == TaskKind::kCombExpr) {
      options.comb_as_incomplete_case = true;
    } else if (spec.kind == TaskKind::kFsm || spec.kind == TaskKind::kAlu ||
               (spec.kind == TaskKind::kMux && spec.mux_inputs > 2)) {
      options.include_default_case = false;
      options.omit_case_item = static_cast<int>(rng.uniform_int(0, 7));
    }
  }

  std::string source;
  try {
    source = generate_source(spec, options);
  } catch (const std::exception&) {
    return fallback_module(parsed, prompt, rng);
  }

  // Syntax misapplication: textual damage last.
  if (fired(HalluAxis::kKnowSyntax)) source = corrupt_syntax(source, rng);
  return source;
}

}  // namespace haven::llm
