// Instruction rendering: TaskSpec -> prompt text.
//
// Three phrasing styles model the gap the paper's Table I illustrates:
//  * kEngineer — the formats HDL engineers actually use: terse imperative
//    sentence plus the symbolic payload (truth table / waveform / state
//    diagram) and the module header. VerilogEval-human-like.
//  * kVanilla  — verbose LLM-synthesized prose describing the same task in
//    natural language only (state machines described sentence by sentence,
//    tables spelled out as words). VerilogEval-machine-like.
//  * kChat     — VerilogEval v2 specification-to-RTL chat phrasing with
//    explicit "Question:" / "Answer:" framing around engineer-style content.
//
// Every rendered instruction is recoverable by llm::parse_instruction; the
// renderer and parser are co-designed, and a property test enforces the
// round trip.
#pragma once

#include <string>

#include "llm/task_spec.h"
#include "util/rng.h"

namespace haven::llm {

enum class PromptStyle : std::uint8_t { kEngineer, kVanilla, kChat };

std::string prompt_style_name(PromptStyle s);

struct InstructionOptions {
  PromptStyle style = PromptStyle::kEngineer;
  bool include_header = true;  // append the "module ...(...);" line
};

// Render the instruction. `rng` varies only inessential phrasing (sentence
// openers); passing the same spec always yields a semantically identical
// prompt.
std::string render_instruction(const TaskSpec& spec, const InstructionOptions& options,
                               util::Rng& rng);

// Deterministic convenience overload (fixed phrasing).
std::string render_instruction(const TaskSpec& spec, const InstructionOptions& options = {});

}  // namespace haven::llm
