// Hallucination model. Each sub-type of the paper's taxonomy (Table II) is
// realized as a concrete *injector* that damages either the parsed TaskSpec
// or the generated code in exactly the way the taxonomy describes:
//
//  Symbolic    - state-diagram misinterpretation: states swapped / transition
//                redirected; waveform & truth-table misinterpretation: rows
//                flipped (e.g. reading AND as OR).
//  Knowledge   - convention misapplication: "state" written instead of
//                "next_state", blocking assignments in clocked logic;
//                syntax misapplication: def-instead-of-module, dropped
//                semicolons/endmodule; attribute misunderstanding: sync/async
//                reset, polarity, clock-edge flips.
//  Logical     - incorrect expression: operator/operand perturbations;
//                corner cases: dropped default/else; instructional logic:
//                condition chain corrupted.
//
// A HallucinationProfile gives per-sub-type probabilities. Probabilities are
// split into a *systematic* part (seeded by model+prompt: the model either
// has or lacks the pattern for this task, constant across samples) and a
// *stochastic* part (per-sample, scaled by temperature) — this split is what
// produces realistic pass@1 vs pass@5 gaps.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "llm/task_spec.h"
#include "logic/truth_table.h"
#include "symbolic/state_diagram.h"
#include "util/rng.h"

namespace haven::llm {

struct HallucinationProfile {
  // Symbolic hallucination.
  double sym_truth_table = 0.3;
  double sym_waveform = 0.35;
  double sym_state_diagram = 0.35;
  // Knowledge hallucination.
  double know_convention = 0.25;
  double know_syntax = 0.08;
  double know_attribute = 0.25;
  // Logical hallucination.
  double logic_expression = 0.2;
  double logic_corner = 0.2;
  double logic_instruction = 0.18;
  // Practice-of-engineers alignment (Table I) and general comprehension.
  double misalignment = 0.2;
  double comprehension = 0.08;

  // Uniformly scale every axis (used by fine-tuning floors and tests).
  HallucinationProfile scaled(double factor) const;
};

// Axis identifiers for seeding and dataset bookkeeping.
enum class HalluAxis : int {
  kSymTruthTable = 0,
  kSymWaveform,
  kSymStateDiagram,
  kKnowConvention,
  kKnowSyntax,
  kKnowAttribute,
  kLogicExpression,
  kLogicCorner,
  kLogicInstruction,
  kMisalignment,
  kComprehension,
};
constexpr int kNumHalluAxes = 11;

std::string hallu_axis_name(HalluAxis axis);
double profile_axis(const HallucinationProfile& p, HalluAxis axis);

// Per-axis multiplicative damping applied to a HallucinationProfile at
// generation time. This is how structured repair feedback reaches the model:
// haven::repair distills a failed candidate's evidence into per-axis scale
// factors in [0, 1] and SimLlm::generate_with_hints() multiplies each axis
// probability by its factor. The all-ones identity() damping is *exactly*
// the undamped path (p * 1.0 == p bit for bit), so a hinted generation with
// an empty hint is bit-identical to generate().
struct AxisDamping {
  std::array<double, kNumHalluAxes> scale;

  AxisDamping() { scale.fill(1.0); }
  static AxisDamping identity() { return AxisDamping{}; }

  double of(HalluAxis axis) const { return scale[static_cast<std::size_t>(axis)]; }
  void set(HalluAxis axis, double factor) { scale[static_cast<std::size_t>(axis)] = factor; }
  bool is_identity() const {
    for (double s : scale) {
      if (s != 1.0) return false;
    }
    return true;
  }
};

// Fault-injection site for forcing an axis ("hallu." + hallu_axis_name):
// arming it with probability 1 (or 0) on an installed util::FaultInjector
// overrides SimLlm's stochastic draw for that axis — used by the chaos tests
// that correlate injected hallucination classes with lint attribution.
std::string hallu_site_name(HalluAxis axis);

// --- injectors ------------------------------------------------------------

// Swap two states' roles, swap outputs, or redirect one transition; always
// returns a diagram NOT equivalent to the input (bounded retries).
symbolic::StateDiagram corrupt_state_diagram(const symbolic::StateDiagram& sd, util::Rng& rng);

// Flip one or two defined rows.
logic::TruthTable corrupt_truth_table(const logic::TruthTable& tt, util::Rng& rng);

// Perturb the expression tree (operator swap, literal negation, variable
// substitution); guaranteed non-equivalent to the input.
logic::ExprPtr corrupt_expr(const logic::ExprPtr& expr, util::Rng& rng);

// Flip one sequential attribute that the spec actually uses.
SeqAttributes corrupt_attributes(const SeqAttributes& seq, util::Rng& rng);

// Textual syntax damage: Python-isms, dropped ';' / 'endmodule', misspelled
// keyword, unbalanced begin/end. Result fails to parse (by construction for
// every mode).
std::string corrupt_syntax(const std::string& source, util::Rng& rng);

// Misalignment damage to a parsed spec (wrong width, ignored modulus/enable,
// renamed output when no header pinned the interface).
TaskSpec corrupt_alignment(const TaskSpec& spec, bool had_header, util::Rng& rng);

}  // namespace haven::llm
