// SimLlm: the mechanistic stand-in for a code-generation language model.
//
// generate() runs the honest pipeline — parse the prompt into a TaskSpec,
// emit the conventional implementation — and then *damages* it according to
// the model's HallucinationProfile, one taxonomy axis at a time. Every
// corruption is a concrete fault from Table II; pass rates downstream emerge
// from real parsing + simulation of the damaged code, never from a
// hard-coded success probability.
//
// Determinism & sampling model: each axis probability splits into a
// systematic part (seeded by model-name + prompt hash: the model either has
// or lacks this pattern for this prompt — identical across samples) and a
// stochastic part (drawn from the caller's Rng per sample, scaled by
// temperature). This reproduces the pass@1-vs-pass@5 structure of real
// models: some tasks are always failed, others fail only sometimes.
#pragma once

#include <cstdint>
#include <string>

#include "llm/hallucination.h"
#include "llm/spec_parser.h"
#include "llm/task_spec.h"
#include "util/rng.h"

namespace haven::llm {

struct GenerationConfig {
  double temperature = 0.2;
};

class SimLlm {
 public:
  // `family` identifies the base weights for systematic-draw seeding: a
  // fine-tuned model keeps its base's family so ablation arms are paired
  // (fine-tuning lowers probabilities; it does not reshuffle which tasks the
  // lineage finds hard). Defaults to `name`.
  SimLlm(std::string name, HallucinationProfile profile, std::string family = "");

  const std::string& name() const { return name_; }
  const std::string& family() const { return family_; }
  const HallucinationProfile& profile() const { return profile_; }
  void set_profile(const HallucinationProfile& p) { profile_ = p; }

  // Generate one candidate Verilog module for the prompt.
  std::string generate(const std::string& prompt, const GenerationConfig& config,
                       util::Rng& rng) const;

  // Generate with structured repair feedback: every hallucination-axis draw
  // is scaled by `damping` (haven::repair distills failure evidence into the
  // per-axis factors). The identity damping reproduces generate() bit for
  // bit — same rng draw sequence, same output — so round 0 of a repair loop
  // and a repair-disabled run cannot diverge. Models an LLM that actually
  // reads the feedback: axes named in the hint fire less often, scaled by
  // the policy's repair-efficacy factor.
  std::string generate_with_hints(const std::string& prompt, const GenerationConfig& config,
                                  const AxisDamping& damping, util::Rng& rng) const;

  // Draw one hallucination axis. The systematic part is keyed on `key`
  // (normally the parsed TaskSpec fingerprint: whether the model "knows the
  // pattern" is a property of the task, not of the prompt's spelling, so
  // SI-CoT rephrasing does not reroll it — only the axis probability
  // changes). `scale` multiplies the axis probability.
  bool draw_axis(HalluAxis axis, std::uint64_t key, double difficulty, double temperature,
                 util::Rng& rng, double scale = 1.0) const;

  // Convenience overload keying on the prompt text (used when no parse is
  // available).
  bool draw_axis(HalluAxis axis, const std::string& prompt, double difficulty,
                 double temperature, util::Rng& rng, double scale = 1.0) const;

  // Stable hash of (model, prompt) used for systematic draws.
  std::uint64_t prompt_hash(const std::string& prompt) const;

 private:
  std::string generate_impl(const std::string& prompt, const GenerationConfig& config,
                            const AxisDamping* damping, util::Rng& rng) const;
  std::string fallback_module(const ParsedInstruction& parsed, const std::string& prompt,
                              util::Rng& rng) const;

  std::string name_;
  std::string family_;
  HallucinationProfile profile_;
};

}  // namespace haven::llm
