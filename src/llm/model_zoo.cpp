#include "llm/model_zoo.h"

#include <stdexcept>

namespace haven::llm {

namespace {

// Helper to build a profile from the 11 axis values in declaration order:
// sym_tt, sym_wf, sym_sd, conv, syntax, attr, l_expr, l_corner, l_instr,
// misalignment, comprehension.
HallucinationProfile prof(double tt, double wf, double sd, double conv, double syn, double attr,
                          double lexpr, double lcorner, double linstr, double mis, double comp) {
  HallucinationProfile p;
  p.sym_truth_table = tt;
  p.sym_waveform = wf;
  p.sym_state_diagram = sd;
  p.know_convention = conv;
  p.know_syntax = syn;
  p.know_attribute = attr;
  p.logic_expression = lexpr;
  p.logic_corner = lcorner;
  p.logic_instruction = linstr;
  p.misalignment = mis;
  p.comprehension = comp;
  return p;
}

std::vector<ModelCard> build_zoo() {
  std::vector<ModelCard> zoo;
  auto add = [&](const std::string& name, bool open, const std::string& size,
                 HallucinationProfile p, const std::string& family = "") {
    zoo.push_back({name, open, size, p, family});
  };

  // ---- General-purpose LLMs -------------------------------------------------
  //                         tt    wf    sd    conv  syn   attr  lexp  lcor  lins  mis   comp
  add("GPT-3.5", false, "n/a",
      prof(0.72, 0.75, 0.72, 0.50, 0.080, 0.50, 0.40, 0.40, 0.40, 0.58, 0.23));
  add("GPT-4", false, "n/a",
      prof(0.68, 0.70, 0.68, 0.29, 0.020, 0.29, 0.21, 0.21, 0.21, 0.30, 0.095));
  add("GPT-4o-mini", false, "n/a",
      prof(0.69, 0.71, 0.69, 0.31, 0.025, 0.31, 0.22, 0.22, 0.22, 0.32, 0.10), "GPT-4");
  add("DeepSeek-Coder-V2", true, "236B",
      prof(0.50, 0.62, 0.30, 0.10, 0.015, 0.10, 0.11, 0.11, 0.11, 0.19, 0.040));

  // ---- General code models ----------------------------------------------------
  add("Starcoder", true, "15B",
      prof(0.76, 0.78, 0.76, 0.60, 0.050, 0.60, 0.56, 0.56, 0.56, 0.75, 0.28));
  add("CodeLlama", true, "7B",
      prof(0.76, 0.78, 0.77, 0.62, 0.120, 0.62, 0.58, 0.58, 0.58, 0.75, 0.28));
  add("DeepSeek-Coder", true, "6.7B",
      prof(0.72, 0.74, 0.72, 0.40, 0.060, 0.40, 0.33, 0.33, 0.33, 0.43, 0.13));
  add("CodeQwen", true, "7B",
      prof(0.74, 0.76, 0.74, 0.42, 0.100, 0.42, 0.40, 0.40, 0.40, 0.58, 0.09));

  // ---- Verilog CodeGen models ---------------------------------------------------
  add("ChipNeMo", false, "13B",
      prof(0.74, 0.76, 0.74, 0.44, 0.095, 0.44, 0.40, 0.40, 0.40, 0.62, 0.11));
  add("Thakur et al.", true, "16B",
      prof(0.73, 0.75, 0.73, 0.43, 0.130, 0.43, 0.35, 0.35, 0.35, 0.42, 0.16));
  add("RTLCoder-Mistral", true, "7B",
      prof(0.72, 0.74, 0.72, 0.38, 0.025, 0.38, 0.31, 0.31, 0.31, 0.47, 0.10));
  add("RTLCoder-DeepSeek", true, "6.7B",
      prof(0.70, 0.73, 0.71, 0.33, 0.040, 0.33, 0.27, 0.27, 0.27, 0.36, 0.135));
  add("BetterV-CodeLlama", false, "7B",
      prof(0.69, 0.72, 0.69, 0.275, 0.030, 0.275, 0.215, 0.215, 0.215, 0.27, 0.095));
  add("BetterV-DeepSeek", false, "6.7B",
      prof(0.68, 0.71, 0.68, 0.24, 0.025, 0.24, 0.185, 0.185, 0.185, 0.23, 0.080));
  add("BetterV-CodeQwen", false, "7B",
      prof(0.68, 0.71, 0.68, 0.27, 0.025, 0.27, 0.22, 0.22, 0.22, 0.28, 0.10));
  add("AutoVCoder-CodeLlama", false, "7B",
      prof(0.67, 0.70, 0.67, 0.25, 0.020, 0.25, 0.19, 0.19, 0.19, 0.245, 0.085));
  add("AutoVCoder-DeepSeek", false, "6.7B",
      prof(0.67, 0.70, 0.67, 0.23, 0.008, 0.23, 0.175, 0.175, 0.175, 0.225, 0.078));
  add("AutoVCoder-CodeQwen", false, "7B",
      prof(0.66, 0.69, 0.66, 0.26, 0.008, 0.26, 0.21, 0.21, 0.21, 0.27, 0.095));
  add("OriGen-DeepSeek", true, "7B",
      prof(0.64, 0.67, 0.64, 0.21, 0.012, 0.22, 0.17, 0.17, 0.17, 0.22, 0.075));

  return zoo;
}

}  // namespace

const std::vector<ModelCard>& model_zoo() {
  static const std::vector<ModelCard> kZoo = build_zoo();
  return kZoo;
}

const ModelCard* find_model_card(const std::string& name) {
  for (const auto& card : model_zoo()) {
    if (card.name == name) return &card;
  }
  return nullptr;
}

SimLlm make_model(const std::string& name) {
  const ModelCard* card = find_model_card(name);
  if (card == nullptr) throw std::out_of_range("unknown model '" + name + "'");
  return SimLlm(card->name, card->profile, card->family);
}

}  // namespace haven::llm
