// Model zoo: calibrated HallucinationProfile cards for every baseline model
// in Table IV / V / VI. Cards are data, hand-calibrated once so that the
// *orderings* of the paper's tables emerge from the mechanistic evaluation
// (see DESIGN.md §4). HaVen's own models are NOT carded: their profiles are
// produced by running the dataset pipeline + fine_tune on a base card.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "llm/simllm.h"

namespace haven::llm {

struct ModelCard {
  std::string name;
  bool open_source = true;
  std::string param_size = "7B";  // "n/a" for closed API models
  HallucinationProfile profile;
  // Draw-family for systematic seeding; empty = own name. Sibling models
  // (GPT-4o-mini vs GPT-4) share a family: they find the same tasks hard.
  std::string family;
};

const std::vector<ModelCard>& model_zoo();

// Null if unknown.
const ModelCard* find_model_card(const std::string& name);

// Construct the SimLlm for a card; throws std::out_of_range for unknown names.
SimLlm make_model(const std::string& name);

// The three HaVen base models.
inline const char* kBaseCodeLlama = "CodeLlama";
inline const char* kBaseDeepSeek = "DeepSeek-Coder";
inline const char* kBaseCodeQwen = "CodeQwen";

}  // namespace haven::llm
