// Instruction parsing: prompt text -> TaskSpec. This is the mechanistic
// "language understanding" of the SimLlm (and of SI-CoT's regular-modality
// parser, Fig 1 step 2). It recovers the semantic task from any phrasing the
// instruction renderer can produce: engineer/vanilla/chat styles, raw
// symbolic payloads (truth table / waveform / state diagram / Karnaugh map),
// SI-CoT interpreted payloads, and FSM-as-prose.
//
// parse_instruction itself is *reliable*; hallucination is injected
// afterwards by corrupting the parsed spec or the generated code, so each
// failure is a deliberate, taxonomy-classified fault rather than a parser
// accident. Prompts outside the co-designed grammar return an error, which
// the SimLlm maps to a comprehension failure.
#pragma once

#include <optional>
#include <string>

#include "llm/task_spec.h"
#include "symbolic/modality.h"

namespace haven::llm {

struct ParsedInstruction {
  std::optional<TaskSpec> spec;
  symbolic::Modality raw_modality = symbolic::Modality::kNone;  // raw block present
  bool was_interpreted = false;  // SI-CoT structured payload present
  bool had_header = false;       // "module ...;" line present
  std::string error;             // non-empty iff !spec

  bool ok() const { return spec.has_value(); }
};

ParsedInstruction parse_instruction(const std::string& prompt);

// Extract just the "module name(ports);" header from a prompt, if present.
// Returns the header source text (without body) suitable for re-parsing.
std::optional<std::string> extract_header_line(const std::string& prompt);

}  // namespace haven::llm
