#include "llm/codegen.h"

#include <algorithm>
#include <stdexcept>

#include "logic/qm.h"
#include "logic/truth_table.h"
#include "util/strings.h"
#include "verilog/pretty.h"

namespace haven::llm {

using verilog::AlwaysBlock;
using verilog::CaseItem;
using verilog::CaseKind;
using verilog::ContAssign;
using verilog::Dir;
using verilog::Edge;
using verilog::Expr;
using verilog::ExprPtr;
using verilog::Module;
using verilog::NetDecl;
using verilog::NetType;
using verilog::Port;
using verilog::Range;
using verilog::SensItem;
using verilog::Stmt;
using verilog::StmtPtr;

namespace {

ExprPtr num(std::uint64_t value, int width) { return Expr::make_number(value, width, true); }
ExprPtr id(const std::string& name) { return Expr::make_ident(name); }

Port make_port(const TaskSpec::PortInfo& info, bool as_reg) {
  Port p;
  p.name = info.name;
  p.dir = info.is_input ? Dir::kInput : Dir::kOutput;
  p.is_reg = !info.is_input && as_reg;
  if (info.width > 1) p.range = Range{info.width - 1, 0};
  return p;
}

// Lower a logic::Expr over 1-bit ports to a verilog::Expr.
ExprPtr lower_logic(const logic::Expr& e) {
  switch (e.op()) {
    case logic::Op::kVar: return id(e.name());
    case logic::Op::kConst: return num(e.value() ? 1 : 0, 1);
    case logic::Op::kNot: return Expr::make_unary("~", lower_logic(*e.lhs()));
    case logic::Op::kAnd:
      return Expr::make_binary("&", lower_logic(*e.lhs()), lower_logic(*e.rhs()));
    case logic::Op::kOr:
      return Expr::make_binary("|", lower_logic(*e.lhs()), lower_logic(*e.rhs()));
    case logic::Op::kXor:
      return Expr::make_binary("^", lower_logic(*e.lhs()), lower_logic(*e.rhs()));
    case logic::Op::kXnor:
      return Expr::make_unary("~", Expr::make_binary("^", lower_logic(*e.lhs()),
                                                     lower_logic(*e.rhs())));
    case logic::Op::kNand:
      return Expr::make_unary("~", Expr::make_binary("&", lower_logic(*e.lhs()),
                                                     lower_logic(*e.rhs())));
    case logic::Op::kNor:
      return Expr::make_unary("~", Expr::make_binary("|", lower_logic(*e.lhs()),
                                                     lower_logic(*e.rhs())));
  }
  throw std::logic_error("lower_logic: corrupt op");
}

// Condition testing the (possibly active-low) reset.
ExprPtr reset_condition(const SeqAttributes& seq) {
  ExprPtr r = id(seq.reset_name());
  return seq.reset_active_low ? Expr::make_unary("!", r) : r;
}

ExprPtr enable_condition(const SeqAttributes& seq) {
  ExprPtr e = id(seq.enable_name());
  return seq.enable == EnableKind::kActiveLow ? Expr::make_unary("!", e) : e;
}

// Build the canonical clocked always block:
//   always @(posedge clk [or posedge rst])
//     if (reset_cond) <reset_stmt>
//     else [if (enable_cond)] <body_stmt>
AlwaysBlock clocked_always(const TaskSpec& spec, StmtPtr reset_stmt, StmtPtr body,
                           const CodegenOptions& /*options*/) {
  const SeqAttributes& seq = spec.seq;
  AlwaysBlock ab;
  ab.sens.push_back({seq.negedge_clock ? Edge::kNeg : Edge::kPos, "clk"});
  if (seq.reset == ResetKind::kAsync) {
    ab.sens.push_back({seq.reset_active_low ? Edge::kNeg : Edge::kPos, seq.reset_name()});
  }

  // Note: include_trailing_else only affects combinational logic; dropping
  // the else of a reset-if would deadlock every register, which is not the
  // corner-case failure mode the taxonomy describes.
  StmtPtr inner = body;
  if (seq.enable != EnableKind::kNone) {
    inner = Stmt::make_if(enable_condition(seq), body, nullptr);
  }
  if (seq.reset != ResetKind::kNone && reset_stmt) {
    inner = Stmt::make_if(reset_condition(seq), reset_stmt, inner);
  }
  ab.body = inner;
  return ab;
}

StmtPtr assign_stmt(const CodegenOptions& options, ExprPtr lhs, ExprPtr rhs) {
  return Stmt::make_assign(!options.nonblocking_in_clocked, std::move(lhs), std::move(rhs));
}

// Corner-case injection: drop one non-default item from a case body.
void maybe_omit_case_item(std::vector<CaseItem>& items, const CodegenOptions& options) {
  if (options.omit_case_item < 0 || items.size() <= 1) return;
  items.erase(items.begin() +
              static_cast<std::ptrdiff_t>(static_cast<std::size_t>(options.omit_case_item) %
                                          items.size()));
}

// --- per-kind generators ----------------------------------------------------

void gen_comb_expr(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  if (!spec.expr) throw std::invalid_argument("kCombExpr spec without expression");

  if (options.comb_as_incomplete_case) {
    // Taxonomy failure mode: enumerate only the '1' rows over {inputs...},
    // no default (unlisted rows latch -> X mismatch in the testbench).
    const logic::TruthTable tt =
        logic::TruthTable::from_expr(*spec.expr, spec.comb_inputs, spec.comb_output);
    const int n = static_cast<int>(spec.comb_inputs.size());
    // Subject {d, c, b, a}: input i is bit i, so MSB-first in the concat.
    std::vector<ExprPtr> parts;
    for (int i = n - 1; i >= 0; --i) parts.push_back(id(spec.comb_inputs[static_cast<std::size_t>(i)]));
    ExprPtr subject = n == 1 ? parts[0] : Expr::make_concat(std::move(parts));
    std::vector<CaseItem> items;
    for (std::uint32_t mt : tt.minterms()) {
      CaseItem item;
      item.labels.push_back(num(mt, n));
      item.body = Stmt::make_assign(true, id(spec.comb_output), num(1, 1));
      items.push_back(std::move(item));
    }
    if (items.empty()) {
      CaseItem item;
      item.labels.push_back(num(0, n));
      item.body = Stmt::make_assign(true, id(spec.comb_output), num(0, 1));
      items.push_back(std::move(item));
    }
    AlwaysBlock comb;
    comb.star = true;
    comb.body = Stmt::make_case(CaseKind::kCase, std::move(subject), std::move(items));
    m.items.emplace_back(std::move(comb));
    // The output must be reg for the procedural assignment.
    for (auto& port : m.ports) {
      if (port.name == spec.comb_output) port.is_reg = true;
    }
    return;
  }

  logic::ExprPtr semantic = spec.expr;
  if (spec.want_minimal) {
    const logic::TruthTable tt =
        logic::TruthTable::from_expr(*spec.expr, spec.comb_inputs, spec.comb_output);
    semantic = logic::minimize(tt).expr;
  }
  ContAssign ca;
  ca.lhs = id(spec.comb_output);
  ca.rhs = lower_logic(*semantic);
  m.items.emplace_back(std::move(ca));
}

void gen_fsm(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  const symbolic::StateDiagram& sd = spec.diagram;
  if (!sd.valid()) throw std::invalid_argument("kFsm spec with invalid diagram");
  const int bits = sd.state_bits();

  // State parameters.
  for (std::size_t s = 0; s < sd.num_states(); ++s) {
    verilog::ParameterDecl p;
    p.name = "S_" + sd.states[s];
    p.local = true;
    p.value = num(s, bits);
    m.items.emplace_back(std::move(p));
  }
  auto state_const = [&](int s) { return num(static_cast<std::uint64_t>(s), bits); };

  NetDecl regs;
  regs.type = NetType::kReg;
  if (bits > 1) regs.range = Range{bits - 1, 0};
  regs.names = {"state", "next_state"};
  m.items.emplace_back(std::move(regs));

  // 1. State register.
  {
    StmtPtr reset_stmt = Stmt::make_assign(false, id("state"), state_const(sd.reset_state));
    StmtPtr step = Stmt::make_assign(!options.nonblocking_in_clocked, id("state"),
                                     id("next_state"));
    m.items.emplace_back(clocked_always(spec, reset_stmt, step, options));
  }

  const std::string comb_target = options.fsm_write_state_in_comb ? "state" : "next_state";

  // 2. Next-state logic.
  {
    std::vector<CaseItem> items;
    for (std::size_t s = 0; s < sd.num_states(); ++s) {
      CaseItem item;
      item.labels.push_back(state_const(static_cast<int>(s)));
      // next = x ? next1 : next0
      ExprPtr next = Expr::make_ternary(id(sd.input_name),
                                        state_const(sd.step(static_cast<int>(s), 1)),
                                        state_const(sd.step(static_cast<int>(s), 0)));
      item.body = Stmt::make_assign(true, id(comb_target), std::move(next));
      items.push_back(std::move(item));
    }
    maybe_omit_case_item(items, options);
    if (options.include_default_case) {
      CaseItem def;
      def.body = Stmt::make_assign(true, id(comb_target), state_const(sd.reset_state));
      items.push_back(std::move(def));
    }
    AlwaysBlock comb;
    comb.star = true;
    comb.body = Stmt::make_case(CaseKind::kCase, id("state"), std::move(items));
    if (!options.fsm_separate_blocks) {
      // Single-block style: fold next-state computation into the clocked
      // block (drops the separate register; a structural convention
      // violation that usually still simulates but diverges under reset or
      // enable interplay). We keep it simple: next_state computed
      // combinationally but output logic folded below.
    }
    m.items.emplace_back(std::move(comb));
  }

  // 3. Moore output logic.
  {
    std::vector<CaseItem> items;
    for (std::size_t s = 0; s < sd.num_states(); ++s) {
      CaseItem item;
      item.labels.push_back(state_const(static_cast<int>(s)));
      item.body = Stmt::make_assign(true, id(sd.output_name),
                                    num(static_cast<std::uint64_t>(sd.outputs[s]), 1));
      items.push_back(std::move(item));
    }
    if (options.include_default_case) {
      CaseItem def;
      def.body = Stmt::make_assign(true, id(sd.output_name), num(0, 1));
      items.push_back(std::move(def));
    }
    AlwaysBlock comb;
    comb.star = true;
    comb.body = Stmt::make_case(CaseKind::kCase, id("state"), std::move(items));
    m.items.emplace_back(std::move(comb));
  }
}

void gen_counter(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  const int w = spec.width;
  ExprPtr step;
  if (spec.count_down) {
    step = Expr::make_binary("-", id("q"), num(1, w));
  } else {
    step = Expr::make_binary("+", id("q"), num(1, w));
  }
  StmtPtr body;
  if (spec.modulus > 0) {
    const std::uint64_t top = static_cast<std::uint64_t>(spec.modulus - 1);
    if (spec.count_down) {
      // 0 wraps to modulus-1.
      ExprPtr at_zero = Expr::make_binary("==", id("q"), num(0, w));
      body = Stmt::make_if(at_zero, assign_stmt(options, id("q"), num(top, w)),
                           assign_stmt(options, id("q"), step));
    } else {
      ExprPtr at_top = Expr::make_binary("==", id("q"), num(top, w));
      body = Stmt::make_if(at_top, assign_stmt(options, id("q"), num(0, w)),
                           assign_stmt(options, id("q"), step));
    }
  } else {
    body = assign_stmt(options, id("q"), step);
  }
  StmtPtr reset_stmt = Stmt::make_assign(false, id("q"), num(0, w));
  m.items.emplace_back(clocked_always(spec, reset_stmt, body, options));
}

void gen_shift_register(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  const int w = spec.width;
  ExprPtr next;
  if (spec.shift_left) {
    // q <= {q[w-2:0], din}
    ExprPtr upper = w >= 2 ? Expr::make_part_select("q", w - 2, 0) : nullptr;
    next = upper ? Expr::make_concat({upper, id("din")}) : id("din");
  } else {
    // q <= {din, q[w-1:1]}
    ExprPtr lower = w >= 2 ? Expr::make_part_select("q", w - 1, 1) : nullptr;
    next = lower ? Expr::make_concat({id("din"), lower}) : id("din");
  }
  StmtPtr body = assign_stmt(options, id("q"), std::move(next));
  StmtPtr reset_stmt = Stmt::make_assign(false, id("q"), num(0, w));
  m.items.emplace_back(clocked_always(spec, reset_stmt, body, options));
}

void gen_register(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  StmtPtr body = assign_stmt(options, id("q"), id("d"));
  StmtPtr reset_stmt = Stmt::make_assign(false, id("q"), num(0, spec.width));
  m.items.emplace_back(clocked_always(spec, reset_stmt, body, options));
}

void gen_adder(const TaskSpec& /*spec*/, Module& m) {
  // {cout, sum} = {1'b0, a} + b + cin; the widened first operand keeps the
  // carry (binary ops evaluate at the max operand width).
  ContAssign ca;
  ca.lhs = Expr::make_concat({id("cout"), id("sum")});
  ca.rhs = Expr::make_binary(
      "+", Expr::make_binary("+", Expr::make_concat({num(0, 1), id("a")}), id("b")), id("cin"));
  m.items.emplace_back(std::move(ca));
}

void gen_mux(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  if (spec.mux_inputs == 2) {
    ContAssign ca;
    ca.lhs = id("y");
    ca.rhs = Expr::make_ternary(id("sel"), id("d1"), id("d0"));
    m.items.emplace_back(std::move(ca));
    return;
  }
  std::vector<CaseItem> items;
  for (int i = 0; i < spec.mux_inputs; ++i) {
    CaseItem item;
    item.labels.push_back(num(static_cast<std::uint64_t>(i), 2));
    item.body = Stmt::make_assign(true, id("y"), id(util::format("d%d", i)));
    items.push_back(std::move(item));
  }
  maybe_omit_case_item(items, options);
  if (options.include_default_case) {
    CaseItem def;
    def.body = Stmt::make_assign(true, id("y"), num(0, spec.width));
    items.push_back(std::move(def));
  }
  AlwaysBlock comb;
  comb.star = true;
  comb.body = Stmt::make_case(CaseKind::kCase, id("sel"), std::move(items));
  m.items.emplace_back(std::move(comb));
}

void gen_decoder(const TaskSpec& spec, Module& m, const CodegenOptions& /*options*/) {
  const int out_w = 1 << spec.sel_width;
  // always @(*) begin y = 0; y[sel] = 1'b1; end
  std::vector<StmtPtr> stmts;
  stmts.push_back(Stmt::make_assign(true, id("y"), num(0, out_w)));
  stmts.push_back(Stmt::make_assign(true, Expr::make_bit_select("y", id("sel")), num(1, 1)));
  AlwaysBlock comb;
  comb.star = true;
  comb.body = Stmt::make_block(std::move(stmts));
  m.items.emplace_back(std::move(comb));
}

void gen_comparator(const TaskSpec& /*spec*/, Module& m) {
  auto emit = [&](const char* out_name, const char* op) {
    ContAssign ca;
    ca.lhs = id(out_name);
    ca.rhs = Expr::make_binary(op, id("a"), id("b"));
    m.items.emplace_back(std::move(ca));
  };
  emit("eq", "==");
  emit("lt", "<");
  emit("gt", ">");
}

void gen_parity(const TaskSpec& /*spec*/, Module& m) {
  ContAssign ca;
  ca.lhs = id("parity");
  ca.rhs = Expr::make_unary("^", id("data"));
  m.items.emplace_back(std::move(ca));
}

void gen_alu(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  std::vector<CaseItem> items;
  const std::vector<std::pair<std::uint64_t, const char*>> ops = {
      {0, "+"}, {1, "-"}, {2, "&"}, {3, "|"}};
  for (const auto& [code, op] : ops) {
    CaseItem item;
    item.labels.push_back(num(code, 2));
    item.body = Stmt::make_assign(true, id("y"), Expr::make_binary(op, id("a"), id("b")));
    items.push_back(std::move(item));
  }
  maybe_omit_case_item(items, options);
  if (options.include_default_case) {
    CaseItem def;
    def.body = Stmt::make_assign(true, id("y"), num(0, spec.width));
    items.push_back(std::move(def));
  }
  AlwaysBlock comb;
  comb.star = true;
  comb.body = Stmt::make_case(CaseKind::kCase, id("op"), std::move(items));
  m.items.emplace_back(std::move(comb));
}

void gen_clock_divider(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  // Counter 0..divide_by/2-1, toggling clk_out at wrap.
  const int half = spec.divide_by / 2;
  int cnt_w = 1;
  while ((1 << cnt_w) < half) ++cnt_w;
  cnt_w = std::max(cnt_w, 1);

  NetDecl cnt;
  cnt.type = NetType::kReg;
  if (cnt_w > 1) cnt.range = Range{cnt_w - 1, 0};
  cnt.names = {"cnt"};
  m.items.emplace_back(std::move(cnt));

  std::vector<StmtPtr> reset_stmts;
  reset_stmts.push_back(Stmt::make_assign(false, id("cnt"), num(0, cnt_w)));
  reset_stmts.push_back(Stmt::make_assign(false, id("clk_out"), num(0, 1)));

  ExprPtr at_top =
      Expr::make_binary("==", id("cnt"), num(static_cast<std::uint64_t>(half - 1), cnt_w));
  std::vector<StmtPtr> wrap;
  wrap.push_back(assign_stmt(options, id("cnt"), num(0, cnt_w)));
  wrap.push_back(assign_stmt(options, id("clk_out"), Expr::make_unary("~", id("clk_out"))));
  StmtPtr body =
      Stmt::make_if(at_top, Stmt::make_block(std::move(wrap)),
                    assign_stmt(options, id("cnt"),
                                Expr::make_binary("+", id("cnt"), num(1, cnt_w))));
  m.items.emplace_back(clocked_always(spec, Stmt::make_block(std::move(reset_stmts)), body,
                                      options));
}

void gen_edge_detector(const TaskSpec& spec, Module& m, const CodegenOptions& options) {
  NetDecl prev;
  prev.type = NetType::kReg;
  prev.names = {"sig_prev"};
  m.items.emplace_back(std::move(prev));

  StmtPtr body = assign_stmt(options, id("sig_prev"), id("sig"));
  StmtPtr reset_stmt = Stmt::make_assign(false, id("sig_prev"), num(0, 1));
  m.items.emplace_back(clocked_always(spec, reset_stmt, body, options));

  ContAssign ca;
  ca.lhs = id("pulse");
  if (spec.detect_falling) {
    ca.rhs = Expr::make_binary("&", Expr::make_unary("~", id("sig")), id("sig_prev"));
  } else {
    ca.rhs = Expr::make_binary("&", id("sig"), Expr::make_unary("~", id("sig_prev")));
  }
  m.items.emplace_back(std::move(ca));
}

// Which outputs must be declared reg for this kind?
bool output_is_reg(const TaskSpec& spec, const std::string& name) {
  switch (spec.kind) {
    case TaskKind::kCombExpr:
    case TaskKind::kAdder:
    case TaskKind::kComparator:
    case TaskKind::kParity:
      return false;
    case TaskKind::kMux:
      return spec.mux_inputs != 2;
    case TaskKind::kEdgeDetector:
      return name != "pulse";  // pulse is a wire, sig_prev internal reg
    case TaskKind::kFsm:
      return name == spec.diagram.output_name;
    default:
      return true;  // counters, registers, shifters, decoders, alu, divider
  }
}

}  // namespace

Module generate_module(const TaskSpec& spec, const CodegenOptions& options) {
  Module m;
  m.name = spec.module_name;
  for (const auto& info : spec.interface()) {
    m.ports.push_back(make_port(info, !info.is_input && output_is_reg(spec, info.name)));
  }

  switch (spec.kind) {
    case TaskKind::kCombExpr: gen_comb_expr(spec, m, options); break;
    case TaskKind::kFsm: gen_fsm(spec, m, options); break;
    case TaskKind::kCounter: gen_counter(spec, m, options); break;
    case TaskKind::kShiftRegister: gen_shift_register(spec, m, options); break;
    case TaskKind::kRegister: gen_register(spec, m, options); break;
    case TaskKind::kAdder: gen_adder(spec, m); break;
    case TaskKind::kMux: gen_mux(spec, m, options); break;
    case TaskKind::kDecoder: gen_decoder(spec, m, options); break;
    case TaskKind::kComparator: gen_comparator(spec, m); break;
    case TaskKind::kParity: gen_parity(spec, m); break;
    case TaskKind::kAlu: gen_alu(spec, m, options); break;
    case TaskKind::kClockDivider: gen_clock_divider(spec, m, options); break;
    case TaskKind::kEdgeDetector: gen_edge_detector(spec, m, options); break;
  }
  return m;
}

std::string generate_source(const TaskSpec& spec, const CodegenOptions& options) {
  return verilog::print_module(generate_module(spec, options));
}

}  // namespace haven::llm
