// Fine-tuning simulation. Consuming a dataset lowers the hallucination
// probabilities whose taxonomy classes the dataset covers, with diminishing
// returns: p' = floor + (p - floor) * exp(-n_axis / K_axis), where n_axis is
// the effective number of training samples teaching that axis and K_axis is
// the axis' sample-efficiency constant.
//
// This is the mechanism the paper posits (Section III-C/D): the K-dataset
// mitigates knowledge hallucination, the L-dataset logical hallucination,
// and the vanilla dataset mainly syntax; Fig 3 and Fig 4 then emerge from
// running this function on real datasets produced by the dataset pipeline.
#pragma once

#include <array>
#include <cstddef>

#include "llm/hallucination.h"

namespace haven::llm {

// Effective per-axis training coverage (sample counts, possibly fractional:
// a sample can teach several axes with different weights).
struct DatasetStats {
  std::array<double, kNumHalluAxes> coverage{};
  std::size_t total_samples = 0;

  double& axis(HalluAxis a) { return coverage[static_cast<std::size_t>(a)]; }
  double axis(HalluAxis a) const { return coverage[static_cast<std::size_t>(a)]; }

  // Pointwise sum (training on the union of two datasets).
  DatasetStats operator+(const DatasetStats& o) const;
};

struct FineTuneConstants {
  // Sample efficiency per axis (samples for ~63% of the reducible gap).
  std::array<double, kNumHalluAxes> k{};
  // Irreducible floor per axis.
  std::array<double, kNumHalluAxes> floor{};

  static FineTuneConstants defaults();
};

HallucinationProfile fine_tune(const HallucinationProfile& base, const DatasetStats& stats,
                               const FineTuneConstants& constants = FineTuneConstants::defaults());

}  // namespace haven::llm
