#include "llm/finetune.h"

#include <cmath>

namespace haven::llm {

DatasetStats DatasetStats::operator+(const DatasetStats& o) const {
  DatasetStats out = *this;
  for (std::size_t i = 0; i < coverage.size(); ++i) out.coverage[i] += o.coverage[i];
  out.total_samples += o.total_samples;
  return out;
}

FineTuneConstants FineTuneConstants::defaults() {
  FineTuneConstants c;
  auto set = [&](HalluAxis a, double k, double floor) {
    c.k[static_cast<std::size_t>(a)] = k;
    c.floor[static_cast<std::size_t>(a)] = floor;
  };
  // Symbolic formats are hard to learn from text pairs alone: high K, high
  // floor (SI-CoT, not fine-tuning, is the paper's cure for these — and
  // even then Table V shows substantial residual failure).
  set(HalluAxis::kSymTruthTable, 20000, 0.38);
  set(HalluAxis::kSymWaveform, 25000, 0.52);
  set(HalluAxis::kSymStateDiagram, 22000, 0.40);
  // Knowledge axes respond well to HDL-aligned pairs (the K-dataset's job).
  set(HalluAxis::kKnowConvention, 3500, 0.09);
  set(HalluAxis::kKnowSyntax, 4000, 0.008);
  set(HalluAxis::kKnowAttribute, 3500, 0.09);
  // Logical axes respond to the L-dataset.
  set(HalluAxis::kLogicExpression, 1200, 0.15);
  set(HalluAxis::kLogicCorner, 1200, 0.11);
  set(HalluAxis::kLogicInstruction, 1200, 0.15);
  // Alignment needs engineer-style pairs; comprehension improves broadly.
  set(HalluAxis::kMisalignment, 7000, 0.13);
  set(HalluAxis::kComprehension, 12000, 0.06);
  return c;
}

HallucinationProfile fine_tune(const HallucinationProfile& base, const DatasetStats& stats,
                               const FineTuneConstants& constants) {
  HallucinationProfile out = base;
  auto apply = [&](double p, HalluAxis a) {
    const std::size_t i = static_cast<std::size_t>(a);
    const double n = stats.coverage[i];
    if (n <= 0) return p;
    const double floor = constants.floor[i];
    if (p <= floor) return p;
    return floor + (p - floor) * std::exp(-n / constants.k[i]);
  };
  out.sym_truth_table = apply(out.sym_truth_table, HalluAxis::kSymTruthTable);
  out.sym_waveform = apply(out.sym_waveform, HalluAxis::kSymWaveform);
  out.sym_state_diagram = apply(out.sym_state_diagram, HalluAxis::kSymStateDiagram);
  out.know_convention = apply(out.know_convention, HalluAxis::kKnowConvention);
  out.know_syntax = apply(out.know_syntax, HalluAxis::kKnowSyntax);
  out.know_attribute = apply(out.know_attribute, HalluAxis::kKnowAttribute);
  out.logic_expression = apply(out.logic_expression, HalluAxis::kLogicExpression);
  out.logic_corner = apply(out.logic_corner, HalluAxis::kLogicCorner);
  out.logic_instruction = apply(out.logic_instruction, HalluAxis::kLogicInstruction);
  out.misalignment = apply(out.misalignment, HalluAxis::kMisalignment);
  out.comprehension = apply(out.comprehension, HalluAxis::kComprehension);
  return out;
}

}  // namespace haven::llm
