// TaskSpec: the semantic intermediate representation of a Verilog design
// task. Everything in the HaVen reproduction round-trips through it:
//
//   suite builders  ->  TaskSpec  ->  instruction renderer  -> prompt text
//                            |                                      |
//                            v                                      v
//                      golden codegen                       SimLlm spec parser
//                            |                                      |
//                            v                                      v
//                      golden Verilog  <--- diff testbench ---  candidate Verilog
//
// A TaskSpec fully determines the golden module, the stimulus protocol, and
// the instruction text (in any of several phrasing styles).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "logic/expr.h"
#include "symbolic/state_diagram.h"
#include "util/rng.h"

namespace haven::llm {

enum class TaskKind : std::uint8_t {
  kCombExpr,      // 1-bit boolean function of 1-bit inputs
  kFsm,           // Moore FSM from a state diagram
  kCounter,       // up/down, optional modulus
  kShiftRegister,
  kRegister,      // D register / pipeline stage
  kAdder,
  kMux,
  kDecoder,
  kComparator,
  kParity,
  kAlu,
  kClockDivider,
  kEdgeDetector,
};

std::string task_kind_name(TaskKind k);
bool task_kind_sequential(TaskKind k);

// How a combinational function is presented in the instruction (the paper's
// symbolic modalities plus plain expression text).
enum class CombPresentation : std::uint8_t {
  kExpressionText,  // "out = (a & b) | c"
  kEnglishText,     // "out equals a AND b, then OR c"
  kTruthTable,      // symbolic block
  kWaveform,        // symbolic block
  kKarnaughMap,     // rendered as a truth-table-equivalent map exercise
};

enum class ResetKind : std::uint8_t { kNone, kSync, kAsync };
enum class EnableKind : std::uint8_t { kNone, kActiveHigh, kActiveLow };

// Verilog-specific attributes (Section III-C): reset mechanism, clock edge,
// enable polarity. Names are derived ("rst" / "rst_n", "en" / "en_n").
struct SeqAttributes {
  ResetKind reset = ResetKind::kSync;
  bool reset_active_low = false;
  bool negedge_clock = false;
  EnableKind enable = EnableKind::kNone;

  // Pin-name overrides: normally the names derive from polarity ("rst" vs
  // "rst_n"), but a model that misreads polarity keeps the declared pin name
  // while testing the wrong level — the override pins the name.
  std::string reset_port;
  std::string enable_port;

  std::string reset_name() const {
    return !reset_port.empty() ? reset_port : (reset_active_low ? "rst_n" : "rst");
  }
  std::string enable_name() const {
    return !enable_port.empty() ? enable_port
                                : (enable == EnableKind::kActiveLow ? "en_n" : "en");
  }
};

struct TaskSpec {
  TaskKind kind = TaskKind::kCombExpr;
  std::string module_name = "top_module";

  // kCombExpr ------------------------------------------------------------
  logic::ExprPtr expr;                    // semantic function
  std::vector<std::string> comb_inputs;   // port names, LSB-first
  std::string comb_output = "out";
  CombPresentation presentation = CombPresentation::kExpressionText;
  bool want_minimal = false;              // "most concise expression" flavour

  // kFsm ------------------------------------------------------------------
  symbolic::StateDiagram diagram;

  // Parametric kinds -------------------------------------------------------
  int width = 4;          // data width (counter/shift/reg/adder/alu/...)
  int modulus = 0;        // counter: wrap at modulus (0 = natural wrap)
  bool count_down = false;
  bool shift_left = true;
  int mux_inputs = 4;     // kMux: 2 or 4
  int sel_width = 2;      // kDecoder
  int divide_by = 4;      // kClockDivider (even)
  bool detect_falling = false;  // kEdgeDetector

  SeqAttributes seq;

  // --- derived -------------------------------------------------------------
  bool sequential() const { return task_kind_sequential(kind); }

  // Port list of the golden interface: (name, width, is_input).
  struct PortInfo {
    std::string name;
    int width = 1;
    bool is_input = true;
  };
  std::vector<PortInfo> interface() const;

  // Canonical "module name(...);" header line used in prompts.
  std::string header_line() const;

  // Rough difficulty in [0,1] used to scale systematic hallucination draws.
  double difficulty() const;

  // A short structural fingerprint (stable across runs) for seeding.
  std::uint64_t fingerprint() const;
};

// --- random generation ----------------------------------------------------

struct TaskGenConfig {
  // Relative weights per kind; zero removes the kind.
  double w_comb = 3.0;
  double w_fsm = 1.0;
  double w_counter = 1.0;
  double w_shift = 0.7;
  double w_register = 0.7;
  double w_adder = 0.6;
  double w_mux = 0.6;
  double w_decoder = 0.5;
  double w_comparator = 0.5;
  double w_parity = 0.4;
  double w_alu = 0.5;
  double w_clock_divider = 0.4;
  double w_edge_detector = 0.4;

  int comb_min_vars = 2;
  int comb_max_vars = 4;
  int fsm_min_states = 2;
  int fsm_max_states = 5;
  int max_width = 8;
  // Probability a comb task is presented as each symbolic modality (the rest
  // split between expression/english text).
  double p_truth_table = 0.15;
  double p_waveform = 0.1;
  double p_kmap = 0.05;
  // Probability of non-default sequential attributes.
  double p_async_reset = 0.35;
  double p_active_low = 0.25;
  double p_negedge = 0.1;
  double p_enable = 0.3;
};

TaskSpec generate_task(util::Rng& rng, const TaskGenConfig& config = {});

}  // namespace haven::llm
