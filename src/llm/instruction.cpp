#include "llm/instruction.h"

#include "logic/kmap.h"
#include "logic/truth_table.h"
#include "symbolic/truth_table_text.h"
#include "symbolic/waveform.h"
#include "util/strings.h"

namespace haven::llm {

std::string prompt_style_name(PromptStyle s) {
  switch (s) {
    case PromptStyle::kEngineer: return "engineer";
    case PromptStyle::kVanilla: return "vanilla";
    case PromptStyle::kChat: return "chat";
  }
  return "?";
}

namespace {

std::string reset_phrase(const SeqAttributes& seq) {
  if (seq.reset == ResetKind::kNone) return "";
  std::string s = seq.reset == ResetKind::kAsync ? "asynchronous" : "synchronous";
  s += seq.reset_active_low ? " active-low reset '" : " active-high reset '";
  s += seq.reset_name() + "'";
  return s;
}

std::string enable_phrase(const SeqAttributes& seq) {
  if (seq.enable == EnableKind::kNone) return "";
  std::string s = seq.enable == EnableKind::kActiveLow ? "active-low enable '"
                                                       : "active-high enable '";
  s += seq.enable_name() + "'";
  return s;
}

std::string seq_attr_sentence(const SeqAttributes& seq) {
  std::string s;
  const std::string rp = reset_phrase(seq);
  const std::string ep = enable_phrase(seq);
  if (!rp.empty() && !ep.empty()) s = "Use " + rp + " and " + ep + ".";
  else if (!rp.empty()) s = "Use " + rp + ".";
  else if (!ep.empty()) s = "Use " + ep + ".";
  if (seq.negedge_clock) {
    if (!s.empty()) s += " ";
    s += "The design is clocked on the negative edge of 'clk'.";
  }
  return s;
}

// English spelling of a boolean expression for prose-only instructions.
std::string english_expr(const logic::Expr& e) { return e.to_english(); }

// --- per-kind payload sentences (shared between styles) ----------------------

std::string prose_task_sentence(const TaskSpec& spec) {
  switch (spec.kind) {
    case TaskKind::kCombExpr:
      return "";  // handled by presentation
    case TaskKind::kFsm:
      return "";  // handled separately
    case TaskKind::kCounter: {
      std::string s = util::format("Design a %d-bit %s counter with output 'q'", spec.width,
                                   spec.count_down ? "down" : "up");
      if (spec.modulus > 0) s += util::format(" that wraps modulo-%d", spec.modulus);
      s += ".";
      return s;
    }
    case TaskKind::kShiftRegister:
      return util::format(
          "Design a %d-bit serial-in shift register with output 'q' shifting %s, serial input "
          "'din' entering at the %s end.",
          spec.width, spec.shift_left ? "left" : "right",
          spec.shift_left ? "least significant" : "most significant");
    case TaskKind::kRegister:
      return util::format("Design a %d-bit D register: output 'q' follows input 'd' on each "
                          "active clock edge.",
                          spec.width);
    case TaskKind::kAdder:
      return util::format(
          "Design a %d-bit adder: sum = a + b + cin, with carry-out 'cout'.", spec.width);
    case TaskKind::kMux:
      return util::format("Design a %d-to-1 multiplexer with %d-bit data inputs d0..d%d, "
                          "select 'sel' and output 'y'.",
                          spec.mux_inputs, spec.width, spec.mux_inputs - 1);
    case TaskKind::kDecoder:
      return util::format("Design a %d-to-%d one-hot decoder: output bit y[sel] is 1 and all "
                          "other bits are 0.",
                          spec.sel_width, 1 << spec.sel_width);
    case TaskKind::kComparator:
      return util::format("Design a %d-bit unsigned comparator with outputs 'eq' (a == b), "
                          "'lt' (a < b) and 'gt' (a > b).",
                          spec.width);
    case TaskKind::kParity:
      return util::format("Compute the even parity (XOR reduction) of the %d-bit input "
                          "'data' on output 'parity'.",
                          spec.width);
    case TaskKind::kAlu:
      return util::format("Design a %d-bit ALU with operation select 'op': op=00 add, op=01 "
                          "subtract, op=10 bitwise AND, op=11 bitwise OR.",
                          spec.width);
    case TaskKind::kClockDivider:
      return util::format("Design a clock divider that divides 'clk' by %d, producing "
                          "'clk_out' with a 50 percent duty cycle.",
                          spec.divide_by);
    case TaskKind::kEdgeDetector:
      return util::format("Design a %s-edge detector: output 'pulse' is high for one cycle "
                          "when input 'sig' %s.",
                          spec.detect_falling ? "falling" : "rising",
                          spec.detect_falling ? "goes from 1 to 0" : "goes from 0 to 1");
  }
  return "";
}

std::string comb_payload(const TaskSpec& spec, util::Rng& rng) {
  switch (spec.presentation) {
    case CombPresentation::kExpressionText:
      return "Implement the combinational logic: " + spec.comb_output + " = " +
             spec.expr->to_verilog() + "\n";
    case CombPresentation::kEnglishText:
      return "Create a module where output '" + spec.comb_output + "' equals " +
             english_expr(*spec.expr) + ".\n";
    case CombPresentation::kTruthTable: {
      const logic::TruthTable tt =
          logic::TruthTable::from_expr(*spec.expr, spec.comb_inputs, spec.comb_output);
      std::string s = spec.want_minimal
                          ? "Implement the most concise logic for the truth table below.\n"
                          : "Implement the truth table below.\n";
      return s + symbolic::render_truth_table(tt);
    }
    case CombPresentation::kWaveform: {
      const logic::TruthTable tt =
          logic::TruthTable::from_expr(*spec.expr, spec.comb_inputs, spec.comb_output);
      const symbolic::Waveform wf = symbolic::waveform_covering_table(tt, rng);
      return "Implement the combinational function shown by the waveform below.\n" +
             symbolic::render_waveform(wf);
    }
    case CombPresentation::kKarnaughMap: {
      const logic::TruthTable tt =
          logic::TruthTable::from_expr(*spec.expr, spec.comb_inputs, spec.comb_output);
      const logic::KarnaughMap km(tt);
      return "Derive the most concise expression from the Karnaugh map below and implement "
             "it. Output is '" +
             spec.comb_output + "'.\n" + km.render();
    }
  }
  return "";
}

std::string fsm_engineer_payload(const TaskSpec& spec) {
  std::string s = "Implement the Moore finite state machine given by the state diagram "
                  "below.\n";
  s += symbolic::render_state_diagram(spec.diagram);
  s += "The reset state is " +
       spec.diagram.states[static_cast<std::size_t>(spec.diagram.reset_state)] + ".\n";
  return s;
}

std::string fsm_vanilla_payload(const TaskSpec& spec) {
  // Table I left column: verbose prose, one sentence per transition.
  const symbolic::StateDiagram& sd = spec.diagram;
  std::string s = "Implement the state machine with a combinational always block, which is "
                  "used to determine the next state based on the current state and the value "
                  "of the " + sd.input_name + " port. ";
  for (std::size_t st = 0; st < sd.num_states(); ++st) {
    for (int v : {0, 1}) {
      s += util::format(
          "If the current state is %s and %s is %d, then the next state is %s and %s is %d. ",
          sd.states[st].c_str(), sd.input_name.c_str(), v,
          sd.states[static_cast<std::size_t>(sd.step(static_cast<int>(st), v))].c_str(),
          sd.output_name.c_str(), sd.outputs[st]);
    }
  }
  s += "The initial state is " + sd.states[static_cast<std::size_t>(sd.reset_state)] + ". ";
  return s;
}

}  // namespace

std::string render_instruction(const TaskSpec& spec, const InstructionOptions& options,
                               util::Rng& rng) {
  std::string body;

  if (spec.kind == TaskKind::kCombExpr) {
    body = comb_payload(spec, rng);
  } else if (spec.kind == TaskKind::kFsm) {
    body = options.style == PromptStyle::kVanilla ? fsm_vanilla_payload(spec)
                                                  : fsm_engineer_payload(spec);
    const std::string attrs = seq_attr_sentence(spec.seq);
    if (!attrs.empty()) body += attrs + "\n";
  } else {
    body = prose_task_sentence(spec);
    const std::string attrs = seq_attr_sentence(spec.seq);
    if (!attrs.empty()) body += " " + attrs;
    body += "\n";
  }

  if (options.style == PromptStyle::kVanilla && spec.kind != TaskKind::kFsm) {
    // Verbose framing around the same payload.
    body = "This Verilog module is part of a larger design. " + body +
           "The implementation should be written in synthesizable Verilog-2001 and follow "
           "good coding practice. Please provide the complete module.\n";
  }

  if (options.include_header) {
    body += spec.header_line() + "\n";
  } else if (spec.kind == TaskKind::kCombExpr &&
             (spec.presentation == CombPresentation::kExpressionText ||
              spec.presentation == CombPresentation::kEnglishText)) {
    // Without a header the expression alone may not mention every input
    // (engineers state the interface one way or another).
    body += "The module inputs are " + util::join(spec.comb_inputs, ", ") +
            " and the output is '" + spec.comb_output + "'.\n";
  }

  if (options.style == PromptStyle::kChat) {
    return "Question: " + body + "Answer:\n";
  }
  return body;
}

std::string render_instruction(const TaskSpec& spec, const InstructionOptions& options) {
  util::Rng rng(spec.fingerprint());
  return render_instruction(spec, options, rng);
}

}  // namespace haven::llm
