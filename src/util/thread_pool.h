// Fixed-size worker pool with futures-based task submission. Built for the
// evaluation engine's fan-out of independent (temperature, task, sample)
// work units, but generic: submit() accepts any nullary callable and returns
// a std::future for its result. Exceptions thrown by a task are captured and
// rethrown from future::get() on the consuming thread, so a worker never
// dies silently. The destructor drains every queued task before joining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace haven::util {

class ThreadPool {
 public:
  // `workers` = 0 picks default_worker_count(). At least one worker is
  // always started.
  explicit ThreadPool(std::size_t workers = 0);

  // Drains the queue (every submitted task still runs), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  // Drain-without-execute: discard every queued-but-unstarted task and
  // return how many were dropped. Their futures report a broken promise
  // (std::future_error) instead of a result; tasks already running finish
  // normally and the pool stays usable for new submissions. This is the
  // fail-fast abort path: when one work unit condemns the whole run there
  // is no point burning workers on the rest of the queue.
  std::size_t cancel();

  // hardware_concurrency(), or 1 when the runtime cannot report it.
  static std::size_t default_worker_count();

  // Enqueue a nullary callable; the returned future yields its result (or
  // rethrows its exception). Tasks start in submission order, one per free
  // worker. Throws std::runtime_error if called during/after destruction.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace haven::util
