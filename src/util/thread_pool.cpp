#include "util/thread_pool.h"

namespace haven::util {

std::size_t ThreadPool::default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = default_worker_count();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ThreadPool::cancel() {
  std::queue<std::function<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped.swap(queue_);
  }
  // Destroy outside the lock: dropping a packaged_task breaks its promise,
  // which may wake future waiters.
  return dropped.size();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

}  // namespace haven::util
