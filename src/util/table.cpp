#include "util/table.h"

#include <algorithm>
#include <stdexcept>

namespace haven::util {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  aligns_.assign(headers_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TablePrinter::set_alignments(std::vector<Align> aligns) {
  if (aligns.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: alignment count != header count");
  aligns_ = std::move(aligns);
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TablePrinter: cell count != header count");
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

namespace {

std::string pad(const std::string& s, std::size_t width, Align a) {
  if (s.size() >= width) return s;
  const std::size_t space = width - s.size();
  switch (a) {
    case Align::kLeft:
      return s + std::string(space, ' ');
    case Align::kRight:
      return std::string(space, ' ') + s;
    case Align::kCenter: {
      const std::size_t left = space / 2;
      return std::string(left, ' ') + s + std::string(space - left, ' ');
    }
  }
  return s;
}

}  // namespace

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + pad(cells[c], widths[c], aligns_[c]) + " |";
    }
    return line + "\n";
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : emit_row(row);
  }
  out += rule();
  return out;
}

}  // namespace haven::util
