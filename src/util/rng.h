// Deterministic, seedable pseudo-random number generation for the whole
// framework. Every stochastic component in HaVen (hallucination injection,
// corpus synthesis, sampling temperature) draws from an explicitly threaded
// Rng so that experiments are reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace haven::util {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// wrapped in a std-style interface. Chosen over std::mt19937_64 for speed and
// a guaranteed stable sequence independent of the standard library vendor.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = kDefaultSeed) { reseed(seed); }

  static constexpr std::uint64_t kDefaultSeed = 0x4861'5665'6e44'4154ULL;  // "HaVenDAT"

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Bernoulli trial with probability p of returning true.
  bool chance(double p);

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::choice on empty vector");
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  // Fisher-Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent child stream; used to give each pipeline stage its
  // own stream so adding draws in one stage does not perturb another.
  Rng fork();

  // Stable 64-bit digest of the current state. Does NOT advance the stream:
  // two Rngs with equal state_hash() will produce identical draw sequences.
  // Used by the result cache to make the stimulus stream part of the cache
  // key without consuming it.
  std::uint64_t state_hash() const;

 private:
  std::uint64_t state_[4]{};
};

}  // namespace haven::util
