#include "util/csv.h"

#include <stdexcept>

namespace haven::util {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("CsvWriter: cell count != header count");
  rows_.push_back(std::move(cells));
}

namespace {

std::string escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string emit(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += escape(cells[i]);
  }
  return line + "\n";
}

}  // namespace

std::string CsvWriter::to_string() const {
  std::string out = emit(headers_);
  for (const auto& row : rows_) out += emit(row);
  return out;
}

void CsvWriter::write(std::ostream& os) const { os << to_string(); }

}  // namespace haven::util
