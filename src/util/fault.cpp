#include "util/fault.h"

#include <algorithm>

namespace haven::util {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};
thread_local std::uint64_t tl_context = 0;

std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

InjectedFault::InjectedFault(std::string_view site)
    : TransientError("injected fault at " + std::string(site)), site_(site) {}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

FaultInjector::~FaultInjector() { uninstall(); }

void FaultInjector::arm(std::string_view site, double probability) {
  const double p = std::clamp(probability, 0.0, 1.0);
  if (Site* s = find(site)) {
    s->p = p;
    return;
  }
  sites_.emplace_back(std::string(site), p);
}

const FaultInjector::Site* FaultInjector::find(std::string_view site) const {
  for (const Site& s : sites_) {
    if (s.name == site) return &s;
  }
  return nullptr;
}

FaultInjector::Site* FaultInjector::find(std::string_view site) {
  return const_cast<Site*>(static_cast<const FaultInjector*>(this)->find(site));
}

double FaultInjector::probability(std::string_view site) const {
  const Site* s = find(site);
  return s == nullptr ? 0.0 : s->p;
}

bool FaultInjector::should_fail(std::string_view site) const {
  const Site* s = find(site);
  if (s == nullptr || s->p <= 0.0) return false;
  if (s->p >= 1.0) return true;
  const std::uint64_t h = splitmix64(fnv1a(site, seed_) ^ tl_context);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < s->p;
}

void FaultInjector::check(std::string_view site) {
  Site* s = find(site);
  if (s == nullptr || s->p <= 0.0) return;
  if (!should_fail(site)) return;
  s->fired.fetch_add(1, std::memory_order_relaxed);
  throw InjectedFault(site);
}

std::int64_t FaultInjector::injected(std::string_view site) const {
  const Site* s = find(site);
  return s == nullptr ? 0 : s->fired.load(std::memory_order_relaxed);
}

std::int64_t FaultInjector::total_injected() const {
  std::int64_t total = 0;
  for (const Site& s : sites_) total += s.fired.load(std::memory_order_relaxed);
  return total;
}

void FaultInjector::install() { g_injector.store(this, std::memory_order_release); }

void FaultInjector::uninstall() {
  FaultInjector* expected = this;
  g_injector.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

FaultInjector* FaultInjector::current() { return g_injector.load(std::memory_order_acquire); }

FaultInjector::ScopedContext::ScopedContext(std::uint64_t key) : prev_(tl_context) {
  tl_context = key;
}

FaultInjector::ScopedContext::~ScopedContext() { tl_context = prev_; }

void maybe_inject(std::string_view site) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return;
  injector->check(site);
}

}  // namespace haven::util
