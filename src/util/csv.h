// Minimal CSV emission so benchmark harnesses can dump machine-readable
// series (e.g. the Fig 3 / Fig 4 sweeps) next to the human-readable tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace haven::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // RFC-4180-style quoting: fields with comma, quote, or newline get quoted,
  // embedded quotes doubled.
  std::string to_string() const;
  void write(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace haven::util
