// Fault injection for chaos testing the evaluation harness itself.
//
// The eval stack exposes named injection *sites* (generation, compile-check,
// simulation). A FaultInjector, once installed process-wide, makes armed
// sites throw util::InjectedFault with a configured probability. Draws are
// keyed on (injector seed, site name, thread-local context key) — never on a
// shared RNG stream or a call counter — so a chaos run is deterministic for
// a fixed seed regardless of thread count or scheduling, and an injector
// with every site at probability 0 perturbs nothing at all.
//
// The evaluation engine sets the context key per (work unit, attempt) via
// FaultInjector::ScopedContext, which is what lets a retried attempt redraw
// its fate independently while staying reproducible.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <string_view>

namespace haven::util {

// Canonical site names for the eval stack's hooks.
inline constexpr std::string_view kSiteLlmGenerate = "llm.generate";
inline constexpr std::string_view kSiteEvalCompile = "eval.compile";
inline constexpr std::string_view kSiteSimRun = "sim.run";

// Base class for faults the retry layer classifies as transient (worth
// retrying). Deterministic failures (deadline, sim budget) do NOT derive
// from this: re-running them would only re-fail.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by an armed injection site.
class InjectedFault : public TransientError {
 public:
  explicit InjectedFault(std::string_view site);
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xC7A05'FA17ULL);
  // Uninstalls itself if still the process-wide injector.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arm `site` to fail with the given probability (clamped to [0, 1]).
  // Call before install(); arming while hooks may fire concurrently is a
  // data race.
  void arm(std::string_view site, double probability);

  // Armed probability for a site (0 when not armed).
  double probability(std::string_view site) const;

  // Deterministic draw for (seed, site, current thread-local context key).
  // Does not bump counters.
  bool should_fail(std::string_view site) const;

  // Faults injected at one site / across all sites so far.
  std::int64_t injected(std::string_view site) const;
  std::int64_t total_injected() const;

  // Install as the process-wide injector consulted by maybe_inject().
  // Only one injector is active at a time; installing replaces the previous.
  void install();
  void uninstall();
  static FaultInjector* current();

  // RAII thread-local context key for deterministic draws; restores the
  // previous key on destruction. Key 0 is the ambient default.
  class ScopedContext {
   public:
    explicit ScopedContext(std::uint64_t key);
    ~ScopedContext();
    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

   private:
    std::uint64_t prev_;
  };

 private:
  friend void maybe_inject(std::string_view site);

  struct Site {
    Site(std::string n, double prob) : name(std::move(n)), p(prob) {}
    std::string name;
    double p;
    std::atomic<std::int64_t> fired{0};
  };

  const Site* find(std::string_view site) const;
  Site* find(std::string_view site);
  // Draw + count + throw when the site fires.
  void check(std::string_view site);

  std::uint64_t seed_;
  // deque: grow-only, element addresses stable (atomics never move).
  std::deque<Site> sites_;
};

// Injection hook, called at each site. No-op unless an injector is installed
// and the site armed; throws InjectedFault when the site's draw fires. Cost
// when disarmed: one relaxed atomic load.
void maybe_inject(std::string_view site);

}  // namespace haven::util
