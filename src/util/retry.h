// Retry with deterministic exponential backoff, and wall-clock deadlines.
//
// RetryPolicy is the one knob set the evaluation engine (and anything else
// facing flaky work) uses to decide (a) whether a failure is worth retrying
// — the `retryable` predicate, defaulting to "is a util::TransientError" —
// and (b) how long to back off before the next attempt. Backoff is a pure
// function of the attempt index (base * multiplier^attempt, capped), never
// of a random source, so retried runs are reproducible.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/fault.h"

namespace haven::util {

struct RetryPolicy {
  int max_retries = 0;            // extra attempts after the first (0 = never retry)
  int base_backoff_ms = 0;        // backoff before the first retry (0 = no sleep)
  double backoff_multiplier = 2.0;
  int max_backoff_ms = 1000;      // backoff cap
  // Classifier for retry-worthy faults. Unset => retry util::TransientError
  // (injected faults) only; deterministic failures re-fail identically.
  std::function<bool(const std::exception&)> retryable;

  // Deterministic exponential backoff before retry `retry_index` (0-based).
  int backoff_ms(int retry_index) const;

  bool should_retry(const std::exception& e) const;
};

// Run fn(attempt) under the policy: rethrow immediately on non-retryable
// faults, otherwise back off and retry until attempts are exhausted (the
// last error is rethrown).
template <typename F>
auto with_retry(const RetryPolicy& policy, F&& fn) -> decltype(fn(0)) {
  for (int attempt = 0;; ++attempt) {
    try {
      return fn(attempt);
    } catch (const std::exception& e) {
      if (attempt >= policy.max_retries || !policy.should_retry(e)) throw;
      const int ms = policy.backoff_ms(attempt);
      if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
}

// Thrown when a Deadline check fires. Not transient: the same work would
// blow the same deadline again.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Wall-clock deadline for one unit of work. expired() costs one
// steady_clock read — cheap enough to call per simulated cycle, which is
// the watchdog granularity that keeps an adversarial candidate from
// hanging a worker.
class Deadline {
 public:
  // Inactive deadline: never expires, check() is a no-op.
  static Deadline none() { return Deadline(); }

  static Deadline after_ms(int ms) {
    Deadline d;
    d.active_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool active() const { return active_; }
  bool expired() const { return active_ && std::chrono::steady_clock::now() >= at_; }

  // Throws DeadlineExceeded naming `where` when expired.
  void check(const char* where) const {
    if (expired()) throw DeadlineExceeded(std::string("deadline exceeded at ") + where);
  }

 private:
  Deadline() = default;
  std::chrono::steady_clock::time_point at_{};
  bool active_ = false;
};

}  // namespace haven::util
