#include "util/retry.h"

#include <algorithm>

namespace haven::util {

int RetryPolicy::backoff_ms(int retry_index) const {
  if (base_backoff_ms <= 0) return 0;
  const double mult = backoff_multiplier < 1.0 ? 1.0 : backoff_multiplier;
  const double ms = static_cast<double>(base_backoff_ms) *
                    std::pow(mult, static_cast<double>(std::max(retry_index, 0)));
  const double cap = static_cast<double>(std::max(max_backoff_ms, base_backoff_ms));
  return static_cast<int>(std::min(ms, cap));
}

bool RetryPolicy::should_retry(const std::exception& e) const {
  if (retryable) return retryable(e);
  return dynamic_cast<const TransientError*>(&e) != nullptr;
}

}  // namespace haven::util
