// ASCII table rendering for benchmark reports. The bench binaries print
// paper-style tables (Table IV/V/VI rows) with this printer so results are
// directly comparable with the figures in the paper.
#pragma once

#include <string>
#include <vector>

namespace haven::util {

// Column alignment for TablePrinter.
enum class Align { kLeft, kRight, kCenter };

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Optional per-column alignment; defaults to left for the first column and
  // right for the rest (the common numeric layout).
  void set_alignments(std::vector<Align> aligns);

  void add_row(std::vector<std::string> cells);

  // Insert a horizontal rule before the next added row (section separator).
  void add_separator();

  // Render the table with box-drawing ASCII. Always ends with '\n'.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  // Row of cells, or empty vector encoding a separator line.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace haven::util
