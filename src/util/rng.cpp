#include "util/rng.h"

namespace haven::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the user seed into the 256-bit state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // A zero state is invalid for xoshiro; splitmix64 of any seed cannot yield
  // four zeros, but guard anyway for safety against future edits.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::fork() {
  Rng child(next() ^ 0xa5a5'5a5a'c3c3'3c3cULL);
  return child;
}

std::uint64_t Rng::state_hash() const {
  // FNV-1a over the four state words; splitmix-style avalanche on top so
  // near-identical states do not yield near-identical digests.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint64_t s : state_) {
    for (int i = 0; i < 8; ++i) {
      h ^= (s >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace haven::util
