// Small string utilities shared across the framework. All functions are pure
// and allocate only when they must return owning strings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace haven::util {

// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Split on a single character delimiter. Empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

// Split on runs of ASCII whitespace. Empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

// Split into lines; handles both "\n" and "\r\n", drops the terminators.
std::vector<std::string> split_lines(std::string_view s);

// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Case-insensitive substring containment.
bool icontains(std::string_view haystack, std::string_view needle);

// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

// True if `s` is a valid Verilog/C identifier: [A-Za-z_][A-Za-z0-9_$]*.
bool is_identifier(std::string_view s);

// Count whitespace-separated words; used by instruction evolution to enforce
// the paper's "no more than ten words added or removed" constraint.
std::size_t word_count(std::string_view s);

// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Indent every line of `s` by `n` spaces.
std::string indent(std::string_view s, int n);

}  // namespace haven::util
