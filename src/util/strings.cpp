#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace haven::util {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '\n') {
      std::size_t len = i - start;
      if (len > 0 && s[start + len - 1] == '\r') --len;
      out.emplace_back(s.substr(start, len));
      start = i + 1;
    }
  }
  // A trailing newline should not produce a phantom empty last line.
  if (!out.empty() && out.back().empty() && !s.empty() && s.back() == '\n') out.pop_back();
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const char c0 = s[0];
  if (!(std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_')) return false;
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$')) return false;
  }
  return true;
}

std::size_t word_count(std::string_view s) { return split_ws(s).size(); }

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string indent(std::string_view s, int n) {
  const std::string pad(static_cast<std::size_t>(n > 0 ? n : 0), ' ');
  std::string out;
  for (const auto& line : split_lines(s)) {
    if (!line.empty()) out += pad;
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace haven::util
