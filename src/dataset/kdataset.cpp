#include "dataset/kdataset.h"

#include "dataset/exemplar.h"
#include "llm/instruction.h"
#include "nlp/evolution.h"
#include "verilog/analyzer.h"

namespace haven::dataset {

namespace {

// Axes a K-sample teaches. HDL-aligned pairs carry convention, attribute and
// alignment signal; the code side also reinforces syntax.
std::vector<std::pair<llm::HalluAxis, double>> k_sample_axes(const VanillaPair& pair) {
  std::vector<std::pair<llm::HalluAxis, double>> axes = {
      {llm::HalluAxis::kKnowConvention, 1.0},
      {llm::HalluAxis::kMisalignment, 1.0},
      {llm::HalluAxis::kKnowSyntax, 0.5},
      {llm::HalluAxis::kComprehension, 0.5},
  };
  if (pair.attributes.has_clock || pair.attributes.sync_reset || pair.attributes.async_reset ||
      pair.attributes.has_enable) {
    axes.emplace_back(llm::HalluAxis::kKnowAttribute, 1.0);
  }
  if (pair.topics.contains(verilog::Topic::kFsm)) {
    // FSM exemplars also expose the state-diagram vocabulary a little.
    axes.emplace_back(llm::HalluAxis::kSymStateDiagram, 0.15);
  }
  return axes;
}

}  // namespace

KDatasetResult build_k_dataset(const std::vector<VanillaPair>& vanilla, util::Rng& rng,
                               double sample_weight) {
  KDatasetResult result;
  result.pairs_in = vanilla.size();
  const auto& lib = exemplar_library();

  for (const auto& pair : vanilla) {
    const std::vector<std::size_t> matches = match_exemplars(pair.topics, pair.attributes);
    if (matches.empty()) continue;
    ++result.matched;

    // Step 7: rewrite the vanilla instruction toward up to two exemplars.
    const std::size_t limit = std::min<std::size_t>(matches.size(), 2);
    for (std::size_t mi = 0; mi < limit; ++mi) {
      const Exemplar& ex = lib[matches[mi]];
      ++result.rewritten;

      // Step 8: compile verification of the code side.
      if (!pair.compiles) {
        ++result.rejected;
        continue;
      }
      ++result.verified;

      Sample sample;
      sample.origin = "k";
      sample.weight = sample_weight;
      sample.code = pair.code;
      // The rewrite: engineer-style phrasing of the pair's task (the
      // exemplar supplies the convention template; when the ground-truth
      // spec is unknown we borrow the exemplar instruction skeleton).
      if (pair.spec) {
        llm::InstructionOptions opts;
        opts.style = llm::PromptStyle::kEngineer;
        sample.instruction = llm::render_instruction(*pair.spec, opts, rng);
      } else {
        sample.instruction = ex.instruction;
      }
      sample.instruction = nlp::evolve_instruction(sample.instruction, rng);
      sample.teaches = k_sample_axes(pair);
      result.dataset.samples.push_back(std::move(sample));
    }
  }
  return result;
}

Dataset build_vanilla_dataset(const std::vector<VanillaPair>& vanilla, double sample_weight) {
  Dataset out;
  for (const auto& pair : vanilla) {
    if (!pair.compiles) continue;  // the same compiler gate applies
    Sample sample;
    sample.origin = "vanilla";
    sample.weight = sample_weight;
    sample.instruction = pair.instruction;
    sample.code = pair.code;
    sample.teaches = {
        {llm::HalluAxis::kKnowSyntax, 1.0},
        {llm::HalluAxis::kComprehension, 1.0},
        {llm::HalluAxis::kKnowConvention, 0.15},
        {llm::HalluAxis::kKnowAttribute, 0.1},
        {llm::HalluAxis::kMisalignment, 0.05},
    };
    out.samples.push_back(std::move(sample));
  }
  return out;
}

}  // namespace haven::dataset
