#include "dataset/jsonl.h"

#include <cstdlib>

#include "llm/hallucination.h"
#include "util/strings.h"

namespace haven::dataset {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string sample_to_json(const Sample& sample) {
  std::string teaches;
  for (std::size_t i = 0; i < sample.teaches.size(); ++i) {
    if (i) teaches += ",";
    teaches += "\"" + llm::hallu_axis_name(sample.teaches[i].first) + "\"";
  }
  return util::format(
      "{\"instruction\":\"%s\",\"output\":\"%s\",\"origin\":\"%s\",\"weight\":%.3f,"
      "\"teaches\":[%s]}",
      json_escape(sample.instruction).c_str(), json_escape(sample.code).c_str(),
      json_escape(sample.origin).c_str(), sample.weight, teaches.c_str());
}

void write_jsonl(const Dataset& dataset, std::ostream& os) {
  for (const auto& sample : dataset.samples) {
    os << sample_to_json(sample) << "\n";
  }
}

namespace {

// Unescape the JSON string starting at the opening quote `line[pos]`.
// On success returns true, stores the decoded text, and leaves `pos` just
// past the closing quote. Any malformation (no opening/closing quote, bad
// escape, truncated \uXXXX, raw control character) returns false.
bool parse_json_string(const std::string& line, std::size_t& pos, std::string* out) {
  if (pos >= line.size() || line[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < line.size()) {
    const unsigned char c = static_cast<unsigned char>(line[pos]);
    if (c == '"') {
      ++pos;
      return true;
    }
    if (c < 0x20) return false;  // raw control char: writer always escapes these
    if (c != '\\') {
      out->push_back(static_cast<char>(c));
      ++pos;
      continue;
    }
    if (++pos >= line.size()) return false;  // truncated escape
    const char esc = line[pos];
    ++pos;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (pos + 4 > line.size()) return false;
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = line[pos + static_cast<std::size_t>(i)];
          cp <<= 4;
          if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        pos += 4;
        // UTF-8 encode the BMP codepoint (the writer only emits \u00XX).
        if (cp < 0x80) {
          out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
      default: return false;  // unknown escape
    }
  }
  return false;  // ran off the line without a closing quote
}

// Locate `"key":` outside any string value and return the position of its
// value. npos when absent. Scans honestly through strings so a key name
// appearing inside an instruction body does not fool it.
std::size_t find_value_of(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  bool in_string = false;
  while (pos < line.size()) {
    const char c = line[pos];
    if (in_string) {
      if (c == '\\') ++pos;  // skip the escaped char too
      else if (c == '"') in_string = false;
      ++pos;
      continue;
    }
    if (c == '"') {
      if (line.compare(pos, needle.size(), needle) == 0) return pos + needle.size();
      in_string = true;
    }
    ++pos;
  }
  return std::string::npos;
}

bool parse_string_field(const std::string& line, const std::string& key, std::string* out) {
  std::size_t pos = find_value_of(line, key);
  if (pos == std::string::npos) return false;
  return parse_json_string(line, pos, out);
}

// One line -> one sample. instruction + output are mandatory; origin,
// weight, and teaches are optional with writer defaults.
bool parse_sample_line(const std::string& line, Sample* sample) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  if (!parse_string_field(line, "instruction", &sample->instruction)) return false;
  if (!parse_string_field(line, "output", &sample->code)) return false;
  if (!parse_string_field(line, "origin", &sample->origin)) sample->origin.clear();

  sample->weight = 1.0;
  const std::size_t wpos = find_value_of(line, "weight");
  if (wpos != std::string::npos) {
    char* end = nullptr;
    const double w = std::strtod(line.c_str() + wpos, &end);
    if (end == line.c_str() + wpos) return false;  // "weight": followed by junk
    sample->weight = w;
  }

  sample->teaches.clear();
  std::size_t tpos = find_value_of(line, "teaches");
  if (tpos != std::string::npos) {
    if (tpos >= line.size() || line[tpos] != '[') return false;
    ++tpos;
    while (tpos < line.size() && line[tpos] != ']') {
      if (line[tpos] == ',') {
        ++tpos;
        continue;
      }
      std::string name;
      if (!parse_json_string(line, tpos, &name)) return false;
      for (int axis = 0; axis < llm::kNumHalluAxes; ++axis) {
        const auto a = static_cast<llm::HalluAxis>(axis);
        if (llm::hallu_axis_name(a) == name) {
          // Per-axis weights are not serialized; read back as 1.0.
          sample->teaches.emplace_back(a, 1.0);
          break;
        }
      }
      // Unknown axis names are tolerated and dropped.
    }
    if (tpos >= line.size()) return false;  // unterminated array
  }
  return true;
}

}  // namespace

JsonlReadResult read_jsonl(std::istream& is) {
  JsonlReadResult result;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;  // blank: ignore
    ++result.lines;
    Sample sample;
    if (parse_sample_line(line, &sample)) {
      result.dataset.samples.push_back(std::move(sample));
    } else {
      ++result.skipped;
    }
  }
  return result;
}

}  // namespace haven::dataset
