#include "dataset/jsonl.h"

#include "llm/hallucination.h"
#include "util/strings.h"

namespace haven::dataset {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += util::format("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string sample_to_json(const Sample& sample) {
  std::string teaches;
  for (std::size_t i = 0; i < sample.teaches.size(); ++i) {
    if (i) teaches += ",";
    teaches += "\"" + llm::hallu_axis_name(sample.teaches[i].first) + "\"";
  }
  return util::format(
      "{\"instruction\":\"%s\",\"output\":\"%s\",\"origin\":\"%s\",\"weight\":%.3f,"
      "\"teaches\":[%s]}",
      json_escape(sample.instruction).c_str(), json_escape(sample.code).c_str(),
      json_escape(sample.origin).c_str(), sample.weight, teaches.c_str());
}

void write_jsonl(const Dataset& dataset, std::ostream& os) {
  for (const auto& sample : dataset.samples) {
    os << sample_to_json(sample) << "\n";
  }
}

}  // namespace haven::dataset
