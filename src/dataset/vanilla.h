// Vanilla instruction-code pairs (Fig 2, step 5): a GPT-3.5 stand-in writes
// a basic, general-purpose instruction for each corpus code sample. Pairs
// whose code does not contain a recognizable module are dropped; topics and
// attributes are extracted with the analyzer (slang substitute, step 6).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dataset/corpus.h"
#include "verilog/analyzer.h"

namespace haven::dataset {

struct VanillaPair {
  std::string instruction;
  std::string code;
  std::optional<llm::TaskSpec> spec;   // ground truth when known
  std::set<verilog::Topic> topics;     // analyzer-extracted
  verilog::Attributes attributes;
  bool compiles = false;
};

// Build vanilla pairs from the corpus. Items without a parseable module are
// skipped (mirroring the paper's yield: ~550k samples -> ~43k valid pairs
// after verification).
std::vector<VanillaPair> build_vanilla_pairs(const std::vector<CorpusItem>& corpus,
                                             util::Rng& rng);

}  // namespace haven::dataset
