// JSONL export/import of datasets: one {"instruction": ..., "output": ...,
// "origin": ...} object per line — the standard fine-tuning data format, so
// the K/L datasets this pipeline generates can be fed to a *real* LLM
// trainer outside this repository (and read back for inspection).
#pragma once

#include <cstddef>
#include <istream>
#include <ostream>
#include <string>

#include "dataset/mix.h"

namespace haven::dataset {

// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

// Serialize one sample as a single-line JSON object.
std::string sample_to_json(const Sample& sample);

// Write the whole dataset, one sample per line.
void write_jsonl(const Dataset& dataset, std::ostream& os);

struct JsonlReadResult {
  Dataset dataset;
  std::size_t lines = 0;    // non-blank lines seen
  std::size_t skipped = 0;  // malformed/truncated lines dropped
};

// Tolerant line reader for the format write_jsonl emits. Real corpora
// arrive damaged — truncated tails, interleaved garbage, broken escapes —
// and a reader that throws mid-file loses the whole corpus to one bad
// line. Instead: a malformed line (missing/unterminated instruction or
// output field, invalid escape) bumps `skipped` and is dropped; blank
// lines are ignored entirely. Parse one sample back per good line.
// Round-trip note: `teaches` axis *weights* are not serialized, so they
// read back as 1.0; unknown axis names are ignored.
JsonlReadResult read_jsonl(std::istream& is);

}  // namespace haven::dataset
