// JSONL export of datasets: one {"instruction": ..., "output": ...,
// "origin": ...} object per line — the standard fine-tuning data format, so
// the K/L datasets this pipeline generates can be fed to a *real* LLM
// trainer outside this repository.
#pragma once

#include <ostream>
#include <string>

#include "dataset/mix.h"

namespace haven::dataset {

// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

// Serialize one sample as a single-line JSON object.
std::string sample_to_json(const Sample& sample);

// Write the whole dataset, one sample per line.
void write_jsonl(const Dataset& dataset, std::ostream& os);

}  // namespace haven::dataset
