#include "dataset/mix.h"

#include <algorithm>

namespace haven::dataset {

llm::DatasetStats Dataset::stats() const {
  llm::DatasetStats s;
  for (const auto& sample : samples) {
    for (const auto& [axis, amount] : sample.teaches) {
      s.axis(axis) += amount * sample.weight;
    }
  }
  s.total_samples = samples.size();
  return s;
}

Dataset Dataset::subset(double fraction) const {
  Dataset out;
  const std::size_t n = static_cast<std::size_t>(
      std::clamp(fraction, 0.0, 1.0) * static_cast<double>(samples.size()) + 0.5);
  out.samples.assign(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

Dataset mix(const std::vector<Dataset>& parts, util::Rng& rng) {
  Dataset out;
  for (const auto& part : parts) {
    out.samples.insert(out.samples.end(), part.samples.begin(), part.samples.end());
  }
  rng.shuffle(out.samples);
  return out;
}

}  // namespace haven::dataset
