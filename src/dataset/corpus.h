// Synthetic open-source Verilog corpus (substitute for the paper's 550k
// GitHub samples). Emits module files with realistic noise: clean modules in
// varying styles, files with license headers and dead comments, broken files
// that fail to compile, and non-synthesizable junk. Clean items carry their
// hidden TaskSpec so the vanilla-instruction synthesizer (simulating GPT-3.5
// reading the code) can describe them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "llm/task_spec.h"
#include "util/rng.h"

namespace haven::dataset {

struct CorpusItem {
  std::string path;     // pseudo repository path
  std::string content;  // file text
  std::optional<llm::TaskSpec> spec;  // ground truth for clean modules
};

struct CorpusConfig {
  double p_broken = 0.12;   // syntax-damaged files
  double p_junk = 0.08;     // non-module junk
  double p_decorated = 0.3; // clean modules with headers/comments
};

std::vector<CorpusItem> generate_corpus(std::size_t count, util::Rng& rng,
                                        const CorpusConfig& config = {});

}  // namespace haven::dataset
