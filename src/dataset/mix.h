// Dataset containers and mixing. A Sample is one instruction-code training
// pair annotated with the hallucination axes it teaches (used by the
// fine-tuning simulation); a Dataset aggregates samples and reports
// DatasetStats. mix() shuffles datasets together (Fig 2: "K-dataset and
// L-dataset are shuffled and combined as KL-dataset").
#pragma once

#include <string>
#include <vector>

#include "llm/finetune.h"
#include "util/rng.h"

namespace haven::dataset {

struct Sample {
  std::string instruction;
  std::string code;
  std::string origin;  // "vanilla" | "k" | "l"
  // Effective training weight. The reproduction materializes fewer samples
  // than the paper's 43k/14k/5k; weight scales each sample's contribution to
  // DatasetStats so fine-tuning sees paper-scale coverage.
  double weight = 1.0;
  std::vector<std::pair<llm::HalluAxis, double>> teaches;
};

struct Dataset {
  std::vector<Sample> samples;

  llm::DatasetStats stats() const;
  // Keep only the first `fraction` of samples (after external shuffling);
  // used by the Fig 4 composition sweep.
  Dataset subset(double fraction) const;
};

Dataset mix(const std::vector<Dataset>& parts, util::Rng& rng);

}  // namespace haven::dataset
