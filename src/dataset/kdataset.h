// Knowledge-enhanced dataset generation (Fig 2, steps 6-8, blue path):
// topic matching of vanilla pairs against the exemplar library, data
// augmentation (rewriting the vanilla instruction toward the exemplar's
// HDL-engineer phrasing), and compile verification.
#pragma once

#include "dataset/mix.h"
#include "dataset/vanilla.h"

namespace haven::dataset {

struct KDatasetResult {
  Dataset dataset;
  // Pipeline accounting (reported by the dataset stats bench).
  std::size_t pairs_in = 0;
  std::size_t matched = 0;    // vanilla pairs with >= 1 exemplar match
  std::size_t rewritten = 0;  // augmented instructions produced (<= 2/pair)
  std::size_t verified = 0;   // survived compile verification
  std::size_t rejected = 0;   // failed compile verification
};

// `sample_weight` scales each sample's DatasetStats contribution (to map the
// materialized sample count to paper-scale coverage).
KDatasetResult build_k_dataset(const std::vector<VanillaPair>& vanilla, util::Rng& rng,
                               double sample_weight = 1.0);

// The plain vanilla dataset (compile-verified pairs as-is), used by the
// Fig 3 "Vanilla" ablation arm.
Dataset build_vanilla_dataset(const std::vector<VanillaPair>& vanilla,
                              double sample_weight = 1.0);

}  // namespace haven::dataset
