// High-quality exemplars (Fig 2, step 4): instruction-code pairs that
// reflect digital-design conventions and Verilog-specific attributes,
// covering FSMs, clock dividers, counters, shift registers and ALUs (the
// module families the paper lists), with systematic variation of reset
// mechanism, clock edge, and enable polarity. Derived from TaskSpecs so the
// instruction, the code, and the topic/attribute labels are consistent by
// construction — the reproduction's equivalent of curating from textbooks.
#pragma once

#include <vector>

#include "llm/task_spec.h"
#include "verilog/analyzer.h"

namespace haven::dataset {

struct Exemplar {
  std::string title;
  verilog::Topic topic;
  llm::TaskSpec spec;
  std::string instruction;  // engineer-style phrasing
  std::string code;         // conventional implementation
  verilog::Attributes attributes;
};

// The curated library (built once, deterministic).
const std::vector<Exemplar>& exemplar_library();

// Exemplars matching a topic set / attributes (the "Parser for Topic
// Matching" step consumes this). Returns indices into exemplar_library().
std::vector<std::size_t> match_exemplars(const std::set<verilog::Topic>& topics,
                                         const verilog::Attributes& attributes);

}  // namespace haven::dataset
