// Logical-enhanced dataset generation (Fig 2, steps 9-12, yellow path).
// Two categories of logical reasoning (step 9): finding the most concise
// expression (Karnaugh-map / truth-table exercises solved by the
// Quine-McCluskey engine) and faithfully implementing logic with no concise
// form (nested condition chains). Expressions and input-output mappings are
// script-generated (step 10), embedded into code/instruction templates
// (step 11), and diversified by instruction evolution (step 12).
#pragma once

#include "dataset/mix.h"
#include "util/rng.h"

namespace haven::dataset {

struct LDatasetConfig {
  std::size_t count = 500;
  double p_concise = 0.5;   // fraction of "most concise expression" exercises
  double p_kmap = 0.3;      // of the concise ones, fraction posed as K-maps
  double p_dont_care = 0.3; // concise exercises with don't-care rows
};

Dataset build_l_dataset(const LDatasetConfig& config, util::Rng& rng,
                        double sample_weight = 1.0);

}  // namespace haven::dataset
