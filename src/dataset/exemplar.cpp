#include "dataset/exemplar.h"

#include "llm/codegen.h"
#include "llm/instruction.h"
#include "verilog/parser.h"

namespace haven::dataset {

using llm::EnableKind;
using llm::ResetKind;
using llm::TaskKind;
using llm::TaskSpec;

namespace {

Exemplar make_exemplar(const std::string& title, verilog::Topic topic, TaskSpec spec) {
  Exemplar ex;
  ex.title = title;
  ex.topic = topic;
  ex.spec = spec;
  llm::InstructionOptions opts;
  opts.style = llm::PromptStyle::kEngineer;
  ex.instruction = llm::render_instruction(spec, opts);
  ex.code = llm::generate_source(spec);
  // Derive attribute labels via the analyzer so exemplars and vanilla pairs
  // are matched with the *same* extraction machinery (slang substitute).
  verilog::SourceAnalysis sa = verilog::analyze_source(ex.code);
  if (!sa.modules.empty()) ex.attributes = sa.modules.front().attributes;
  return ex;
}

std::vector<Exemplar> build_library() {
  std::vector<Exemplar> lib;
  util::Rng rng(0x4845'5845'4d50'4cULL);  // deterministic exemplar seed

  // Every combination of reset mechanism x polarity for the core sequential
  // families, plus enable variants — the attribute coverage Section III-C
  // calls out.
  const std::vector<llm::SeqAttributes> attr_variants = [] {
    std::vector<llm::SeqAttributes> v;
    for (ResetKind rk : {ResetKind::kSync, ResetKind::kAsync}) {
      for (bool low : {false, true}) {
        llm::SeqAttributes a;
        a.reset = rk;
        a.reset_active_low = low;
        v.push_back(a);
      }
    }
    // Enable variants on top of the common sync/active-high base.
    for (EnableKind ek : {EnableKind::kActiveHigh, EnableKind::kActiveLow}) {
      llm::SeqAttributes a;
      a.enable = ek;
      v.push_back(a);
    }
    // Negative-edge clocking.
    llm::SeqAttributes neg;
    neg.negedge_clock = true;
    v.push_back(neg);
    return v;
  }();

  // FSM exemplars: a few canonical machines per attribute variant subset.
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.kind = TaskKind::kFsm;
    symbolic::StateDiagramGenConfig cfg;
    cfg.min_states = 2 + i % 3;
    cfg.max_states = 2 + i % 3;
    spec.diagram = symbolic::generate_state_diagram(rng, cfg);
    spec.seq = attr_variants[static_cast<std::size_t>(i) % attr_variants.size()];
    spec.seq.enable = EnableKind::kNone;  // FSM exemplars: no enable
    lib.push_back(make_exemplar("conventional FSM " + std::to_string(i), verilog::Topic::kFsm,
                                spec));
  }

  // Counters.
  for (std::size_t i = 0; i < attr_variants.size(); ++i) {
    TaskSpec spec;
    spec.kind = TaskKind::kCounter;
    spec.width = 4 + static_cast<int>(i % 3) * 2;
    spec.count_down = i % 3 == 1;
    if (i % 4 == 2) spec.modulus = 10;
    spec.seq = attr_variants[i];
    lib.push_back(make_exemplar("counter variant " + std::to_string(i),
                                verilog::Topic::kCounter, spec));
  }

  // Shift registers.
  for (std::size_t i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.kind = TaskKind::kShiftRegister;
    spec.width = 8;
    spec.shift_left = i % 2 == 0;
    spec.seq = attr_variants[i % attr_variants.size()];
    lib.push_back(make_exemplar("shift register variant " + std::to_string(i),
                                verilog::Topic::kShiftRegister, spec));
  }

  // Registers (pipeline stages) with enables.
  for (std::size_t i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.kind = TaskKind::kRegister;
    spec.width = 8;
    spec.seq = attr_variants[(i + 4) % attr_variants.size()];
    lib.push_back(make_exemplar("register variant " + std::to_string(i),
                                verilog::Topic::kRegister, spec));
  }

  // ALUs.
  for (int w : {4, 8}) {
    TaskSpec spec;
    spec.kind = TaskKind::kAlu;
    spec.width = w;
    lib.push_back(make_exemplar("alu " + std::to_string(w) + "-bit", verilog::Topic::kAlu,
                                spec));
  }

  // Clock dividers.
  for (int n : {4, 10}) {
    TaskSpec spec;
    spec.kind = TaskKind::kClockDivider;
    spec.divide_by = n;
    spec.seq.reset = ResetKind::kSync;
    lib.push_back(make_exemplar("clock divider by " + std::to_string(n),
                                verilog::Topic::kClockDivider, spec));
  }

  // Combinational conventions: mux, decoder, comparator, parity, adder.
  {
    TaskSpec spec;
    spec.kind = TaskKind::kMux;
    spec.mux_inputs = 4;
    spec.width = 2;
    lib.push_back(make_exemplar("4-to-1 mux", verilog::Topic::kMultiplexer, spec));
  }
  {
    TaskSpec spec;
    spec.kind = TaskKind::kDecoder;
    spec.sel_width = 3;
    lib.push_back(make_exemplar("3-to-8 decoder", verilog::Topic::kDecoder, spec));
  }
  {
    TaskSpec spec;
    spec.kind = TaskKind::kComparator;
    spec.width = 4;
    lib.push_back(make_exemplar("4-bit comparator", verilog::Topic::kComparator, spec));
  }
  {
    TaskSpec spec;
    spec.kind = TaskKind::kParity;
    spec.width = 8;
    lib.push_back(make_exemplar("8-bit parity", verilog::Topic::kParity, spec));
  }
  {
    TaskSpec spec;
    spec.kind = TaskKind::kAdder;
    spec.width = 4;
    lib.push_back(make_exemplar("4-bit adder", verilog::Topic::kAdder, spec));
  }
  {
    TaskSpec spec;
    spec.kind = TaskKind::kEdgeDetector;
    lib.push_back(make_exemplar("edge detector", verilog::Topic::kSequential, spec));
  }

  return lib;
}

}  // namespace

const std::vector<Exemplar>& exemplar_library() {
  static const std::vector<Exemplar> kLibrary = build_library();
  return kLibrary;
}

std::vector<std::size_t> match_exemplars(const std::set<verilog::Topic>& topics,
                                         const verilog::Attributes& attributes) {
  std::vector<std::size_t> hits;
  const auto& lib = exemplar_library();
  for (std::size_t i = 0; i < lib.size(); ++i) {
    if (!topics.contains(lib[i].topic)) continue;
    // Prefer attribute-compatible exemplars: match on reset mechanism when
    // both sides are sequential.
    const verilog::Attributes& ea = lib[i].attributes;
    if (attributes.has_clock && ea.has_clock) {
      if (attributes.async_reset != ea.async_reset) continue;
      if (attributes.active_low_reset != ea.active_low_reset) continue;
    }
    hits.push_back(i);
  }
  if (hits.empty()) {
    // Fall back to topic-only matching (the paper rewrites once per related
    // exemplar; an attribute mismatch still shares the topic conventions).
    for (std::size_t i = 0; i < lib.size(); ++i) {
      if (topics.contains(lib[i].topic)) hits.push_back(i);
    }
  }
  return hits;
}

}  // namespace haven::dataset
