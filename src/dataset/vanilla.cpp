#include "dataset/vanilla.h"

#include "llm/instruction.h"

namespace haven::dataset {

std::vector<VanillaPair> build_vanilla_pairs(const std::vector<CorpusItem>& corpus,
                                             util::Rng& rng) {
  std::vector<VanillaPair> pairs;
  for (const auto& item : corpus) {
    verilog::SourceAnalysis sa = verilog::analyze_source(item.content);
    if (sa.modules.empty()) continue;  // junk: no module to describe

    VanillaPair pair;
    pair.code = item.content;
    pair.spec = item.spec;
    pair.compiles = sa.ok();
    if (!sa.modules.empty()) {
      pair.topics = sa.modules.front().topics;
      pair.attributes = sa.modules.front().attributes;
    }

    // GPT-3.5-style description: verbose prose. When the ground-truth spec
    // is known we can phrase the actual function; otherwise (noise files) a
    // generic description — the "trivial and misaligned" failure mode the
    // paper criticizes.
    if (pair.spec) {
      llm::InstructionOptions opts;
      opts.style = llm::PromptStyle::kVanilla;
      opts.include_header = false;  // vanilla pairs rarely pin the interface
      pair.instruction = llm::render_instruction(*pair.spec, opts, rng);
    } else {
      pair.instruction =
          "This Verilog file contains a hardware module. Implement a module with equivalent "
          "behavior in synthesizable Verilog.";
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace haven::dataset
