#include "dataset/ldataset.h"

#include "llm/codegen.h"
#include "llm/instruction.h"
#include "logic/exprgen.h"
#include "logic/qm.h"
#include "nlp/evolution.h"

namespace haven::dataset {

Dataset build_l_dataset(const LDatasetConfig& config, util::Rng& rng, double sample_weight) {
  Dataset out;
  out.samples.reserve(config.count);

  for (std::size_t i = 0; i < config.count; ++i) {
    const bool concise = rng.chance(config.p_concise);

    llm::TaskSpec spec;
    spec.kind = llm::TaskKind::kCombExpr;
    spec.module_name = "logic_unit";

    Sample sample;
    sample.origin = "l";
    sample.weight = sample_weight;

    if (concise) {
      // Category 1: find the most concise expression. Pose a truth table or
      // Karnaugh map (possibly with don't-cares); the code side is the
      // QM-minimized implementation.
      const std::size_t nvars = static_cast<std::size_t>(rng.uniform_int(3, 4));
      logic::ExprGenConfig egc;
      egc.num_vars = nvars;
      logic::ExprGenerator gen(egc);
      const double dc = rng.chance(config.p_dont_care) ? 0.2 : 0.0;
      const logic::TruthTable tt = gen.generate_table(rng, dc);
      spec.expr = tt.to_sum_of_minterms();  // semantic function (dc -> 0)
      spec.comb_inputs = tt.inputs();
      spec.comb_output = tt.output();
      spec.want_minimal = true;
      spec.presentation = rng.chance(config.p_kmap) ? llm::CombPresentation::kKarnaughMap
                                                    : llm::CombPresentation::kTruthTable;
      sample.teaches = {
          {llm::HalluAxis::kLogicExpression, 1.0},
          {llm::HalluAxis::kLogicCorner, dc > 0 ? 1.0 : 0.5},
          {llm::HalluAxis::kSymTruthTable, 0.2},
          {llm::HalluAxis::kComprehension, 0.3},
      };
    } else {
      // Category 2: faithfully implement instruction logic (no concise form
      // expected). Posed in English or expression text.
      const std::size_t nvars = static_cast<std::size_t>(rng.uniform_int(2, 4));
      logic::ExprGenConfig egc;
      egc.num_vars = nvars;
      egc.max_depth = 5;
      logic::ExprGenerator gen(egc);
      spec.expr = gen.generate_nontrivial(rng);
      spec.comb_inputs = logic::ExprGenerator::default_var_names(nvars);
      spec.presentation = rng.chance(0.5) ? llm::CombPresentation::kEnglishText
                                          : llm::CombPresentation::kExpressionText;
      sample.teaches = {
          {llm::HalluAxis::kLogicInstruction, 1.0},
          {llm::HalluAxis::kLogicExpression, 0.6},
          {llm::HalluAxis::kLogicCorner, 0.3},
          {llm::HalluAxis::kComprehension, 0.3},
      };
    }

    llm::InstructionOptions opts;
    opts.style = llm::PromptStyle::kEngineer;
    sample.instruction = llm::render_instruction(spec, opts, rng);
    // Step 12: instruction evolution, bounded paraphrase.
    sample.instruction = nlp::evolve_instruction(sample.instruction, rng);
    sample.code = llm::generate_source(spec);
    out.samples.push_back(std::move(sample));
  }
  return out;
}

}  // namespace haven::dataset
