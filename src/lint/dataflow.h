// Per-module dataflow model backing the lint rules (src/lint/lint.h).
//
// One pass over a parsed verilog::Module produces:
//  * a symbol table with every net/reg/port and its declared width,
//  * a driver list per signal (continuous assign, comb always, clocked
//    always, initial block, instance output, declaration initialiser), each
//    with the bit range it writes and the signals its value depends on,
//  * an always-block classification (clocked vs combinational, declared
//    sensitivity vs @*), with per-block read sets, assigned-on-all-paths /
//    assigned-on-some-path sets (case-coverage aware) and assignment-style
//    flags,
//  * a constant-bit lattice: parameters and nets whose single continuous
//    driver folds to a literal are mapped to their value (x/z bits carried
//    in a mask), iterated to a fixpoint so constants propagate through
//    chains of assigns,
//  * the strongly connected components of the combinational dependency
//    graph (continuous assigns + comb always blocks), for loop detection.
//
// The model is deliberately conservative: anything it cannot prove (unknown
// instance, non-constant select, for-loop bounds) widens to "unknown" rather
// than guessing, so rules built on it stay false-positive-free on the
// golden corpus.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "verilog/ast.h"

namespace haven::lint {

// A constant value with carried x/z bits: `value` holds the defined bits,
// `xz` masks the bits that are x or z. Widths above 64 are not represented
// (the simulator rejects them anyway).
struct ConstBits {
  std::uint64_t value = 0;
  std::uint64_t xz = 0;
  int width = 32;
  bool sized = false;  // came from a sized literal (width is meaningful)

  bool fully_defined() const { return xz == 0; }
};

enum class DriverKind : std::uint8_t {
  kContAssign,    // assign lhs = rhs;
  kDeclInit,      // wire w = expr;
  kCombAlways,    // level-sensitive / @* always block
  kClockedAlways, // edge-sensitive always block
  kInitial,       // initial block
  kInstance,      // output port of an instantiated module
};

// One writer of (a slice of) a signal.
struct Driver {
  DriverKind kind = DriverKind::kContAssign;
  int line = 0;
  int always_index = -1;  // index into ModuleDataflow::always, or -1
  // Written bit range within the signal; lo = -1 means the whole signal
  // (or an unknown slice: a bit-select with a non-constant index).
  int lo = -1;
  int hi = -1;
  // Signals this driver's value depends on. For combinational drivers these
  // are the *external* reads: assignments earlier in the same always block
  // are substituted through, so a blocking chain `a = b; c = a;` depends on
  // {b}, not on {a}. Used for loop detection.
  std::set<std::string> deps;
  // Right-hand side for continuous/initialiser drivers (constant lattice).
  verilog::ExprPtr rhs;

  bool whole_signal() const { return lo < 0; }
  bool overlaps(const Driver& o) const {
    if (whole_signal() || o.whole_signal()) return true;
    return lo <= o.hi && o.lo <= hi;
  }
};

struct SignalNode {
  std::string name;
  int width = 1;
  int decl_line = 0;
  bool is_port = false;
  verilog::Dir dir = verilog::Dir::kInput;
  bool is_reg = false;
  bool declared = true;  // false: referenced but never declared (1-bit wire)
  bool read = false;     // appears on a right-hand side / condition / index
  std::vector<Driver> drivers;
  // Provably-constant value (single whole-signal continuous driver folding
  // to a literal; parameters). Sound: the signal holds this value at every
  // point of every simulation.
  std::optional<ConstBits> constant;
};

// A case statement seen inside an always block.
struct CaseInfo {
  int line = 0;
  verilog::CaseKind kind = verilog::CaseKind::kCase;
  bool has_default = false;
  bool in_clocked = false;
  int subject_width = 0;   // 0 = unknown
  // Label coverage: full == every subject value is matched by some label
  // (only computed when the subject width and all labels are constant and
  // small; unknown coverage reports full=true so no rule fires on it).
  bool full_coverage = true;
};

struct AlwaysInfo {
  int index = 0;
  int line = 0;
  bool clocked = false;
  bool star = false;
  std::vector<verilog::SensItem> sens;
  std::set<std::string> reads;          // signals read anywhere in the body
  std::set<std::string> assigned_all;   // assigned on every execution path
  std::set<std::string> assigned_some;  // assigned on at least one path
  int first_blocking_line = 0;          // 0 = none
  int first_nonblocking_line = 0;       // 0 = none
  // Outermost `if` of the block body (reset-test candidate): the tested
  // signal and whether the test is for the signal being LOW (`!rst`,
  // `~rst`, `rst == 0`). Empty when the body has no recognizable leading if.
  std::string outer_if_signal;
  bool outer_if_negated = false;
};

struct ModuleDataflow {
  std::map<std::string, SignalNode> signals;
  std::vector<AlwaysInfo> always;
  std::vector<CaseInfo> cases;
  // Combinational dependency cycles: each entry is a sorted list of signal
  // names forming one non-trivial SCC (size > 1, or a self-loop).
  std::vector<std::vector<std::string>> comb_cycles;
  // Instantiated module names with no definition in the source file.
  std::vector<std::pair<std::string, int>> unknown_instances;  // (name, line)
  // Any always block mixing edge and level sensitivity items (elab reject).
  std::vector<int> mixed_sens_lines;
  // Parameter values by name (the slice of the constant lattice that came
  // from parameter declarations).
  std::map<std::string, ConstBits> parameters;
};

// Build the dataflow model for one module. `file` (optional) supplies
// sibling module definitions for instance port directions.
ModuleDataflow build_dataflow(const verilog::Module& m,
                              const verilog::SourceFile* file = nullptr);

// Fold an expression to a constant under the given dataflow's lattice
// (parameters + provably-constant signals). Returns nullopt when any leaf is
// non-constant or an operator is not supported.
std::optional<ConstBits> fold_constant(const verilog::ExprPtr& e, const ModuleDataflow& df);

// Inferred bit width of an expression under Verilog self-determined rules,
// with unsized literals reported as 0 ("context-determined": never flagged).
// Returns 0 when the width cannot be pinned down.
int infer_width(const verilog::ExprPtr& e, const ModuleDataflow& df);

}  // namespace haven::lint
