#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

#include "verilog/parser.h"

namespace haven::lint {

namespace {

using llm::HalluAxis;
using verilog::Dir;
using verilog::Expr;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::Module;
using verilog::Severity;
using verilog::SourceFile;
using verilog::Stmt;
using verilog::StmtKind;
using verilog::StmtPtr;

}  // namespace

const char* rule_id(Rule r) {
  switch (r) {
    case Rule::kSyntax: return "lint.syntax";
    case Rule::kSema: return "lint.sema";
    case Rule::kMultiDriven: return "lint.multi-driven";
    case Rule::kUndriven: return "lint.undriven";
    case Rule::kUnused: return "lint.unused";
    case Rule::kWidthMismatch: return "lint.width";
    case Rule::kSelectRange: return "lint.select-range";
    case Rule::kCombLoop: return "lint.comb-loop";
    case Rule::kSensIncomplete: return "lint.sens-incomplete";
    case Rule::kSensOverwide: return "lint.sens-overwide";
    case Rule::kBlockingInSeq: return "lint.blocking-in-seq";
    case Rule::kNonblockingInComb: return "lint.nonblocking-in-comb";
    case Rule::kCaseIncomplete: return "lint.case-incomplete";
    case Rule::kLatch: return "lint.latch";
    case Rule::kResetStyle: return "lint.reset-style";
    case Rule::kXConstant: return "lint.x-constant";
    case Rule::kConstOutput: return "lint.const-output";
    case Rule::kElabReject: return "lint.elab-reject";
    case Rule::kIfaceMismatch: return "lint.iface";
    case Rule::kAttrMismatch: return "lint.attr-mismatch";
  }
  return "lint.?";
}

llm::HalluAxis rule_axis(Rule r) {
  switch (r) {
    case Rule::kSyntax:
    case Rule::kSema:
    case Rule::kElabReject:
      return HalluAxis::kKnowSyntax;
    case Rule::kMultiDriven:
    case Rule::kCombLoop:
    case Rule::kSensIncomplete:
    case Rule::kSensOverwide:
    case Rule::kBlockingInSeq:
    case Rule::kNonblockingInComb:
      return HalluAxis::kKnowConvention;
    case Rule::kUndriven:
    case Rule::kConstOutput:
      return HalluAxis::kComprehension;
    case Rule::kUnused:
    case Rule::kIfaceMismatch:
      return HalluAxis::kMisalignment;
    case Rule::kWidthMismatch:
    case Rule::kSelectRange:
      return HalluAxis::kLogicExpression;
    case Rule::kCaseIncomplete:
    case Rule::kLatch:
    case Rule::kXConstant:
      return HalluAxis::kLogicCorner;
    case Rule::kResetStyle:
    case Rule::kAttrMismatch:
      return HalluAxis::kKnowAttribute;
  }
  return HalluAxis::kComprehension;
}

Finding make_finding(Rule rule, Severity severity, int line, std::string message,
                     bool predicts_failure, bool proven) {
  Finding f;
  f.rule = rule;
  f.diag = {std::move(message), line, 0, severity, rule_id(rule)};
  f.axis = rule_axis(rule);
  f.predicts_failure = predicts_failure;
  f.proven = proven;
  return f;
}

bool LintResult::flagged() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.predicts_failure; });
}

bool LintResult::proven_failure() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.proven; });
}

std::uint32_t LintResult::axis_mask() const {
  std::uint32_t mask = 0;
  for (const Finding& f : findings) {
    if (f.diag.severity == Severity::kNote) continue;
    mask |= std::uint32_t{1} << static_cast<int>(f.axis);
  }
  return mask;
}

namespace {

std::string join(const std::set<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += "'" + n + "'";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structural rules over the dataflow model
// ---------------------------------------------------------------------------

void multi_driven_rule(const ModuleDataflow& df, std::vector<Finding>* out) {
  for (const auto& [name, node] : df.signals) {
    // Partition into always-block drivers and net-style drivers.
    std::vector<const Driver*> always_drv, net_drv;
    for (const auto& d : node.drivers) {
      if (d.kind == DriverKind::kInitial) continue;  // init value, not a driver
      if (d.kind == DriverKind::kCombAlways || d.kind == DriverKind::kClockedAlways) {
        always_drv.push_back(&d);
      } else {
        net_drv.push_back(&d);
      }
    }
    int line = 0;
    bool conflict = false;
    if (always_drv.size() > 1 || (!always_drv.empty() && !net_drv.empty())) {
      conflict = true;
      line = always_drv.front()->line;
    } else {
      for (std::size_t i = 0; !conflict && i < net_drv.size(); ++i) {
        for (std::size_t j = i + 1; j < net_drv.size(); ++j) {
          if (net_drv[i]->overlaps(*net_drv[j])) {
            conflict = true;
            line = net_drv[j]->line;
            break;
          }
        }
      }
    }
    if (conflict) {
      out->push_back(make_finding(
          Rule::kMultiDriven, Severity::kError, line,
          "signal '" + name + "' has multiple overlapping drivers",
          /*predicts_failure=*/true));
    }
  }
}

void undriven_unused_rule(const ModuleDataflow& df, const ReferenceProfile* ref,
                          std::vector<Finding>* out) {
  std::set<std::string> golden_reads;
  if (ref != nullptr) golden_reads.insert(ref->read_inputs.begin(), ref->read_inputs.end());
  for (const auto& [name, node] : df.signals) {
    if (!node.declared) continue;  // undeclared references are analyzer errors
    const bool is_input = node.is_port && node.dir == Dir::kInput;
    const bool is_output = node.is_port && node.dir == Dir::kOutput;
    if (node.drivers.empty() && !is_input) {
      if (is_output) {
        out->push_back(make_finding(Rule::kUndriven, Severity::kWarning, node.decl_line,
                                    "output '" + name + "' is never driven",
                                    /*predicts_failure=*/true));
      } else if (node.read) {
        out->push_back(make_finding(Rule::kUndriven, Severity::kWarning, node.decl_line,
                                    "signal '" + name + "' is read but never driven",
                                    /*predicts_failure=*/true));
      }
    }
    if (!node.read && !is_output) {
      if (is_input) {
        // Reference-aware grade: ignoring an input the golden design uses is
        // a misalignment; an input the golden also ignores stays a note.
        const bool golden_uses = golden_reads.count(name) > 0;
        out->push_back(make_finding(Rule::kUnused,
                                    golden_uses ? Severity::kWarning : Severity::kNote,
                                    node.decl_line, "input '" + name + "' is never read",
                                    /*predicts_failure=*/golden_uses));
      } else {
        out->push_back(make_finding(Rule::kUnused, Severity::kNote, node.decl_line,
                                    "signal '" + name + "' is never read"));
      }
    }
  }
}

void comb_loop_rule(const ModuleDataflow& df, std::vector<Finding>* out) {
  for (const auto& cycle : df.comb_cycles) {
    int line = 0;
    for (const auto& name : cycle) {
      auto it = df.signals.find(name);
      if (it == df.signals.end()) continue;
      for (const auto& d : it->second.drivers) {
        if (line == 0 || (d.line != 0 && d.line < line)) line = d.line;
      }
    }
    std::string names;
    for (const auto& n : cycle) {
      if (!names.empty()) names += " -> ";
      names += n;
    }
    out->push_back(make_finding(Rule::kCombLoop, Severity::kWarning, line,
                                "combinational loop through " + names,
                                /*predicts_failure=*/true));
  }
}

void always_style_rules(const ModuleDataflow& df, std::vector<Finding>* out) {
  for (const auto& blk : df.always) {
    if (blk.clocked) {
      if (blk.first_blocking_line != 0) {
        out->push_back(make_finding(Rule::kBlockingInSeq, Severity::kWarning,
                                    blk.first_blocking_line,
                                    "blocking assignment in edge-sensitive always block",
                                    /*predicts_failure=*/true));
      }
      continue;
    }
    if (blk.first_nonblocking_line != 0) {
      out->push_back(make_finding(Rule::kNonblockingInComb, Severity::kWarning,
                                  blk.first_nonblocking_line,
                                  "nonblocking assignment in combinational always block"));
    }
    // Latch inference: assigned on some path but not all.
    std::set<std::string> latched;
    std::set_difference(blk.assigned_some.begin(), blk.assigned_some.end(),
                        blk.assigned_all.begin(), blk.assigned_all.end(),
                        std::inserter(latched, latched.begin()));
    for (const auto& name : latched) {
      out->push_back(make_finding(
          Rule::kLatch, Severity::kWarning, blk.line,
          "signal '" + name + "' is not assigned on every path (latch inferred)",
          /*predicts_failure=*/true));
    }
    if (blk.star) continue;
    // Declared sensitivity list vs signals actually read. The simulator
    // honors declared lists (see sim/elaborate.cpp), so a missing signal is
    // a real functional risk, not just style.
    std::set<std::string> sens_names;
    for (const auto& s : blk.sens) sens_names.insert(s.signal);
    std::set<std::string> missing;
    std::set_difference(blk.reads.begin(), blk.reads.end(), sens_names.begin(),
                        sens_names.end(), std::inserter(missing, missing.begin()));
    // Signals assigned inside the block before being read are not external.
    for (const auto& a : blk.assigned_some) missing.erase(a);
    if (!missing.empty()) {
      out->push_back(make_finding(Rule::kSensIncomplete, Severity::kWarning, blk.line,
                                  "sensitivity list missing " + join(missing),
                                  /*predicts_failure=*/true));
    }
    std::set<std::string> extra;
    std::set_difference(sens_names.begin(), sens_names.end(), blk.reads.begin(),
                        blk.reads.end(), std::inserter(extra, extra.begin()));
    if (!extra.empty()) {
      out->push_back(make_finding(Rule::kSensOverwide, Severity::kNote, blk.line,
                                  "sensitivity list names unread " + join(extra)));
    }
  }
}

void case_rule(const ModuleDataflow& df, std::vector<Finding>* out) {
  for (const auto& ci : df.cases) {
    if (ci.has_default || ci.full_coverage) continue;
    if (ci.in_clocked) {
      // Holding state on unlisted values is a normal sequential idiom.
      out->push_back(make_finding(Rule::kCaseIncomplete, Severity::kNote, ci.line,
                                  "case without default does not cover all values"));
    } else {
      out->push_back(make_finding(Rule::kCaseIncomplete, Severity::kWarning, ci.line,
                                  "case without default does not cover all values "
                                  "(latch inferred)",
                                  /*predicts_failure=*/true));
    }
  }
}

// Name-independent reset-style analysis over clocked blocks.
void reset_style_rule(const ModuleDataflow& df, std::vector<Finding>* out) {
  // Signal -> async usage (edge-sensitive and tested) per block; also track
  // sync tests of the same signal in other clocked blocks.
  std::set<std::string> async_tested;
  for (const auto& blk : df.always) {
    if (!blk.clocked) continue;
    std::vector<const verilog::SensItem*> edge_read, edge_unread;
    for (const auto& s : blk.sens) {
      if (s.edge == verilog::Edge::kLevel) continue;
      if (blk.reads.count(s.signal)) {
        edge_read.push_back(&s);
      } else {
        edge_unread.push_back(&s);
      }
    }
    // One unread edge signal is the clock. Prefer a clock-like name; any
    // further unread edge signal is an async control that is never tested.
    std::size_t clock_idx = 0;
    for (std::size_t i = 0; i < edge_unread.size(); ++i) {
      const std::string& n = edge_unread[i]->signal;
      if (n.find("clk") != std::string::npos || n.find("clock") != std::string::npos) {
        clock_idx = i;
        break;
      }
    }
    for (std::size_t i = 0; i < edge_unread.size(); ++i) {
      if (i == clock_idx) continue;
      out->push_back(make_finding(
          Rule::kResetStyle, Severity::kWarning, blk.line,
          "async signal '" + edge_unread[i]->signal +
              "' in the sensitivity list is never tested in the block",
          /*predicts_failure=*/true));
    }
    for (const auto* s : edge_read) {
      async_tested.insert(s->signal);
      if (blk.outer_if_signal != s->signal) continue;
      // posedge reset pairs with a positive test, negedge with a negated one.
      const bool consistent = (s->edge == verilog::Edge::kPos && !blk.outer_if_negated) ||
                              (s->edge == verilog::Edge::kNeg && blk.outer_if_negated);
      if (!consistent) {
        out->push_back(make_finding(
            Rule::kResetStyle, Severity::kWarning, blk.line,
            "async reset '" + s->signal + "' polarity contradicts its sensitivity edge",
            /*predicts_failure=*/true));
      }
    }
  }
  // Mixed discipline: the same signal used as an async reset in one clocked
  // block and tested synchronously (read, not in the sens list) in another.
  for (const auto& blk : df.always) {
    if (!blk.clocked) continue;
    std::set<std::string> sens_names;
    for (const auto& s : blk.sens) sens_names.insert(s.signal);
    for (const auto& name : async_tested) {
      if (blk.reads.count(name) && !sens_names.count(name)) {
        out->push_back(make_finding(
            Rule::kResetStyle, Severity::kWarning, blk.line,
            "reset '" + name + "' is asynchronous in one block but synchronous here",
            /*predicts_failure=*/true));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Expression-level rules: width, select range, x literals
// ---------------------------------------------------------------------------

class ExprRules {
 public:
  ExprRules(const ModuleDataflow& df, std::vector<Finding>* out) : df_(df), out_(out) {}

  void check_module(const Module& m) {
    for (const auto& item : m.items) {
      if (const auto* d = std::get_if<verilog::NetDecl>(&item)) {
        if (d->init) check_expr(d->init, d->line);
      } else if (const auto* a = std::get_if<verilog::ContAssign>(&item)) {
        check_assign(a->lhs, a->rhs, a->line);
      } else if (const auto* ab = std::get_if<verilog::AlwaysBlock>(&item)) {
        check_stmt(ab->body);
      } else if (const auto* ib = std::get_if<verilog::InitialBlock>(&item)) {
        check_stmt(ib->body);
      } else if (const auto* inst = std::get_if<verilog::Instance>(&item)) {
        for (const auto& conn : inst->connections) check_expr(conn.expr, inst->line);
      }
    }
  }

 private:
  int lvalue_width(const ExprPtr& lhs) {
    if (!lhs) return 0;
    switch (lhs->kind) {
      case ExprKind::kIdent: {
        auto it = df_.signals.find(lhs->ident);
        return it != df_.signals.end() && it->second.declared ? it->second.width : 0;
      }
      case ExprKind::kBitSelect:
        return 1;
      case ExprKind::kPartSelect:
        return (lhs->msb >= lhs->lsb ? lhs->msb - lhs->lsb : lhs->lsb - lhs->msb) + 1;
      case ExprKind::kConcat: {
        int total = 0;
        for (const auto& part : lhs->operands) {
          const int w = lvalue_width(part);
          if (w == 0) return 0;
          total += w;
        }
        return total;
      }
      default:
        return 0;
    }
  }

  void check_assign(const ExprPtr& lhs, const ExprPtr& rhs, int line) {
    check_expr(lhs, line);
    check_expr(rhs, line);
    const int lw = lvalue_width(lhs);
    const int rw = infer_width(rhs, df_);
    if (lw > 0 && rw > lw) {
      out_->push_back(make_finding(
          Rule::kWidthMismatch, Severity::kWarning, line,
          std::to_string(rw) + "-bit value truncated to " + std::to_string(lw) + " bits"));
    }
  }

  void check_select(const ExprPtr& e, int line) {
    auto it = df_.signals.find(e->ident);
    if (it == df_.signals.end() || !it->second.declared) return;
    const int width = it->second.width;
    if (e->kind == ExprKind::kBitSelect && !e->operands.empty()) {
      if (auto idx = fold_constant(e->operands[0], df_); idx && idx->fully_defined()) {
        if (idx->value >= static_cast<std::uint64_t>(width)) {
          out_->push_back(make_finding(Rule::kSelectRange, Severity::kWarning, line,
                                       "bit-select '" + e->ident + "[" +
                                           std::to_string(idx->value) +
                                           "]' is outside the declared range"));
        }
      }
    } else if (e->kind == ExprKind::kPartSelect) {
      if (std::max(e->msb, e->lsb) >= width) {
        out_->push_back(make_finding(Rule::kSelectRange, Severity::kWarning, line,
                                     "part-select of '" + e->ident +
                                         "' exceeds the declared range"));
      }
    }
  }

  void check_expr(const ExprPtr& e, int line, bool in_wildcard_label = false) {
    if (!e) return;
    const int at = e->line != 0 ? e->line : line;
    if (e->kind == ExprKind::kNumber && e->number.xz_mask != 0 && !in_wildcard_label) {
      out_->push_back(make_finding(Rule::kXConstant, Severity::kWarning, at,
                                   "x/z literal feeds logic (propagates unknowns)",
                                   /*predicts_failure=*/true));
    }
    if (e->kind == ExprKind::kBitSelect || e->kind == ExprKind::kPartSelect) {
      check_select(e, at);
    }
    for (const auto& child : e->operands) check_expr(child, at, in_wildcard_label);
  }

  void check_stmt(const StmtPtr& s) {
    if (!s) return;
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s->stmts) check_stmt(sub);
        return;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNonblockingAssign:
        check_assign(s->lhs, s->rhs, s->line);
        return;
      case StmtKind::kIf:
        check_expr(s->cond, s->line);
        check_stmt(s->then_branch);
        check_stmt(s->else_branch);
        return;
      case StmtKind::kCase: {
        check_expr(s->cond, s->line);
        const bool wildcard = s->case_kind != verilog::CaseKind::kCase;
        for (const auto& item : s->case_items) {
          for (const auto& label : item.labels) check_expr(label, s->line, wildcard);
          check_stmt(item.body);
        }
        return;
      }
      case StmtKind::kFor:
        check_expr(s->rhs, s->line);
        check_expr(s->cond, s->line);
        check_expr(s->step_rhs, s->line);
        check_stmt(s->body);
        return;
    }
  }

  const ModuleDataflow& df_;
  std::vector<Finding>* out_;
};

// ---------------------------------------------------------------------------
// Elaboration-reject rule (constructs sim/elaborate.cpp throws on)
// ---------------------------------------------------------------------------

void elab_reject_rule(const ModuleDataflow& df, const ReferenceProfile* ref,
                      std::vector<Finding>* out) {
  // A DUT-side elaboration error deterministically fails the diff test —
  // provided the golden side elaborates (otherwise the run is a harness
  // fault, not a verdict). Without a reference the proven grade is
  // informational.
  const bool proven = ref == nullptr || ref->golden_elab_ok;
  for (const auto& [name, node] : df.signals) {
    if (node.width > 64) {
      out->push_back(make_finding(Rule::kElabReject, Severity::kError, node.decl_line,
                                  "signal '" + name + "' is wider than 64 bits "
                                  "(elaboration rejects it)",
                                  /*predicts_failure=*/true, proven));
    }
  }
  for (int line : df.mixed_sens_lines) {
    out->push_back(make_finding(Rule::kElabReject, Severity::kError, line,
                                "mixed edge and level sensitivity "
                                "(elaboration rejects it)",
                                /*predicts_failure=*/true, proven));
  }
  for (const auto& [name, line] : df.unknown_instances) {
    out->push_back(make_finding(Rule::kElabReject, Severity::kError, line,
                                "instance of undefined module '" + name +
                                    "' (elaboration rejects it)",
                                /*predicts_failure=*/true, proven));
  }
}

// ---------------------------------------------------------------------------
// Reference-aware rules
// ---------------------------------------------------------------------------

// Static replica of the testbench interface check (sim/testbench.cpp): any
// deviation from the golden port list fails the diff test before a single
// vector is driven, so these findings are proven.
void iface_rule(const Module& m, const ReferenceProfile& ref, std::vector<Finding>* out) {
  if (ref.golden == nullptr) return;
  for (const auto& gp : ref.golden->ports) {
    const verilog::Port* dp = m.find_port(gp.name);
    if (dp == nullptr) {
      out->push_back(make_finding(Rule::kIfaceMismatch, Severity::kError, m.line,
                                  "missing port '" + gp.name + "'",
                                  /*predicts_failure=*/true, /*proven=*/true));
      continue;
    }
    if (dp->dir != gp.dir) {
      out->push_back(make_finding(Rule::kIfaceMismatch, Severity::kError, m.line,
                                  "port '" + gp.name + "' direction mismatch",
                                  /*predicts_failure=*/true, /*proven=*/true));
    }
    if (dp->width() != gp.width()) {
      out->push_back(make_finding(
          Rule::kIfaceMismatch, Severity::kError, m.line,
          "port '" + gp.name + "' width mismatch (reference " +
              std::to_string(gp.width()) + ", candidate " + std::to_string(dp->width()) + ")",
          /*predicts_failure=*/true, /*proven=*/true));
    }
  }
  for (const auto& dp : m.ports) {
    if (ref.golden->find_port(dp.name) == nullptr) {
      out->push_back(make_finding(Rule::kIfaceMismatch, Severity::kError, m.line,
                                  "extra port '" + dp.name + "'",
                                  /*predicts_failure=*/true, /*proven=*/true));
    }
  }
}

void attr_rule(const Module& m, const SourceFile* file, const ReferenceProfile& ref,
               std::vector<Finding>* out) {
  const verilog::Attributes cand = verilog::analyze_module(m, file).attributes;
  const verilog::Attributes& want = ref.attrs;
  if (!want.has_clock) return;
  if (!cand.has_clock) {
    out->push_back(make_finding(Rule::kAttrMismatch, Severity::kWarning, m.line,
                                "reference is clocked but candidate has no clocked logic",
                                /*predicts_failure=*/true));
    return;
  }
  if (cand.negedge_clock != want.negedge_clock) {
    out->push_back(make_finding(Rule::kAttrMismatch, Severity::kWarning, m.line,
                                "clock edge differs from the reference",
                                /*predicts_failure=*/true));
  }
  if (!ref.reset.empty()) {
    if (cand.async_reset != want.async_reset || cand.sync_reset != want.sync_reset) {
      out->push_back(make_finding(Rule::kAttrMismatch, Severity::kWarning, m.line,
                                  "reset style (sync/async) differs from the reference",
                                  /*predicts_failure=*/true));
    }
    if (cand.active_low_reset != want.active_low_reset) {
      out->push_back(make_finding(Rule::kAttrMismatch, Severity::kWarning, m.line,
                                  "reset polarity differs from the reference",
                                  /*predicts_failure=*/true));
    }
  }
}

// Constant-output rule, reference-aware when possible. Soundness of the
// proven grade (see DESIGN.md §8): the candidate's output provably holds a
// constant (or X) at every instant; the exhaustive sweep visits a golden
// truth row whose defined value differs; outputs_match() then fails on
// defined-vs-defined inequality or defined-vs-X — and every other diff-test
// outcome (elab reject, non-convergence) is also a failure.
void const_output_rule(const Module& m, const ModuleDataflow& df, const ReferenceProfile* ref,
                       std::vector<Finding>* out) {
  for (const auto& port : m.ports) {
    if (port.dir != Dir::kOutput) continue;
    auto it = df.signals.find(port.name);
    if (it == df.signals.end()) continue;
    const SignalNode& node = it->second;
    const bool stuck_x = node.drivers.empty();
    if (!node.constant && !stuck_x) continue;

    bool proven = false;
    if (ref != nullptr && !ref->sequential && ref->exhaustive_comb && ref->golden_elab_ok) {
      for (const auto& t : ref->truth) {
        if (t.port != port.name) continue;
        if (stuck_x || !node.constant->fully_defined()) {
          proven = t.defined_zero || t.defined_one;
        } else {
          const bool value = (node.constant->value & 1) != 0;
          proven = node.width == 1 && (value ? t.defined_zero : t.defined_one);
        }
      }
    }
    if (stuck_x) {
      // The undriven rule already reports the stuck-at-X output; only the
      // proven contradiction adds information here.
      if (!proven) continue;
      out->push_back(make_finding(Rule::kConstOutput, Severity::kError, m.line,
                                  "output '" + port.name +
                                      "' is never driven and the reference defines it",
                                  /*predicts_failure=*/true, /*proven=*/true));
      continue;
    }
    std::ostringstream msg;
    msg << "output '" << port.name << "' is stuck at constant ";
    if (node.constant->fully_defined()) {
      msg << node.constant->value;
    } else {
      msg << "x";
    }
    if (proven) msg << " (contradicts the reference truth table)";
    out->push_back(make_finding(Rule::kConstOutput,
                                proven ? Severity::kError : Severity::kWarning,
                                node.drivers.front().line != 0 ? node.drivers.front().line
                                                               : m.line,
                                msg.str(),
                                /*predicts_failure=*/true, proven));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

LintResult lint_candidate(const Module& m, const SourceFile* file,
                          const ReferenceProfile* ref) {
  LintResult result;
  const ModuleDataflow df = build_dataflow(m, file);

  multi_driven_rule(df, &result.findings);
  undriven_unused_rule(df, ref, &result.findings);
  comb_loop_rule(df, &result.findings);
  always_style_rules(df, &result.findings);
  case_rule(df, &result.findings);
  reset_style_rule(df, &result.findings);
  ExprRules(df, &result.findings).check_module(m);
  elab_reject_rule(df, ref, &result.findings);
  const_output_rule(m, df, ref, &result.findings);
  if (ref != nullptr) {
    iface_rule(m, *ref, &result.findings);
    attr_rule(m, file, *ref, &result.findings);
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.diag.line != b.diag.line) return a.diag.line < b.diag.line;
                     const int ra = std::strcmp(rule_id(a.rule), rule_id(b.rule));
                     if (ra != 0) return ra < 0;
                     return a.diag.message < b.diag.message;
                   });
  return result;
}

void profile_from_golden(const Module& golden, const SourceFile* file, ReferenceProfile* ref) {
  ref->golden = &golden;
  ref->attrs = verilog::analyze_module(golden, file).attributes;
  ref->read_inputs.clear();
  const ModuleDataflow df = build_dataflow(golden, file);
  for (const auto& p : golden.ports) {
    if (p.dir != Dir::kInput) continue;
    auto it = df.signals.find(p.name);
    if (it != df.signals.end() && it->second.read) ref->read_inputs.push_back(p.name);
  }
}

std::vector<Finding> findings_from_diagnostics(
    const std::vector<verilog::Diagnostic>& diags) {
  std::vector<Finding> out;
  for (const auto& d : diags) {
    if (d.severity != Severity::kError) continue;
    Finding f;
    f.rule = d.rule.rfind("sema.", 0) == 0 ? Rule::kSema : Rule::kSyntax;
    f.diag = d;
    // Convention hallucinations surface as specific semantic errors: a
    // signal driven from two always blocks ("state" written in the comb
    // block), wire/reg confusion. Everything else is syntax knowledge.
    f.axis = (d.rule == "sema.multi-driven" || d.rule == "sema.wire-reg")
                 ? HalluAxis::kKnowConvention
                 : HalluAxis::kKnowSyntax;
    f.predicts_failure = true;
    out.push_back(std::move(f));
  }
  return out;
}

SourceLint lint_source(std::string_view source) {
  SourceLint result;
  verilog::ParseOutput parsed = verilog::parse_source(source);
  if (!parsed.ok() || parsed.file.modules.empty()) {
    result.findings = findings_from_diagnostics(parsed.diagnostics);
    if (result.findings.empty()) {
      result.findings.push_back(make_finding(Rule::kSyntax, Severity::kError, 0,
                                             "source contains no modules",
                                             /*predicts_failure=*/true));
    }
    return result;
  }
  result.parsed = true;
  for (const auto& m : parsed.file.modules) {
    const verilog::ModuleAnalysis analysis = verilog::analyze_module(m, &parsed.file);
    auto sema = findings_from_diagnostics(analysis.diagnostics);
    result.findings.insert(result.findings.end(), sema.begin(), sema.end());
    LintResult lint = lint_module(m, &parsed.file);
    result.findings.insert(result.findings.end(), lint.findings.begin(), lint.findings.end());
  }
  return result;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string finding_json(const Finding& f) {
  std::ostringstream os;
  os << "{\"rule\":\"" << f.diag.rule << "\",\"severity\":\""
     << verilog::severity_name(f.diag.severity) << "\",\"line\":" << f.diag.line
     << ",\"axis\":\"" << llm::hallu_axis_name(f.axis) << "\",\"predicts_failure\":"
     << (f.predicts_failure ? "true" : "false") << ",\"proven\":"
     << (f.proven ? "true" : "false") << ",\"message\":\"" << json_escape(f.diag.message)
     << "\"}";
  return os.str();
}

std::string findings_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i != 0) out += ",";
    out += finding_json(findings[i]);
  }
  out += "]";
  return out;
}

}  // namespace haven::lint
