#include "lint/dataflow.h"

#include <algorithm>
#include <utility>

namespace haven::lint {

namespace {

using verilog::CaseKind;
using verilog::Dir;
using verilog::Expr;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::Module;
using verilog::NetType;
using verilog::SourceFile;
using verilog::Stmt;
using verilog::StmtKind;
using verilog::StmtPtr;

std::uint64_t width_mask(int width) {
  if (width >= 64) return ~std::uint64_t{0};
  if (width <= 0) return 0;
  return (std::uint64_t{1} << width) - 1;
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

class DataflowBuilder {
 public:
  DataflowBuilder(const Module& m, const SourceFile* file) : m_(m), file_(file) {}

  ModuleDataflow build() {
    declare_ports();
    declare_nets();
    evaluate_parameters();
    walk_items();
    run_constant_fixpoint();
    find_comb_cycles();
    return std::move(df_);
  }

 private:
  SignalNode& ensure(const std::string& name) {
    auto it = df_.signals.find(name);
    if (it != df_.signals.end()) return it->second;
    SignalNode node;
    node.name = name;
    node.declared = false;
    return df_.signals.emplace(name, std::move(node)).first->second;
  }

  void declare_ports() {
    for (const auto& p : m_.ports) {
      SignalNode node;
      node.name = p.name;
      node.width = p.width();
      node.decl_line = m_.line;
      node.is_port = true;
      node.dir = p.dir;
      node.is_reg = p.is_reg;
      df_.signals.emplace(p.name, std::move(node));
    }
  }

  void declare_nets() {
    for (const auto& item : m_.items) {
      const auto* d = std::get_if<verilog::NetDecl>(&item);
      if (d == nullptr) continue;
      const int width = d->range ? d->range->width() : 1;
      for (const auto& name : d->names) {
        auto it = df_.signals.find(name);
        if (it != df_.signals.end()) {
          // Separate declaration of a port ("output y; reg [3:0] y;").
          it->second.width = std::max(it->second.width, width);
          it->second.is_reg = it->second.is_reg || d->type != NetType::kWire;
          continue;
        }
        SignalNode node;
        node.name = name;
        node.width = width;
        node.decl_line = d->line;
        node.is_reg = d->type != NetType::kWire;
        df_.signals.emplace(name, std::move(node));
      }
    }
  }

  void evaluate_parameters() {
    for (const auto& item : m_.items) {
      const auto* p = std::get_if<verilog::ParameterDecl>(&item);
      if (p == nullptr || !p->value) continue;
      if (auto c = fold_constant(p->value, df_)) df_.parameters[p->name] = *c;
    }
  }

  // --- reads --------------------------------------------------------------

  void mark_read(const std::string& name) {
    auto it = df_.signals.find(name);
    if (it != df_.signals.end()) it->second.read = true;
  }

  void collect_reads(const ExprPtr& e, std::set<std::string>* into) {
    if (!e) return;
    if (e->kind == ExprKind::kIdent || e->kind == ExprKind::kBitSelect ||
        e->kind == ExprKind::kPartSelect) {
      if (!df_.parameters.count(e->ident)) {
        mark_read(e->ident);
        if (into != nullptr) into->insert(e->ident);
      }
    }
    for (const auto& child : e->operands) collect_reads(child, into);
  }

  // --- lvalues ------------------------------------------------------------

  struct Target {
    std::string name;
    int lo = -1, hi = -1;  // -1,-1 = whole signal / unknown slice
    int line = 0;
  };

  void collect_targets(const ExprPtr& lhs, int line, std::vector<Target>* out,
                       std::set<std::string>* reads) {
    if (!lhs) return;
    switch (lhs->kind) {
      case ExprKind::kConcat:
        for (const auto& part : lhs->operands) collect_targets(part, line, out, reads);
        return;
      case ExprKind::kIdent:
        out->push_back({lhs->ident, -1, -1, line});
        return;
      case ExprKind::kBitSelect: {
        Target t{lhs->ident, -1, -1, line};
        if (!lhs->operands.empty()) {
          if (auto idx = fold_constant(lhs->operands[0], df_); idx && idx->fully_defined()) {
            t.lo = t.hi = static_cast<int>(idx->value);
          } else {
            // Dynamic index: reads feed the assignment.
            collect_reads(lhs->operands[0], reads);
          }
        }
        out->push_back(t);
        return;
      }
      case ExprKind::kPartSelect:
        out->push_back({lhs->ident, std::min(lhs->msb, lhs->lsb),
                        std::max(lhs->msb, lhs->lsb), line});
        return;
      default:
        return;  // not an lvalue; the analyzer reports it
    }
  }

  // --- always blocks ------------------------------------------------------

  // Per-block walking state: substitution map from locally-assigned signals
  // to their accumulated external dependencies, so a blocking chain
  // `a = b; c = a;` gives c the dependency set {b} and never a false cycle.
  struct BlockState {
    AlwaysInfo* info = nullptr;
    std::map<std::string, std::set<std::string>> local_deps;
    std::map<std::string, int> first_line;  // first assignment per signal
  };

  // Dependencies of an expression with local substitution applied.
  std::set<std::string> subst_deps(const ExprPtr& e, BlockState& st) {
    std::set<std::string> raw;
    collect_reads(e, &raw);
    std::set<std::string> deps;
    for (const auto& name : raw) {
      auto it = st.local_deps.find(name);
      if (it != st.local_deps.end()) {
        deps.insert(it->second.begin(), it->second.end());
      } else {
        deps.insert(name);
      }
    }
    return deps;
  }

  int case_subject_width(const ExprPtr& subject) {
    const int w = infer_width(subject, df_);
    return w > 0 && w <= 16 ? w : 0;
  }

  // Whether the case labels cover every value of a `width`-bit subject.
  // casez/casex wildcard bits each cover both values. Unknown label values
  // report full coverage (no rule may fire on what we cannot prove).
  bool case_labels_cover(const Stmt& s, int width) {
    if (width <= 0) return true;
    std::vector<bool> covered(std::size_t{1} << width, false);
    for (const auto& item : s.case_items) {
      if (item.labels.empty()) return true;  // default arm
      for (const auto& label : item.labels) {
        std::uint64_t xz = 0;
        std::uint64_t value = 0;
        if (label->kind == ExprKind::kNumber) {
          value = label->number.value;
          xz = label->number.xz_mask;
        } else if (auto c = fold_constant(label, df_)) {
          value = c->value;
          xz = c->xz;
        } else {
          return true;  // non-constant label: assume covered
        }
        const bool wildcard_ok = s.case_kind != CaseKind::kCase;
        std::uint64_t wild = wildcard_ok ? (xz & width_mask(width)) : 0;
        if (!wildcard_ok && xz != 0) continue;  // x label in plain case: never matches
        // Enumerate the wildcard combinations (bounded: width <= 16).
        std::vector<int> wild_bits;
        for (int b = 0; b < width; ++b) {
          if ((wild >> b) & 1) wild_bits.push_back(b);
        }
        if (wild_bits.size() > 12) return true;  // too wide to enumerate; assume covered
        const std::uint64_t base = value & width_mask(width) & ~wild;
        for (std::uint64_t combo = 0; combo < (std::uint64_t{1} << wild_bits.size()); ++combo) {
          std::uint64_t v = base;
          for (std::size_t b = 0; b < wild_bits.size(); ++b) {
            if ((combo >> b) & 1) v |= std::uint64_t{1} << wild_bits[b];
          }
          covered[v] = true;
        }
      }
    }
    return std::all_of(covered.begin(), covered.end(), [](bool c) { return c; });
  }

  // Walk one statement; returns the signals assigned on *every* path through
  // it. `ctrl` carries the (substituted) dependencies of enclosing
  // conditions; `clocked` tags CaseInfo records.
  std::set<std::string> walk_stmt(const StmtPtr& s, BlockState& st,
                                  const std::set<std::string>& ctrl, bool clocked) {
    std::set<std::string> all;
    if (!s) return all;
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s->stmts) {
          auto sub_all = walk_stmt(sub, st, ctrl, clocked);
          all.insert(sub_all.begin(), sub_all.end());
        }
        return all;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNonblockingAssign: {
        if (s->kind == StmtKind::kBlockingAssign) {
          if (st.info->first_blocking_line == 0) st.info->first_blocking_line = s->line;
        } else {
          if (st.info->first_nonblocking_line == 0) st.info->first_nonblocking_line = s->line;
        }
        std::set<std::string> deps = subst_deps(s->rhs, st);
        st.info->reads.insert(deps.begin(), deps.end());
        deps.insert(ctrl.begin(), ctrl.end());
        std::vector<Target> targets;
        std::set<std::string> idx_reads;
        collect_targets(s->lhs, s->line, &targets, &idx_reads);
        for (const auto& r : idx_reads) st.info->reads.insert(r);
        deps.insert(idx_reads.begin(), idx_reads.end());
        for (const auto& t : targets) {
          st.local_deps[t.name].insert(deps.begin(), deps.end());
          if (!st.first_line.count(t.name)) st.first_line[t.name] = t.line;
          st.info->assigned_some.insert(t.name);
          all.insert(t.name);
        }
        return all;
      }
      case StmtKind::kIf: {
        std::set<std::string> cond = subst_deps(s->cond, st);
        st.info->reads.insert(cond.begin(), cond.end());
        std::set<std::string> ctrl2 = ctrl;
        ctrl2.insert(cond.begin(), cond.end());
        auto then_all = walk_stmt(s->then_branch, st, ctrl2, clocked);
        if (!s->else_branch) return all;  // nothing assigned on the fall-through path
        auto else_all = walk_stmt(s->else_branch, st, ctrl2, clocked);
        std::set_intersection(then_all.begin(), then_all.end(), else_all.begin(),
                              else_all.end(), std::inserter(all, all.begin()));
        return all;
      }
      case StmtKind::kCase: {
        std::set<std::string> cond = subst_deps(s->cond, st);
        st.info->reads.insert(cond.begin(), cond.end());
        for (const auto& item : s->case_items) {
          for (const auto& label : item.labels) collect_reads(label, &st.info->reads);
        }
        CaseInfo ci;
        ci.line = s->line;
        ci.kind = s->case_kind;
        ci.in_clocked = clocked;
        ci.has_default = std::any_of(s->case_items.begin(), s->case_items.end(),
                                     [](const verilog::CaseItem& i) { return i.labels.empty(); });
        ci.subject_width = case_subject_width(s->cond);
        ci.full_coverage = ci.has_default || case_labels_cover(*s, ci.subject_width);
        df_.cases.push_back(ci);

        std::set<std::string> ctrl2 = ctrl;
        ctrl2.insert(cond.begin(), cond.end());
        bool first = true;
        std::set<std::string> arm_all;
        for (const auto& item : s->case_items) {
          auto item_all = walk_stmt(item.body, st, ctrl2, clocked);
          if (first) {
            arm_all = std::move(item_all);
            first = false;
          } else {
            std::set<std::string> inter;
            std::set_intersection(arm_all.begin(), arm_all.end(), item_all.begin(),
                                  item_all.end(), std::inserter(inter, inter.begin()));
            arm_all = std::move(inter);
          }
        }
        // The case assigns-on-all-paths only when every subject value hits
        // some arm (a default, or labels proven to cover the space).
        if (!first && ci.full_coverage) all.insert(arm_all.begin(), arm_all.end());
        return all;
      }
      case StmtKind::kFor: {
        // init assignment runs unconditionally.
        std::set<std::string> deps = subst_deps(s->rhs, st);
        st.info->reads.insert(deps.begin(), deps.end());
        deps.insert(ctrl.begin(), ctrl.end());
        std::vector<Target> targets;
        collect_targets(s->lhs, s->line, &targets, &st.info->reads);
        for (const auto& t : targets) {
          st.local_deps[t.name].insert(deps.begin(), deps.end());
          if (!st.first_line.count(t.name)) st.first_line[t.name] = t.line;
          st.info->assigned_some.insert(t.name);
          all.insert(t.name);
        }
        std::set<std::string> cond = subst_deps(s->cond, st);
        st.info->reads.insert(cond.begin(), cond.end());
        std::set<std::string> ctrl2 = ctrl;
        ctrl2.insert(cond.begin(), cond.end());
        // Body + step may run zero times: contributes to assigned_some only.
        walk_stmt(s->body, st, ctrl2, clocked);
        if (s->step_lhs) {
          std::set<std::string> sdeps = subst_deps(s->step_rhs, st);
          st.info->reads.insert(sdeps.begin(), sdeps.end());
          std::vector<Target> st_targets;
          collect_targets(s->step_lhs, s->line, &st_targets, &st.info->reads);
          for (const auto& t : st_targets) {
            st.local_deps[t.name].insert(sdeps.begin(), sdeps.end());
            st.info->assigned_some.insert(t.name);
          }
        }
        return all;
      }
    }
    return all;
  }

  // Unwrap begin/end wrappers down to the first statement; when it is an
  // `if`, record the tested signal and polarity (reset-style analysis).
  void detect_outer_if(StmtPtr body, AlwaysInfo* info) {
    while (body && body->kind == StmtKind::kBlock) {
      if (body->stmts.empty()) return;
      body = body->stmts.front();
    }
    if (!body || body->kind != StmtKind::kIf || !body->cond) return;
    const ExprPtr& c = body->cond;
    auto as_const = [&](const ExprPtr& x) -> std::optional<std::uint64_t> {
      auto v = fold_constant(x, df_);
      if (v && v->fully_defined()) return v->value;
      return std::nullopt;
    };
    if (c->kind == ExprKind::kIdent) {
      info->outer_if_signal = c->ident;
      info->outer_if_negated = false;
    } else if (c->kind == ExprKind::kUnary && (c->op == "!" || c->op == "~") &&
               !c->operands.empty() && c->operands[0]->kind == ExprKind::kIdent) {
      info->outer_if_signal = c->operands[0]->ident;
      info->outer_if_negated = true;
    } else if (c->kind == ExprKind::kBinary && (c->op == "==" || c->op == "!=") &&
               c->operands.size() == 2) {
      const ExprPtr& a = c->operands[0];
      const ExprPtr& b = c->operands[1];
      const ExprPtr* ident = nullptr;
      std::optional<std::uint64_t> value;
      if (a->kind == ExprKind::kIdent) {
        ident = &a;
        value = as_const(b);
      } else if (b->kind == ExprKind::kIdent) {
        ident = &b;
        value = as_const(a);
      }
      if (ident != nullptr && value) {
        info->outer_if_signal = (*ident)->ident;
        const bool test_low = *value == 0;
        info->outer_if_negated = c->op == "==" ? test_low : !test_low;
      }
    }
  }

  void walk_always(const verilog::AlwaysBlock& ab) {
    AlwaysInfo info;
    info.index = static_cast<int>(df_.always.size());
    info.line = ab.line;
    info.star = ab.star;
    info.sens = ab.sens;
    const bool any_edge = std::any_of(ab.sens.begin(), ab.sens.end(), [](const auto& s) {
      return s.edge != verilog::Edge::kLevel;
    });
    const bool any_level = std::any_of(ab.sens.begin(), ab.sens.end(), [](const auto& s) {
      return s.edge == verilog::Edge::kLevel;
    });
    info.clocked = !ab.star && any_edge;
    if (info.clocked && any_level) df_.mixed_sens_lines.push_back(ab.line);
    for (const auto& s : ab.sens) mark_read(s.signal);

    BlockState st;
    st.info = &info;
    auto assigned_all = walk_stmt(ab.body, st, {}, info.clocked);
    info.assigned_all = std::move(assigned_all);
    detect_outer_if(ab.body, &info);

    for (const auto& name : info.assigned_some) {
      Driver d;
      d.kind = info.clocked ? DriverKind::kClockedAlways : DriverKind::kCombAlways;
      d.always_index = info.index;
      auto lit = st.first_line.find(name);
      d.line = lit != st.first_line.end() ? lit->second : ab.line;
      if (!info.clocked) {
        auto dit = st.local_deps.find(name);
        if (dit != st.local_deps.end()) d.deps = dit->second;
      }
      ensure(name).drivers.push_back(std::move(d));
    }
    df_.always.push_back(std::move(info));
  }

  void walk_instance(const verilog::Instance& inst) {
    const Module* def =
        file_ != nullptr ? file_->find_module(inst.module_name) : nullptr;
    if (def == nullptr || def == &m_) {
      if (def == nullptr) df_.unknown_instances.emplace_back(inst.module_name, inst.line);
      for (const auto& conn : inst.connections) collect_reads(conn.expr, nullptr);
      return;
    }
    for (std::size_t i = 0; i < inst.connections.size(); ++i) {
      const auto& conn = inst.connections[i];
      if (!conn.expr) continue;
      const verilog::Port* formal = nullptr;
      if (!conn.port.empty()) {
        formal = def->find_port(conn.port);
      } else if (i < def->ports.size()) {
        formal = &def->ports[i];
      }
      if (formal != nullptr && formal->dir == Dir::kOutput) {
        std::vector<Target> targets;
        std::set<std::string> idx_reads;
        collect_targets(conn.expr, inst.line, &targets, &idx_reads);
        for (const auto& r : idx_reads) mark_read(r);
        for (const auto& t : targets) {
          Driver d;
          d.kind = DriverKind::kInstance;
          d.line = inst.line;
          d.lo = t.lo;
          d.hi = t.hi;
          ensure(t.name).drivers.push_back(std::move(d));
        }
      } else {
        collect_reads(conn.expr, nullptr);
      }
    }
  }

  void walk_items() {
    for (const auto& item : m_.items) {
      if (const auto* d = std::get_if<verilog::NetDecl>(&item)) {
        if (d->init && !d->names.empty()) {
          Driver drv;
          drv.kind = DriverKind::kDeclInit;
          drv.line = d->line;
          drv.rhs = d->init;
          collect_reads(d->init, &drv.deps);
          ensure(d->names.back()).drivers.push_back(std::move(drv));
        }
      } else if (const auto* a = std::get_if<verilog::ContAssign>(&item)) {
        Driver drv;
        drv.kind = DriverKind::kContAssign;
        drv.line = a->line;
        drv.rhs = a->rhs;
        collect_reads(a->rhs, &drv.deps);
        std::vector<Target> targets;
        std::set<std::string> idx_reads;
        collect_targets(a->lhs, a->line, &targets, &idx_reads);
        for (const auto& r : idx_reads) drv.deps.insert(r);
        for (const auto& t : targets) {
          Driver d = drv;  // each concat part gets its own range
          d.lo = t.lo;
          d.hi = t.hi;
          ensure(t.name).drivers.push_back(std::move(d));
        }
      } else if (const auto* ab = std::get_if<verilog::AlwaysBlock>(&item)) {
        walk_always(*ab);
      } else if (const auto* ib = std::get_if<verilog::InitialBlock>(&item)) {
        AlwaysInfo scratch;  // reads/assignments tracked, block not recorded
        BlockState st;
        st.info = &scratch;
        walk_stmt(ib->body, st, {}, /*clocked=*/false);
        for (const auto& name : scratch.assigned_some) {
          Driver d;
          d.kind = DriverKind::kInitial;
          d.line = ib->line;
          ensure(name).drivers.push_back(std::move(d));
        }
      } else if (const auto* inst = std::get_if<verilog::Instance>(&item)) {
        walk_instance(*inst);
      }
    }
  }

  // --- constant lattice ----------------------------------------------------

  void run_constant_fixpoint() {
    for (int pass = 0; pass < 8; ++pass) {
      bool changed = false;
      for (auto& [name, node] : df_.signals) {
        if (node.constant || node.drivers.size() != 1) continue;
        if (node.is_port && node.dir == Dir::kInput) continue;
        const Driver& d = node.drivers.front();
        if ((d.kind != DriverKind::kContAssign && d.kind != DriverKind::kDeclInit) ||
            !d.whole_signal() || !d.rhs) {
          continue;
        }
        if (auto c = fold_constant(d.rhs, df_)) {
          ConstBits v = *c;
          v.width = node.width;
          v.value &= width_mask(node.width);
          v.xz &= width_mask(node.width);
          node.constant = v;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }

  // --- combinational cycles ------------------------------------------------

  void find_comb_cycles() {
    // Adjacency over signals with combinational drivers.
    std::map<std::string, std::set<std::string>> adj;
    for (const auto& [name, node] : df_.signals) {
      for (const auto& d : node.drivers) {
        if (d.kind != DriverKind::kContAssign && d.kind != DriverKind::kDeclInit &&
            d.kind != DriverKind::kCombAlways) {
          continue;
        }
        for (const auto& dep : d.deps) {
          if (df_.signals.count(dep)) adj[name].insert(dep);
        }
      }
    }
    // Iterative Tarjan SCC.
    std::map<std::string, int> index, low;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    int next_index = 0;
    struct Frame {
      std::string node;
      std::vector<std::string> succ;
      std::size_t next = 0;
    };
    for (const auto& [start, unused_edges] : adj) {
      (void)unused_edges;
      if (index.count(start)) continue;
      std::vector<Frame> frames;
      auto push_node = [&](const std::string& n) {
        index[n] = low[n] = next_index++;
        stack.push_back(n);
        on_stack.insert(n);
        Frame f;
        f.node = n;
        auto it = adj.find(n);
        if (it != adj.end()) f.succ.assign(it->second.begin(), it->second.end());
        frames.push_back(std::move(f));
      };
      push_node(start);
      while (!frames.empty()) {
        Frame& f = frames.back();
        if (f.next < f.succ.size()) {
          const std::string& w = f.succ[f.next++];
          if (!index.count(w)) {
            if (adj.count(w)) {
              push_node(w);
            } else {
              index[w] = low[w] = next_index++;  // leaf: no comb driver, no SCC
            }
          } else if (on_stack.count(w)) {
            low[f.node] = std::min(low[f.node], index[w]);
          }
        } else {
          if (low[f.node] == index[f.node]) {
            std::vector<std::string> scc;
            while (true) {
              std::string w = stack.back();
              stack.pop_back();
              on_stack.erase(w);
              scc.push_back(w);
              if (w == f.node) break;
            }
            const bool self_loop =
                scc.size() == 1 && adj.count(scc[0]) && adj.at(scc[0]).count(scc[0]);
            if (scc.size() > 1 || self_loop) {
              std::sort(scc.begin(), scc.end());
              df_.comb_cycles.push_back(std::move(scc));
            }
          }
          const std::string done = f.node;
          frames.pop_back();
          if (!frames.empty()) {
            low[frames.back().node] = std::min(low[frames.back().node], low[done]);
          }
        }
      }
    }
    std::sort(df_.comb_cycles.begin(), df_.comb_cycles.end());
  }

  const Module& m_;
  const SourceFile* file_;
  ModuleDataflow df_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

std::optional<ConstBits> fold_constant(const ExprPtr& e, const ModuleDataflow& df) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case ExprKind::kNumber: {
      ConstBits c;
      c.value = e->number.value;
      c.xz = e->number.xz_mask;
      c.width = e->number.width;
      c.sized = e->number.sized;
      return c;
    }
    case ExprKind::kIdent: {
      if (auto it = df.parameters.find(e->ident); it != df.parameters.end()) return it->second;
      if (auto it = df.signals.find(e->ident);
          it != df.signals.end() && it->second.constant) {
        return it->second.constant;
      }
      return std::nullopt;
    }
    case ExprKind::kUnary: {
      auto a = fold_constant(e->operands.empty() ? nullptr : e->operands[0], df);
      if (!a || !a->fully_defined()) return std::nullopt;
      const std::uint64_t mask = width_mask(a->width);
      const std::uint64_t v = a->value & mask;
      ConstBits r;
      r.width = a->width;
      r.sized = a->sized;
      if (e->op == "~") {
        r.value = ~v & mask;
      } else if (e->op == "!") {
        r.value = v == 0;
        r.width = 1;
      } else if (e->op == "-") {
        r.value = (~v + 1) & mask;
      } else if (e->op == "&") {
        r.value = v == mask;
        r.width = 1;
      } else if (e->op == "|") {
        r.value = v != 0;
        r.width = 1;
      } else if (e->op == "^") {
        r.value = static_cast<std::uint64_t>(__builtin_popcountll(v) & 1);
        r.width = 1;
      } else if (e->op == "~&") {
        r.value = v != mask;
        r.width = 1;
      } else if (e->op == "~|") {
        r.value = v == 0;
        r.width = 1;
      } else if (e->op == "~^" || e->op == "^~") {
        r.value = static_cast<std::uint64_t>(~__builtin_popcountll(v) & 1);
        r.width = 1;
      } else {
        return std::nullopt;
      }
      return r;
    }
    case ExprKind::kBinary: {
      if (e->operands.size() < 2) return std::nullopt;
      auto a = fold_constant(e->operands[0], df);
      auto b = fold_constant(e->operands[1], df);
      if (!a || !b || !a->fully_defined() || !b->fully_defined()) return std::nullopt;
      const int w = std::max(a->width, b->width);
      const std::uint64_t mask = width_mask(w);
      const std::uint64_t x = a->value & mask;
      const std::uint64_t y = b->value & mask;
      ConstBits r;
      r.width = w;
      r.sized = a->sized || b->sized;
      const std::string& op = e->op;
      if (op == "+") r.value = (x + y) & mask;
      else if (op == "-") r.value = (x - y) & mask;
      else if (op == "*") r.value = (x * y) & mask;
      else if (op == "/") {
        if (y == 0) return std::nullopt;
        r.value = (x / y) & mask;
      } else if (op == "%") {
        if (y == 0) return std::nullopt;
        r.value = (x % y) & mask;
      } else if (op == "&") r.value = x & y;
      else if (op == "|") r.value = x | y;
      else if (op == "^") r.value = x ^ y;
      else if (op == "<<") {
        r.value = y >= 64 ? 0 : (x << y) & mask;
      } else if (op == ">>") {
        r.value = y >= 64 ? 0 : (x >> y);
      } else if (op == "==") { r.value = x == y; r.width = 1; }
      else if (op == "!=") { r.value = x != y; r.width = 1; }
      else if (op == "<") { r.value = x < y; r.width = 1; }
      else if (op == "<=") { r.value = x <= y; r.width = 1; }
      else if (op == ">") { r.value = x > y; r.width = 1; }
      else if (op == ">=") { r.value = x >= y; r.width = 1; }
      else if (op == "&&") { r.value = x != 0 && y != 0; r.width = 1; }
      else if (op == "||") { r.value = x != 0 || y != 0; r.width = 1; }
      else return std::nullopt;
      return r;
    }
    case ExprKind::kTernary: {
      if (e->operands.size() < 3) return std::nullopt;
      auto c = fold_constant(e->operands[0], df);
      if (!c || !c->fully_defined()) return std::nullopt;
      return fold_constant(e->operands[c->value != 0 ? 1 : 2], df);
    }
    case ExprKind::kConcat: {
      ConstBits r;
      r.width = 0;
      r.sized = true;
      for (const auto& part : e->operands) {  // MSB first
        auto p = fold_constant(part, df);
        if (!p || p->width <= 0 || r.width + p->width > 64) return std::nullopt;
        r.value = (r.value << p->width) | (p->value & width_mask(p->width));
        r.xz = (r.xz << p->width) | (p->xz & width_mask(p->width));
        r.width += p->width;
      }
      return r.width > 0 ? std::optional<ConstBits>(r) : std::nullopt;
    }
    case ExprKind::kReplicate: {
      auto p = fold_constant(e->operands.empty() ? nullptr : e->operands[0], df);
      if (!p || p->width <= 0) return std::nullopt;
      const std::uint64_t n = e->repeat;
      if (n == 0 || n * static_cast<std::uint64_t>(p->width) > 64) return std::nullopt;
      ConstBits r;
      r.width = 0;
      r.sized = true;
      for (std::uint64_t i = 0; i < n; ++i) {
        r.value = (r.value << p->width) | (p->value & width_mask(p->width));
        r.xz = (r.xz << p->width) | (p->xz & width_mask(p->width));
        r.width += p->width;
      }
      return r;
    }
    case ExprKind::kBitSelect: {
      auto base = fold_constant(Expr::make_ident(e->ident), df);
      auto idx = fold_constant(e->operands.empty() ? nullptr : e->operands[0], df);
      if (!base || !idx || !idx->fully_defined() || idx->value >= 64) return std::nullopt;
      ConstBits r;
      r.width = 1;
      r.sized = true;
      r.value = (base->value >> idx->value) & 1;
      r.xz = (base->xz >> idx->value) & 1;
      return r;
    }
    case ExprKind::kPartSelect: {
      auto base = fold_constant(Expr::make_ident(e->ident), df);
      if (!base) return std::nullopt;
      const int lo = std::min(e->msb, e->lsb);
      const int hi = std::max(e->msb, e->lsb);
      if (lo < 0 || hi >= 64) return std::nullopt;
      ConstBits r;
      r.width = hi - lo + 1;
      r.sized = true;
      r.value = (base->value >> lo) & width_mask(r.width);
      r.xz = (base->xz >> lo) & width_mask(r.width);
      return r;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Width inference
// ---------------------------------------------------------------------------

int infer_width(const ExprPtr& e, const ModuleDataflow& df) {
  if (!e) return 0;
  switch (e->kind) {
    case ExprKind::kNumber:
      return e->number.sized ? e->number.width : 0;
    case ExprKind::kIdent: {
      if (df.parameters.count(e->ident)) return 0;  // context-determined
      auto it = df.signals.find(e->ident);
      return it != df.signals.end() && it->second.declared ? it->second.width : 0;
    }
    case ExprKind::kUnary: {
      if (e->op == "~" || e->op == "-") {
        return infer_width(e->operands.empty() ? nullptr : e->operands[0], df);
      }
      return 1;  // reductions and !
    }
    case ExprKind::kBinary: {
      const std::string& op = e->op;
      if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
          op == ">=" || op == "&&" || op == "||") {
        return 1;
      }
      if (e->operands.size() < 2) return 0;
      if (op == "<<" || op == ">>") return infer_width(e->operands[0], df);
      const int a = infer_width(e->operands[0], df);
      const int b = infer_width(e->operands[1], df);
      if (a == 0 || b == 0) return std::max(a, b) == 0 ? 0 : std::max(a, b);
      return std::max(a, b);
    }
    case ExprKind::kTernary: {
      if (e->operands.size() < 3) return 0;
      const int a = infer_width(e->operands[1], df);
      const int b = infer_width(e->operands[2], df);
      if (a == 0 || b == 0) return std::max(a, b);
      return std::max(a, b);
    }
    case ExprKind::kConcat: {
      int total = 0;
      for (const auto& part : e->operands) {
        const int w = infer_width(part, df);
        if (w == 0) return 0;
        total += w;
      }
      return total;
    }
    case ExprKind::kReplicate: {
      const int w = infer_width(e->operands.empty() ? nullptr : e->operands[0], df);
      if (w == 0 || e->repeat == 0) return 0;
      return static_cast<int>(e->repeat) * w;
    }
    case ExprKind::kBitSelect:
      return 1;
    case ExprKind::kPartSelect:
      return (e->msb >= e->lsb ? e->msb - e->lsb : e->lsb - e->msb) + 1;
  }
  return 0;
}

ModuleDataflow build_dataflow(const Module& m, const SourceFile* file) {
  return DataflowBuilder(m, file).build();
}

}  // namespace haven::lint
