// haven::lint — dataflow-based static analysis for generated Verilog with
// hallucination-class attribution.
//
// Every rule produces Findings that carry (a) a verilog::Diagnostic — the
// severity/line/rule-id shape shared with the parser and the semantic
// analyzer — and (b) an attributed llm::HalluAxis from the paper's taxonomy
// (Table II), so lint output doubles as a *static estimator* of the
// hallucination class that produced a defect. Two finding grades matter
// downstream:
//
//  * predicts_failure — the rule statically predicts this candidate will
//    fail the differential testbench. Feeds the precision/recall tally in
//    eval::LintSummary.
//  * proven — the prediction is SOUND: the finding by itself implies the
//    diff test fails (interface mismatch, elaboration reject, constant
//    output contradicting the reference truth table). Only proven findings
//    may trigger simulation-skipping triage in the eval engine; see
//    DESIGN.md §8 for the per-rule soundness arguments.
//
// Reference-aware rules compare the candidate against a ReferenceProfile
// distilled from the golden module (interface, attributes, truth rows).
// Without a profile, lint_module() runs the standalone rules only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/dataflow.h"
#include "llm/hallucination.h"
#include "verilog/analyzer.h"
#include "verilog/parser.h"

namespace haven::lint {

enum class Rule : std::uint8_t {
  kSyntax = 0,         // source does not parse
  kSema,               // semantic-analyzer error (compile gate)
  kMultiDriven,        // overlapping drivers the compile gate accepts
  kUndriven,           // read or exported but never driven
  kUnused,             // driven or declared but never read
  kWidthMismatch,      // rhs provably wider than lhs (truncation)
  kSelectRange,        // constant select outside the declared range
  kCombLoop,           // cycle in the combinational dependency graph
  kSensIncomplete,     // level-sensitive list missing a read signal
  kSensOverwide,       // level-sensitive list naming an unread signal
  kBlockingInSeq,      // blocking assignment in a clocked block
  kNonblockingInComb,  // nonblocking assignment in a comb block
  kCaseIncomplete,     // case without default, labels don't cover
  kLatch,              // comb signal not assigned on all paths
  kResetStyle,         // async/sync reset inconsistency, wrong polarity
  kXConstant,          // x/z literal feeding logic
  kConstOutput,        // output provably stuck at a constant
  kElabReject,         // construct the elaborator rejects (width > 64, ...)
  kIfaceMismatch,      // port list differs from the reference (proven)
  kAttrMismatch,       // clock/reset attributes differ from the reference
};
inline constexpr int kNumRules = 20;

// Stable machine-readable id, e.g. "lint.multi-driven".
const char* rule_id(Rule r);

// Default taxonomy axis for a rule's findings.
llm::HalluAxis rule_axis(Rule r);

struct Finding {
  Rule rule = Rule::kSyntax;
  verilog::Diagnostic diag;  // severity, line, message; diag.rule == rule_id(rule)
  llm::HalluAxis axis = llm::HalluAxis::kKnowSyntax;
  bool predicts_failure = false;
  bool proven = false;
};

// Make a Finding with diag.rule/axis filled from the rule's defaults.
Finding make_finding(Rule rule, verilog::Severity severity, int line, std::string message,
                     bool predicts_failure = false, bool proven = false);

struct LintResult {
  std::vector<Finding> findings;  // ordered by line, then rule id

  bool flagged() const;          // any predicts_failure finding
  bool proven_failure() const;   // any proven finding (triage-eligible)
  // Bitmask over llm::HalluAxis of axes with >= 1 warning-or-error finding.
  std::uint32_t axis_mask() const;
};

// Reference profile distilled from a golden module, consumed by the
// reference-aware rules. Plain data: the eval engine fills it (it has the
// task spec, the stimulus protocol and the simulator at hand); the
// non-owning pointers must outlive the profile.
struct ReferenceProfile {
  const verilog::Module* golden = nullptr;
  verilog::Attributes attrs;     // analyzer attributes of the golden module
  bool sequential = false;
  std::string clock;             // stimulus clock/reset names ("" = none)
  std::string reset;
  // The differential test will sweep EVERY data-input vector (combinational
  // task with few enough input bits). Precondition for the constant-output
  // proof.
  bool exhaustive_comb = false;
  // The golden module elaborates. When false, elaboration-reject findings
  // lose their proven grade (a reject would be a harness fault, not a DUT
  // verdict).
  bool golden_elab_ok = true;
  // Golden truth rows for 1-bit outputs: does any fully-defined input
  // vector make the output 0 / 1?
  struct OutputTruth {
    std::string port;
    bool defined_zero = false;
    bool defined_one = false;
  };
  std::vector<OutputTruth> truth;
  // Input ports the golden module actually reads. A candidate ignoring one
  // of these is a misalignment warning; inputs the golden also ignores stay
  // note-grade.
  std::vector<std::string> read_inputs;
};

// Fill golden-derived fields of a profile that lint can compute itself
// (attributes via the analyzer, read_inputs via dataflow). The caller still
// fills the stimulus/truth/elaboration fields.
void profile_from_golden(const verilog::Module& golden, const verilog::SourceFile* file,
                         ReferenceProfile* ref);

// Run every rule over one module. `file` supplies sibling definitions for
// instance checks; `ref` (optional) enables the reference-aware rules and
// the proven grade on constant-output findings.
LintResult lint_candidate(const verilog::Module& m, const verilog::SourceFile* file,
                          const ReferenceProfile* ref);

// Standalone lint (no reference).
inline LintResult lint_module(const verilog::Module& m,
                              const verilog::SourceFile* file = nullptr) {
  return lint_candidate(m, file, nullptr);
}

// Whole-file lint for tools: parse failures become kSyntax findings,
// analyzer errors kSema findings, then every module is linted standalone.
struct SourceLint {
  std::vector<Finding> findings;  // file-level, then per-module in order
  bool parsed = false;
};
SourceLint lint_source(std::string_view source);

// Map frontend diagnostics (parse errors, semantic-analyzer errors) to
// attributed findings: "parse" -> kSyntax/kKnowSyntax; "sema.*" -> kSema
// with a per-rule axis (multi-driven and wire-reg confusion are convention
// hallucinations, the rest syntax). Warnings are skipped (the lint rules
// re-derive them with more precision).
std::vector<Finding> findings_from_diagnostics(const std::vector<verilog::Diagnostic>& diags);

// Machine-readable JSON: {"rule":..,"severity":..,"line":..,"axis":..,
// "predicts_failure":..,"proven":..,"message":..}.
std::string finding_json(const Finding& f);
std::string findings_json(const std::vector<Finding>& findings);

}  // namespace haven::lint
