// Semantic analysis over the parsed AST. This module is HaVen's substitute
// for two external tools the paper uses:
//
//  * slang (Fig 2, step 6): extracting *topics* (FSM, counter, ALU, ...) and
//    *attributes* (async vs sync reset, clock edge, enable polarity) from
//    Verilog code so vanilla instruction-code pairs can be matched with the
//    curated exemplars, and
//  * the "industry-standard Verilog compiler" (Fig 2, step 8): rejecting
//    erroneous or incomplete pairs. `compile_ok` = parse + no semantic
//    errors and is the gate used by the dataset verification stage and by
//    the benchmark's syntax-pass metric.
//
// Diagnostics are split into errors (would not compile / elaborate) and
// warnings (lint: missing default, latch inference, blocking assignment in
// sequential logic — exactly the digital-design-convention violations the
// hallucination taxonomy tracks).
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "verilog/ast.h"
#include "verilog/parser.h"

namespace haven::verilog {

// Module topic labels used for exemplar matching.
enum class Topic : std::uint8_t {
  kFsm,
  kCounter,
  kShiftRegister,
  kAlu,
  kClockDivider,
  kAdder,
  kMultiplexer,
  kDecoder,
  kComparator,
  kParity,
  kRegister,       // plain clocked register/pipeline stage
  kCombinational,  // pure combinational, none of the above
  kSequential,     // clocked, none of the above
};

std::string topic_name(Topic t);

// Verilog-specific attributes (Section III-C: reset mechanisms, clocking and
// edge sensitivity, enable signals).
struct Attributes {
  bool has_clock = false;
  bool negedge_clock = false;
  bool async_reset = false;       // reset appears in the edge sensitivity list
  bool sync_reset = false;        // reset tested first inside a clocked block
  bool active_low_reset = false;  // reset_n / !rst style
  bool has_enable = false;
  bool active_low_enable = false;

  bool operator==(const Attributes&) const = default;
};

struct ModuleAnalysis {
  std::string module_name;
  // All findings in discovery order — semantic errors and lint warnings
  // share the one Diagnostic struct (severity + rule id) instead of living
  // in parallel vectors. Filter with errors()/warnings() below.
  std::vector<Diagnostic> diagnostics;
  std::set<Topic> topics;
  Attributes attributes;

  // Structure statistics used by lints and by the dataset pipeline.
  int num_always = 0;
  int num_cont_assign = 0;
  bool has_case_without_default = false;
  bool possible_latch = false;

  // Severity-filtered views (copies; diagnostics are small).
  std::vector<Diagnostic> errors() const;
  std::vector<Diagnostic> warnings() const;

  // Unchanged compile-gate semantics: ok() iff no error-severity diagnostic.
  bool ok() const {
    for (const auto& d : diagnostics) {
      if (d.severity == Severity::kError) return false;
    }
    return true;
  }
};

// Analyze a single parsed module. `file` provides sibling modules so that
// instances can be checked against their definitions when available.
ModuleAnalysis analyze_module(const Module& m, const SourceFile* file = nullptr);

struct SourceAnalysis {
  std::vector<ModuleAnalysis> modules;
  std::vector<Diagnostic> parse_errors;

  bool ok() const {
    if (!parse_errors.empty()) return false;
    for (const auto& m : modules) {
      if (!m.ok()) return false;
    }
    return !modules.empty();
  }
};

SourceAnalysis analyze_source(std::string_view source);

// Parse + semantic check. The single predicate used as "compiles" throughout
// the pipeline (dataset verification and the syntax-pass benchmark metric).
bool compile_ok(std::string_view source);

}  // namespace haven::verilog
