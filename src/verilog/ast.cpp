#include "verilog/ast.h"

#include <cctype>
#include <stdexcept>

namespace haven::verilog {

// --- Expr factories ---------------------------------------------------------

namespace {
std::shared_ptr<Expr> new_expr(ExprKind kind, int line) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}
}  // namespace

ExprPtr Expr::make_number(Number n, int line) {
  auto e = new_expr(ExprKind::kNumber, line);
  e->number = n;
  return e;
}

ExprPtr Expr::make_number(std::uint64_t value, int width, bool sized) {
  Number n;
  n.value = value;
  n.width = width;
  n.sized = sized;
  return make_number(n);
}

ExprPtr Expr::make_ident(std::string name, int line) {
  auto e = new_expr(ExprKind::kIdent, line);
  e->ident = std::move(name);
  return e;
}

ExprPtr Expr::make_unary(std::string op, ExprPtr a, int line) {
  if (!a) throw std::invalid_argument("make_unary: null operand");
  auto e = new_expr(ExprKind::kUnary, line);
  e->op = std::move(op);
  e->operands = {std::move(a)};
  return e;
}

ExprPtr Expr::make_binary(std::string op, ExprPtr a, ExprPtr b, int line) {
  if (!a || !b) throw std::invalid_argument("make_binary: null operand");
  auto e = new_expr(ExprKind::kBinary, line);
  e->op = std::move(op);
  e->operands = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::make_ternary(ExprPtr c, ExprPtr t, ExprPtr f, int line) {
  if (!c || !t || !f) throw std::invalid_argument("make_ternary: null operand");
  auto e = new_expr(ExprKind::kTernary, line);
  e->operands = {std::move(c), std::move(t), std::move(f)};
  return e;
}

ExprPtr Expr::make_concat(std::vector<ExprPtr> parts, int line) {
  if (parts.empty()) throw std::invalid_argument("make_concat: empty");
  auto e = new_expr(ExprKind::kConcat, line);
  e->operands = std::move(parts);
  return e;
}

ExprPtr Expr::make_replicate(std::uint64_t count, ExprPtr inner, int line) {
  if (!inner) throw std::invalid_argument("make_replicate: null operand");
  auto e = new_expr(ExprKind::kReplicate, line);
  e->repeat = count;
  e->operands = {std::move(inner)};
  return e;
}

ExprPtr Expr::make_bit_select(std::string base, ExprPtr index, int line) {
  if (!index) throw std::invalid_argument("make_bit_select: null index");
  auto e = new_expr(ExprKind::kBitSelect, line);
  e->ident = std::move(base);
  e->operands = {std::move(index)};
  return e;
}

ExprPtr Expr::make_part_select(std::string base, int msb, int lsb, int line) {
  auto e = new_expr(ExprKind::kPartSelect, line);
  e->ident = std::move(base);
  e->msb = msb;
  e->lsb = lsb;
  return e;
}

void Expr::collect_idents(std::vector<std::string>& out) const {
  switch (kind) {
    case ExprKind::kIdent:
    case ExprKind::kBitSelect:
    case ExprKind::kPartSelect:
      out.push_back(ident);
      break;
    default:
      break;
  }
  for (const auto& child : operands) child->collect_idents(out);
}

// --- Stmt factories ----------------------------------------------------------

namespace {
std::shared_ptr<Stmt> new_stmt(StmtKind kind, int line) {
  auto s = std::make_shared<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}
}  // namespace

StmtPtr Stmt::make_block(std::vector<StmtPtr> stmts, int line) {
  auto s = new_stmt(StmtKind::kBlock, line);
  s->stmts = std::move(stmts);
  return s;
}

StmtPtr Stmt::make_assign(bool blocking, ExprPtr lhs, ExprPtr rhs, int line) {
  if (!lhs || !rhs) throw std::invalid_argument("make_assign: null operand");
  auto s = new_stmt(blocking ? StmtKind::kBlockingAssign : StmtKind::kNonblockingAssign, line);
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  return s;
}

StmtPtr Stmt::make_if(ExprPtr cond, StmtPtr then_b, StmtPtr else_b, int line) {
  if (!cond || !then_b) throw std::invalid_argument("make_if: null cond/then");
  auto s = new_stmt(StmtKind::kIf, line);
  s->cond = std::move(cond);
  s->then_branch = std::move(then_b);
  s->else_branch = std::move(else_b);
  return s;
}

StmtPtr Stmt::make_case(CaseKind kind, ExprPtr subject, std::vector<CaseItem> items, int line) {
  if (!subject) throw std::invalid_argument("make_case: null subject");
  auto s = new_stmt(StmtKind::kCase, line);
  s->case_kind = kind;
  s->cond = std::move(subject);
  s->case_items = std::move(items);
  return s;
}

StmtPtr Stmt::make_for(ExprPtr init_lhs, ExprPtr init_rhs, ExprPtr cond, ExprPtr step_lhs,
                       ExprPtr step_rhs, StmtPtr body, int line) {
  if (!init_lhs || !init_rhs || !cond || !step_lhs || !step_rhs || !body)
    throw std::invalid_argument("make_for: null component");
  auto s = new_stmt(StmtKind::kFor, line);
  s->lhs = std::move(init_lhs);
  s->rhs = std::move(init_rhs);
  s->cond = std::move(cond);
  s->step_lhs = std::move(step_lhs);
  s->step_rhs = std::move(step_rhs);
  s->body = std::move(body);
  return s;
}

// --- Module ------------------------------------------------------------------

const Port* Module::find_port(const std::string& port_name) const {
  for (const auto& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

std::vector<std::string> Module::input_names() const {
  std::vector<std::string> out;
  for (const auto& p : ports) {
    if (p.dir == Dir::kInput) out.push_back(p.name);
  }
  return out;
}

std::vector<std::string> Module::output_names() const {
  std::vector<std::string> out;
  for (const auto& p : ports) {
    if (p.dir == Dir::kOutput) out.push_back(p.name);
  }
  return out;
}

const Module* SourceFile::find_module(const std::string& name) const {
  for (const auto& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// --- Literal parsing ----------------------------------------------------------

std::optional<Number> parse_number_literal(const std::string& text) {
  Number n;
  const std::size_t tick = text.find('\'');
  if (tick == std::string::npos) {
    // Plain decimal.
    if (text.empty()) return std::nullopt;
    std::uint64_t v = 0;
    for (char c : text) {
      if (c == '_') continue;
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    n.value = v;
    n.width = 32;
    n.sized = false;
    return n;
  }

  // Sized/based literal.
  int width = 0;
  if (tick == 0) {
    width = 32;  // unsized based literal 'b0
  } else {
    for (std::size_t i = 0; i < tick; ++i) {
      const char c = text[i];
      if (c == '_') continue;
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      width = width * 10 + (c - '0');
    }
    if (width <= 0 || width > 64) return std::nullopt;  // simulator limit
  }
  n.width = width;
  n.sized = tick != 0;

  std::size_t i = tick + 1;
  if (i < text.size() && (text[i] == 's' || text[i] == 'S')) ++i;  // signed marker ignored
  if (i >= text.size()) return std::nullopt;
  const char base = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i++])));
  int bits_per_digit = 0;
  switch (base) {
    case 'b': bits_per_digit = 1; break;
    case 'o': bits_per_digit = 3; break;
    case 'h': bits_per_digit = 4; break;
    case 'd': bits_per_digit = 0; break;
    default: return std::nullopt;
  }

  if (bits_per_digit == 0) {
    std::uint64_t v = 0;
    bool any = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '_') continue;
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
      any = true;
    }
    if (!any) return std::nullopt;
    n.value = width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
    return n;
  }

  std::uint64_t value = 0, xz = 0;
  bool any = false;
  for (; i < text.size(); ++i) {
    const char raw = text[i];
    if (raw == '_') continue;
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    std::uint64_t digit = 0, digit_xz = 0;
    const std::uint64_t digit_mask = (std::uint64_t{1} << bits_per_digit) - 1;
    if (c == 'x' || c == 'z' || c == '?') {
      digit_xz = digit_mask;
    } else if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    if (digit > digit_mask) return std::nullopt;
    value = (value << bits_per_digit) | digit;
    xz = (xz << bits_per_digit) | digit_xz;
    any = true;
  }
  if (!any) return std::nullopt;
  const std::uint64_t mask = width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  n.value = value & mask & ~xz;
  n.xz_mask = xz & mask;
  return n;
}

}  // namespace haven::verilog
