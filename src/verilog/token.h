// Token definitions for the Verilog-2001 synthesizable subset understood by
// the HaVen frontend. This frontend plays the role slang and the "industry
// standard compiler" play in the paper: topic/attribute extraction for the
// K-dataset pipeline (Fig 2, step 6) and syntax verification (step 8).
#pragma once

#include <cstdint>
#include <string>

namespace haven::verilog {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kNumber,      // any literal: sized (4'b1010), based, or plain decimal
  kKeyword,
  kPunct,       // single/multi character operator or punctuation
  kString,      // "..." (rare in synthesizable code; kept for robustness)
  kError,       // lexically invalid input, text holds the message
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // exact source spelling (or error message for kError)
  int line = 1;       // 1-based
  int column = 1;     // 1-based

  bool is(TokenKind k) const { return kind == k; }
  bool is_keyword(const char* kw) const { return kind == TokenKind::kKeyword && text == kw; }
  bool is_punct(const char* p) const { return kind == TokenKind::kPunct && text == p; }
};

// True if `word` is a reserved word of the supported subset.
bool is_verilog_keyword(const std::string& word);

}  // namespace haven::verilog
