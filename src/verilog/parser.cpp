#include "verilog/parser.h"

#include <map>
#include <stdexcept>

#include "util/strings.h"
#include "verilog/lexer.h"

namespace haven::verilog {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  if (rule.empty()) return util::format("%d:%d: %s", line, column, message.c_str());
  return util::format("%d:%d: %s [%s]", line, column, message.c_str(), rule.c_str());
}

namespace {

// Thrown internally to unwind to module-level recovery; never escapes
// parse_source.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(Lexer::tokenize(source)) {}

  ParseOutput run() {
    ParseOutput out;
    while (!at_end()) {
      if (peek().is_keyword("module")) {
        const std::size_t mark = pos_;
        try {
          out.file.modules.push_back(parse_module());
        } catch (const ParseError& e) {
          diag(e.what());
          pos_ = mark + 1;
          skip_to_next_module();
        }
      } else {
        diag("expected 'module', found '" + describe(peek()) + "'");
        advance();
        skip_to_next_module();
      }
    }
    if (out.file.modules.empty() && diags_.empty()) diag("no modules in source");
    out.diagnostics = std::move(diags_);
    return out;
  }

 private:
  // --- token plumbing ---
  const Token& peek(std::size_t ahead = 0) const {
    static const Token kEofToken{};
    return pos_ + ahead < tokens_.size() ? tokens_[pos_ + ahead] : kEofToken;
  }
  bool at_end() const { return pos_ >= tokens_.size(); }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ < tokens_.size()) ++pos_;
    return t;
  }
  static std::string describe(const Token& t) {
    switch (t.kind) {
      case TokenKind::kEof: return "<eof>";
      case TokenKind::kError: return "<lex error: " + t.text + ">";
      default: return t.text;
    }
  }
  void diag(const std::string& msg) {
    diags_.push_back({msg, peek().line, peek().column, Severity::kError, "parse"});
  }
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(util::format("%d:%d: %s", peek().line, peek().column, msg.c_str()));
  }
  void expect_punct(const char* p) {
    if (!peek().is_punct(p)) fail(std::string("expected '") + p + "', found '" + describe(peek()) + "'");
    advance();
  }
  void expect_keyword(const char* kw) {
    if (!peek().is_keyword(kw)) fail(std::string("expected '") + kw + "', found '" + describe(peek()) + "'");
    advance();
  }
  std::string expect_identifier(const char* what) {
    if (!peek().is(TokenKind::kIdentifier)) fail(std::string("expected ") + what + ", found '" + describe(peek()) + "'");
    return advance().text;
  }
  void skip_to_next_module() {
    while (!at_end() && !peek().is_keyword("module")) advance();
  }

  // --- constant expression evaluation (for ranges/parameters) ---
  // Parameters declared so far in the current module are usable in ranges.
  std::int64_t const_eval(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kNumber:
        if (e->number.xz_mask != 0) fail("x/z digits in constant expression");
        return static_cast<std::int64_t>(e->number.value);
      case ExprKind::kIdent: {
        const auto it = param_values_.find(e->ident);
        if (it == param_values_.end()) fail("unknown parameter '" + e->ident + "' in constant expression");
        return it->second;
      }
      case ExprKind::kUnary: {
        const std::int64_t a = const_eval(e->operands[0]);
        if (e->op == "-") return -a;
        if (e->op == "~") return ~a;
        if (e->op == "!") return a == 0 ? 1 : 0;
        fail("unsupported unary op '" + e->op + "' in constant expression");
      }
      case ExprKind::kBinary: {
        const std::int64_t a = const_eval(e->operands[0]);
        const std::int64_t b = const_eval(e->operands[1]);
        const std::string& op = e->op;
        if (op == "+") return a + b;
        if (op == "-") return a - b;
        if (op == "*") return a * b;
        if (op == "/") { if (b == 0) fail("division by zero in constant"); return a / b; }
        if (op == "%") { if (b == 0) fail("modulo by zero in constant"); return a % b; }
        if (op == "<<") return b >= 64 ? 0 : (a << b);
        if (op == ">>") return b >= 64 ? 0 : static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> b);
        if (op == "**") {
          std::int64_t r = 1;
          for (std::int64_t i = 0; i < b; ++i) r *= a;
          return r;
        }
        fail("unsupported binary op '" + op + "' in constant expression");
      }
      default:
        fail("unsupported construct in constant expression");
    }
  }

  // --- module ---
  Module parse_module() {
    Module m;
    m.line = peek().line;
    expect_keyword("module");
    m.name = expect_identifier("module name");
    param_values_.clear();

    // Optional parameter header: #(parameter N = 8, ...)
    if (peek().is_punct("#")) {
      advance();
      expect_punct("(");
      while (!peek().is_punct(")")) {
        if (peek().is_keyword("parameter")) advance();
        ParameterDecl p;
        p.line = peek().line;
        // optional range on the parameter: parameter [3:0] P = ...
        if (peek().is_punct("[")) skip_range();
        p.name = expect_identifier("parameter name");
        expect_punct("=");
        p.value = parse_expression();
        param_values_[p.name] = const_eval(p.value);
        m.items.emplace_back(std::move(p));
        if (peek().is_punct(",")) advance();
        else break;
      }
      expect_punct(")");
    }

    // Port list: ANSI (with directions) or non-ANSI (names only) or empty.
    bool ansi = false;
    std::vector<std::string> nonansi_names;
    if (peek().is_punct("(")) {
      advance();
      if (peek().is_keyword("input") || peek().is_keyword("output") || peek().is_keyword("inout")) {
        ansi = true;
        parse_ansi_ports(m);
      } else if (!peek().is_punct(")")) {
        while (true) {
          nonansi_names.push_back(expect_identifier("port name"));
          if (peek().is_punct(",")) advance();
          else break;
        }
      }
      expect_punct(")");
    }
    expect_punct(";");

    // Body items. For non-ANSI style, input/output declarations in the body
    // fill in the port directions.
    while (!peek().is_keyword("endmodule")) {
      if (at_end()) fail("missing 'endmodule' for module '" + m.name + "'");
      parse_module_item(m, ansi, nonansi_names);
    }
    advance();  // endmodule

    if (!ansi) {
      // Every listed port must have been declared with a direction.
      for (const std::string& pn : nonansi_names) {
        if (!m.find_port(pn)) fail("port '" + pn + "' has no direction declaration");
      }
    }
    return m;
  }

  void parse_ansi_ports(Module& m) {
    Dir dir = Dir::kInput;
    bool is_reg = false;
    std::optional<Range> range;
    while (true) {
      if (peek().is_keyword("input") || peek().is_keyword("output") || peek().is_keyword("inout")) {
        const std::string kw = advance().text;
        dir = kw == "input" ? Dir::kInput : (kw == "output" ? Dir::kOutput : Dir::kInout);
        is_reg = false;
        range.reset();
        if (peek().is_keyword("wire")) advance();
        else if (peek().is_keyword("reg")) { advance(); is_reg = true; }
        if (peek().is_keyword("signed")) advance();
        if (peek().is_punct("[")) range = parse_range();
      }
      Port p;
      p.dir = dir;
      p.is_reg = is_reg;
      p.range = range;
      p.name = expect_identifier("port name");
      m.ports.push_back(std::move(p));
      if (peek().is_punct(",")) advance();
      else return;
    }
  }

  Range parse_range() {
    expect_punct("[");
    Range r;
    r.msb = static_cast<int>(const_eval(parse_expression()));
    expect_punct(":");
    r.lsb = static_cast<int>(const_eval(parse_expression()));
    expect_punct("]");
    return r;
  }

  void skip_range() {
    expect_punct("[");
    int depth = 1;
    while (depth > 0 && !at_end()) {
      if (peek().is_punct("[")) ++depth;
      if (peek().is_punct("]")) --depth;
      advance();
    }
  }

  void parse_module_item(Module& m, bool ansi, const std::vector<std::string>& nonansi_names) {
    const Token& t = peek();
    if (t.is(TokenKind::kError)) fail("lexical error: " + t.text);

    if (t.is_keyword("input") || t.is_keyword("output") || t.is_keyword("inout")) {
      if (ansi) fail("port direction declaration in ANSI-style module body");
      parse_nonansi_port_decl(m, nonansi_names);
      return;
    }
    if (t.is_keyword("wire") || t.is_keyword("reg") || t.is_keyword("integer")) {
      m.items.emplace_back(parse_net_decl());
      return;
    }
    if (t.is_keyword("parameter") || t.is_keyword("localparam")) {
      const bool local = t.is_keyword("localparam");
      advance();
      if (peek().is_punct("[")) skip_range();
      while (true) {
        ParameterDecl p;
        p.line = peek().line;
        p.local = local;
        p.name = expect_identifier("parameter name");
        expect_punct("=");
        p.value = parse_expression();
        param_values_[p.name] = const_eval(p.value);
        m.items.emplace_back(std::move(p));
        if (peek().is_punct(",")) advance();
        else break;
      }
      expect_punct(";");
      return;
    }
    if (t.is_keyword("assign")) {
      advance();
      while (true) {
        ContAssign ca;
        ca.line = peek().line;
        ca.lhs = parse_lvalue();
        expect_punct("=");
        ca.rhs = parse_expression();
        m.items.emplace_back(std::move(ca));
        if (peek().is_punct(",")) advance();
        else break;
      }
      expect_punct(";");
      return;
    }
    if (t.is_keyword("always")) {
      m.items.emplace_back(parse_always());
      return;
    }
    if (t.is_keyword("initial")) {
      InitialBlock ib;
      ib.line = peek().line;
      advance();
      ib.body = parse_statement();
      m.items.emplace_back(std::move(ib));
      return;
    }
    if (t.is(TokenKind::kIdentifier)) {
      m.items.emplace_back(parse_instance());
      return;
    }
    fail("unexpected token '" + describe(t) + "' in module body");
  }

  void parse_nonansi_port_decl(Module& m, const std::vector<std::string>& names) {
    const std::string kw = advance().text;
    const Dir dir = kw == "input" ? Dir::kInput : (kw == "output" ? Dir::kOutput : Dir::kInout);
    bool is_reg = false;
    if (peek().is_keyword("wire")) advance();
    else if (peek().is_keyword("reg")) { advance(); is_reg = true; }
    if (peek().is_keyword("signed")) advance();
    std::optional<Range> range;
    if (peek().is_punct("[")) range = parse_range();
    while (true) {
      const std::string name = expect_identifier("port name");
      bool listed = false;
      for (const auto& n : names) listed = listed || n == name;
      if (!listed) fail("declared port '" + name + "' not in module port list");
      if (m.find_port(name)) fail("duplicate direction declaration for port '" + name + "'");
      Port p;
      p.name = name;
      p.dir = dir;
      p.is_reg = is_reg;
      p.range = range;
      m.ports.push_back(std::move(p));
      if (peek().is_punct(",")) advance();
      else break;
    }
    expect_punct(";");
  }

  NetDecl parse_net_decl() {
    NetDecl d;
    d.line = peek().line;
    const std::string kw = advance().text;
    d.type = kw == "wire" ? NetType::kWire : (kw == "reg" ? NetType::kReg : NetType::kInteger);
    if (peek().is_keyword("signed")) advance();
    if (d.type != NetType::kInteger && peek().is_punct("[")) d.range = parse_range();
    while (true) {
      d.names.push_back(expect_identifier("declaration name"));
      if (peek().is_punct("[")) {
        // Memory declarations (reg [7:0] mem [0:255]) are out of subset.
        fail("memory (array) declarations are not supported");
      }
      if (peek().is_punct("=")) {
        advance();
        d.init = parse_expression();
      }
      if (peek().is_punct(",")) advance();
      else break;
    }
    expect_punct(";");
    return d;
  }

  AlwaysBlock parse_always() {
    AlwaysBlock ab;
    ab.line = peek().line;
    expect_keyword("always");
    expect_punct("@");
    if (peek().is_punct("*")) {
      advance();
      ab.star = true;
    } else {
      expect_punct("(");
      if (peek().is_punct("*")) {
        advance();
        ab.star = true;
      } else {
        while (true) {
          SensItem item;
          if (peek().is_keyword("posedge")) { advance(); item.edge = Edge::kPos; }
          else if (peek().is_keyword("negedge")) { advance(); item.edge = Edge::kNeg; }
          item.signal = expect_identifier("sensitivity signal");
          ab.sens.push_back(std::move(item));
          if (peek().is_keyword("or") || peek().is_punct(",")) advance();
          else break;
        }
      }
      expect_punct(")");
    }
    ab.body = parse_statement();
    return ab;
  }

  Instance parse_instance() {
    Instance inst;
    inst.line = peek().line;
    inst.module_name = expect_identifier("module name");
    if (peek().is_punct("#")) fail("parameterized instantiation is not supported");
    inst.instance_name = expect_identifier("instance name");
    expect_punct("(");
    if (!peek().is_punct(")")) {
      while (true) {
        PortConnection pc;
        if (peek().is_punct(".")) {
          advance();
          pc.port = expect_identifier("port name");
          expect_punct("(");
          if (!peek().is_punct(")")) pc.expr = parse_expression();
          expect_punct(")");
        } else {
          pc.expr = parse_expression();
        }
        inst.connections.push_back(std::move(pc));
        if (peek().is_punct(",")) advance();
        else break;
      }
    }
    expect_punct(")");
    expect_punct(";");
    return inst;
  }

  // --- statements ---
  StmtPtr parse_statement() {
    const Token& t = peek();
    const int line = t.line;
    if (t.is(TokenKind::kError)) fail("lexical error: " + t.text);

    if (t.is_keyword("begin")) {
      advance();
      if (peek().is_punct(":")) {  // named block
        advance();
        expect_identifier("block label");
      }
      std::vector<StmtPtr> stmts;
      while (!peek().is_keyword("end")) {
        if (at_end()) fail("missing 'end'");
        stmts.push_back(parse_statement());
      }
      advance();
      return Stmt::make_block(std::move(stmts), line);
    }
    if (t.is_keyword("if")) {
      advance();
      expect_punct("(");
      ExprPtr cond = parse_expression();
      expect_punct(")");
      StmtPtr then_b = parse_statement();
      StmtPtr else_b;
      if (peek().is_keyword("else")) {
        advance();
        else_b = parse_statement();
      }
      return Stmt::make_if(std::move(cond), std::move(then_b), std::move(else_b), line);
    }
    if (t.is_keyword("case") || t.is_keyword("casez") || t.is_keyword("casex")) {
      const CaseKind ck = t.is_keyword("case") ? CaseKind::kCase
                        : (t.is_keyword("casez") ? CaseKind::kCasez : CaseKind::kCasex);
      advance();
      expect_punct("(");
      ExprPtr subject = parse_expression();
      expect_punct(")");
      std::vector<CaseItem> items;
      while (!peek().is_keyword("endcase")) {
        if (at_end()) fail("missing 'endcase'");
        CaseItem item;
        if (peek().is_keyword("default")) {
          advance();
          if (peek().is_punct(":")) advance();
        } else {
          while (true) {
            item.labels.push_back(parse_expression());
            if (peek().is_punct(",")) advance();
            else break;
          }
          expect_punct(":");
        }
        item.body = parse_statement();
        items.push_back(std::move(item));
      }
      advance();
      return Stmt::make_case(ck, std::move(subject), std::move(items), line);
    }
    if (t.is_keyword("for")) {
      advance();
      expect_punct("(");
      ExprPtr init_lhs = parse_lvalue();
      expect_punct("=");
      ExprPtr init_rhs = parse_expression();
      expect_punct(";");
      ExprPtr cond = parse_expression();
      expect_punct(";");
      ExprPtr step_lhs = parse_lvalue();
      expect_punct("=");
      ExprPtr step_rhs = parse_expression();
      expect_punct(")");
      StmtPtr body = parse_statement();
      return Stmt::make_for(std::move(init_lhs), std::move(init_rhs), std::move(cond),
                            std::move(step_lhs), std::move(step_rhs), std::move(body), line);
    }
    if (t.is_punct("#")) {
      // Delay control: skip "#number" then parse the controlled statement.
      advance();
      if (!peek().is(TokenKind::kNumber)) fail("expected delay value after '#'");
      advance();
      return parse_statement();
    }
    if (t.is_punct(";")) {  // null statement
      advance();
      return Stmt::make_block({}, line);
    }

    // Assignment: lvalue (= | <=) expr ;
    ExprPtr lhs = parse_lvalue();
    bool blocking;
    if (peek().is_punct("=")) {
      blocking = true;
      advance();
    } else if (peek().is_punct("<=")) {
      blocking = false;
      advance();
    } else {
      fail("expected '=' or '<=' in assignment, found '" + describe(peek()) + "'");
    }
    if (peek().is_punct("#")) {  // intra-assignment delay: skip
      advance();
      if (!peek().is(TokenKind::kNumber)) fail("expected delay value after '#'");
      advance();
    }
    ExprPtr rhs = parse_expression();
    expect_punct(";");
    return Stmt::make_assign(blocking, std::move(lhs), std::move(rhs), line);
  }

  // Lvalue: identifier, bit/part select, or concatenation of lvalues.
  ExprPtr parse_lvalue() {
    const int line = peek().line;
    if (peek().is_punct("{")) {
      advance();
      std::vector<ExprPtr> parts;
      while (true) {
        parts.push_back(parse_lvalue());
        if (peek().is_punct(",")) advance();
        else break;
      }
      expect_punct("}");
      return Expr::make_concat(std::move(parts), line);
    }
    const std::string name = expect_identifier("lvalue");
    if (peek().is_punct("[")) {
      advance();
      ExprPtr first = parse_expression();
      if (peek().is_punct(":")) {
        advance();
        const int msb = static_cast<int>(const_eval(first));
        const int lsb = static_cast<int>(const_eval(parse_expression()));
        expect_punct("]");
        return Expr::make_part_select(name, msb, lsb, line);
      }
      expect_punct("]");
      return Expr::make_bit_select(name, std::move(first), line);
    }
    return Expr::make_ident(name, line);
  }

  // --- expressions (precedence climbing) ---
  ExprPtr parse_expression() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (peek().is_punct("?")) {
      const int line = peek().line;
      advance();
      ExprPtr t = parse_expression();
      expect_punct(":");
      ExprPtr f = parse_expression();
      return Expr::make_ternary(std::move(cond), std::move(t), std::move(f), line);
    }
    return cond;
  }

  // Binary precedence levels, lowest first.
  static int binary_level(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|" || op == "~|") return 3;
    if (op == "^" || op == "~^" || op == "^~" || op == "~&") return 4;  // ~& at xor level is fine
    if (op == "&") return 5;
    if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
    if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
    if (op == "<<" || op == ">>" || op == "<<<" || op == ">>>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    if (op == "**") return 11;
    return -1;
  }

  ExprPtr parse_binary(int min_level) {
    ExprPtr lhs = parse_unary();
    while (peek().is(TokenKind::kPunct)) {
      const std::string op = peek().text;
      const int level = binary_level(op);
      if (level < 0 || level < min_level) break;
      const int line = peek().line;
      advance();
      ExprPtr rhs = parse_binary(level + 1);
      lhs = Expr::make_binary(op, std::move(lhs), std::move(rhs), line);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (t.is(TokenKind::kPunct)) {
      const std::string& op = t.text;
      if (op == "~" || op == "!" || op == "-" || op == "+" || op == "&" || op == "|" ||
          op == "^" || op == "~&" || op == "~|" || op == "~^" || op == "^~") {
        const int line = t.line;
        advance();
        ExprPtr inner = parse_unary();
        if (op == "+") return inner;  // unary plus is a no-op
        return Expr::make_unary(op, std::move(inner), line);
      }
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    const int line = t.line;
    if (t.is(TokenKind::kError)) fail("lexical error: " + t.text);

    if (t.is(TokenKind::kNumber)) {
      const auto n = parse_number_literal(t.text);
      if (!n) fail("malformed number literal '" + t.text + "'");
      advance();
      return Expr::make_number(*n, line);
    }
    if (t.is(TokenKind::kIdentifier)) {
      const std::string name = advance().text;
      if (peek().is_punct("[")) {
        advance();
        ExprPtr first = parse_expression();
        if (peek().is_punct(":")) {
          advance();
          const int msb = static_cast<int>(const_eval(first));
          const int lsb = static_cast<int>(const_eval(parse_expression()));
          expect_punct("]");
          return Expr::make_part_select(name, msb, lsb, line);
        }
        if (peek().is_punct("+:") || peek().is_punct("-:")) {
          fail("indexed part selects (+:/-:) are not supported");
        }
        expect_punct("]");
        return Expr::make_bit_select(name, std::move(first), line);
      }
      // Resolve module parameters to their constant values at parse time so
      // that the simulator never sees free identifiers for parameters.
      const auto it = param_values_.find(name);
      if (it != param_values_.end()) {
        return Expr::make_number(static_cast<std::uint64_t>(it->second), 32, false);
      }
      return Expr::make_ident(name, line);
    }
    if (t.is_punct("(")) {
      advance();
      ExprPtr inner = parse_expression();
      expect_punct(")");
      return inner;
    }
    if (t.is_punct("{")) {
      advance();
      // Could be replication {N{expr}} or concatenation {a, b}.
      ExprPtr first = parse_expression();
      if (peek().is_punct("{")) {
        advance();
        const std::int64_t count = const_eval(first);
        if (count <= 0 || count > 64) fail("replication count out of range");
        ExprPtr inner;
        std::vector<ExprPtr> parts;
        while (true) {
          parts.push_back(parse_expression());
          if (peek().is_punct(",")) advance();
          else break;
        }
        expect_punct("}");
        expect_punct("}");
        inner = parts.size() == 1 ? parts[0] : Expr::make_concat(std::move(parts), line);
        return Expr::make_replicate(static_cast<std::uint64_t>(count), std::move(inner), line);
      }
      std::vector<ExprPtr> parts = {first};
      while (peek().is_punct(",")) {
        advance();
        parts.push_back(parse_expression());
      }
      expect_punct("}");
      if (parts.size() == 1) fail("single-element concatenation");
      return Expr::make_concat(std::move(parts), line);
    }
    fail("expected expression, found '" + describe(t) + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<Diagnostic> diags_;
  std::map<std::string, std::int64_t> param_values_;
};

}  // namespace

ParseOutput parse_source(std::string_view source) { return Parser(source).run(); }

bool syntax_ok(std::string_view source) {
  ParseOutput out = parse_source(source);
  return out.ok() && !out.file.modules.empty();
}

}  // namespace haven::verilog
