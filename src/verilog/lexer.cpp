#include "verilog/lexer.h"

#include <array>
#include <cctype>
#include <unordered_set>

namespace haven::verilog {

bool is_verilog_keyword(const std::string& word) {
  static const std::unordered_set<std::string> kKeywords = {
      "module", "endmodule", "input", "output", "inout", "wire", "reg",
      "assign", "always", "initial", "begin", "end", "if", "else", "case",
      "casez", "casex", "endcase", "default", "posedge", "negedge", "or",
      "and", "not", "nand", "nor", "xor", "xnor", "buf", "parameter",
      "localparam", "integer", "genvar", "generate", "endgenerate", "for",
      "while", "function", "endfunction", "task", "endtask", "signed",
      "wait", "forever", "repeat",
  };
  return kKeywords.contains(word);
}

Lexer::Lexer(std::string_view source) : src_(source) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::skip_ws_and_comments(std::vector<std::string>* /*errors*/) {
  while (!at_end()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
      if (!at_end()) {
        advance();
        advance();
      }
      // An unterminated block comment simply consumes to EOF; the parser will
      // then see kEof and report the missing endmodule, which is the useful
      // diagnostic for generated code.
    } else if (c == '`') {
      // Compiler directives (`timescale, `define usage) — skip to end of line.
      while (!at_end() && peek() != '\n') advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(TokenKind kind, std::string text, int line, int col) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = line;
  t.column = col;
  return t;
}

Token Lexer::next() {
  skip_ws_and_comments(nullptr);
  const int line = line_;
  const int col = column_;
  if (at_end()) return make(TokenKind::kEof, "", line, col);

  const char c = peek();

  // Identifier or keyword.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
                         peek() == '$')) {
      word += advance();
    }
    const TokenKind kind =
        is_verilog_keyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier;
    return make(kind, std::move(word), line, col);
  }

  // Escaped identifier: \name... up to whitespace.
  if (c == '\\') {
    std::string word;
    advance();
    while (!at_end() && !std::isspace(static_cast<unsigned char>(peek()))) word += advance();
    if (word.empty()) return make(TokenKind::kError, "empty escaped identifier", line, col);
    return make(TokenKind::kIdentifier, std::move(word), line, col);
  }

  // Number: [size]'[sbodh]digits or plain decimal. An apostrophe can also
  // start an unsized based literal ('b0).
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
    std::string num;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '_')) {
      num += advance();
    }
    if (!at_end() && peek() == '\'') {
      num += advance();
      if (!at_end() && (peek() == 's' || peek() == 'S')) num += advance();
      if (at_end()) return make(TokenKind::kError, "truncated based literal", line, col);
      const char base = static_cast<char>(std::tolower(static_cast<unsigned char>(peek())));
      if (base != 'b' && base != 'o' && base != 'd' && base != 'h') {
        return make(TokenKind::kError, std::string("bad number base '") + peek() + "'", line, col);
      }
      num += advance();
      bool any_digit = false;
      while (!at_end()) {
        const char d = static_cast<char>(std::tolower(static_cast<unsigned char>(peek())));
        const bool ok = d == '_' || d == 'x' || d == 'z' || d == '?' ||
                        (base == 'b' && (d == '0' || d == '1')) ||
                        (base == 'o' && d >= '0' && d <= '7') ||
                        (base == 'd' && std::isdigit(static_cast<unsigned char>(d))) ||
                        (base == 'h' && std::isxdigit(static_cast<unsigned char>(d)));
        if (!ok) break;
        any_digit = any_digit || d != '_';
        num += advance();
      }
      if (!any_digit) return make(TokenKind::kError, "based literal with no digits", line, col);
    } else if (num.empty() || num == "'") {
      return make(TokenKind::kError, "stray apostrophe", line, col);
    }
    return make(TokenKind::kNumber, std::move(num), line, col);
  }

  // String literal.
  if (c == '"') {
    std::string text;
    advance();
    while (!at_end() && peek() != '"') {
      if (peek() == '\\' && pos_ + 1 < src_.size()) text += advance();
      text += advance();
    }
    if (at_end()) return make(TokenKind::kError, "unterminated string", line, col);
    advance();  // closing quote
    return make(TokenKind::kString, std::move(text), line, col);
  }

  // Operators / punctuation: longest match first.
  static constexpr std::array<const char*, 26> kMulti = {
      "<<<", ">>>", "===", "!==",            // 3-char
      "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
      "~&", "~|", "~^", "^~", "**", "+:", "-:",
      // remaining single chars are handled below; pad list with 1-char strings
      "&", "|", "^", "~", "!", "<", ">",
  };
  for (const char* op : kMulti) {
    const std::size_t len = std::char_traits<char>::length(op);
    if (src_.compare(pos_, len, op) == 0) {
      for (std::size_t i = 0; i < len; ++i) advance();
      return make(TokenKind::kPunct, op, line, col);
    }
  }

  static const std::string kSingle = "+-*/%=?:;,.()[]{}#@";
  if (kSingle.find(c) != std::string::npos) {
    advance();
    return make(TokenKind::kPunct, std::string(1, c), line, col);
  }

  advance();
  return make(TokenKind::kError, std::string("unexpected character '") + c + "'", line, col);
}

std::vector<Token> Lexer::tokenize(std::string_view source) {
  Lexer lex(source);
  std::vector<Token> out;
  while (true) {
    Token t = lex.next();
    if (t.kind == TokenKind::kEof) break;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace haven::verilog
