#include "verilog/analyzer.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace haven::verilog {

std::vector<Diagnostic> ModuleAnalysis::errors() const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::kError) out.push_back(d);
  }
  return out;
}

std::vector<Diagnostic> ModuleAnalysis::warnings() const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics) {
    if (d.severity != Severity::kError) out.push_back(d);
  }
  return out;
}

std::string topic_name(Topic t) {
  switch (t) {
    case Topic::kFsm: return "fsm";
    case Topic::kCounter: return "counter";
    case Topic::kShiftRegister: return "shift_register";
    case Topic::kAlu: return "alu";
    case Topic::kClockDivider: return "clock_divider";
    case Topic::kAdder: return "adder";
    case Topic::kMultiplexer: return "multiplexer";
    case Topic::kDecoder: return "decoder";
    case Topic::kComparator: return "comparator";
    case Topic::kParity: return "parity";
    case Topic::kRegister: return "register";
    case Topic::kCombinational: return "combinational";
    case Topic::kSequential: return "sequential";
  }
  return "?";
}

namespace {

struct SymbolInfo {
  NetType type = NetType::kWire;
  int width = 1;
  bool is_port = false;
  Dir dir = Dir::kInput;
  bool assigned_continuous = false;
  bool assigned_procedural = false;
  bool read = false;
  int decl_line = 0;
};

bool name_suggests(const std::string& name, std::initializer_list<const char*> hints) {
  const std::string lower = util::to_lower(name);
  for (const char* h : hints) {
    if (lower.find(h) != std::string::npos) return true;
  }
  return false;
}

class ModuleChecker {
 public:
  ModuleChecker(const Module& m, const SourceFile* file) : m_(m), file_(file) {}

  ModuleAnalysis run() {
    a_.module_name = m_.name;
    build_symbol_table();
    check_items();
    derive_attributes();
    classify_topics();
    return std::move(a_);
  }

 private:
  void error(int line, const std::string& msg, const char* rule) {
    a_.diagnostics.push_back({msg, line, 0, Severity::kError, rule});
  }
  void warn(int line, const std::string& msg, const char* rule) {
    a_.diagnostics.push_back({msg, line, 0, Severity::kWarning, rule});
  }

  void build_symbol_table() {
    for (const auto& p : m_.ports) {
      if (symbols_.contains(p.name)) {
        error(m_.line, "duplicate port '" + p.name + "'", "sema.duplicate");
        continue;
      }
      SymbolInfo info;
      info.is_port = true;
      info.dir = p.dir;
      info.type = p.is_reg ? NetType::kReg : NetType::kWire;
      info.width = p.width();
      info.decl_line = m_.line;
      symbols_[p.name] = info;
    }
    for (const auto& item : m_.items) {
      if (const auto* d = std::get_if<NetDecl>(&item)) {
        for (const auto& name : d->names) {
          auto it = symbols_.find(name);
          if (it != symbols_.end()) {
            // Redeclaring a port as wire/reg refines its type (legal for
            // non-ANSI style); redeclaring twice is an error.
            if (it->second.is_port) {
              it->second.type = d->type;
              if (d->range) it->second.width = d->range->width();
              continue;
            }
            error(d->line, "duplicate declaration of '" + name + "'", "sema.duplicate");
            continue;
          }
          SymbolInfo info;
          info.type = d->type;
          info.width = d->type == NetType::kInteger ? 32 : (d->range ? d->range->width() : 1);
          info.decl_line = d->line;
          symbols_[name] = info;
        }
      } else if (const auto* p = std::get_if<ParameterDecl>(&item)) {
        // Parameters were substituted during parse; keep name reserved.
        SymbolInfo info;
        info.type = NetType::kInteger;
        info.decl_line = p->line;
        symbols_["\x01param:" + p->name] = info;
      }
    }
  }

  // `lvalue_base` suppresses the read-marking of the top-level identifier
  // (an assignment target is written, not read; its index operands ARE read).
  void check_expr(const ExprPtr& e, int line, bool lvalue_base = false) {
    if (!e) return;
    switch (e->kind) {
      case ExprKind::kIdent:
      case ExprKind::kBitSelect:
      case ExprKind::kPartSelect: {
        if (!symbols_.contains(e->ident)) {
          error(line ? line : e->line, "use of undeclared identifier '" + e->ident + "'",
                "sema.undeclared");
        } else if (!lvalue_base && (symbols_[e->ident].read = true);
                   e->kind == ExprKind::kPartSelect) {
          const SymbolInfo& s = symbols_[e->ident];
          const int hi = std::max(e->msb, e->lsb);
          if (hi >= s.width && s.width > 1) {
            warn(line ? line : e->line,
                 util::format("part select [%d:%d] exceeds width %d of '%s'", e->msb, e->lsb,
                              s.width, e->ident.c_str()),
                 "sema.part-select-range");
          }
        }
        break;
      }
      default:
        break;
    }
    for (const auto& child : e->operands) check_expr(child, line ? line : e->line);
  }

  // Record an assignment to the base identifier(s) of an lvalue.
  void note_assignment(const ExprPtr& lhs, bool continuous, int line) {
    if (!lhs) return;
    if (lhs->kind == ExprKind::kConcat) {
      for (const auto& part : lhs->operands) note_assignment(part, continuous, line);
      return;
    }
    if (lhs->kind != ExprKind::kIdent && lhs->kind != ExprKind::kBitSelect &&
        lhs->kind != ExprKind::kPartSelect) {
      error(line, "invalid assignment target", "sema.lvalue");
      return;
    }
    auto it = symbols_.find(lhs->ident);
    if (it == symbols_.end()) {
      error(line, "assignment to undeclared identifier '" + lhs->ident + "'", "sema.undeclared");
      return;
    }
    SymbolInfo& s = it->second;
    if (s.is_port && s.dir == Dir::kInput) {
      error(line, "assignment to input port '" + lhs->ident + "'", "sema.assign-input");
      return;
    }
    if (continuous) {
      if (s.type == NetType::kReg) {
        error(line, "continuous assignment to reg '" + lhs->ident + "'", "sema.wire-reg");
      }
      s.assigned_continuous = true;
    } else {
      if (current_always_ >= 0) always_writers_[lhs->ident].insert(current_always_);
      if (s.type == NetType::kWire) {
        error(line, "procedural assignment to wire '" + lhs->ident +
                        "' (declare it as reg)",
              "sema.wire-reg");
      }
      s.assigned_procedural = true;
    }
  }

  void check_stmt(const StmtPtr& s, bool in_clocked, int depth = 0) {
    if (!s) return;
    if (depth > 256) {
      error(s->line, "statement nesting too deep", "sema.nesting");
      return;
    }
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& child : s->stmts) check_stmt(child, in_clocked, depth + 1);
        break;
      case StmtKind::kBlockingAssign:
      case StmtKind::kNonblockingAssign: {
        note_assignment(s->lhs, /*continuous=*/false, s->line);
        check_expr(s->lhs, s->line, /*lvalue_base=*/true);
        check_expr(s->rhs, s->line);
        if (in_clocked && s->kind == StmtKind::kBlockingAssign) {
          // Blocking assignment to a state-holding element in clocked logic
          // is the classic convention violation (taxonomy: digital design
          // convention misapplication).
          if (s->lhs->kind == ExprKind::kIdent || s->lhs->kind == ExprKind::kBitSelect) {
            warn(s->line, "blocking assignment in clocked always block ('" + s->lhs->ident + "')",
                 "lint.blocking-in-seq");
          }
        }
        if (!in_clocked && s->kind == StmtKind::kNonblockingAssign) {
          warn(s->line, "nonblocking assignment in combinational always block",
               "lint.nonblocking-in-comb");
        }
        break;
      }
      case StmtKind::kIf:
        check_expr(s->cond, s->line);
        check_stmt(s->then_branch, in_clocked, depth + 1);
        check_stmt(s->else_branch, in_clocked, depth + 1);
        if (!in_clocked && !s->else_branch) a_.possible_latch = true;
        break;
      case StmtKind::kCase: {
        check_expr(s->cond, s->line);
        bool has_default = false;
        for (const auto& item : s->case_items) {
          if (item.labels.empty()) has_default = true;
          for (const auto& l : item.labels) check_expr(l, s->line);
          check_stmt(item.body, in_clocked, depth + 1);
        }
        if (!has_default) {
          a_.has_case_without_default = true;
          if (!in_clocked) a_.possible_latch = true;
          warn(s->line, "case statement without default", "lint.case-default");
        }
        break;
      }
      case StmtKind::kFor:
        note_assignment(s->lhs, false, s->line);
        check_expr(s->rhs, s->line);
        check_expr(s->cond, s->line);
        note_assignment(s->step_lhs, false, s->line);
        check_expr(s->step_rhs, s->line);
        check_stmt(s->body, in_clocked, depth + 1);
        break;
    }
  }

  void check_items() {
    for (const auto& item : m_.items) {
      if (const auto* a = std::get_if<ContAssign>(&item)) {
        ++a_.num_cont_assign;
        note_assignment(a->lhs, /*continuous=*/true, a->line);
        check_expr(a->lhs, a->line, /*lvalue_base=*/true);
        check_expr(a->rhs, a->line);
      } else if (const auto* d = std::get_if<NetDecl>(&item)) {
        if (d->init) {
          check_expr(d->init, d->line);
          if (d->type == NetType::kWire && !d->names.empty()) {
            auto it = symbols_.find(d->names.back());
            if (it != symbols_.end()) it->second.assigned_continuous = true;
          }
        }
      } else if (const auto* ab = std::get_if<AlwaysBlock>(&item)) {
        current_always_ = a_.num_always;
        ++a_.num_always;
        const bool clocked = !ab->star && std::any_of(ab->sens.begin(), ab->sens.end(),
                                                      [](const SensItem& s) {
                                                        return s.edge != Edge::kLevel;
                                                      });
        for (const auto& s : ab->sens) {
          if (!symbols_.contains(s.signal)) {
            error(ab->line, "sensitivity list references undeclared signal '" + s.signal + "'",
                  "sema.undeclared");
          }
        }
        check_stmt(ab->body, clocked);
        current_always_ = -1;
      } else if (const auto* ib = std::get_if<InitialBlock>(&item)) {
        check_stmt(ib->body, /*in_clocked=*/false);
      } else if (const auto* inst = std::get_if<Instance>(&item)) {
        check_instance(*inst);
      }
    }

    // Multiple drivers: both continuous and procedural assignment to the same
    // signal is an elaboration error in synthesis flows.
    for (const auto& [name, info] : symbols_) {
      if (name.starts_with("\x01param:")) continue;
      if (info.assigned_continuous && info.assigned_procedural) {
        error(info.decl_line, "signal '" + name + "' driven both continuously and procedurally",
              "sema.multi-driven");
      }
    }
    // A signal written from more than one always block has multiple drivers
    // (an elaboration error in synthesis flows).
    for (const auto& [name, writers] : always_writers_) {
      if (writers.size() > 1) {
        const auto it = symbols_.find(name);
        error(it != symbols_.end() ? it->second.decl_line : m_.line,
              "signal '" + name + "' is assigned in " + std::to_string(writers.size()) +
                  " always blocks (multiple drivers)",
              "sema.multi-driven");
      }
    }
    // Unused internal signals: declared, possibly driven, never read and not
    // visible at the interface.
    for (const auto& [name, info] : symbols_) {
      if (name.starts_with("\x01param:") || info.is_port || info.read) continue;
      warn(info.decl_line, "signal '" + name + "' is never read", "lint.unused");
    }
    // Undriven outputs.
    for (const auto& p : m_.ports) {
      if (p.dir != Dir::kOutput) continue;
      const auto it = symbols_.find(p.name);
      if (it != symbols_.end() && !it->second.assigned_continuous &&
          !it->second.assigned_procedural && !driven_by_instance_.contains(p.name)) {
        warn(m_.line, "output port '" + p.name + "' is never driven", "lint.undriven-output");
      }
    }
  }

  void check_instance(const Instance& inst) {
    for (const auto& c : inst.connections) {
      if (c.expr) {
        check_expr(c.expr, inst.line);
        // Track identifiers wired to instance outputs conservatively: any
        // connected net counts as possibly driven.
        std::vector<std::string> ids;
        c.expr->collect_idents(ids);
        for (const auto& id : ids) driven_by_instance_.insert(id);
      }
    }
    if (file_ != nullptr) {
      const Module* def = file_->find_module(inst.module_name);
      if (def != nullptr) {
        const bool named = !inst.connections.empty() && !inst.connections.front().port.empty();
        if (named) {
          for (const auto& c : inst.connections) {
            if (!c.port.empty() && def->find_port(c.port) == nullptr) {
              error(inst.line, "instance '" + inst.instance_name + "' connects unknown port '" +
                                   c.port + "' of module '" + inst.module_name + "'",
                    "sema.instance");
            }
          }
        } else if (inst.connections.size() != def->ports.size()) {
          error(inst.line,
                util::format("instance '%s' has %zu connections but module '%s' has %zu ports",
                             inst.instance_name.c_str(), inst.connections.size(),
                             inst.module_name.c_str(), def->ports.size()),
                "sema.instance");
        }
      }
      // Unknown module name is not an error: single-file analysis routinely
      // sees snippets referencing library cells.
    }
  }

  void derive_attributes() {
    Attributes& at = a_.attributes;
    for (const auto& item : m_.items) {
      const auto* ab = std::get_if<AlwaysBlock>(&item);
      if (ab == nullptr || ab->star) continue;
      for (const auto& s : ab->sens) {
        if (s.edge == Edge::kLevel) continue;
        if (name_suggests(s.signal, {"clk", "clock"})) {
          at.has_clock = true;
          if (s.edge == Edge::kNeg) at.negedge_clock = true;
        } else if (name_suggests(s.signal, {"rst", "reset", "clear", "clr"})) {
          at.async_reset = true;
          if (s.edge == Edge::kNeg || name_suggests(s.signal, {"_n", "n_"})) {
            at.active_low_reset = true;
          }
        }
      }
      // Synchronous reset: clocked block whose body tests a reset-named
      // signal that is NOT in the sensitivity list.
      if (at.has_clock && !at.async_reset && ab->body) {
        std::vector<std::string> ids;
        collect_condition_idents(ab->body, ids);
        for (const auto& id : ids) {
          if (name_suggests(id, {"rst", "reset", "clear", "clr"})) {
            at.sync_reset = true;
            if (name_suggests(id, {"_n", "n_rst", "resetn"})) at.active_low_reset = true;
          }
          if (name_suggests(id, {"en", "enable", "ena", "ce"}) &&
              !name_suggests(id, {"end"})) {
            at.has_enable = true;
            if (name_suggests(id, {"_n", "en_n"})) at.active_low_enable = true;
          }
        }
      }
    }
    // Enable detection also applies to async-reset designs.
    for (const auto& item : m_.items) {
      const auto* ab = std::get_if<AlwaysBlock>(&item);
      if (ab == nullptr || !ab->body) continue;
      std::vector<std::string> ids;
      collect_condition_idents(ab->body, ids);
      for (const auto& id : ids) {
        if ((id == "en" || id == "enable" || id == "ena" || id == "ce" ||
             util::starts_with(id, "en_") || util::ends_with(id, "_en"))) {
          a_.attributes.has_enable = true;
          if (util::ends_with(id, "_n")) a_.attributes.active_low_enable = true;
        }
      }
    }
  }

  static void collect_condition_idents(const StmtPtr& s, std::vector<std::string>& out) {
    if (!s) return;
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& child : s->stmts) collect_condition_idents(child, out);
        break;
      case StmtKind::kIf:
        if (s->cond) s->cond->collect_idents(out);
        collect_condition_idents(s->then_branch, out);
        collect_condition_idents(s->else_branch, out);
        break;
      case StmtKind::kCase:
        if (s->cond) s->cond->collect_idents(out);
        for (const auto& item : s->case_items) collect_condition_idents(item.body, out);
        break;
      case StmtKind::kFor:
        collect_condition_idents(s->body, out);
        break;
      default:
        break;
    }
  }

  // --- topic classification -------------------------------------------------

  // Does any statement assign `lhs <= f(lhs, +/- 1)`? (counter idiom)
  static bool is_increment_of_self(const Stmt& s) {
    if (s.kind != StmtKind::kBlockingAssign && s.kind != StmtKind::kNonblockingAssign)
      return false;
    if (s.lhs->kind != ExprKind::kIdent) return false;
    const ExprPtr& rhs = s.rhs;
    if (rhs->kind != ExprKind::kBinary || (rhs->op != "+" && rhs->op != "-")) return false;
    const auto& a = rhs->operands[0];
    return a->kind == ExprKind::kIdent && a->ident == s.lhs->ident;
  }

  // Does any statement implement a shift of self: x <= {x[..], in} or x << 1?
  static bool is_shift_of_self(const Stmt& s) {
    if (s.kind != StmtKind::kBlockingAssign && s.kind != StmtKind::kNonblockingAssign)
      return false;
    if (s.lhs->kind != ExprKind::kIdent) return false;
    const std::string& name = s.lhs->ident;
    const ExprPtr& rhs = s.rhs;
    if (rhs->kind == ExprKind::kBinary && (rhs->op == "<<" || rhs->op == ">>") &&
        rhs->operands[0]->kind == ExprKind::kIdent && rhs->operands[0]->ident == name) {
      return true;
    }
    if (rhs->kind == ExprKind::kConcat) {
      for (const auto& part : rhs->operands) {
        if ((part->kind == ExprKind::kPartSelect || part->kind == ExprKind::kBitSelect) &&
            part->ident == name) {
          return true;
        }
      }
    }
    return false;
  }

  static bool is_toggle_of_self(const Stmt& s) {
    if (s.kind != StmtKind::kBlockingAssign && s.kind != StmtKind::kNonblockingAssign)
      return false;
    if (s.lhs->kind != ExprKind::kIdent) return false;
    const ExprPtr& rhs = s.rhs;
    return rhs->kind == ExprKind::kUnary && rhs->op == "~" &&
           rhs->operands[0]->kind == ExprKind::kIdent &&
           rhs->operands[0]->ident == s.lhs->ident;
  }

  template <typename Pred>
  static bool any_stmt(const StmtPtr& s, Pred pred) {
    if (!s) return false;
    if (pred(*s)) return true;
    switch (s->kind) {
      case StmtKind::kBlock:
        return std::any_of(s->stmts.begin(), s->stmts.end(),
                           [&](const StmtPtr& c) { return any_stmt(c, pred); });
      case StmtKind::kIf:
        return any_stmt(s->then_branch, pred) || any_stmt(s->else_branch, pred);
      case StmtKind::kCase:
        return std::any_of(s->case_items.begin(), s->case_items.end(),
                           [&](const CaseItem& i) { return any_stmt(i.body, pred); });
      case StmtKind::kFor:
        return any_stmt(s->body, pred);
      default:
        return false;
    }
  }

  template <typename Pred>
  bool any_expr_in_module(Pred pred) const {
    bool found = false;
    auto scan_expr = [&](const ExprPtr& e, auto&& self) -> void {
      if (!e || found) return;
      if (pred(*e)) {
        found = true;
        return;
      }
      for (const auto& c : e->operands) self(c, self);
    };
    auto scan_stmt = [&](const StmtPtr& s, auto&& self) -> void {
      if (!s || found) return;
      scan_expr(s->lhs, scan_expr);
      scan_expr(s->rhs, scan_expr);
      scan_expr(s->cond, scan_expr);
      scan_expr(s->step_lhs, scan_expr);
      scan_expr(s->step_rhs, scan_expr);
      for (const auto& c : s->stmts) self(c, self);
      self(s->then_branch, self);
      self(s->else_branch, self);
      self(s->body, self);
      for (const auto& item : s->case_items) {
        for (const auto& l : item.labels) scan_expr(l, scan_expr);
        self(item.body, self);
      }
    };
    for (const auto& item : m_.items) {
      if (const auto* a = std::get_if<ContAssign>(&item)) {
        scan_expr(a->lhs, scan_expr);
        scan_expr(a->rhs, scan_expr);
      } else if (const auto* ab = std::get_if<AlwaysBlock>(&item)) {
        scan_stmt(ab->body, scan_stmt);
      } else if (const auto* ib = std::get_if<InitialBlock>(&item)) {
        scan_stmt(ib->body, scan_stmt);
      }
    }
    return found;
  }

  void classify_topics() {
    auto& topics = a_.topics;
    const std::string lower_name = util::to_lower(m_.name);

    bool has_state_reg = false;
    for (const auto& [name, info] : symbols_) {
      if (info.type == NetType::kReg && name_suggests(name, {"state"})) has_state_reg = true;
    }

    bool clocked = false;
    bool has_case = false;
    bool counter_idiom = false, shift_idiom = false, toggle_idiom = false;
    for (const auto& item : m_.items) {
      const auto* ab = std::get_if<AlwaysBlock>(&item);
      if (ab == nullptr) continue;
      const bool is_clocked = !ab->star && std::any_of(ab->sens.begin(), ab->sens.end(),
                                                       [](const SensItem& s) {
                                                         return s.edge != Edge::kLevel;
                                                       });
      clocked = clocked || is_clocked;
      has_case = has_case || any_stmt(ab->body, [](const Stmt& s) { return s.kind == StmtKind::kCase; });
      counter_idiom = counter_idiom || any_stmt(ab->body, is_increment_of_self);
      shift_idiom = shift_idiom || any_stmt(ab->body, is_shift_of_self);
      toggle_idiom = toggle_idiom || any_stmt(ab->body, is_toggle_of_self);
    }

    if (has_state_reg && has_case) topics.insert(Topic::kFsm);
    else if (name_suggests(lower_name, {"fsm", "state_machine"}) && has_case)
      topics.insert(Topic::kFsm);

    if (counter_idiom && toggle_idiom) topics.insert(Topic::kClockDivider);
    else if (counter_idiom && name_suggests(lower_name, {"div"})) topics.insert(Topic::kClockDivider);
    else if (counter_idiom) topics.insert(Topic::kCounter);
    if (shift_idiom) topics.insert(Topic::kShiftRegister);

    // ALU: case statement whose branches use >=2 distinct arithmetic/logic
    // binary ops on operands.
    if (has_case) {
      std::set<std::string> ops;
      auto count_ops = [&](const Expr& e) {
        if (e.kind == ExprKind::kBinary &&
            (e.op == "+" || e.op == "-" || e.op == "*" || e.op == "&" || e.op == "|" ||
             e.op == "^" || e.op == "<<" || e.op == ">>")) {
          ops.insert(e.op);
        }
        return false;  // keep scanning
      };
      any_expr_in_module(count_ops);
      if (ops.size() >= 3 || name_suggests(lower_name, {"alu"})) topics.insert(Topic::kAlu);
    }

    const bool has_add = any_expr_in_module([](const Expr& e) {
      return e.kind == ExprKind::kBinary && (e.op == "+" || e.op == "-");
    });
    if (!clocked && has_add) topics.insert(Topic::kAdder);

    const bool has_ternary_or_sel_case =
        any_expr_in_module([](const Expr& e) { return e.kind == ExprKind::kTernary; });
    if (!clocked && (has_ternary_or_sel_case || name_suggests(lower_name, {"mux"})) &&
        !topics.contains(Topic::kAdder)) {
      topics.insert(Topic::kMultiplexer);
    }

    if (any_expr_in_module([](const Expr& e) {
          return e.kind == ExprKind::kBinary && e.op == "<<" &&
                 e.operands[0]->kind == ExprKind::kNumber && e.operands[0]->number.value == 1;
        }) ||
        name_suggests(lower_name, {"decod", "demux"})) {
      topics.insert(Topic::kDecoder);
    }

    if (any_expr_in_module([](const Expr& e) {
          return e.kind == ExprKind::kBinary &&
                 (e.op == "<" || e.op == ">" || e.op == "<=" || e.op == ">=");
        }) &&
        !clocked) {
      topics.insert(Topic::kComparator);
    }

    if (any_expr_in_module([](const Expr& e) {
          return e.kind == ExprKind::kUnary && (e.op == "^" || e.op == "~^");
        })) {
      topics.insert(Topic::kParity);
    }

    if (topics.empty()) {
      if (clocked) {
        topics.insert(a_.num_always > 0 && a_.num_cont_assign == 0 ? Topic::kRegister
                                                                   : Topic::kSequential);
      } else {
        topics.insert(Topic::kCombinational);
      }
    }
  }

  const Module& m_;
  const SourceFile* file_;
  ModuleAnalysis a_;
  std::map<std::string, SymbolInfo> symbols_;
  std::map<std::string, std::set<int>> always_writers_;
  int current_always_ = -1;
  std::set<std::string> driven_by_instance_;
};

}  // namespace

ModuleAnalysis analyze_module(const Module& m, const SourceFile* file) {
  return ModuleChecker(m, file).run();
}

SourceAnalysis analyze_source(std::string_view source) {
  SourceAnalysis out;
  ParseOutput parsed = parse_source(source);
  out.parse_errors = std::move(parsed.diagnostics);
  for (const auto& m : parsed.file.modules) {
    out.modules.push_back(analyze_module(m, &parsed.file));
  }
  return out;
}

bool compile_ok(std::string_view source) { return analyze_source(source).ok(); }

}  // namespace haven::verilog
