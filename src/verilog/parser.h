// Recursive-descent parser for the Verilog subset. Plays the role of the
// paper's syntax-verification compiler (Fig 2, step 8): generated code that
// fails to parse is counted as a syntax failure by the evaluation harness,
// and vanilla instruction-code pairs that fail to parse are filtered out of
// the K-dataset.
//
// The parser never throws on user input; all problems are reported as
// Diagnostics with line/column. Recovery: on an unrecoverable error inside a
// module the parser skips ahead to the next `module` keyword so later
// modules in a file are still seen.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "verilog/ast.h"
#include "verilog/token.h"

namespace haven::verilog {

// Severity shared by parser diagnostics, analyzer findings, and the lint
// subsystem (src/lint): kError means "would not compile / elaborate" and is
// what gates ModuleAnalysis::ok(); kWarning is a convention or correctness
// risk; kNote is informational.
enum class Severity : std::uint8_t { kNote, kWarning, kError };
const char* severity_name(Severity s);

// One diagnostic, shared across the whole frontend: parser errors, semantic
// analyzer errors, analyzer lint warnings, and lint-rule findings all carry
// the same (severity, line, rule id) shape. `rule` is a stable
// machine-readable id ("parse", "sema.undeclared", "lint.case-incomplete");
// empty only for legacy brace-initialized diagnostics.
struct Diagnostic {
  std::string message;
  int line = 0;
  int column = 0;
  Severity severity = Severity::kError;
  std::string rule;

  std::string to_string() const;
};

struct ParseOutput {
  SourceFile file;
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return diagnostics.empty(); }
};

// Parse a full source file (any number of modules).
ParseOutput parse_source(std::string_view source);

// Convenience used everywhere in the pipeline: does this text parse cleanly
// and contain at least one module?
bool syntax_ok(std::string_view source);

}  // namespace haven::verilog
