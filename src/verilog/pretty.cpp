#include "verilog/pretty.h"

#include "util/strings.h"

namespace haven::verilog {

namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

std::string print_number(const Number& n) {
  if (!n.sized && n.xz_mask == 0) return std::to_string(n.value);
  // Emit binary for widths <= 8 with x bits, hex otherwise.
  if (n.xz_mask != 0 || n.width <= 8) {
    std::string bits;
    for (int i = n.width - 1; i >= 0; --i) {
      if ((n.xz_mask >> i) & 1u) bits += 'x';
      else bits += ((n.value >> i) & 1u) ? '1' : '0';
    }
    return std::to_string(n.width) + "'b" + bits;
  }
  return util::format("%d'h%llx", n.width, static_cast<unsigned long long>(n.value));
}

std::string print_range(const std::optional<Range>& r) {
  if (!r) return "";
  return util::format("[%d:%d] ", r->msb, r->lsb);
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNumber:
      return print_number(e.number);
    case ExprKind::kIdent:
      return e.ident;
    case ExprKind::kUnary:
      return e.op + "(" + print_expr(*e.operands[0]) + ")";
    case ExprKind::kBinary:
      return "(" + print_expr(*e.operands[0]) + " " + e.op + " " + print_expr(*e.operands[1]) + ")";
    case ExprKind::kTernary:
      return "(" + print_expr(*e.operands[0]) + " ? " + print_expr(*e.operands[1]) + " : " +
             print_expr(*e.operands[2]) + ")";
    case ExprKind::kConcat: {
      std::vector<std::string> parts;
      parts.reserve(e.operands.size());
      for (const auto& p : e.operands) parts.push_back(print_expr(*p));
      return "{" + util::join(parts, ", ") + "}";
    }
    case ExprKind::kReplicate:
      return "{" + std::to_string(e.repeat) + "{" + print_expr(*e.operands[0]) + "}}";
    case ExprKind::kBitSelect:
      return e.ident + "[" + print_expr(*e.operands[0]) + "]";
    case ExprKind::kPartSelect:
      return e.ident + util::format("[%d:%d]", e.msb, e.lsb);
  }
  return "/*?*/";
}

std::string print_stmt(const Stmt& s, int indent) {
  const std::string p = pad(indent);
  switch (s.kind) {
    case StmtKind::kBlock: {
      std::string out = p + "begin\n";
      for (const auto& child : s.stmts) out += print_stmt(*child, indent + 1);
      out += p + "end\n";
      return out;
    }
    case StmtKind::kBlockingAssign:
      return p + print_expr(*s.lhs) + " = " + print_expr(*s.rhs) + ";\n";
    case StmtKind::kNonblockingAssign:
      return p + print_expr(*s.lhs) + " <= " + print_expr(*s.rhs) + ";\n";
    case StmtKind::kIf: {
      std::string out = p + "if (" + print_expr(*s.cond) + ")\n";
      out += print_stmt(*s.then_branch, indent + 1);
      if (s.else_branch) {
        out += p + "else\n";
        out += print_stmt(*s.else_branch, indent + 1);
      }
      return out;
    }
    case StmtKind::kCase: {
      const char* kw = s.case_kind == CaseKind::kCase ? "case"
                       : (s.case_kind == CaseKind::kCasez ? "casez" : "casex");
      std::string out = p + kw + " (" + print_expr(*s.cond) + ")\n";
      for (const auto& item : s.case_items) {
        if (item.labels.empty()) {
          out += pad(indent + 1) + "default:\n";
        } else {
          std::vector<std::string> labels;
          for (const auto& l : item.labels) labels.push_back(print_expr(*l));
          out += pad(indent + 1) + util::join(labels, ", ") + ":\n";
        }
        out += print_stmt(*item.body, indent + 2);
      }
      out += p + "endcase\n";
      return out;
    }
    case StmtKind::kFor: {
      std::string out = p + "for (" + print_expr(*s.lhs) + " = " + print_expr(*s.rhs) + "; " +
                        print_expr(*s.cond) + "; " + print_expr(*s.step_lhs) + " = " +
                        print_expr(*s.step_rhs) + ")\n";
      out += print_stmt(*s.body, indent + 1);
      return out;
    }
  }
  return p + "/*?*/;\n";
}

std::string print_module(const Module& m) {
  std::string out = "module " + m.name;

  // Parameters from the item list are printed in the header if non-local.
  std::vector<std::string> header_params;
  for (const auto& item : m.items) {
    if (const auto* p = std::get_if<ParameterDecl>(&item); p && !p->local) {
      header_params.push_back(p->name + " = " + print_expr(*p->value));
    }
  }
  if (!header_params.empty()) {
    out += " #(\n";
    for (std::size_t i = 0; i < header_params.size(); ++i) {
      out += "  parameter " + header_params[i] + (i + 1 < header_params.size() ? ",\n" : "\n");
    }
    out += ")";
  }

  out += " (\n";
  for (std::size_t i = 0; i < m.ports.size(); ++i) {
    const Port& port = m.ports[i];
    out += "  ";
    out += port.dir == Dir::kInput ? "input " : (port.dir == Dir::kOutput ? "output " : "inout ");
    if (port.is_reg) out += "reg ";
    out += print_range(port.range);
    out += port.name;
    if (i + 1 < m.ports.size()) out += ",";
    out += "\n";
  }
  out += ");\n";

  for (const auto& item : m.items) {
    if (std::holds_alternative<ParameterDecl>(item)) {
      const auto& p = std::get<ParameterDecl>(item);
      if (p.local) out += "  localparam " + p.name + " = " + print_expr(*p.value) + ";\n";
      continue;  // non-local printed in header
    }
    if (std::holds_alternative<NetDecl>(item)) {
      const auto& d = std::get<NetDecl>(item);
      const char* kw = d.type == NetType::kWire ? "wire"
                       : (d.type == NetType::kReg ? "reg" : "integer");
      out += "  " + std::string(kw) + " " + print_range(d.range) + util::join(d.names, ", ");
      if (d.init) out += " = " + print_expr(*d.init);
      out += ";\n";
      continue;
    }
    if (std::holds_alternative<ContAssign>(item)) {
      const auto& a = std::get<ContAssign>(item);
      out += "  assign " + print_expr(*a.lhs) + " = " + print_expr(*a.rhs) + ";\n";
      continue;
    }
    if (std::holds_alternative<AlwaysBlock>(item)) {
      const auto& ab = std::get<AlwaysBlock>(item);
      out += "  always @";
      if (ab.star) {
        out += "(*)";
      } else {
        out += "(";
        for (std::size_t i = 0; i < ab.sens.size(); ++i) {
          const SensItem& s = ab.sens[i];
          if (s.edge == Edge::kPos) out += "posedge ";
          else if (s.edge == Edge::kNeg) out += "negedge ";
          out += s.signal;
          if (i + 1 < ab.sens.size()) out += " or ";
        }
        out += ")";
      }
      out += "\n";
      out += util::indent(print_stmt(*ab.body, 0), 2);
      continue;
    }
    if (std::holds_alternative<InitialBlock>(item)) {
      const auto& ib = std::get<InitialBlock>(item);
      out += "  initial\n";
      out += util::indent(print_stmt(*ib.body, 0), 2);
      continue;
    }
    if (std::holds_alternative<Instance>(item)) {
      const auto& inst = std::get<Instance>(item);
      out += "  " + inst.module_name + " " + inst.instance_name + " (";
      for (std::size_t i = 0; i < inst.connections.size(); ++i) {
        const auto& c = inst.connections[i];
        if (!c.port.empty()) {
          out += "." + c.port + "(" + (c.expr ? print_expr(*c.expr) : "") + ")";
        } else if (c.expr) {
          out += print_expr(*c.expr);
        }
        if (i + 1 < inst.connections.size()) out += ", ";
      }
      out += ");\n";
      continue;
    }
  }

  out += "endmodule\n";
  return out;
}

std::string print_source(const SourceFile& f) {
  std::string out;
  for (std::size_t i = 0; i < f.modules.size(); ++i) {
    if (i) out += "\n";
    out += print_module(f.modules[i]);
  }
  return out;
}

}  // namespace haven::verilog
