// Abstract syntax tree for the Verilog-2001 synthesizable subset.
//
// The subset is chosen to cover everything the HaVen pipeline generates or
// consumes: module headers with ANSI and non-ANSI ports, wire/reg/integer
// declarations, parameters, continuous assigns, always blocks (edge and
// level sensitive, @*), blocking/nonblocking assignment, if/else,
// case/casez/casex with default, simple for loops, module instantiation,
// concatenation/replication, bit and part selects, ternary and the full
// operator set. Nodes are immutable after parse and shared via shared_ptr
// (the dataset pipeline holds many snippets referencing common subtrees).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace haven::verilog {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kNumber,
  kIdent,
  kUnary,       // op in {~ ! - & | ^ ~& ~| ~^}
  kBinary,      // arithmetic, logical, relational, shift
  kTernary,     // cond ? a : b
  kConcat,      // {a, b, c}
  kReplicate,   // {N{expr}}
  kBitSelect,   // a[3] (index may be an expression)
  kPartSelect,  // a[msb:lsb] (constant bounds only)
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// A parsed literal: 4'b10x0 -> width=4, sized=true, value=0b1000 (x bits
// zero in value), xz_mask=0b0010. Unsized decimals get width=32.
struct Number {
  int width = 32;
  bool sized = false;
  std::uint64_t value = 0;
  std::uint64_t xz_mask = 0;  // bits that are x or z
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  int line = 0;

  Number number;                  // kNumber
  std::string ident;              // kIdent (also base name of selects)
  std::string op;                 // kUnary / kBinary operator spelling
  std::vector<ExprPtr> operands;  // children, meaning depends on kind
  std::uint64_t repeat = 0;       // kReplicate count
  int msb = 0, lsb = 0;           // kPartSelect bounds

  // --- factories ---
  static ExprPtr make_number(Number n, int line = 0);
  static ExprPtr make_number(std::uint64_t value, int width = 32, bool sized = false);
  static ExprPtr make_ident(std::string name, int line = 0);
  static ExprPtr make_unary(std::string op, ExprPtr a, int line = 0);
  static ExprPtr make_binary(std::string op, ExprPtr a, ExprPtr b, int line = 0);
  static ExprPtr make_ternary(ExprPtr c, ExprPtr t, ExprPtr f, int line = 0);
  static ExprPtr make_concat(std::vector<ExprPtr> parts, int line = 0);
  static ExprPtr make_replicate(std::uint64_t count, ExprPtr inner, int line = 0);
  static ExprPtr make_bit_select(std::string base, ExprPtr index, int line = 0);
  static ExprPtr make_part_select(std::string base, int msb, int lsb, int line = 0);

  // All identifiers referenced by this expression (with duplicates).
  void collect_idents(std::vector<std::string>& out) const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kBlock,             // begin ... end
  kBlockingAssign,    // a = b;
  kNonblockingAssign, // a <= b;
  kIf,
  kCase,
  kFor,               // for (i = a; cond; i = step) body
};

enum class CaseKind : std::uint8_t { kCase, kCasez, kCasex };

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct CaseItem {
  std::vector<ExprPtr> labels;  // empty => default
  StmtPtr body;
};

struct Stmt {
  StmtKind kind = StmtKind::kBlock;
  int line = 0;

  std::vector<StmtPtr> stmts;  // kBlock
  ExprPtr lhs, rhs;            // assignments; kFor init uses lhs=rhs form below
  ExprPtr cond;                // kIf / kCase subject / kFor condition
  StmtPtr then_branch, else_branch;  // kIf (else may be null)
  CaseKind case_kind = CaseKind::kCase;
  std::vector<CaseItem> case_items;
  // kFor: init assignment (lhs/rhs), condition (cond), step, body.
  ExprPtr step_lhs, step_rhs;
  StmtPtr body;

  static StmtPtr make_block(std::vector<StmtPtr> stmts, int line = 0);
  static StmtPtr make_assign(bool blocking, ExprPtr lhs, ExprPtr rhs, int line = 0);
  static StmtPtr make_if(ExprPtr cond, StmtPtr then_b, StmtPtr else_b, int line = 0);
  static StmtPtr make_case(CaseKind kind, ExprPtr subject, std::vector<CaseItem> items,
                           int line = 0);
  static StmtPtr make_for(ExprPtr init_lhs, ExprPtr init_rhs, ExprPtr cond, ExprPtr step_lhs,
                          ExprPtr step_rhs, StmtPtr body, int line = 0);
};

// ---------------------------------------------------------------------------
// Module structure
// ---------------------------------------------------------------------------

enum class Dir : std::uint8_t { kInput, kOutput, kInout };
enum class NetType : std::uint8_t { kWire, kReg, kInteger };

// Bit range [msb:lsb]; both bounds constant in the subset.
struct Range {
  int msb = 0;
  int lsb = 0;
  int width() const { return (msb >= lsb ? msb - lsb : lsb - msb) + 1; }
};

struct Port {
  std::string name;
  Dir dir = Dir::kInput;
  std::optional<Range> range;  // nullopt => scalar
  bool is_reg = false;         // "output reg [..] q"
  int width() const { return range ? range->width() : 1; }
};

struct NetDecl {
  NetType type = NetType::kWire;
  std::optional<Range> range;
  std::vector<std::string> names;
  ExprPtr init;  // "wire w = expr;" continuous-assign shorthand (last name)
  int line = 0;
};

struct ContAssign {
  ExprPtr lhs;
  ExprPtr rhs;
  int line = 0;
};

enum class Edge : std::uint8_t { kPos, kNeg, kLevel };

struct SensItem {
  Edge edge = Edge::kLevel;
  std::string signal;
};

struct AlwaysBlock {
  bool star = false;            // always @* / @(*)
  std::vector<SensItem> sens;   // ignored when star
  StmtPtr body;
  int line = 0;
};

struct InitialBlock {
  StmtPtr body;
  int line = 0;
};

struct ParameterDecl {
  std::string name;
  ExprPtr value;
  bool local = false;
  int line = 0;
};

struct PortConnection {
  std::string port;  // empty for positional
  ExprPtr expr;      // may be null for .port() disconnect
};

struct Instance {
  std::string module_name;
  std::string instance_name;
  std::vector<PortConnection> connections;
  int line = 0;
};

using ModuleItem =
    std::variant<NetDecl, ContAssign, AlwaysBlock, InitialBlock, ParameterDecl, Instance>;

struct Module {
  std::string name;
  std::vector<Port> ports;
  std::vector<ModuleItem> items;
  int line = 0;

  const Port* find_port(const std::string& name) const;
  std::vector<std::string> input_names() const;
  std::vector<std::string> output_names() const;
};

struct SourceFile {
  std::vector<Module> modules;

  const Module* find_module(const std::string& name) const;
};

// Parse the canonical spelling of a numeric literal token (e.g. "4'b1_0x0",
// "8'hff", "13"). Returns nullopt for malformed literals.
std::optional<Number> parse_number_literal(const std::string& text);

}  // namespace haven::verilog
