// Hand-written lexer for the Verilog subset. Skips // and /* */ comments,
// recognizes sized/based numeric literals including x/z digits, multi-char
// operators longest-match-first, and reports malformed input as kError
// tokens with positions (never throws on user code — generated code from a
// "hallucinating" model must be lexable enough to reject gracefully).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "verilog/token.h"

namespace haven::verilog {

class Lexer {
 public:
  explicit Lexer(std::string_view source);

  // Next token; returns kEof forever once exhausted.
  Token next();

  // Lex everything (excluding the final kEof).
  static std::vector<Token> tokenize(std::string_view source);

 private:
  char peek(std::size_t ahead = 0) const;
  char advance();
  bool at_end() const { return pos_ >= src_.size(); }
  void skip_ws_and_comments(std::vector<std::string>* errors);
  Token make(TokenKind kind, std::string text, int line, int col) const;

  std::string src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace haven::verilog
