// Pretty-printer: AST -> canonical Verilog source. Used by the SimLLM code
// generator (emitting modules it constructed programmatically), by the
// dataset pipeline (serializing exemplars), and by tests (parse/print
// round-trips).
#pragma once

#include <string>

#include "verilog/ast.h"

namespace haven::verilog {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_module(const Module& m);
std::string print_source(const SourceFile& f);

}  // namespace haven::verilog
