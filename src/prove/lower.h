// Dual-rail symbolic lowering of an elaborated design's settled
// combinational state onto the prove::Aig (DESIGN.md §12).
//
// Each 4-state signal bit becomes a (value, unknown) literal pair with the
// same invariant sim::Value::normalize enforces: an unknown bit carries no
// defined value (v implies !x). lower_design() replays the simulator's
// construction sequence symbolically — initial blocks on the all-X state,
// NBA commit, input binding, then one pure-function evaluation of every
// triggered combinational process in dependency order — so the returned
// words are, bit for bit, the values sim::run_diff_test would observe after
// poking the corresponding input vector.
//
// Anything whose event-driven behaviour is NOT a pure function of the
// current inputs (latches from partial assignment, incomplete sensitivity,
// comb feedback, nonblocking assigns in comb processes, clocked processes
// whose edge could ever fire, ...) throws UnsupportedError and the verdict
// falls back to simulation. The fallback is the soundness valve: the prover
// never guesses, it either reproduces the simulator exactly or declines.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "prove/aig.h"
#include "sim/elaborate.h"

namespace haven::prove {

// Thrown when the design uses a construct the lowering cannot model
// bit-identically to the simulator. Internal control flow: converted to
// ProveStatus::kUnsupported by prove_equivalence().
struct UnsupportedError {
  explicit UnsupportedError(std::string r) : reason(std::move(r)) {}
  std::string reason;
};

// One 4-state bit as a dual-rail literal pair (v = defined value,
// x = unknown). Default-constructed bits are X, matching power-on state.
struct Bit {
  Lit v = kFalse;
  Lit x = kTrue;
};

// Fixed-width little-endian vector of dual-rail bits.
struct Word {
  explicit Word(int w = 1) : bits(static_cast<std::size_t>(w)) {}
  int width() const { return static_cast<int>(bits.size()); }
  std::vector<Bit> bits;
};

// Settled state of every signal (indexed by signal id) as a pure function of
// the AIG inputs. `input_vars` maps top-level input port names to their
// port-width variable literals, LSB first; the same literals are passed for
// DUT and golden so the miscompare network shares structure. Inputs not in
// the map (clock/reset names) keep their post-initial constant values.
// Throws UnsupportedError / BudgetExceededError.
std::vector<Word> lower_design(Aig* aig, const sim::ElabDesign& design,
                               const std::map<std::string, std::vector<Lit>>& input_vars);

}  // namespace haven::prove
