// Structurally-hashed AND-inverter graph over which haven::prove lowers the
// settled combinational state of an elaborated design (DESIGN.md §12).
//
// Literals are node-id-with-complement integers (node << 1 | complement), so
// negation is free and the two-level simplification rules in land() keep the
// graph canonical enough that many equivalences — in particular a golden
// module proved against itself — collapse to a constant without ever
// touching the BDD layer. Node 0 is the constant-FALSE node; every other
// node is either a primary input or a two-input AND.
//
// All allocation is metered through a shared Budget so one hostile candidate
// can never grow the proof structures without bound: exceeding the budget
// throws BudgetExceededError, which the prover converts into a simulation
// fallback (never a verdict).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace haven::prove {

// Thrown when a proof attempt outgrows its node budget. Internal control
// flow: prove_equivalence() catches it and reports kBudgetExceeded.
struct BudgetExceededError {};

// Shared allocation meter for one proof attempt: AIG nodes, BDD nodes and
// exhaustive-sweep word operations all charge the same pool. limit 0 means
// unbounded.
class Budget {
 public:
  explicit Budget(std::uint64_t limit) : limit_(limit) {}

  void charge(std::uint64_t n = 1) {
    used_ += n;
    if (limit_ != 0 && used_ > limit_) throw BudgetExceededError{};
  }
  bool fits(std::uint64_t n) const { return limit_ == 0 || used_ + n <= limit_; }
  std::uint64_t used() const { return used_; }
  // Roll the meter back to an earlier mark (used when the BDD attempt blows
  // the budget and its nodes are discarded in favour of the cofactor sweep).
  void rewind(std::uint64_t mark) { used_ = mark; }

 private:
  std::uint64_t limit_;
  std::uint64_t used_ = 0;
};

// Literal: node id << 1 | complement bit.
using Lit = std::uint32_t;
inline constexpr Lit kFalse = 0;  // node 0, plain
inline constexpr Lit kTrue = 1;   // node 0, complemented
constexpr Lit lit_not(Lit l) { return l ^ 1u; }
constexpr std::uint32_t lit_node(Lit l) { return l >> 1; }
constexpr bool lit_compl(Lit l) { return (l & 1u) != 0; }

class Aig {
 public:
  struct Node {
    Lit a = 0, b = 0;        // AND operands (a <= b), unused for inputs
    std::int32_t input = -1; // >= 0: primary input index
  };

  explicit Aig(Budget* budget) : budget_(budget) { nodes_.push_back(Node{}); }

  // Fresh primary input. Input order is the BDD variable order.
  Lit add_input();

  // Two-input AND with constant folding, unit/idempotence/complement rules
  // and structural hashing.
  Lit land(Lit a, Lit b);

  Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
  Lit lxor(Lit a, Lit b);
  // sel ? t : f
  Lit lmux(Lit sel, Lit t, Lit f);

  bool is_const(Lit l) const { return lit_node(l) == 0; }

  const std::vector<Node>& nodes() const { return nodes_; }
  std::size_t input_count() const { return input_count_; }
  Budget* budget() const { return budget_; }

  // Node ids of the transitive fan-in cone of `root`, ascending (operands
  // always precede their AND, so ascending order is a topological order).
  // Node 0 is excluded.
  std::vector<std::uint32_t> cone(Lit root) const;

 private:
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::size_t input_count_ = 0;
  Budget* budget_;
};

}  // namespace haven::prove
