#include "prove/aig.h"

#include <algorithm>
#include <utility>

namespace haven::prove {

Lit Aig::add_input() {
  budget_->charge();
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.input = static_cast<std::int32_t>(input_count_++);
  nodes_.push_back(n);
  return id << 1;
}

Lit Aig::land(Lit a, Lit b) {
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kFalse;
  if (a > b) std::swap(a, b);
  const std::uint64_t key = (std::uint64_t{a} << 32) | b;
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second << 1;
  budget_->charge();
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b, -1});
  strash_.emplace(key, id);
  return id << 1;
}

Lit Aig::lxor(Lit a, Lit b) {
  if (a == kFalse) return b;
  if (b == kFalse) return a;
  if (a == kTrue) return lit_not(b);
  if (b == kTrue) return lit_not(a);
  if (a == b) return kFalse;
  if (a == lit_not(b)) return kTrue;
  // a ^ b = !( !(a & !b) & !(!a & b) )
  return lit_not(land(lit_not(land(a, lit_not(b))), lit_not(land(lit_not(a), b))));
}

Lit Aig::lmux(Lit sel, Lit t, Lit f) {
  if (sel == kTrue) return t;
  if (sel == kFalse) return f;
  if (t == f) return t;
  return lit_not(land(lit_not(land(sel, t)), lit_not(land(lit_not(sel), f))));
}

std::vector<std::uint32_t> Aig::cone(Lit root) const {
  std::vector<std::uint32_t> out;
  if (is_const(root)) return out;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<std::uint32_t> stack{lit_node(root)};
  seen[lit_node(root)] = true;
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const Node& n = nodes_[id];
    if (n.input >= 0) continue;
    for (const Lit child : {n.a, n.b}) {
      const std::uint32_t c = lit_node(child);
      if (c != 0 && !seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace haven::prove
