// Complement-edge reduced-ordered BDDs for the equivalence verdict
// (DESIGN.md §12). The prover folds the miscompare AIG cone bottom-up
// through land(); canonicity of the complemented-else-edge form makes the
// final check a single reference comparison against kFalseRef.
//
// Variable order is the AIG primary-input order, which the prover allocates
// as the golden module's data-input ports LSB-first — the same bit layout
// the exhaustive testbench sweep uses for its vector counter.
//
// Node allocation charges the shared prove::Budget; a blow-up throws
// BudgetExceededError and the prover falls back to the 64-lane cofactor
// sweep (and from there, to simulation).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prove/aig.h"

namespace haven::prove {

class Bdd {
 public:
  // Reference: node id << 1 | complement. Node 0 is the single terminal
  // (TRUE); FALSE is its complement.
  using Ref = std::uint32_t;
  static constexpr Ref kTrueRef = 0;
  static constexpr Ref kFalseRef = 1;
  static Ref lnot(Ref f) { return f ^ 1u; }

  explicit Bdd(Budget* budget) : budget_(budget) {
    nodes_.push_back(Node{kTermVar, kTrueRef, kTrueRef});
  }

  // The single-variable function v.
  Ref var(std::uint32_t v) { return mk(v, kTrueRef, kFalseRef); }

  Ref land(Ref f, Ref g);

  std::size_t node_count() const { return nodes_.size(); }

 private:
  static constexpr std::uint32_t kTermVar = ~std::uint32_t{0};

  struct Node {
    std::uint32_t var = kTermVar;
    Ref hi = kTrueRef;
    Ref lo = kTrueRef;  // invariant: never complemented (canonical form)
  };

  struct UniqueKey {
    std::uint32_t var;
    Ref hi, lo;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const {
      std::uint64_t h = (std::uint64_t{k.var} + 1) * 0x9e3779b97f4a7c15ULL;
      h ^= ((std::uint64_t{k.hi} << 32) | k.lo) * 0xda942042e4dd58b5ULL;
      h ^= h >> 29;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };

  Ref mk(std::uint32_t v, Ref hi, Ref lo);
  std::uint32_t var_of(Ref r) const { return nodes_[r >> 1].var; }

  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, std::uint32_t, UniqueHash> unique_;
  std::unordered_map<std::uint64_t, Ref> and_cache_;
  Budget* budget_;
};

}  // namespace haven::prove
