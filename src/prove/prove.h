// haven::prove — combinational equivalence checking as a zero-simulation
// verdict fast-path (DESIGN.md §12).
//
// prove_equivalence() lowers the candidate and the golden module into one
// shared structurally-hashed AIG over the 4-state value domain, builds the
// miscompare network exactly as sim::run_diff_test's outputs_match would
// judge each exhaustive vector, and decides satisfiability with
// reduced-ordered BDDs (64-lane exhaustive cofactor sweep as the fallback
// when the BDD outgrows its share of the node budget).
//
// The verdict contract: on a task where the engine deems the golden module
// provable (spec_provable + golden_provable), kEquivalent is returned iff the
// simulator's exhaustive sweep would pass the candidate, and kInequivalent
// iff it would fail it — bit-identically, by construction. Everything the
// lowering cannot mirror exactly returns kUnsupported (and budget blow-ups
// kBudgetExceeded); both mean "simulate instead", never a wrong verdict.
#pragma once

#include <cstdint>
#include <string>

#include "sim/testbench.h"
#include "verilog/ast.h"

namespace haven::prove {

// Default shared node budget (AIG nodes + BDD nodes + sweep word-ops) for one
// proof attempt. Big enough for every suite golden; small enough that a
// hostile candidate cannot stall a worker.
inline constexpr std::uint64_t kDefaultNodeBudget = std::uint64_t{1} << 20;

enum class ProveStatus : std::uint8_t {
  kEquivalent,      // no input vector distinguishes DUT from golden
  kInequivalent,    // some vector (or the interface itself) does
  kUnsupported,     // construct outside the provable fragment: simulate
  kBudgetExceeded,  // proof structures outgrew the node budget: simulate
};

struct ProveOptions {
  std::uint64_t node_budget = kDefaultNodeBudget;  // 0 = unbounded
};

struct ProveResult {
  ProveStatus status = ProveStatus::kUnsupported;
  std::string reason;      // mismatch description / unsupported construct
  std::uint64_t nodes = 0; // budget units consumed (AIG + BDD + sweep)
  bool used_bdd = false;
  bool used_exhaustive = false;
};

// Cheap static eligibility: combinational spec whose data-input bit count
// fits the harness's exhaustive sweep (the proof is only verdict-identical
// when simulation would itself test every vector).
bool spec_provable(const verilog::Module& golden, const sim::StimulusSpec& spec);

// Full eligibility: spec_provable plus a dry-run elaboration + lowering of
// the golden module under `opts`. When this holds, prove_equivalence() on any
// candidate either returns a verdict identical to simulation or defers to it.
bool golden_provable(const verilog::Module& golden, const verilog::SourceFile* golden_file,
                     const sim::StimulusSpec& spec, const ProveOptions& opts = {});

// Decide equivalence of `dut` against `golden` under `spec`. The SourceFiles
// supply instance definitions (may be null), mirroring run_diff_test.
ProveResult prove_equivalence(const verilog::Module& dut, const verilog::SourceFile* dut_file,
                              const verilog::Module& golden, const verilog::SourceFile* golden_file,
                              const sim::StimulusSpec& spec, const ProveOptions& opts = {});

}  // namespace haven::prove
