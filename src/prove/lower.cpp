// Dual-rail symbolic lowering (lower.h, DESIGN.md §12). Every rule here
// mirrors a specific construct in sim/simulator.cpp or sim/value.h; where the
// correspondence is not obvious a comment names the mirrored behaviour. The
// cardinal rule: when the settled state cannot be reproduced bit-identically
// as a pure function of the swept inputs, throw UnsupportedError — never
// approximate.
#include "prove/lower.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>

#include "sim/value.h"
#include "verilog/ast.h"

namespace haven::prove {
namespace {

using sim::ElabDesign;
using sim::ElabProcess;
using sim::ProcessKind;
using sim::Value;
using verilog::CaseKind;
using verilog::ExprKind;
using verilog::ExprPtr;
using verilog::StmtKind;
using verilog::StmtPtr;

// Mirrors simulator.cpp's loop cap; exceeding it there flags non-convergence,
// here it forces the simulation fallback which reproduces that flag.
constexpr int kMaxLoopIterations = 1 << 16;
// Strictly below the simulator's kMaxDeltaCycles so an acyclic design we
// accept can never be one the simulator fails to settle.
constexpr int kMaxCombDepth = 990;

[[noreturn]] void unsupported(const std::string& reason) { throw UnsupportedError(reason); }

int checked_width(int w) {
  if (w < 1 || w > 64) unsupported("vector width outside 1..64");
  return w;
}

class Lowerer {
 public:
  Lowerer(Aig* aig, const ElabDesign& design,
          const std::map<std::string, std::vector<Lit>>& input_vars)
      : aig_(aig), budget_(aig->budget()), design_(design), input_vars_(input_vars) {}

  std::vector<Word> run();

 private:
  // Per-activation shadow state of one combinational process. kBottom = not
  // yet assigned this activation, kVal = assigned, kPoison = assigned on some
  // but not all paths (a latch if it survives to commit).
  enum class BState : unsigned char { kBottom, kPoison, kVal };
  struct OBit {
    BState st = BState::kBottom;
    Bit bit;
  };
  using Overlay = std::map<std::size_t, std::vector<OBit>>;
  struct NbaWrite {
    std::size_t id;
    int hi, lo;
    Word value;
  };

  struct Ctx {
    bool initial = false;
    Overlay overlay;                       // comb mode: targets of the process
    std::vector<NbaWrite>* nba = nullptr;  // initial mode: queued NBAs
    // Bits the active process may ever write (per target signal); reading a
    // still-kBottom bit inside this mask would observe the previous
    // activation, which a single pass cannot model.
    const std::map<std::size_t, std::uint64_t>* write_masks = nullptr;
  };

  // --- word helpers ---------------------------------------------------------
  Lit land(Lit a, Lit b) { return aig_->land(a, b); }
  Lit lor(Lit a, Lit b) { return aig_->lor(a, b); }
  Lit lxor(Lit a, Lit b) { return aig_->lxor(a, b); }
  Lit lmux(Lit s, Lit t, Lit f) { return aig_->lmux(s, t, f); }

  static Word all_x(int w) { return Word(checked_width(w)); }

  Word from_value(const Value& v) const {
    Word w(v.width());
    for (int i = 0; i < v.width(); ++i) {
      if ((v.xz() >> i) & 1)
        w.bits[static_cast<std::size_t>(i)] = Bit{kFalse, kTrue};
      else
        w.bits[static_cast<std::size_t>(i)] = Bit{((v.bits() >> i) & 1) ? kTrue : kFalse, kFalse};
    }
    return w;
  }

  static bool word_const(const Word& w, Value* out) {
    std::uint64_t bits = 0, xz = 0;
    for (int i = 0; i < w.width(); ++i) {
      const Bit& b = w.bits[static_cast<std::size_t>(i)];
      if ((b.v != kFalse && b.v != kTrue) || (b.x != kFalse && b.x != kTrue)) return false;
      if (b.v == kTrue) bits |= std::uint64_t{1} << i;
      if (b.x == kTrue) xz |= std::uint64_t{1} << i;
    }
    *out = Value::with_xz(bits, xz, w.width());
    return true;
  }

  // Zero-extend or truncate, mirroring Value::resized.
  static Word resized(const Word& w, int nw) {
    checked_width(nw);
    Word out(nw);
    for (int i = 0; i < nw; ++i)
      out.bits[static_cast<std::size_t>(i)] =
          i < w.width() ? w.bits[static_cast<std::size_t>(i)] : Bit{kFalse, kFalse};
    return out;
  }

  Lit any_x(const Word& w) {
    Lit a = kFalse;
    for (const Bit& b : w.bits) a = lor(a, b.x);
    return a;
  }
  Lit any_v(const Word& w) {
    Lit a = kFalse;
    for (const Bit& b : w.bits) a = lor(a, b.v);
    return a;
  }
  // Value::truthy(): fully defined and nonzero.
  Lit truthy_lit(const Word& w) { return land(any_v(w), lit_not(any_x(w))); }

  std::vector<Lit> vplane(const Word& w, int nw) {
    std::vector<Lit> out(static_cast<std::size_t>(nw), kFalse);
    for (int i = 0; i < nw && i < w.width(); ++i)
      out[static_cast<std::size_t>(i)] = w.bits[static_cast<std::size_t>(i)].v;
    return out;
  }

  // All-or-nothing X gate used by arithmetic: any unknown input bit makes the
  // whole result X (v_add/v_sub/v_mul/v_neg).
  Word guard(Lit ax, const std::vector<Lit>& vbits) {
    Word out(static_cast<int>(vbits.size()));
    const Lit def = lit_not(ax);
    for (std::size_t i = 0; i < vbits.size(); ++i) out.bits[i] = Bit{land(def, vbits[i]), ax};
    return out;
  }
  Word guard1(Lit ax, Lit v) { return guard(ax, {v}); }

  std::vector<Lit> ripple_add(const std::vector<Lit>& a, const std::vector<Lit>& b, Lit cin) {
    std::vector<Lit> s(a.size(), kFalse);
    Lit c = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Lit axb = lxor(a[i], b[i]);
      s[i] = lxor(axb, c);
      c = lor(land(a[i], b[i]), land(c, axb));
    }
    return s;
  }

  // Value-plane equality of `idx` with constant k. Only meaningful in
  // contexts guarded by "idx fully defined".
  Lit eq_const(const Word& idx, std::uint64_t k) {
    const int w = idx.width();
    if (w < 64 && (k >> w) != 0) return kFalse;
    Lit acc = kTrue;
    for (int i = 0; i < w; ++i) {
      const Lit bit = idx.bits[static_cast<std::size_t>(i)].v;
      acc = land(acc, ((k >> i) & 1) ? bit : lit_not(bit));
    }
    return acc;
  }

  // --- operator kernels (symbolic mirrors of the v_* functions) -------------
  Word w_and(const Word& a0, const Word& b0) {
    const int w = std::max(a0.width(), b0.width());
    const Word a = resized(a0, w), b = resized(b0, w);
    Word out(w);
    for (int i = 0; i < w; ++i) {
      const Bit &ab = a.bits[static_cast<std::size_t>(i)], &bb = b.bits[static_cast<std::size_t>(i)];
      const Lit zero = lor(land(lit_not(ab.v), lit_not(ab.x)), land(lit_not(bb.v), lit_not(bb.x)));
      const Lit one = land(ab.v, bb.v);
      out.bits[static_cast<std::size_t>(i)] = Bit{one, lit_not(lor(zero, one))};
    }
    return out;
  }

  Word w_or(const Word& a0, const Word& b0) {
    const int w = std::max(a0.width(), b0.width());
    const Word a = resized(a0, w), b = resized(b0, w);
    Word out(w);
    for (int i = 0; i < w; ++i) {
      const Bit &ab = a.bits[static_cast<std::size_t>(i)], &bb = b.bits[static_cast<std::size_t>(i)];
      const Lit one = lor(ab.v, bb.v);
      const Lit zero = land(land(lit_not(ab.v), lit_not(ab.x)), land(lit_not(bb.v), lit_not(bb.x)));
      out.bits[static_cast<std::size_t>(i)] = Bit{one, lit_not(lor(zero, one))};
    }
    return out;
  }

  Word w_xor(const Word& a0, const Word& b0) {
    const int w = std::max(a0.width(), b0.width());
    const Word a = resized(a0, w), b = resized(b0, w);
    Word out(w);
    for (int i = 0; i < w; ++i) {
      const Bit &ab = a.bits[static_cast<std::size_t>(i)], &bb = b.bits[static_cast<std::size_t>(i)];
      const Lit x = lor(ab.x, bb.x);
      out.bits[static_cast<std::size_t>(i)] = Bit{land(lxor(ab.v, bb.v), lit_not(x)), x};
    }
    return out;
  }

  Word w_not(const Word& a) {
    Word out(a.width());
    for (int i = 0; i < a.width(); ++i) {
      const Bit& ab = a.bits[static_cast<std::size_t>(i)];
      out.bits[static_cast<std::size_t>(i)] = Bit{land(lit_not(ab.v), lit_not(ab.x)), ab.x};
    }
    return out;
  }

  Word w_add(const Word& a, const Word& b) {
    const int w = std::max(a.width(), b.width());
    const Lit ax = lor(any_x(a), any_x(b));
    return guard(ax, ripple_add(vplane(a, w), vplane(b, w), kFalse));
  }

  Word w_sub(const Word& a, const Word& b) {
    const int w = std::max(a.width(), b.width());
    const Lit ax = lor(any_x(a), any_x(b));
    std::vector<Lit> nb = vplane(b, w);
    for (Lit& l : nb) l = lit_not(l);
    return guard(ax, ripple_add(vplane(a, w), nb, kTrue));
  }

  Word w_mul(const Word& a, const Word& b) {
    const int w = std::max(a.width(), b.width());
    const Lit ax = lor(any_x(a), any_x(b));
    const std::vector<Lit> va = vplane(a, w), vb = vplane(b, w);
    std::vector<Lit> acc(static_cast<std::size_t>(w), kFalse);
    for (int i = 0; i < w; ++i) {
      if (vb[static_cast<std::size_t>(i)] == kFalse) continue;
      std::vector<Lit> row(static_cast<std::size_t>(w), kFalse);
      for (int j = i; j < w; ++j)
        row[static_cast<std::size_t>(j)] =
            land(vb[static_cast<std::size_t>(i)], va[static_cast<std::size_t>(j - i)]);
      acc = ripple_add(acc, row, kFalse);
    }
    return guard(ax, acc);
  }

  Word w_neg(const Word& a) {
    const int w = a.width();
    std::vector<Lit> na = vplane(a, w);
    for (Lit& l : na) l = lit_not(l);
    return guard(any_x(a), ripple_add(na, std::vector<Lit>(static_cast<std::size_t>(w), kFalse), kTrue));
  }

  Word w_shift(const Word& a, const Word& b, bool left) {
    const int w = a.width();
    const Lit bx = any_x(b);
    if (bx == kTrue) return all_x(w);
    std::vector<Lit> rv(static_cast<std::size_t>(w), kFalse), rx(static_cast<std::size_t>(w), kFalse);
    for (int k = 0; k < w; ++k) {
      const Lit eq = eq_const(b, static_cast<std::uint64_t>(k));
      if (eq == kFalse) continue;
      for (int j = 0; j < w; ++j) {
        const int src = left ? j - k : j + k;
        if (src < 0 || src >= w) continue;
        const Bit& sb = a.bits[static_cast<std::size_t>(src)];
        rv[static_cast<std::size_t>(j)] = lor(rv[static_cast<std::size_t>(j)], land(eq, sb.v));
        rx[static_cast<std::size_t>(j)] = lor(rx[static_cast<std::size_t>(j)], land(eq, sb.x));
      }
    }
    // Shift counts >= w (including >= 64) match no eq term: a defined zero,
    // exactly v_shl/v_shr's masked result.
    Word out(w);
    for (int j = 0; j < w; ++j)
      out.bits[static_cast<std::size_t>(j)] =
          Bit{land(lit_not(bx), rv[static_cast<std::size_t>(j)]), lor(bx, rx[static_cast<std::size_t>(j)])};
    return out;
  }

  Word w_eq(const Word& a0, const Word& b0) {
    const int w = std::max(a0.width(), b0.width());
    const Word a = resized(a0, w), b = resized(b0, w);
    Lit mismatch = kFalse, anyx = kFalse;
    for (int i = 0; i < w; ++i) {
      const Bit &ab = a.bits[static_cast<std::size_t>(i)], &bb = b.bits[static_cast<std::size_t>(i)];
      mismatch = lor(mismatch, land(land(lit_not(ab.x), lit_not(bb.x)), lxor(ab.v, bb.v)));
      anyx = lor(anyx, lor(ab.x, bb.x));
    }
    Word out(1);
    out.bits[0] = Bit{land(lit_not(mismatch), lit_not(anyx)), land(lit_not(mismatch), anyx)};
    return out;
  }

  Word w_neq(const Word& a, const Word& b) {
    const Word e = w_eq(a, b);
    Word out(1);
    out.bits[0] = Bit{land(lit_not(e.bits[0].v), lit_not(e.bits[0].x)), e.bits[0].x};
    return out;
  }

  Word w_case_eq(const Word& a0, const Word& b0, bool negate) {
    const int w = std::max(a0.width(), b0.width());
    const Word a = resized(a0, w), b = resized(b0, w);
    Lit same = kTrue;
    for (int i = 0; i < w; ++i) {
      const Bit &ab = a.bits[static_cast<std::size_t>(i)], &bb = b.bits[static_cast<std::size_t>(i)];
      same = land(same, land(lit_not(lxor(ab.v, bb.v)), lit_not(lxor(ab.x, bb.x))));
    }
    Word out(1);
    out.bits[0] = Bit{negate ? lit_not(same) : same, kFalse};
    return out;
  }

  enum class Cmp { kLt, kLe, kGt, kGe };
  Word w_cmp(const Word& a, const Word& b, Cmp cmp) {
    const Lit anyx = lor(any_x(a), any_x(b));
    const int w = std::max(a.width(), b.width());
    const std::vector<Lit> va = vplane(a, w), vb = vplane(b, w);
    Lit lt = kFalse, eqp = kTrue;
    for (int i = w - 1; i >= 0; --i) {
      lt = lor(lt, land(eqp, land(lit_not(va[static_cast<std::size_t>(i)]), vb[static_cast<std::size_t>(i)])));
      eqp = land(eqp, lit_not(lxor(va[static_cast<std::size_t>(i)], vb[static_cast<std::size_t>(i)])));
    }
    const Lit le = lor(lt, eqp);
    Lit r = kFalse;
    switch (cmp) {
      case Cmp::kLt: r = lt; break;
      case Cmp::kLe: r = le; break;
      case Cmp::kGt: r = lit_not(le); break;
      case Cmp::kGe: r = lit_not(lt); break;
    }
    return guard1(anyx, r);
  }

  Word w_logical_not(const Word& a) {
    const Lit one = any_v(a), x = any_x(a);
    Word out(1);
    out.bits[0] = Bit{land(lit_not(one), lit_not(x)), land(lit_not(one), x)};
    return out;
  }

  Word w_logical_bin(const Word& a, const Word& b, bool is_and) {
    const Lit at = any_v(a), bt = any_v(b);
    const Lit af = land(lit_not(at), lit_not(any_x(a)));
    const Lit bf = land(lit_not(bt), lit_not(any_x(b)));
    Lit v, zero;
    if (is_and) {
      v = land(at, bt);
      zero = lor(af, bf);
    } else {
      v = lor(at, bt);
      zero = land(af, bf);
    }
    Word out(1);
    out.bits[0] = Bit{v, land(lit_not(v), lit_not(zero))};
    return out;
  }

  Word w_red_and(const Word& a) {
    Lit def0 = kFalse;
    for (const Bit& b : a.bits) def0 = lor(def0, land(lit_not(b.v), lit_not(b.x)));
    const Lit x = any_x(a);
    Word out(1);
    out.bits[0] = Bit{land(lit_not(def0), lit_not(x)), land(lit_not(def0), x)};
    return out;
  }

  Word w_red_or(const Word& a) {
    const Lit one = any_v(a), x = any_x(a);
    Word out(1);
    out.bits[0] = Bit{one, land(lit_not(one), x)};
    return out;
  }

  Word w_red_xor(const Word& a) {
    const Lit x = any_x(a);
    Lit parity = kFalse;
    for (const Bit& b : a.bits) parity = lxor(parity, b.v);
    return guard1(x, parity);
  }

  Word w_concat(const Word& hi, const Word& lo) {
    if (hi.width() + lo.width() > 64) unsupported("concatenation wider than 64 bits");
    Word out(hi.width() + lo.width());
    for (int i = 0; i < lo.width(); ++i) out.bits[static_cast<std::size_t>(i)] = lo.bits[static_cast<std::size_t>(i)];
    for (int i = 0; i < hi.width(); ++i)
      out.bits[static_cast<std::size_t>(lo.width() + i)] = hi.bits[static_cast<std::size_t>(i)];
    return out;
  }

  // --- signal reads ---------------------------------------------------------
  std::size_t lookup(const std::string& name) const {
    const auto it = design_.signal_ids.find(name);
    if (it == design_.signal_ids.end()) unsupported("undeclared identifier '" + name + "'");
    return it->second;
  }

  Bit read_bit(std::size_t id, int j, Ctx& ctx) {
    if (!ctx.initial) {
      const auto it = ctx.overlay.find(id);
      if (it != ctx.overlay.end()) {
        const OBit& ob = it->second[static_cast<std::size_t>(j)];
        if (ob.st == BState::kVal) return ob.bit;
        if (ob.st == BState::kPoison) unsupported("reads a conditionally-assigned target");
        // kBottom: sound only for bits this process can never write — those
        // settle at the pre-activation state. A writable bit would observe
        // the previous activation, which one pass cannot model.
        const auto mit = ctx.write_masks->find(id);
        if (mit != ctx.write_masks->end() && ((mit->second >> j) & 1))
          unsupported("reads its own target before assigning it");
      }
    }
    return state_[id].bits[static_cast<std::size_t>(j)];
  }

  Word read_signal(std::size_t id, Ctx& ctx) {
    const int sw = design_.signals[id].width;
    Word out(sw);
    for (int j = 0; j < sw; ++j) out.bits[static_cast<std::size_t>(j)] = read_bit(id, j, ctx);
    return out;
  }

  // --- expression evaluation (mirror of Simulator::eval) --------------------
  Word eval(const ExprPtr& e, Ctx& ctx) {
    budget_->charge();
    if (!e) unsupported("null expression");
    switch (e->kind) {
      case ExprKind::kNumber: {
        const auto& n = e->number;
        checked_width(n.width);
        return from_value(Value::with_xz(n.value, n.xz_mask, n.width));
      }
      case ExprKind::kIdent:
        return read_signal(lookup(e->ident), ctx);
      case ExprKind::kBitSelect: {
        const std::size_t id = lookup(e->ident);
        const int sw = design_.signals[id].width;
        const Word idx = eval(e->operands[0], ctx);
        Value iv;
        if (word_const(idx, &iv)) {
          if (!iv.is_fully_defined()) return all_x(1);
          if (iv.bits() >= static_cast<std::uint64_t>(sw)) return all_x(1);
          Word out(1);
          out.bits[0] = read_bit(id, static_cast<int>(iv.bits()), ctx);
          return out;
        }
        // Symbolic index: one-hot select over every bit, X when the index is
        // unknown or out of range (Simulator::eval kBitSelect).
        const Word base = read_signal(id, ctx);
        const Lit defined = lit_not(any_x(idx));
        Lit sel_v = kFalse, sel_def = kFalse;
        for (int j = 0; j < sw; ++j) {
          const Lit eq = eq_const(idx, static_cast<std::uint64_t>(j));
          sel_v = lor(sel_v, land(eq, base.bits[static_cast<std::size_t>(j)].v));
          sel_def = lor(sel_def, land(eq, lit_not(base.bits[static_cast<std::size_t>(j)].x)));
        }
        Word out(1);
        out.bits[0] = Bit{land(defined, sel_v), lit_not(land(defined, sel_def))};
        return out;
      }
      case ExprKind::kPartSelect: {
        const std::size_t id = lookup(e->ident);
        const int sw = design_.signals[id].width;
        const int hi = std::max(e->msb, e->lsb), lo = std::min(e->msb, e->lsb);
        const int w = checked_width(hi - lo + 1);
        if (lo >= sw) return all_x(w);
        Word out(w);
        for (int j = 0; j < w; ++j) {
          const int sj = lo + j;
          out.bits[static_cast<std::size_t>(j)] =
              (sj >= 0 && sj < sw) ? read_bit(id, sj, ctx) : Bit{kFalse, kFalse};
        }
        return out;
      }
      case ExprKind::kUnary: {
        const Word a = eval(e->operands[0], ctx);
        const std::string& op = e->op;
        if (op == "~") return w_not(a);
        if (op == "!") return w_logical_not(a);
        if (op == "-") return w_neg(a);
        if (op == "&") return w_red_and(a);
        if (op == "|") return w_red_or(a);
        if (op == "^") return w_red_xor(a);
        if (op == "~&") return w_not(w_red_and(a));
        if (op == "~|") return w_not(w_red_or(a));
        if (op == "~^" || op == "^~") return w_not(w_red_xor(a));
        unsupported("unsupported unary operator '" + op + "'");
      }
      case ExprKind::kBinary: {
        const Word a = eval(e->operands[0], ctx);
        const Word b = eval(e->operands[1], ctx);
        const std::string& op = e->op;
        if (op == "&") return w_and(a, b);
        if (op == "|") return w_or(a, b);
        if (op == "^") return w_xor(a, b);
        if (op == "~^" || op == "^~") return w_not(w_xor(a, b));
        if (op == "~&") return w_not(w_and(a, b));
        if (op == "~|") return w_not(w_or(a, b));
        if (op == "+") return w_add(a, b);
        if (op == "-") return w_sub(a, b);
        if (op == "*") return w_mul(a, b);
        if (op == "/" || op == "%" || op == "**") {
          // No symbolic division: require constants and defer to the exact
          // Value kernels (which also own the divide-by-zero => X rule).
          Value av, bv;
          if (!word_const(a, &av) || !word_const(b, &bv))
            unsupported("non-constant operand to '" + op + "'");
          if (op == "/") return from_value(v_div(av, bv));
          if (op == "%") return from_value(v_mod(av, bv));
          if (!av.is_fully_defined() || !bv.is_fully_defined())
            return from_value(Value::all_x(av.width()));
          std::uint64_t r = 1;  // simulator.cpp's ** loop, verbatim
          for (std::uint64_t i = 0; i < bv.bits() && i < 64; ++i) r *= av.bits();
          return from_value(Value::of(r, av.width()));
        }
        if (op == "<<" || op == "<<<") return w_shift(a, b, /*left=*/true);
        if (op == ">>" || op == ">>>") return w_shift(a, b, /*left=*/false);
        if (op == "==") return w_eq(a, b);
        if (op == "!=") return w_neq(a, b);
        if (op == "===") return w_case_eq(a, b, false);
        if (op == "!==") return w_case_eq(a, b, true);
        if (op == "<") return w_cmp(a, b, Cmp::kLt);
        if (op == "<=") return w_cmp(a, b, Cmp::kLe);
        if (op == ">") return w_cmp(a, b, Cmp::kGt);
        if (op == ">=") return w_cmp(a, b, Cmp::kGe);
        if (op == "&&") return w_logical_bin(a, b, /*is_and=*/true);
        if (op == "||") return w_logical_bin(a, b, /*is_and=*/false);
        unsupported("unsupported binary operator '" + op + "'");
      }
      case ExprKind::kTernary: {
        const Word c = eval(e->operands[0], ctx);
        const Lit t_lit = truthy_lit(c);
        const Lit u_lit = any_x(c);
        // Constant conditions take exactly one branch, like the simulator —
        // the untaken branch is never evaluated (it may not even be legal).
        if (t_lit == kTrue) return eval(e->operands[1], ctx);
        if (t_lit == kFalse && u_lit == kFalse) return eval(e->operands[2], ctx);
        const Word t = eval(e->operands[1], ctx);
        const Word f = eval(e->operands[2], ctx);
        if (u_lit == kTrue) {
          // Constant unknown condition: bitwise branch merge at max width.
          const int w = std::max(t.width(), f.width());
          const Word tr = resized(t, w), fr = resized(f, w);
          Word out(w);
          for (int i = 0; i < w; ++i) {
            const Bit &tb = tr.bits[static_cast<std::size_t>(i)], &fb = fr.bits[static_cast<std::size_t>(i)];
            const Lit agree = land(lit_not(lxor(tb.v, fb.v)), land(lit_not(tb.x), lit_not(fb.x)));
            out.bits[static_cast<std::size_t>(i)] = Bit{land(tb.v, agree), lit_not(agree)};
          }
          return out;
        }
        // Symbolic condition: the simulator's result width depends on which
        // branch is taken, so unequal widths cannot be modelled.
        if (t.width() != f.width())
          unsupported("ternary branches of different widths under a symbolic condition");
        Word out(t.width());
        for (int i = 0; i < t.width(); ++i) {
          const Bit &tb = t.bits[static_cast<std::size_t>(i)], &fb = f.bits[static_cast<std::size_t>(i)];
          const Lit agree = land(lit_not(lxor(tb.v, fb.v)), land(lit_not(tb.x), lit_not(fb.x)));
          const Lit merged_v = land(tb.v, agree);
          const Lit merged_x = lit_not(agree);
          out.bits[static_cast<std::size_t>(i)] =
              Bit{lmux(t_lit, tb.v, lmux(u_lit, merged_v, fb.v)),
                  lmux(t_lit, tb.x, lmux(u_lit, merged_x, fb.x))};
        }
        return out;
      }
      case ExprKind::kConcat: {
        Word acc = eval(e->operands[0], ctx);
        for (std::size_t i = 1; i < e->operands.size(); ++i)
          acc = w_concat(acc, eval(e->operands[i], ctx));
        return acc;
      }
      case ExprKind::kReplicate: {
        const Word inner = eval(e->operands[0], ctx);
        if (e->repeat * static_cast<std::uint64_t>(inner.width()) > 64)
          unsupported("replication wider than 64 bits");
        Word acc = inner;  // repeat == 0 returns the inner value, like eval()
        for (std::uint64_t i = 1; i < e->repeat; ++i) acc = w_concat(acc, inner);
        return acc;
      }
    }
    unsupported("corrupt expression node");
  }

  // --- statements (mirror of Simulator::exec_stmt / assign_lvalue) ----------
  Overlay merge(Lit sel, Overlay a, Overlay b) {
    if (sel == kTrue) return a;
    if (sel == kFalse) return b;
    for (auto& [id, bits] : a) {
      auto& other = b.at(id);
      for (std::size_t i = 0; i < bits.size(); ++i) {
        OBit& ab = bits[i];
        const OBit& bb = other[i];
        if (ab.st == BState::kVal && bb.st == BState::kVal) {
          ab.bit.v = lmux(sel, ab.bit.v, bb.bit.v);
          ab.bit.x = lmux(sel, ab.bit.x, bb.bit.x);
        } else if (!(ab.st == BState::kBottom && bb.st == BState::kBottom)) {
          ab.st = BState::kPoison;
        }
      }
    }
    return a;
  }

  void write_field(std::size_t id, int lo, int hi, const Word& vv, Ctx& ctx) {
    const int sw = design_.signals[id].width;
    if (ctx.initial) {
      for (int j = std::max(lo, 0); j <= hi && j < sw; ++j)
        state_[id].bits[static_cast<std::size_t>(j)] = vv.bits[static_cast<std::size_t>(j - lo)];
      return;
    }
    auto it = ctx.overlay.find(id);
    if (it == ctx.overlay.end()) unsupported("write to a signal outside the process target set");
    for (int j = std::max(lo, 0); j <= hi && j < sw; ++j)
      it->second[static_cast<std::size_t>(j)] = OBit{BState::kVal, vv.bits[static_cast<std::size_t>(j - lo)]};
  }

  void symbolic_bit_write(std::size_t id, const Word& idx, const Word& v, Ctx& ctx) {
    auto it = ctx.overlay.find(id);
    if (it == ctx.overlay.end()) unsupported("write to a signal outside the process target set");
    const int sw = design_.signals[id].width;
    for (int j = 0; j < sw; ++j)
      if (it->second[static_cast<std::size_t>(j)].st != BState::kVal)
        unsupported("non-constant bit-select write to a partially-assigned signal");
    const Word vv = resized(v, 1);
    // An unknown index writes nothing; otherwise exactly the selected bit is
    // replaced (assign_lvalue kBitSelect).
    const Lit defined = lit_not(any_x(idx));
    for (int j = 0; j < sw; ++j) {
      const Lit cond = land(defined, eq_const(idx, static_cast<std::uint64_t>(j)));
      Bit& old = it->second[static_cast<std::size_t>(j)].bit;
      old.v = lmux(cond, vv.bits[0].v, old.v);
      old.x = lmux(cond, vv.bits[0].x, old.x);
    }
  }

  void assign_lvalue(const ExprPtr& lhs, const Word& v, bool nonblocking, Ctx& ctx) {
    if (!lhs) unsupported("null lvalue");
    if (lhs->kind == ExprKind::kConcat) {
      int total = 0;
      std::vector<int> widths;
      for (const auto& part : lhs->operands) {
        int w = 1;
        if (part->kind == ExprKind::kIdent) {
          w = design_.signals[lookup(part->ident)].width;
        } else if (part->kind == ExprKind::kBitSelect) {
          w = 1;
        } else if (part->kind == ExprKind::kPartSelect) {
          w = std::abs(part->msb - part->lsb) + 1;
        } else {
          unsupported("unsupported concat lvalue part");
        }
        widths.push_back(w);
        total += w;
      }
      const Word vv = resized(v, total);
      int offset = total;
      for (std::size_t i = 0; i < lhs->operands.size(); ++i) {
        offset -= widths[i];
        Word slice(widths[i]);
        for (int j = 0; j < widths[i]; ++j)
          slice.bits[static_cast<std::size_t>(j)] = vv.bits[static_cast<std::size_t>(offset + j)];
        assign_lvalue(lhs->operands[i], slice, nonblocking, ctx);
      }
      return;
    }

    const std::size_t id = lookup(lhs->ident);
    const int sw = design_.signals[id].width;
    int hi = 0, lo = 0;
    if (lhs->kind == ExprKind::kIdent) {
      hi = sw - 1;
      lo = 0;
    } else if (lhs->kind == ExprKind::kBitSelect) {
      const Word idx = eval(lhs->operands[0], ctx);
      Value iv;
      if (!word_const(idx, &iv)) {
        if (ctx.initial || nonblocking) unsupported("symbolic bit-select assignment target");
        symbolic_bit_write(id, idx, v, ctx);
        return;
      }
      if (!iv.is_fully_defined()) return;  // x index: no assignment
      if (iv.bits() >= static_cast<std::uint64_t>(sw)) return;
      hi = lo = static_cast<int>(iv.bits());
    } else if (lhs->kind == ExprKind::kPartSelect) {
      hi = std::max(lhs->msb, lhs->lsb);
      lo = std::min(lhs->msb, lhs->lsb);
    } else {
      unsupported("unsupported lvalue");
    }

    const Word vv = resized(v, hi - lo + 1);
    if (nonblocking) {
      ctx.nba->push_back(NbaWrite{id, hi, lo, vv});
      return;
    }
    write_field(id, lo, hi, vv, ctx);
  }

  Lit match_lit(const Word& subject, const ExprPtr& label, CaseKind kind, Ctx& ctx) {
    const Word lv = eval(label, ctx);
    const int w = std::max(subject.width(), lv.width());
    const Word sv = resized(subject, w), lr = resized(lv, w);
    Lit m = kTrue;
    for (int i = 0; i < w; ++i) {
      const Bit &sb = sv.bits[static_cast<std::size_t>(i)], &lb = lr.bits[static_cast<std::size_t>(i)];
      Lit wildcard = kFalse;
      if (kind == CaseKind::kCasez) wildcard = lb.x;
      else if (kind == CaseKind::kCasex) wildcard = lor(lb.x, sb.x);
      const Lit same = land(lit_not(lxor(sb.v, lb.v)), lit_not(lxor(sb.x, lb.x)));
      m = land(m, lor(wildcard, same));
    }
    return m;
  }

  void exec_stmt(const StmtPtr& s, Ctx& ctx) {
    if (!s) return;
    budget_->charge();
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& c : s->stmts) exec_stmt(c, ctx);
        return;
      case StmtKind::kBlockingAssign:
        assign_lvalue(s->lhs, eval(s->rhs, ctx), /*nonblocking=*/false, ctx);
        return;
      case StmtKind::kNonblockingAssign:
        if (!ctx.initial) unsupported("nonblocking assignment in a combinational process");
        assign_lvalue(s->lhs, eval(s->rhs, ctx), /*nonblocking=*/true, ctx);
        return;
      case StmtKind::kIf: {
        const Word c = eval(s->cond, ctx);
        const Lit t_lit = truthy_lit(c);
        // Unknown conditions branch false (Simulator::exec_stmt kIf uses
        // truthy()), so the two-way split is exact.
        if (t_lit == kTrue) {
          exec_stmt(s->then_branch, ctx);
          return;
        }
        if (t_lit == kFalse) {
          exec_stmt(s->else_branch, ctx);
          return;
        }
        if (ctx.initial) unsupported("symbolic branch in an initial block");
        Overlay saved = ctx.overlay;
        exec_stmt(s->then_branch, ctx);
        Overlay then_env = std::move(ctx.overlay);
        ctx.overlay = std::move(saved);
        exec_stmt(s->else_branch, ctx);
        ctx.overlay = merge(t_lit, std::move(then_env), std::move(ctx.overlay));
        return;
      }
      case StmtKind::kCase: {
        exec_case(s, ctx);
        return;
      }
      case StmtKind::kFor: {
        assign_lvalue(s->lhs, eval(s->rhs, ctx), /*nonblocking=*/false, ctx);
        int iterations = 0;
        for (;;) {
          const Word c = eval(s->cond, ctx);
          Value cv;
          if (!word_const(c, &cv)) unsupported("non-constant for-loop condition");
          if (!cv.truthy()) break;
          if (++iterations > kMaxLoopIterations) unsupported("for-loop iteration limit exceeded");
          exec_stmt(s->body, ctx);
          assign_lvalue(s->step_lhs, eval(s->step_rhs, ctx), /*nonblocking=*/false, ctx);
        }
        return;
      }
    }
    unsupported("corrupt statement node");
  }

  void exec_case(const StmtPtr& s, Ctx& ctx) {
    const Word subject = eval(s->cond, ctx);
    const verilog::CaseItem* default_item = nullptr;
    struct Arm {
      Lit m;
      const verilog::CaseItem* item;
    };
    std::vector<Arm> arms;
    bool saturated = false;
    for (const auto& item : s->case_items) {
      if (item.labels.empty()) {
        default_item = &item;  // last default wins, like the simulator's scan
        continue;
      }
      Lit m = kFalse;
      for (const auto& label : item.labels) {
        m = lor(m, match_lit(subject, label, s->case_kind, ctx));
        if (m == kTrue) break;  // the simulator stops at the first match
      }
      if (m == kFalse) continue;  // provably never taken
      arms.push_back(Arm{m, &item});
      if (m == kTrue) {
        saturated = true;  // later items (and a later default) are unreachable
        break;
      }
    }

    if (arms.empty()) {
      if (default_item) exec_stmt(default_item->body, ctx);
      return;
    }
    if (arms.size() == 1 && arms[0].m == kTrue) {
      exec_stmt(arms[0].item->body, ctx);
      return;
    }
    if (ctx.initial) unsupported("symbolic case selection in an initial block");

    // Priority chain m1 ? A1 : (m2 ? A2 : ... : default), built back to
    // front. Each arm executes against the pre-case overlay; non-matching
    // vectors fall through to whatever the tail produced.
    const Overlay incoming = ctx.overlay;
    if (saturated) {
      ctx.overlay = incoming;  // tail unreachable: placeholder, merged away by m == kTrue
    } else if (default_item) {
      exec_stmt(default_item->body, ctx);
    }
    for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
      Overlay tail = std::move(ctx.overlay);
      ctx.overlay = incoming;
      exec_stmt(it->item->body, ctx);
      ctx.overlay = merge(it->m, std::move(ctx.overlay), std::move(tail));
    }
  }

  // --- static analysis over process bodies ----------------------------------
  static void expr_idents(const ExprPtr& e, std::set<std::string>* out) {
    if (!e) return;
    if (e->kind == ExprKind::kIdent || e->kind == ExprKind::kBitSelect ||
        e->kind == ExprKind::kPartSelect) {
      out->insert(e->ident);
    }
    for (const auto& op : e->operands) expr_idents(op, out);
  }

  // Identifiers read by lvalue index expressions (everything a continuous
  // assignment reads that is NOT in its elaborated read set).
  static void lvalue_index_reads(const ExprPtr& lhs, std::set<std::string>* out) {
    if (!lhs) return;
    if (lhs->kind == ExprKind::kConcat) {
      for (const auto& part : lhs->operands) lvalue_index_reads(part, out);
      return;
    }
    if (lhs->kind == ExprKind::kBitSelect) expr_idents(lhs->operands[0], out);
  }

  void lvalue_targets(const ExprPtr& lhs, bool strict,
                      std::map<std::size_t, std::uint64_t>* masks) const {
    if (!lhs) {
      if (strict) unsupported("null lvalue");
      return;
    }
    if (lhs->kind == ExprKind::kConcat) {
      for (const auto& part : lhs->operands) lvalue_targets(part, strict, masks);
      return;
    }
    if (lhs->kind != ExprKind::kIdent && lhs->kind != ExprKind::kBitSelect &&
        lhs->kind != ExprKind::kPartSelect) {
      if (strict) unsupported("unsupported lvalue");
      return;
    }
    const auto it = design_.signal_ids.find(lhs->ident);
    if (it == design_.signal_ids.end()) {
      if (strict) unsupported("assignment to undeclared identifier '" + lhs->ident + "'");
      return;
    }
    const int sw = design_.signals[it->second].width;
    const std::uint64_t full = sw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << sw) - 1);
    std::uint64_t mask = full;
    if (lhs->kind == ExprKind::kPartSelect) {
      const int lo = std::clamp(std::min(lhs->msb, lhs->lsb), 0, 63);
      const int hi = std::min({std::max(lhs->msb, lhs->lsb), sw - 1, 63});
      mask = hi < lo ? 0
                     : ((hi - lo + 1 >= 64 ? ~std::uint64_t{0}
                                           : ((std::uint64_t{1} << (hi - lo + 1)) - 1))
                        << lo);
    }
    // kBitSelect keeps the full mask: the index is not known statically.
    (*masks)[it->second] |= mask;
  }

  void collect_targets(const StmtPtr& s, bool strict, std::map<std::size_t, std::uint64_t>* masks,
                       bool* has_nba) const {
    if (!s) return;
    switch (s->kind) {
      case StmtKind::kBlock:
        for (const auto& c : s->stmts) collect_targets(c, strict, masks, has_nba);
        return;
      case StmtKind::kBlockingAssign:
        lvalue_targets(s->lhs, strict, masks);
        return;
      case StmtKind::kNonblockingAssign:
        *has_nba = true;
        lvalue_targets(s->lhs, strict, masks);
        return;
      case StmtKind::kIf:
        collect_targets(s->then_branch, strict, masks, has_nba);
        collect_targets(s->else_branch, strict, masks, has_nba);
        return;
      case StmtKind::kCase:
        for (const auto& item : s->case_items) collect_targets(item.body, strict, masks, has_nba);
        return;
      case StmtKind::kFor:
        lvalue_targets(s->lhs, strict, masks);
        lvalue_targets(s->step_lhs, strict, masks);
        collect_targets(s->body, strict, masks, has_nba);
        return;
    }
  }

  Aig* aig_;
  Budget* budget_;
  const ElabDesign& design_;
  const std::map<std::string, std::vector<Lit>>& input_vars_;
  std::vector<Word> state_;
};

std::vector<Word> Lowerer::run() {
  // 1. Power-on: every signal all-X (Simulator constructor).
  state_.reserve(design_.signals.size());
  for (const auto& sig : design_.signals) state_.push_back(all_x(checked_width(sig.width)));

  // 2. Initial blocks in process order, then their queued NBAs commit
  // immediately (Simulator::run_initial_blocks).
  {
    std::vector<NbaWrite> nba;
    Ctx ictx;
    ictx.initial = true;
    ictx.nba = &nba;
    for (const auto& p : design_.processes)
      if (p.kind == ProcessKind::kInitial && p.body) exec_stmt(p.body, ictx);
    for (const auto& w : nba) write_field(w.id, w.lo, w.hi, w.value, ictx);
  }

  // 3. Classify processes. A comb/cont-assign process executes iff at least
  // one of its read-set names is a known signal (the constructor seeds every
  // signal dirty, and comb_watchers are built from known names only).
  struct CombProc {
    std::size_t pi = 0;
    std::map<std::size_t, std::uint64_t> writes;
    std::set<std::size_t> reads;
  };
  std::vector<CombProc> comb;
  std::set<std::size_t> edge_ids;
  std::map<std::size_t, std::uint64_t> clocked_writes;
  for (std::size_t pi = 0; pi < design_.processes.size(); ++pi) {
    const ElabProcess& p = design_.processes[pi];
    if (p.kind == ProcessKind::kInitial) continue;
    if (p.kind == ProcessKind::kClocked) {
      for (const auto& e : p.edges) {
        const auto it = design_.signal_ids.find(e.signal);
        // The simulator throws ElabError at construction for this; fall back
        // so it reproduces the fault.
        if (it == design_.signal_ids.end()) unsupported("edge on unknown signal '" + e.signal + "'");
        edge_ids.insert(it->second);
      }
      bool nba = false;
      collect_targets(p.body, /*strict=*/false, &clocked_writes, &nba);
      continue;
    }
    bool watched = false;
    CombProc cp;
    cp.pi = pi;
    for (const auto& name : p.read_set) {
      const auto it = design_.signal_ids.find(name);
      if (it != design_.signal_ids.end()) {
        watched = true;
        cp.reads.insert(it->second);
      }
    }
    if (!watched) continue;  // never triggered: targets keep initial values
    std::set<std::string> needed;
    if (p.kind == ProcessKind::kComb) {
      if (!p.body) continue;
      bool has_nba = false;
      collect_targets(p.body, /*strict=*/true, &cp.writes, &has_nba);
      // A comb-queued NBA only commits when a clocked process fires, which
      // never happens in the designs we accept.
      if (has_nba) unsupported("nonblocking assignment in a combinational process");
      needed = sim::statement_read_set(p.body);
    } else {  // kContAssign
      lvalue_targets(p.lhs, /*strict=*/true, &cp.writes);
      expr_idents(p.rhs, &needed);
      lvalue_index_reads(p.lhs, &needed);
    }
    // Sensitivity completeness: every signal the process reads must also
    // retrigger it, or the settled value depends on event order.
    for (const auto& n : needed)
      if (design_.signal_ids.contains(n) && !p.read_set.contains(n))
        unsupported("incomplete sensitivity list");
    comb.push_back(std::move(cp));
  }

  // 4. Single combinational driver per signal, and never an input port
  // (poking would race the driver).
  std::map<std::size_t, std::size_t> writer;  // signal id -> comb index
  for (std::size_t ci = 0; ci < comb.size(); ++ci) {
    for (const auto& [id, mask] : comb[ci].writes) {
      (void)mask;
      if (design_.signals[id].is_input) unsupported("combinational process drives an input port");
      if (!writer.emplace(id, ci).second) unsupported("signal has multiple combinational drivers");
    }
  }

  // 5. Clocked processes must never fire: their edge signals have to be
  // static after construction. Initial-only writes are fine — the edge
  // baseline is captured after initial blocks run.
  for (const std::size_t id : edge_ids) {
    if (input_vars_.contains(design_.signals[id].name)) unsupported("clock edge on a swept input");
    if (writer.contains(id)) unsupported("clock edge on a combinationally driven signal");
    if (clocked_writes.contains(id)) unsupported("clock edge on a clocked-process target");
  }

  // 6. Bind the swept inputs. The harness pokes Value::of(slice, elab width),
  // so bits above the port width are defined zeros.
  for (const auto& [name, vars] : input_vars_) {
    const auto it = design_.signal_ids.find(name);
    if (it == design_.signal_ids.end()) unsupported("swept input '" + name + "' is not a signal");
    const std::size_t id = it->second;
    const int sw = design_.signals[id].width;
    Word w(sw);
    for (int i = 0; i < sw; ++i)
      w.bits[static_cast<std::size_t>(i)] =
          static_cast<std::size_t>(i) < vars.size() ? Bit{vars[static_cast<std::size_t>(i)], kFalse}
                                                    : Bit{kFalse, kFalse};
    state_[id] = w;
  }

  // 7. Topological order over the writer -> reader dependency graph. A cycle
  // or excessive depth may not settle within the simulator's delta budget.
  const std::size_t n = comb.size();
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t ci = 0; ci < n; ++ci) {
    std::set<std::size_t> preds;
    for (const std::size_t rid : comb[ci].reads) {
      const auto wit = writer.find(rid);
      if (wit != writer.end() && wit->second != ci) preds.insert(wit->second);
    }
    for (const std::size_t p : preds) {
      succ[p].push_back(ci);
      ++indeg[ci];
    }
  }
  std::vector<std::size_t> order;
  std::vector<int> depth(n, 0);
  std::set<std::size_t> ready;
  for (std::size_t ci = 0; ci < n; ++ci)
    if (indeg[ci] == 0) ready.insert(ci);
  while (!ready.empty()) {
    const std::size_t ci = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(ci);
    for (const std::size_t s : succ[ci]) {
      depth[s] = std::max(depth[s], depth[ci] + 1);
      if (--indeg[s] == 0) ready.insert(s);
    }
  }
  if (order.size() != n) unsupported("combinational dependency cycle");
  for (const int d : depth)
    if (d > kMaxCombDepth) unsupported("combinational depth exceeds the delta-cycle budget");

  // 8. Evaluate each process once in dependency order, committing its overlay
  // before any reader runs. One pass equals the simulator's fixpoint because
  // every accepted process is a pure function of already-final values.
  for (const std::size_t ci : order) {
    const ElabProcess& p = design_.processes[comb[ci].pi];
    Ctx ctx;
    ctx.write_masks = &comb[ci].writes;
    for (const auto& [id, mask] : comb[ci].writes) {
      (void)mask;
      ctx.overlay.emplace(id, std::vector<OBit>(static_cast<std::size_t>(design_.signals[id].width)));
    }
    if (p.kind == ProcessKind::kContAssign)
      assign_lvalue(p.lhs, eval(p.rhs, ctx), /*nonblocking=*/false, ctx);
    else
      exec_stmt(p.body, ctx);
    for (const auto& [id, bits] : ctx.overlay) {
      for (std::size_t j = 0; j < bits.size(); ++j) {
        if (bits[j].st == BState::kVal)
          state_[id].bits[j] = bits[j].bit;
        else if (bits[j].st == BState::kPoison)
          unsupported("signal latches: assigned on some but not all paths");
        // kBottom: never written this activation, keeps its settled value.
      }
    }
  }
  return std::move(state_);
}

}  // namespace

std::vector<Word> lower_design(Aig* aig, const sim::ElabDesign& design,
                               const std::map<std::string, std::vector<Lit>>& input_vars) {
  return Lowerer(aig, design, input_vars).run();
}

}  // namespace haven::prove
