#include "prove/bdd.h"

#include <algorithm>
#include <utility>

namespace haven::prove {

Bdd::Ref Bdd::mk(std::uint32_t v, Ref hi, Ref lo) {
  if (hi == lo) return hi;
  // Canonical form: the else edge is never complemented. Push the complement
  // to the result instead, so f and !f always share one node.
  Ref out_compl = 0;
  if (lo & 1u) {
    hi = lnot(hi);
    lo = lnot(lo);
    out_compl = 1u;
  }
  const UniqueKey key{v, hi, lo};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return (it->second << 1) | out_compl;
  budget_->charge();
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{v, hi, lo});
  unique_.emplace(key, id);
  return (id << 1) | out_compl;
}

Bdd::Ref Bdd::land(Ref f, Ref g) {
  if (f == kFalseRef || g == kFalseRef) return kFalseRef;
  if (f == kTrueRef) return g;
  if (g == kTrueRef) return f;
  if (f == g) return f;
  if (f == lnot(g)) return kFalseRef;
  if (f > g) std::swap(f, g);
  const std::uint64_t key = (std::uint64_t{f} << 32) | g;
  const auto it = and_cache_.find(key);
  if (it != and_cache_.end()) return it->second;

  const std::uint32_t vf = var_of(f), vg = var_of(g);
  const std::uint32_t v = std::min(vf, vg);
  const auto cofactor = [&](Ref r, std::uint32_t rv, bool high) -> Ref {
    if (rv != v) return r;
    const Node& n = nodes_[r >> 1];
    return (high ? n.hi : n.lo) ^ (r & 1u);
  };
  const Ref t = land(cofactor(f, vf, true), cofactor(g, vg, true));
  const Ref e = land(cofactor(f, vf, false), cofactor(g, vg, false));
  const Ref res = mk(v, t, e);
  and_cache_.emplace(key, res);
  return res;
}

}  // namespace haven::prove
