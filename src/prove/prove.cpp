#include "prove/prove.h"

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lint/dataflow.h"
#include "prove/aig.h"
#include "prove/bdd.h"
#include "prove/lower.h"
#include "sim/elaborate.h"

namespace haven::prove {

namespace {

using verilog::Dir;
using verilog::Module;
using verilog::SourceFile;

// 64-lane truth-table patterns for the first six inputs of the exhaustive
// cofactor sweep; inputs beyond six are fixed per block.
constexpr std::uint64_t kLane[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

int data_input_bits(const Module& golden, const sim::StimulusSpec& spec) {
  int total = 0;
  for (const auto& p : golden.ports) {
    if (p.dir == Dir::kOutput || p.name == spec.clock || p.name == spec.reset) continue;
    total += p.width();
  }
  return total;
}

// One variable per data-input bit, in port order, LSB first — the exact bit
// layout of the harness's exhaustive vector counter, which doubles as the BDD
// variable order. The same literals feed both lowerings so the miscompare
// network shares structure.
std::map<std::string, std::vector<Lit>> make_input_vars(Aig* aig, const Module& golden,
                                                        const sim::StimulusSpec& spec) {
  std::map<std::string, std::vector<Lit>> vars;
  for (const auto& p : golden.ports) {
    if (p.dir == Dir::kOutput || p.name == spec.clock || p.name == spec.reset) continue;
    auto& v = vars[p.name];
    if (!v.empty()) continue;
    for (int i = 0; i < p.width(); ++i) v.push_back(aig->add_input());
  }
  return vars;
}

// Evaluate the fan-in cone of `root` with BDDs; true iff `root` is
// unsatisfiable. Throws BudgetExceededError on blow-up.
bool bdd_unsat(const Aig& aig, Lit root, Budget* budget) {
  Bdd bdd(budget);
  std::vector<Bdd::Ref> refs(aig.nodes().size(), Bdd::kFalseRef);
  const auto child = [&](Lit l) -> Bdd::Ref {
    const Bdd::Ref r = lit_node(l) == 0 ? Bdd::kFalseRef : refs[lit_node(l)];
    return lit_compl(l) ? Bdd::lnot(r) : r;
  };
  for (const std::uint32_t id : aig.cone(root)) {
    const Aig::Node& n = aig.nodes()[id];
    refs[id] = n.input >= 0 ? bdd.var(static_cast<std::uint32_t>(n.input))
                            : bdd.land(child(n.a), child(n.b));
  }
  return child(root) == Bdd::kFalseRef;
}

// 64-lane exhaustive evaluation of the cone; returns true iff `root` is 0 on
// every input assignment. Never throws: the caller pre-checks the budget.
bool sweep_unsat(const Aig& aig, Lit root, Budget* budget) {
  const auto cone = aig.cone(root);
  const std::size_t n = aig.input_count();
  const std::uint64_t blocks = n <= 6 ? 1 : (std::uint64_t{1} << (n - 6));
  const std::uint64_t lane_mask =
      n >= 6 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (std::uint64_t{1} << n)) - 1);
  std::vector<std::uint64_t> val(aig.nodes().size(), 0);
  const auto cv = [&](Lit l) -> std::uint64_t {
    const std::uint64_t v = lit_node(l) == 0 ? 0 : val[lit_node(l)];
    return lit_compl(l) ? ~v : v;
  };
  for (std::uint64_t block = 0; block < blocks; ++block) {
    budget->charge(cone.size());
    for (const std::uint32_t id : cone) {
      const Aig::Node& node = aig.nodes()[id];
      if (node.input >= 0) {
        val[id] = node.input < 6 ? kLane[node.input]
                                 : (((block >> (node.input - 6)) & 1) ? ~std::uint64_t{0} : 0);
      } else {
        val[id] = cv(node.a) & cv(node.b);
      }
    }
    if (cv(root) & lane_mask) return false;
  }
  return true;
}

}  // namespace

bool spec_provable(const Module& golden, const sim::StimulusSpec& spec) {
  if (spec.sequential) return false;
  // The proof is only verdict-identical when simulation would itself sweep
  // every vector (run_diff_test's exhaustive gate).
  const int total = data_input_bits(golden, spec);
  return total <= spec.max_exhaustive_bits && total <= 20;
}

bool golden_provable(const Module& golden, const SourceFile* golden_file,
                     const sim::StimulusSpec& spec, const ProveOptions& opts) {
  if (!spec_provable(golden, spec)) return false;
  if (!lint::build_dataflow(golden, golden_file).comb_cycles.empty()) return false;
  try {
    const sim::ElabDesign design = sim::elaborate(golden, golden_file);
    Budget budget(opts.node_budget);
    Aig aig(&budget);
    lower_design(&aig, design, make_input_vars(&aig, golden, spec));
    return true;
  } catch (const sim::ElabError&) {
    return false;
  } catch (const UnsupportedError&) {
    return false;
  } catch (const BudgetExceededError&) {
    return false;
  }
}

ProveResult prove_equivalence(const Module& dut, const SourceFile* dut_file, const Module& golden,
                              const SourceFile* golden_file, const sim::StimulusSpec& spec,
                              const ProveOptions& opts) {
  ProveResult r;  // defaults to kUnsupported
  if (spec.sequential) {
    r.reason = "sequential task";
    return r;
  }

  // Interface first: run_diff_test fails a candidate on this before touching
  // either design, so the fast-path verdict (and reason) must match.
  const sim::DiffResult iface = sim::check_interface(dut, golden);
  if (!iface.passed) {
    r.status = ProveStatus::kInequivalent;
    r.reason = iface.reason;
    return r;
  }

  // Lint's AST-level comb-SCC detection as a cheap early reject: a cyclic
  // design can oscillate or latch, neither of which the lowering models.
  if (!lint::build_dataflow(golden, golden_file).comb_cycles.empty()) {
    r.reason = "golden module has a combinational cycle";
    return r;
  }
  if (!lint::build_dataflow(dut, dut_file).comb_cycles.empty()) {
    r.reason = "candidate has a combinational cycle";
    return r;
  }

  sim::ElabDesign gd, dd;
  try {
    gd = sim::elaborate(golden, golden_file);
  } catch (const sim::ElabError& e) {
    // The harness escalates this to a task fault; simulate to reproduce it.
    r.reason = std::string("golden elaboration failed: ") + e.what();
    return r;
  }
  try {
    dd = sim::elaborate(dut, dut_file);
  } catch (const sim::ElabError& e) {
    // run_diff_test's exact verdict for a candidate that fails to elaborate.
    r.status = ProveStatus::kInequivalent;
    r.reason = std::string("dut elaboration failed: ") + e.what();
    return r;
  }

  const int total_bits = data_input_bits(golden, spec);
  if (total_bits > spec.max_exhaustive_bits || total_bits > 20) {
    r.reason = "input space exceeds the exhaustive sweep";
    return r;
  }

  Budget budget(opts.node_budget);
  Aig aig(&budget);
  try {
    const auto vars = make_input_vars(&aig, golden, spec);
    const std::vector<Word> gs = lower_design(&aig, gd, vars);
    const std::vector<Word> ds = lower_design(&aig, dd, vars);

    // Miscompare network: outputs_match per golden output port — DUT must
    // match every golden-defined bit and be defined wherever golden is.
    Lit mis = kFalse;
    for (const auto& p : golden.ports) {
      if (p.dir != Dir::kOutput) continue;
      const auto git = gd.signal_ids.find(p.name);
      const auto dit = dd.signal_ids.find(p.name);
      if (git == gd.signal_ids.end() || dit == dd.signal_ids.end()) {
        r.reason = "output port missing from the elaborated design";
        r.nodes = budget.used();
        return r;
      }
      const Word& gw = gs[git->second];
      const Word& dw = ds[dit->second];
      if (gw.width() != dw.width()) {
        // outputs_match fails every vector on an elaborated-width mismatch.
        r.status = ProveStatus::kInequivalent;
        r.reason = "output '" + p.name + "' elaborated width mismatch";
        r.nodes = budget.used();
        return r;
      }
      for (int i = 0; i < gw.width(); ++i) {
        const Bit& g = gw.bits[static_cast<std::size_t>(i)];
        const Bit& d = dw.bits[static_cast<std::size_t>(i)];
        const Lit care = lit_not(g.x);
        mis = aig.lor(mis, aig.land(care, aig.lor(aig.lxor(g.v, d.v), d.x)));
      }
    }

    r.nodes = budget.used();
    if (mis == kFalse) {
      r.status = ProveStatus::kEquivalent;
      return r;
    }
    if (mis == kTrue) {
      r.status = ProveStatus::kInequivalent;
      r.reason = "outputs differ on every input vector";
      return r;
    }

    bool equivalent = false;
    const std::uint64_t mark = budget.used();
    try {
      equivalent = bdd_unsat(aig, mis, &budget);
      r.used_bdd = true;
    } catch (const BudgetExceededError&) {
      // Discard the BDD attempt and fall back to the 64-lane cofactor sweep,
      // if the remaining budget covers it in full.
      budget.rewind(mark);
      const std::uint64_t cost = aig.cone(mis).size() *
                                 (total_bits <= 6 ? 1 : (std::uint64_t{1} << (total_bits - 6)));
      if (!budget.fits(cost)) {
        r.status = ProveStatus::kBudgetExceeded;
        r.reason = "proof outgrew the node budget";
        r.nodes = budget.used();
        return r;
      }
      equivalent = sweep_unsat(aig, mis, &budget);
      r.used_exhaustive = true;
    }
    r.nodes = budget.used();
    r.status = equivalent ? ProveStatus::kEquivalent : ProveStatus::kInequivalent;
    if (!equivalent) r.reason = "an input vector distinguishes the outputs";
    return r;
  } catch (const UnsupportedError& e) {
    r.reason = e.reason;
    r.nodes = budget.used();
    return r;
  } catch (const BudgetExceededError&) {
    r.status = ProveStatus::kBudgetExceeded;
    r.reason = "lowering outgrew the node budget";
    r.nodes = budget.used();
    return r;
  }
}

}  // namespace haven::prove
