#include "eval/cache_io.h"

#include <bit>
#include <cstring>

namespace haven::eval {
namespace {

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Bounds-checked little-endian reader over the payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) return fail();
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > data_.size()) return fail();
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)])) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool i32(std::int32_t* v) {
    std::uint32_t raw = 0;
    if (!u32(&raw)) return false;
    *v = static_cast<std::int32_t>(raw);
    return true;
  }
  bool str(std::string* s) {
    std::uint32_t len = 0;
    if (!u32(&len)) return false;
    if (pos_ + len > data_.size()) return fail();
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool exhausted() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string encode_verdict(const CachedVerdict& v, bool extended) {
  std::string out;
  put_u32(out, extended ? kVerdictSchemaVersionExtended : kVerdictSchemaVersion);
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (v.syntax_ok ? 1 : 0) | (v.func_ok ? 2 : 0) | (v.triaged ? 4 : 0) | (v.simulated ? 8 : 0) |
      (v.proved ? 0x10 : 0) | (v.prove_fallback ? 0x20 : 0));
  put_u8(out, flags);
  put_i32(out, v.sim_vectors);
  put_u32(out, static_cast<std::uint32_t>(v.findings.size()));
  for (const lint::Finding& f : v.findings) {
    put_u8(out, static_cast<std::uint8_t>(f.rule));
    put_u8(out, static_cast<std::uint8_t>(f.diag.severity));
    put_u8(out, static_cast<std::uint8_t>(f.axis));
    put_u8(out, static_cast<std::uint8_t>((f.predicts_failure ? 1 : 0) | (f.proven ? 2 : 0)));
    put_i32(out, f.diag.line);
    put_i32(out, f.diag.column);
    put_str(out, f.diag.message);
    put_str(out, f.diag.rule);
  }
  if (extended) put_str(out, v.fail_reason);
  return out;
}

bool decode_verdict(std::string_view payload, CachedVerdict* out) {
  Reader r(payload);
  std::uint32_t version = 0;
  if (!r.u32(&version) ||
      (version != kVerdictSchemaVersion && version != kVerdictSchemaVersionExtended)) {
    return false;
  }
  std::uint8_t flags = 0;
  if (!r.u8(&flags) || (flags & ~0x3fu) != 0) return false;
  CachedVerdict v;
  v.syntax_ok = (flags & 1) != 0;
  v.func_ok = (flags & 2) != 0;
  v.triaged = (flags & 4) != 0;
  v.simulated = (flags & 8) != 0;
  v.proved = (flags & 0x10) != 0;
  v.prove_fallback = (flags & 0x20) != 0;
  if (!r.i32(&v.sim_vectors)) return false;
  std::uint32_t count = 0;
  if (!r.u32(&count)) return false;
  // Sanity cap: a candidate never produces anywhere near this many findings;
  // a huge count signals corruption, not data.
  if (count > 100000) return false;
  v.findings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t rule = 0, severity = 0, axis = 0, fflags = 0;
    if (!r.u8(&rule) || !r.u8(&severity) || !r.u8(&axis) || !r.u8(&fflags)) return false;
    if (rule >= lint::kNumRules || severity > static_cast<std::uint8_t>(verilog::Severity::kError) ||
        axis >= llm::kNumHalluAxes || (fflags & ~0x03u) != 0) {
      return false;
    }
    lint::Finding f;
    f.rule = static_cast<lint::Rule>(rule);
    f.diag.severity = static_cast<verilog::Severity>(severity);
    f.axis = static_cast<llm::HalluAxis>(axis);
    f.predicts_failure = (fflags & 1) != 0;
    f.proven = (fflags & 2) != 0;
    if (!r.i32(&f.diag.line) || !r.i32(&f.diag.column)) return false;
    if (!r.str(&f.diag.message) || !r.str(&f.diag.rule)) return false;
    v.findings.push_back(std::move(f));
  }
  if (version == kVerdictSchemaVersionExtended && !r.str(&v.fail_reason)) return false;
  if (!r.exhausted()) return false;  // trailing bytes = corruption
  *out = std::move(v);
  return true;
}

cache::Digest task_cache_seed(const EvalTask& task, std::uint64_t sim_step_budget,
                              CacheLintMode lint_mode, bool prove, std::uint64_t prove_budget,
                              const repair::RepairPolicy* repair) {
  cache::Hasher h;
  h.u32(kVerdictSchemaVersion);
  h.bytes(task.id);
  h.bytes(cache::canonical_verilog(task.golden_source));
  const sim::StimulusSpec& s = task.stimulus;
  h.boolean(s.sequential)
      .bytes(s.clock)
      .bytes(s.reset)
      .boolean(s.reset_active_low)
      .i32(s.cycles)
      .i32(s.max_exhaustive_bits)
      .i32(s.random_vectors)
      .boolean(s.mid_test_reset)
      .u64(s.step_budget);
  // StimulusSpec::backend is deliberately NOT hashed: the interpreter and the
  // compiled simulator are verdict-identical (DESIGN.md §10), so a warm cache
  // must keep replaying when the backend knob flips.
  h.u64(sim_step_budget);
  h.u64(static_cast<std::uint64_t>(lint_mode));
  // The prove knobs are hashed at request level, not per-task eligibility:
  // a proven entry replays different counter flags than a simulated one, so
  // prove on/off (and different budgets) must key distinct entries even
  // though their verdicts are identical.
  h.boolean(prove);
  h.u64(prove_budget);
  // The repair knobs are bound ONLY when the loop is enabled: a hinted round
  // replays different counter flags and an extended (v3) payload, so repair
  // configs must key distinct entries — while the disabled default hashes
  // nothing, keeping repair-off digests bit-identical to the pre-repair
  // engine's.
  if (repair != nullptr && repair->enabled()) {
    h.bytes("repair");
    h.i32(repair->max_rounds);
    h.i32(repair->attempt_budget);
    h.boolean(repair->stop_on_pass);
    h.u64(std::bit_cast<std::uint64_t>(repair->efficacy));
  }
  return h.digest();
}

cache::Digest unit_cache_key(const cache::Digest& task_seed, std::string_view candidate_source,
                             std::uint64_t tb_stream_hash) {
  cache::Hasher h;
  h.u64(task_seed.hi).u64(task_seed.lo);
  h.bytes(cache::canonical_verilog(candidate_source));
  h.u64(tb_stream_hash);
  return h.digest();
}

}  // namespace haven::eval
