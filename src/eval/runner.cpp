#include "eval/runner.h"

#include <algorithm>

#include "verilog/analyzer.h"

namespace haven::eval {

double SuiteResult::pass_at(int k) const {
  std::vector<std::pair<int, int>> nc;
  nc.reserve(per_task.size());
  for (const auto& t : per_task) nc.emplace_back(t.n, t.func_pass);
  return mean_pass_at_k(nc, k);
}

double SuiteResult::syntax_pass_at(int k) const {
  std::vector<std::pair<int, int>> nc;
  nc.reserve(per_task.size());
  for (const auto& t : per_task) nc.emplace_back(t.n, t.syntax_pass);
  return mean_pass_at_k(nc, k);
}

std::pair<int, int> SuiteResult::modality_pass(symbolic::Modality m) const {
  // Expected pass-case count under the paper's single-attempt protocol:
  // each task contributes its per-sample pass fraction c/n.
  double passed = 0;
  int total = 0;
  for (const auto& t : per_task) {
    if (t.modality != m) continue;
    ++total;
    if (t.n > 0) passed += static_cast<double>(t.func_pass) / static_cast<double>(t.n);
  }
  return {static_cast<int>(passed + 0.5), total};
}

CandidateOutcome check_candidate(const llm::SimLlm& model, const EvalTask& task,
                                 double temperature, bool use_sicot,
                                 const llm::SimLlm* cot_model, util::Rng& rng) {
  CandidateOutcome outcome;

  std::string prompt = task.prompt;
  if (use_sicot) {
    const llm::SimLlm* interpreter = cot_model != nullptr ? cot_model : &model;
    cot::SiCotPipeline pipeline(interpreter);
    prompt = pipeline.refine(prompt, temperature, rng).prompt;
  }

  llm::GenerationConfig gen;
  gen.temperature = temperature;
  outcome.source = model.generate(prompt, gen, rng);

  outcome.syntax_ok = verilog::compile_ok(outcome.source);
  if (!outcome.syntax_ok) return outcome;

  util::Rng tb_rng = rng.fork();
  const sim::DiffResult diff =
      sim::run_diff_test(outcome.source, task.golden_source, task.stimulus, tb_rng);
  outcome.func_ok = diff.passed;
  return outcome;
}

namespace {

std::uint64_t mix_hash(std::uint64_t seed, const std::string& s) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

SuiteResult run_suite(const llm::SimLlm& model, const Suite& suite,
                      const RunnerConfig& config) {
  SuiteResult best;
  bool have_best = false;

  for (double temperature : config.temperatures) {
    SuiteResult result;
    result.suite_name = suite.name;
    result.model_name = model.name();
    result.temperature = temperature;

    for (const auto& task : suite.tasks) {
      TaskResult tr;
      tr.task_id = task.id;
      tr.modality = task.modality;
      tr.n = config.n_samples;
      for (int s = 0; s < config.n_samples; ++s) {
        util::Rng rng(mix_hash(config.seed, model.name() + "|" + task.id) ^
                      (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s + 1)) ^
                      static_cast<std::uint64_t>(temperature * 4096));
        const CandidateOutcome outcome = check_candidate(
            model, task, temperature, config.use_sicot, config.cot_model, rng);
        tr.syntax_pass += outcome.syntax_ok;
        tr.func_pass += outcome.func_ok;
      }
      result.per_task.push_back(std::move(tr));
    }

    if (!have_best || result.pass_at(1) > best.pass_at(1)) {
      best = std::move(result);
      have_best = true;
    }
  }
  return best;
}

}  // namespace haven::eval
