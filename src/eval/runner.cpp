#include "eval/runner.h"

namespace haven::eval {

SuiteResult run_suite(const llm::SimLlm& model, const Suite& suite,
                      const RunnerConfig& config) {
  EvalRequest request;
  request.n_samples = config.n_samples;
  request.temperatures = config.temperatures;
  request.use_sicot = config.use_sicot;
  request.seed = config.seed;
  request.threads = config.threads;
  // The wrapper is the one sanctioned reader of the deprecated field.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  if (config.cot_model != nullptr) request.set_cot_model(*config.cot_model);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  return EvalEngine(std::move(request)).evaluate(model, suite);
}

CandidateOutcome check_candidate(const llm::SimLlm& model, const EvalTask& task,
                                 double temperature, bool use_sicot,
                                 const llm::SimLlm* cot_model, util::Rng& rng) {
  EvalRequest request;
  request.use_sicot = use_sicot;
  if (cot_model != nullptr) request.set_cot_model(*cot_model);
  return EvalEngine(std::move(request)).check(model, task, temperature, rng);
}

}  // namespace haven::eval
