#include "eval/passk.h"

#include <stdexcept>

namespace haven::eval {

double pass_at_k(int n, int c, int k) {
  if (n <= 0 || k <= 0 || k > n) throw std::invalid_argument("pass_at_k: need 0 < k <= n");
  if (c < 0 || c > n) throw std::invalid_argument("pass_at_k: need 0 <= c <= n");
  if (c == 0) return 0.0;
  if (n - c < k) return 1.0;
  // 1 - prod_{i=0..k-1} (n - c - i) / (n - i)
  double prod = 1.0;
  for (int i = 0; i < k; ++i) {
    prod *= static_cast<double>(n - c - i) / static_cast<double>(n - i);
  }
  return 1.0 - prod;
}

double mean_pass_at_k(const std::vector<std::pair<int, int>>& n_c_pairs, int k) {
  if (n_c_pairs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [n, c] : n_c_pairs) sum += pass_at_k(n, c, k);
  return sum / static_cast<double>(n_c_pairs.size());
}

}  // namespace haven::eval
