// Benchmark suite builders. Sizes, category mixes and phrasing styles mirror
// the paper's benchmarks:
//
//  * VerilogEval-machine: 143 tasks, GPT-generated verbose prose (vanilla
//    style), simpler function mix, no symbolic payloads.
//  * VerilogEval-human: 156 manually-crafted tasks, engineer phrasing,
//    including exactly 44 symbolic tasks (10 truth tables, 13 waveforms,
//    21 state diagrams) — the subset Table V evaluates.
//  * VerilogEval v2: the human tasks re-phrased as specification-to-RTL chat
//    ("Question:"/"Answer:").
//  * RTLLM v1.1: 29 larger RTL designs (wide ALUs/counters/shifters, clock
//    dividers), engineer phrasing.
//
// All builders are deterministic (fixed internal seeds).
#pragma once

#include "eval/task.h"

namespace haven::eval {

Suite build_verilogeval_machine();
Suite build_verilogeval_human();
Suite build_verilogeval_v2();
Suite build_rtllm();

// The 44 symbolic-modality tasks of VerilogEval-human (Table V / VI).
Suite build_symbolic44();

}  // namespace haven::eval
