// EvalEngine: the parallel evaluation engine behind every table and figure
// reproduction. It shards the (temperature, task, sample) work units of a
// suite evaluation across a haven::util::ThreadPool and reduces per-task
// tallies deterministically.
//
// Determinism contract:
//  * Every sample derives an independent RNG from
//    (seed, model name, task id, sample index, temperature) — exactly the
//    derivation the original serial runner used — so no work unit observes
//    another unit's draws.
//  * Results are merged in work-unit *index* order (temperature-major, then
//    task, then sample), never completion order. A run with threads=8 is
//    therefore bit-identical to threads=1 for the same seed: same per-task
//    pass counts, same best temperature, same deterministic counters.
//  * Progress callbacks fire on the calling thread, in index order.
//
// Fault tolerance (see DESIGN.md §7 "Failure semantics"):
//  * Per-unit isolation: an exception thrown anywhere inside a work unit is
//    caught in the worker, recorded as a structured UnitFault on the
//    SuiteResult, and the reduction continues. A faulted unit counts toward
//    `candidates` but contributes nothing to pass tallies (scored as a
//    total failure). Set EvalRequest::fail_fast for the old
//    throw-on-first-error behavior (evaluate() then throws EvalAborted and
//    cancels the remaining queue).
//  * Budgets & deadlines: `sim_step_budget` bounds each simulation's work;
//    `deadline_ms` bounds each attempt's wall clock, checked between
//    pipeline stages and between simulated cycles.
//  * Retry: faults the EvalRequest::retry policy classifies transient
//    (injected faults by default) are retried with deterministic backoff.
//    Attempt k of a unit derives its RNG from (seed, unit, k) — attempt 0
//    is bit-identical to the no-retry derivation, so enabling retries
//    changes nothing on fault-free runs.
//
// Result caching (see DESIGN.md §9):
//  * EvalRequest::cache memoizes the compile→lint→simulate stages per
//    candidate, keyed on canonicalized content + task identity + eval knobs
//    + the stimulus stream. A hit replays the stored verdict (including lint
//    findings) bit-identically; verdicts, pass@k, and the lint block of a
//    warm run equal the cold run's exactly, at any thread count. Hits land
//    in EvalCounters::cache_hits, extending the accounting identity to
//    candidates == unit_faults + compile_failures + lint_triaged + simulated
//    + cache_hits.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/result_cache.h"
#include "eval/task.h"
#include "lint/lint.h"
#include "llm/simllm.h"
#include "repair/repair.h"
#include "symbolic/modality.h"
#include "util/retry.h"
#include "util/rng.h"

namespace haven::util {
class ThreadPool;
}

namespace haven::eval {

// Default run seed ("HAVEN").
inline constexpr std::uint64_t kDefaultEvalSeed = 0x484156454eULL;

struct TaskResult {
  std::string task_id;
  symbolic::Modality modality = symbolic::Modality::kNone;
  int n = 0;
  int syntax_pass = 0;  // candidates that compile
  int func_pass = 0;    // candidates functionally equivalent to golden
};

// Why a work unit terminally failed. Classification drives retry policy and
// the counter breakdown; see DESIGN.md §7 for the taxonomy.
enum class FaultKind {
  kException = 0,  // unclassified exception escaped the unit
  kInjected,       // util::InjectedFault from the chaos harness
  kDeadline,       // per-unit wall-clock deadline exceeded
  kSimBudget,      // sim::BudgetExceeded (runaway simulation)
};
const char* fault_kind_name(FaultKind kind);

// Structured record of one terminally faulted work unit (retries, if any,
// were already exhausted). Recorded on SuiteResult::faults in work-unit
// index order — deterministic for a fixed seed at any thread count.
struct UnitFault {
  FaultKind kind = FaultKind::kException;
  std::string task_id;
  int sample = 0;           // sample index within the task
  double temperature = 0.0;
  int attempts = 1;         // attempts consumed (1 = no retries)
  std::string what;         // exception message
};

// Thrown by EvalEngine::evaluate in fail_fast mode on the first unit fault;
// queued-but-unstarted units are cancelled, running ones finish.
class EvalAborted : public std::runtime_error {
 public:
  explicit EvalAborted(UnitFault fault)
      : std::runtime_error("evaluation aborted (fail_fast) on task '" + fault.task_id +
                           "': " + fault.what),
        fault_(std::move(fault)) {}
  const UnitFault& fault() const { return fault_; }

 private:
  UnitFault fault_;
};

// Per-run observability block. The integer counters aggregate over the whole
// run (all temperatures) and are deterministic for a fixed seed; the timing
// fields are measured and vary run to run. Stage times are summed across
// workers (CPU-style accounting): with N threads busy they can exceed
// wall_seconds by up to a factor of N.
struct EvalCounters {
  std::int64_t candidates = 0;         // generation attempts (= temps*tasks*n)
  std::int64_t compile_failures = 0;   // candidates rejected by the compiler
  std::int64_t sim_mismatches = 0;     // compiled candidates failing diff-sim
  std::int64_t sicot_refinements = 0;  // prompts SI-CoT actually transformed
  // Fault-tolerance block. Invariant at any injection rate / thread count:
  //   candidates == unit_faults + compile_failures + sim_mismatches + func passes
  // (single-temperature runs; multi-temperature runs sum across temps).
  std::int64_t unit_faults = 0;        // terminally faulted units (retries exhausted)
  std::int64_t deadline_exceeded = 0;  // unit faults that were deadline blows
  std::int64_t cycles_aborted = 0;     // unit faults that were sim-budget blows
  std::int64_t retries = 0;            // retry attempts performed (beyond first tries)
  // Lint/triage block (see DESIGN.md §8). Invariant at any thread count:
  //   candidates == unit_faults + compile_failures + lint_triaged + simulated
  std::int64_t lint_findings = 0;      // findings across all linted candidates
  std::int64_t lint_triaged = 0;       // candidates failed by proof, sim skipped
  std::int64_t simulated = 0;          // candidates that ran the diff testbench
  std::int64_t sim_vectors = 0;        // vectors/cycles actually compared
  // Formal equivalence fast-path block (see DESIGN.md §12). With proving on,
  // the accounting identity extends to
  //   candidates == unit_faults + compile_failures + lint_triaged
  //                 + proven_equiv + proven_inequiv + simulated + cache_hits
  // (a proven candidate's verdict is decided with zero simulation; an
  // unsupported or budget-blown proof falls back to the testbench, counted
  // under both prove_fallback and simulated).
  std::int64_t proven_equiv = 0;    // candidates proven equivalent (func pass)
  std::int64_t proven_inequiv = 0;  // candidates proven inequivalent (func fail)
  std::int64_t prove_fallback = 0;  // prove attempts that deferred to simulation
  // Self-repair block (see DESIGN.md §13). Each repair round is one extra
  // pass of the candidate pipeline, so with repair enabled the accounting
  // identity extends on the LEFT side:
  //   candidates + repair_rounds == unit_faults + compile_failures
  //                 + lint_triaged + proven_equiv + proven_inequiv
  //                 + simulated + cache_hits
  // (every pass — round 0 or repair round — lands in exactly one pipeline
  // bucket; a faulted unit discards its partial repair tallies and counts
  // under unit_faults alone). Corollary:
  //   repaired_pass + repair_exhausted <= repair_rounds.
  std::int64_t repair_rounds = 0;     // repair passes run (0 when repair off)
  std::int64_t repaired_pass = 0;     // candidates that failed round 0, then passed
  std::int64_t repair_exhausted = 0;  // candidates still failing after >= 1 round
  // Result-cache block (see DESIGN.md §9). With caching on, the accounting
  // identity extends to
  //   candidates == unit_faults + compile_failures + lint_triaged + simulated
  //                 + cache_hits
  // (a hit replays its verdict without touching the pipeline buckets), and
  //   cache_hits + cache_misses == candidates - unit_faults.
  // hits/misses are deterministic for a fixed seed at any thread count;
  // evictions and bytes depend on insertion interleaving once the capacity
  // binds, and on what earlier runs left in a shared cache.
  std::int64_t cache_hits = 0;       // candidates replayed from the cache
  std::int64_t cache_misses = 0;     // candidates that ran the pipeline (cache on)
  std::int64_t cache_evictions = 0;  // LRU evictions during this run
  std::int64_t cache_bytes = 0;      // resident payload bytes after the run
  double generate_seconds = 0.0;       // SI-CoT refine + candidate generation
  double compile_seconds = 0.0;        // syntax checking
  double lint_seconds = 0.0;           // static analysis (0 when lint is off)
  double prove_seconds = 0.0;          // equivalence proving (0 when prove off)
  double sim_seconds = 0.0;            // differential simulation
  double wall_seconds = 0.0;           // whole-run wall clock
  double cpu_seconds = 0.0;            // whole-run process CPU time
  int threads_used = 1;
};

// THE accounting identity, asserted centrally by the reducer (debug builds)
// and reusable by tests instead of re-deriving it per call site:
//   candidates + repair_rounds == unit_faults + compile_failures
//                 + lint_triaged + proven_equiv + proven_inequiv
//                 + simulated + cache_hits
// plus the structural corollaries (fault sub-kinds never exceed unit_faults;
// prove_fallback never exceeds simulated; with a cache attached,
// hits + misses == candidates + repair_rounds - unit_faults;
// repaired_pass + repair_exhausted never exceed repair_rounds). Holds at any
// thread count, injection rate, lint mode, prove mode, repair policy, and
// cache state. With repair off, repair_rounds == 0 and the identity is
// exactly the historical one.
bool counters_consistent(const EvalCounters& c);

// Diagnosable form of the same check: "" when every term holds, otherwise a
// semicolon-separated list naming each violated identity/corollary with the
// expected and actual values — so an accounting regression introduced by a
// new pipeline stage is readable straight off the test log instead of a
// bare boolean.
std::string counters_inconsistency(const EvalCounters& c);

// Run-wide lint aggregation (EvalRequest::lint / lint_triage). All tallies
// cover non-faulted candidates across every temperature and are
// deterministic for a fixed seed at any thread count.
struct LintSummary {
  bool enabled = false;
  std::int64_t findings = 0;            // total findings
  std::int64_t flagged_candidates = 0;  // candidates with >= 1 predictive finding
  // Candidates with >= 1 warning-or-error finding attributed to each
  // hallucination axis (a candidate counts once per axis): the run's static
  // hallucination-class histogram.
  std::array<std::int64_t, llm::kNumHalluAxes> axis_candidates{};
  std::map<std::string, std::int64_t> rule_counts;  // findings per rule id
  // Lint-vs-simulation confusion over compiled, non-faulted candidates:
  // "positive" = lint predicted functional failure; ground truth = the diff
  // testbench verdict (triaged candidates count as true positives — their
  // failure is proven, see DESIGN.md §8; proven-inequivalent candidates from
  // the haven::prove fast-path count the same way).
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t false_negatives = 0;
  std::int64_t true_negatives = 0;

  double precision() const;  // 1.0 when lint never fired
  double recall() const;     // 1.0 when nothing failed
  int dominant_axis() const;  // argmax of axis_candidates, -1 when all zero
};

// Findings of one candidate, recorded on SuiteResult::lint_findings in
// work-unit index order (candidates with no findings are omitted).
struct CandidateFindings {
  std::string task_id;
  int sample = 0;
  double temperature = 0.0;
  std::vector<lint::Finding> findings;
};

struct SuiteResult {
  std::string suite_name;
  std::string model_name;
  double temperature = 0.2;  // the reported (best) temperature
  std::vector<TaskResult> per_task;
  EvalCounters counters;  // aggregated over the full run (all temperatures)
  // Terminally faulted units across ALL temperatures, in work-unit index
  // order (empty on a healthy run).
  std::vector<UnitFault> faults;
  // Lint aggregation + per-candidate findings (empty unless lint enabled).
  LintSummary lint;
  std::vector<CandidateFindings> lint_findings;

  double pass_at(int k) const;         // functional
  double syntax_pass_at(int k) const;  // syntax
  // Per-modality pass counts (Table V rows): {passed, total} at pass@1
  // semantics, counting a task as passed if >= 1 of n samples passed.
  std::pair<int, int> modality_pass(symbolic::Modality m) const;
};

// Single-candidate outcome: (syntax_ok, func_ok, candidate_source).
struct CandidateOutcome {
  bool syntax_ok = false;
  bool func_ok = false;
  std::string source;
};

// Progress snapshot handed to EvalRequest::on_progress after each work unit
// is folded into the reduction. `task_id` views into the suite being
// evaluated and is valid only for the duration of the callback.
struct EvalProgress {
  std::size_t completed = 0;  // units reduced so far (1-based)
  std::size_t total = 0;      // temps * tasks * n_samples
  double temperature = 0.0;
  std::string_view task_id;
  int sample = 0;  // sample index within the task, [0, n_samples)
};
using ProgressCallback = std::function<void(const EvalProgress&)>;

// Everything one evaluation run needs besides the model and the suite.
// Fields are plain public data (aggregate-style assignment keeps working);
// the chainable with_*() setters below are the equivalent builder surface,
// bit-identical to field assignment, so a request can be composed inline
// and embedded verbatim (e.g. in serve::EvalJob):
//
//   engine = EvalEngine(EvalRequest{}
//                           .with_samples(5)
//                           .with_temperature(0.2)
//                           .with_threads(8)
//                           .with_cache(&cache)
//                           .with_lint_triage());
class EvalRequest {
 public:
  int n_samples = 10;
  std::vector<double> temperatures = {0.2, 0.5, 0.8};
  bool use_sicot = false;
  std::uint64_t seed = kDefaultEvalSeed;
  // Worker threads for the sample fan-out: 0 = one per hardware thread,
  // 1 = run serially on the calling thread (no pool). Ignored when an
  // external `pool` is set.
  int threads = 0;
  // External worker pool for the fan-out. NON-OWNING: the caller keeps the
  // pool alive for as long as this request (and any engine built from it) is
  // used; null = the engine spins up its own pool per evaluate() call.
  // Sharing one pool across evaluations (the haven::serve daemon's mode)
  // changes wall clock only, never results. Caveat: with a shared pool,
  // fail_fast aborts by throwing without cancelling the pool's queue —
  // cancel() would drop co-tenants' queued work.
  util::ThreadPool* pool = nullptr;
  // Invoked on the calling thread after each unit is reduced, in index
  // order; leave empty for no progress reporting.
  ProgressCallback on_progress;

  // --- static analysis ------------------------------------------------------
  // Run haven::lint over every candidate (compiled candidates get the full
  // reference-aware rule set against the task's golden module; compile
  // failures get attributed frontend findings). Findings land on
  // SuiteResult::lint / lint_findings. Lint draws nothing from the unit RNG,
  // so enabling it never changes verdicts.
  bool lint = false;
  // Additionally skip the differential simulation for candidates with a
  // PROVEN failure finding (see lint::Finding::proven): the candidate is
  // scored func_fail without simulating. Sound — proven findings imply the
  // diff test fails — so pass/fail verdicts are unchanged while simulated
  // cycles drop. Implies `lint`.
  bool lint_triage = false;

  // --- formal equivalence fast-path ----------------------------------------
  // Decide combinational candidates by combinational equivalence checking
  // (haven::prove, DESIGN.md §12) instead of simulation wherever that is
  // sound: the task is combinational, its exhaustive input sweep fits, the
  // golden module lowers cleanly, and no per-unit step budget is in force.
  // A proven verdict is bit-identical to the simulated one by construction;
  // anything the prover cannot mirror exactly falls back to the testbench.
  // Enabling prove therefore never changes SuiteResult verdicts, pass@k, or
  // the lint block — only the counter breakdown (proven_equiv /
  // proven_inequiv / prove_fallback) and wall time. Ordering with lint_triage:
  // a candidate with a proven lint failure is triaged first and never reaches
  // the prover (it counts once, under lint_triaged).
  bool prove = false;
  // Hard node budget shared by one proof attempt's AIG, BDD, and fallback
  // sweep (= prove::kDefaultNodeBudget; 0 = unbounded). Exhausting it defers
  // the candidate to simulation, counted under prove_fallback.
  std::uint64_t prove_budget = std::uint64_t{1} << 20;

  // --- closed-loop self-repair ---------------------------------------------
  // Bounded per-candidate repair loop (haven::repair, DESIGN.md §13): when a
  // candidate's verdict fails, its evidence (lint findings, sim mismatch
  // counterexample, prove witness, compile diagnostics) is distilled into a
  // RepairHint and the candidate is regenerated with the hinted
  // HallucinationProfile axes damped, up to repair.max_rounds times. Round 0
  // is bit-identical to the single-shot run (base RNG derivation untouched);
  // each repair round forks a fresh deterministic RNG from
  // (seed, unit, attempt, round), so pass@k is monotonically non-decreasing
  // in max_rounds and results stay thread-count invariant. The default
  // (max_rounds = 0) leaves every verdict, counter, and cache digest
  // bit-identical to the pre-repair engine.
  repair::RepairPolicy repair;

  // --- result cache ---------------------------------------------------------
  // Content-addressed memoization of the compile→lint→simulate stages (see
  // DESIGN.md §9). NON-OWNING: the caller keeps the cache alive for as long
  // as this request (and any EvalEngine built from it) is used; null = off.
  // A hit replays the stored verdict bit-identically — enabling the cache
  // never changes SuiteResult verdicts, pass@k, or the lint block, only the
  // counter breakdown (hits land in EvalCounters::cache_hits instead of the
  // pipeline buckets) and wall time. The cache may be shared across engines,
  // models, and suites: keys bind task identity, candidate content, knobs,
  // and the stimulus stream, so unrelated runs cannot collide.
  cache::ResultCache* cache = nullptr;

  // --- fault tolerance ------------------------------------------------------
  // Abort the whole run (throw EvalAborted, cancel the queue) on the first
  // terminally faulted unit instead of isolating it. Off by default: the
  // suite completes and faults land on SuiteResult::faults.
  bool fail_fast = false;
  // Per-attempt wall-clock deadline in milliseconds (0 = none), enforced
  // between pipeline stages and between simulated cycles.
  int deadline_ms = 0;
  // Per-simulation step budget forwarded to the differential testbench
  // (0 = unlimited; see StimulusSpec::step_budget).
  std::uint64_t sim_step_budget = 0;
  // Simulator backend for the differential testbench (compiled bytecode by
  // default; interpreter kept as the oracle). Backends are verdict-identical
  // — DESIGN.md §10 — so this knob never changes SuiteResult verdicts,
  // counters, or cache keys, only wall time.
  sim::SimBackend sim_backend = sim::kDefaultSimBackend;
  // Retry policy for transient faults (injected faults by default). With
  // retry.max_retries = 0 nothing is ever retried.
  util::RetryPolicy retry;

  // --- chainable builder surface -------------------------------------------
  // Each setter assigns the field of the same meaning and returns *this, so
  // requests compose inline. Builder-built and field-assigned requests are
  // bit-identical (regression-tested in serve_test).
  EvalRequest& with_samples(int n) { n_samples = n; return *this; }
  EvalRequest& with_temperatures(std::vector<double> temps) {
    temperatures = std::move(temps);
    return *this;
  }
  EvalRequest& with_temperature(double t) { temperatures = {t}; return *this; }
  EvalRequest& with_sicot(bool on = true) { use_sicot = on; return *this; }
  EvalRequest& with_seed(std::uint64_t s) { seed = s; return *this; }
  EvalRequest& with_threads(int n) { threads = n; return *this; }
  EvalRequest& with_pool(util::ThreadPool* p) { pool = p; return *this; }
  EvalRequest& with_progress(ProgressCallback cb) {
    on_progress = std::move(cb);
    return *this;
  }
  EvalRequest& with_lint(bool on = true) { lint = on; return *this; }
  EvalRequest& with_lint_triage(bool on = true) { lint_triage = on; return *this; }
  EvalRequest& with_prove(bool on = true) { prove = on; return *this; }
  EvalRequest& with_prove_budget(std::uint64_t nodes) {
    prove_budget = nodes;
    return *this;
  }
  EvalRequest& with_repair(const repair::RepairPolicy& policy) {
    repair = policy;
    return *this;
  }
  EvalRequest& with_repair_rounds(int rounds) { repair.max_rounds = rounds; return *this; }
  EvalRequest& with_repair_budget(int generations) {
    repair.attempt_budget = generations;
    return *this;
  }
  EvalRequest& with_repair_efficacy(double efficacy) {
    repair.efficacy = efficacy;
    return *this;
  }
  EvalRequest& with_cache(cache::ResultCache* c) { cache = c; return *this; }
  EvalRequest& with_fail_fast(bool on = true) { fail_fast = on; return *this; }
  EvalRequest& with_deadline_ms(int ms) { deadline_ms = ms; return *this; }
  EvalRequest& with_sim_budget(std::uint64_t steps) {
    sim_step_budget = steps;
    return *this;
  }
  EvalRequest& with_sim_backend(sim::SimBackend b) { sim_backend = b; return *this; }
  EvalRequest& with_retries(int max_retries) {
    retry.max_retries = max_retries;
    return *this;
  }
  EvalRequest& with_cot_model(const llm::SimLlm& model) { return set_cot_model(model); }

  // CoT prompting model for SI-CoT. The reference is NON-OWNING: the caller
  // keeps the model alive for as long as this request (and any EvalEngine
  // built from it) is used. When unset, SI-CoT interprets state diagrams
  // with the CodeGen model itself (the paper's default: "the same
  // pre-trained models for both").
  EvalRequest& set_cot_model(const llm::SimLlm& model) {
    cot_model_ = &model;
    return *this;
  }
  void clear_cot_model() { cot_model_ = nullptr; }
  bool has_cot_model() const { return cot_model_ != nullptr; }
  // Optional-style access: throws std::logic_error when no model is set.
  const llm::SimLlm& cot_model() const {
    if (cot_model_ == nullptr) throw std::logic_error("EvalRequest::cot_model: none set");
    return *cot_model_;
  }
  const llm::SimLlm* cot_model_ptr() const { return cot_model_; }

 private:
  const llm::SimLlm* cot_model_ = nullptr;
};

class EvalEngine {
 public:
  EvalEngine() = default;
  explicit EvalEngine(EvalRequest request) : request_(std::move(request)) {}

  const EvalRequest& request() const { return request_; }
  EvalRequest& request() { return request_; }

  // Evaluate one (model, suite) pair: run every configured temperature and
  // return the best by functional pass@1 (first wins on ties), with the
  // run-wide counter block attached.
  SuiteResult evaluate(const llm::SimLlm& model, const Suite& suite) const;

  // Generate and check a single candidate with the request's SI-CoT
  // settings, drawing from the caller's rng. Exposed for tests, examples,
  // and microbenchmarks. Lint/triage, prove, and repair settings are ignored
  // here (building a reference profile / deciding prove eligibility /
  // driving the repair loop is evaluate()'s per-task job); the verdict is
  // always the single-shot simulated one.
  CandidateOutcome check(const llm::SimLlm& model, const EvalTask& task, double temperature,
                         util::Rng& rng) const;

 private:
  EvalRequest request_;
};

}  // namespace haven::eval
