#include "eval/report.h"

#include "util/strings.h"

namespace haven::eval {

std::string pct(double fraction) { return util::format("%.1f", fraction * 100.0); }

std::string pass_total(std::pair<int, int> pt) {
  const double rate = pt.second == 0 ? 0.0 : 100.0 * pt.first / pt.second;
  return util::format("%d/%d(%.1f%%)", pt.first, pt.second, rate);
}

std::string summarize(const SuiteResult& result) {
  return util::format("%s on %s: pass@1=%s pass@5=%s syntax@5=%s (T=%.1f)",
                      result.model_name.c_str(), result.suite_name.c_str(),
                      pct(result.pass_at(1)).c_str(), pct(result.pass_at(5)).c_str(),
                      pct(result.syntax_pass_at(5)).c_str(), result.temperature);
}

std::string summarize(const EvalCounters& c) {
  std::string line = util::format(
      "%lld candidates (%lld compile failures, %lld sim mismatches, %lld SI-CoT "
      "refinements); gen %.2fs compile %.2fs sim %.2fs; wall %.2fs cpu %.2fs on %d "
      "thread%s",
      static_cast<long long>(c.candidates), static_cast<long long>(c.compile_failures),
      static_cast<long long>(c.sim_mismatches), static_cast<long long>(c.sicot_refinements),
      c.generate_seconds, c.compile_seconds, c.sim_seconds, c.wall_seconds, c.cpu_seconds,
      c.threads_used, c.threads_used == 1 ? "" : "s");
  if (c.unit_faults != 0 || c.retries != 0) {
    line += util::format("; %lld unit faults (%lld deadline, %lld sim-budget), %lld retries",
                         static_cast<long long>(c.unit_faults),
                         static_cast<long long>(c.deadline_exceeded),
                         static_cast<long long>(c.cycles_aborted),
                         static_cast<long long>(c.retries));
  }
  return line;
}

}  // namespace haven::eval
