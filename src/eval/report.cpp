#include "eval/report.h"

#include "util/strings.h"

namespace haven::eval {

std::string pct(double fraction) { return util::format("%.1f", fraction * 100.0); }

std::string pass_total(std::pair<int, int> pt) {
  const double rate = pt.second == 0 ? 0.0 : 100.0 * pt.first / pt.second;
  return util::format("%d/%d(%.1f%%)", pt.first, pt.second, rate);
}

std::string summarize(const SuiteResult& result) {
  return util::format("%s on %s: pass@1=%s pass@5=%s syntax@5=%s (T=%.1f)",
                      result.model_name.c_str(), result.suite_name.c_str(),
                      pct(result.pass_at(1)).c_str(), pct(result.pass_at(5)).c_str(),
                      pct(result.syntax_pass_at(5)).c_str(), result.temperature);
}

std::string summarize(const EvalCounters& c) {
  std::string line = util::format(
      "%lld candidates (%lld compile failures, %lld sim mismatches, %lld SI-CoT "
      "refinements); gen %.2fs compile %.2fs sim %.2fs; wall %.2fs cpu %.2fs on %d "
      "thread%s",
      static_cast<long long>(c.candidates), static_cast<long long>(c.compile_failures),
      static_cast<long long>(c.sim_mismatches), static_cast<long long>(c.sicot_refinements),
      c.generate_seconds, c.compile_seconds, c.sim_seconds, c.wall_seconds, c.cpu_seconds,
      c.threads_used, c.threads_used == 1 ? "" : "s");
  if (c.unit_faults != 0 || c.retries != 0) {
    line += util::format("; %lld unit faults (%lld deadline, %lld sim-budget), %lld retries",
                         static_cast<long long>(c.unit_faults),
                         static_cast<long long>(c.deadline_exceeded),
                         static_cast<long long>(c.cycles_aborted),
                         static_cast<long long>(c.retries));
  }
  if (c.lint_triaged != 0 || c.lint_findings != 0 || c.lint_seconds != 0.0) {
    line += util::format("; lint %lld findings, %lld triaged / %lld simulated "
                         "(%lld vectors), lint %.2fs",
                         static_cast<long long>(c.lint_findings),
                         static_cast<long long>(c.lint_triaged),
                         static_cast<long long>(c.simulated),
                         static_cast<long long>(c.sim_vectors), c.lint_seconds);
  }
  if (c.proven_equiv != 0 || c.proven_inequiv != 0 || c.prove_fallback != 0 ||
      c.prove_seconds != 0.0) {
    line += util::format("; prove %lld equiv + %lld inequiv / %lld fallback, prove %.2fs",
                         static_cast<long long>(c.proven_equiv),
                         static_cast<long long>(c.proven_inequiv),
                         static_cast<long long>(c.prove_fallback), c.prove_seconds);
  }
  if (c.repair_rounds != 0 || c.repaired_pass != 0 || c.repair_exhausted != 0) {
    line += util::format("; repair %lld rounds, %lld repaired / %lld exhausted",
                         static_cast<long long>(c.repair_rounds),
                         static_cast<long long>(c.repaired_pass),
                         static_cast<long long>(c.repair_exhausted));
  }
  if (c.cache_hits != 0 || c.cache_misses != 0) {
    line += "; " + summarize_cache(c);
  }
  return line;
}

std::string summarize_cache(const EvalCounters& c) {
  const std::int64_t lookups = c.cache_hits + c.cache_misses;
  if (lookups == 0) return "cache: off";
  const double rate = 100.0 * static_cast<double>(c.cache_hits) / static_cast<double>(lookups);
  return util::format("cache: %lld hits / %lld misses (%.1f%% hit rate), "
                      "%lld evictions, %.1f KiB resident",
                      static_cast<long long>(c.cache_hits),
                      static_cast<long long>(c.cache_misses), rate,
                      static_cast<long long>(c.cache_evictions),
                      static_cast<double>(c.cache_bytes) / 1024.0);
}

std::string summarize(const LintSummary& lint) {
  if (!lint.enabled) return "";
  std::string out = util::format(
      "lint: %lld findings on %lld flagged candidates; "
      "triage precision %s recall %s (tp=%lld fp=%lld fn=%lld tn=%lld)",
      static_cast<long long>(lint.findings),
      static_cast<long long>(lint.flagged_candidates), pct(lint.precision()).c_str(),
      pct(lint.recall()).c_str(), static_cast<long long>(lint.true_positives),
      static_cast<long long>(lint.false_positives),
      static_cast<long long>(lint.false_negatives),
      static_cast<long long>(lint.true_negatives));
  std::string axes;
  for (int a = 0; a < llm::kNumHalluAxes; ++a) {
    const std::int64_t n = lint.axis_candidates[static_cast<std::size_t>(a)];
    if (n == 0) continue;
    if (!axes.empty()) axes += " ";
    axes += util::format("%s=%lld",
                         llm::hallu_axis_name(static_cast<llm::HalluAxis>(a)).c_str(),
                         static_cast<long long>(n));
  }
  if (!axes.empty()) out += "\n  axis histogram: " + axes;
  return out;
}

std::string lint_json(const SuiteResult& result) {
  const LintSummary& lint = result.lint;
  std::string out = "{";
  out += util::format(
      "\"enabled\":%s,\"findings\":%lld,\"flagged_candidates\":%lld,"
      "\"candidates\":%lld,\"lint_triaged\":%lld,\"simulated\":%lld,"
      "\"sim_vectors\":%lld,"
      "\"true_positives\":%lld,\"false_positives\":%lld,"
      "\"false_negatives\":%lld,\"true_negatives\":%lld,"
      "\"precision\":%.4f,\"recall\":%.4f",
      lint.enabled ? "true" : "false", static_cast<long long>(lint.findings),
      static_cast<long long>(lint.flagged_candidates),
      static_cast<long long>(result.counters.candidates),
      static_cast<long long>(result.counters.lint_triaged),
      static_cast<long long>(result.counters.simulated),
      static_cast<long long>(result.counters.sim_vectors),
      static_cast<long long>(lint.true_positives),
      static_cast<long long>(lint.false_positives),
      static_cast<long long>(lint.false_negatives),
      static_cast<long long>(lint.true_negatives), lint.precision(), lint.recall());
  out += ",\"axis_candidates\":{";
  bool first = true;
  for (int a = 0; a < llm::kNumHalluAxes; ++a) {
    if (!first) out += ",";
    first = false;
    out += util::format("\"%s\":%lld",
                        llm::hallu_axis_name(static_cast<llm::HalluAxis>(a)).c_str(),
                        static_cast<long long>(
                            lint.axis_candidates[static_cast<std::size_t>(a)]));
  }
  out += "},\"rule_counts\":{";
  first = true;
  for (const auto& [rule, n] : lint.rule_counts) {
    if (!first) out += ",";
    first = false;
    out += util::format("\"%s\":%lld", rule.c_str(), static_cast<long long>(n));
  }
  out += "},\"candidates_with_findings\":[";
  first = true;
  for (const auto& cf : result.lint_findings) {
    if (!first) out += ",";
    first = false;
    out += util::format("{\"task\":\"%s\",\"sample\":%d,\"temperature\":%.2f,\"findings\":",
                        cf.task_id.c_str(), cf.sample, cf.temperature);
    out += lint::findings_json(cf.findings);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace haven::eval
