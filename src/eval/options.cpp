#include "eval/options.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/strings.h"

namespace haven::eval {

RequestOptions RequestOptions::parse(int argc, char** argv,
                                     std::vector<std::string>* leftover) {
  RequestOptions options;
  auto usage_error = [&](const std::string& message) {
    std::cerr << message << "\n" << flag_help() << "\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    // "--flag=value" or "--flag value".
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(arg, flag, len) != 0) return nullptr;
      if (arg[len] == '=') return arg + len + 1;
      if (arg[len] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    auto boolean = [&](const char* flag) { return std::strcmp(arg, flag) == 0; };

    if (boolean("--fast")) {
      options.fast = true;
      options.n_samples = 5;  // pass@5 needs k <= n
      options.temperatures = {0.2};
    } else if (boolean("--progress")) {
      options.progress = true;
    } else if (boolean("--sicot")) {
      options.use_sicot = true;
    } else if (boolean("--serial")) {
      options.threads = 1;
    } else if (boolean("--fail-fast")) {
      options.fail_fast = true;
    } else if (boolean("--lint")) {
      options.lint = true;
    } else if (boolean("--lint-triage")) {
      options.lint_triage = true;
    } else if (boolean("--lint-json")) {
      options.lint = true;
      options.lint_json = true;
    } else if (boolean("--prove")) {
      options.prove = true;
    } else if (boolean("--no-prove")) {
      options.no_prove = true;
    } else if (boolean("--cache")) {
      options.cache = true;
    } else if (boolean("--no-cache")) {
      options.no_cache = true;
    } else if (const char* v = value_of("--n")) {
      options.n_samples = std::atoi(v);
      if (options.n_samples <= 0) usage_error("--n wants a positive sample count");
    } else if (const char* v = value_of("--temps")) {
      options.temperatures.clear();
      for (const std::string& field : util::split(v, ',')) {
        if (util::trim(field).empty()) continue;
        options.temperatures.push_back(std::atof(field.c_str()));
      }
      if (options.temperatures.empty()) usage_error("--temps wants e.g. 0.2,0.5,0.8");
    } else if (const char* v = value_of("--seed")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--threads")) {
      options.threads = std::atoi(v);
    } else if (const char* v = value_of("--deadline-ms")) {
      options.deadline_ms = std::atoi(v);
    } else if (const char* v = value_of("--retries")) {
      options.retries = std::atoi(v);
    } else if (const char* v = value_of("--sim-budget")) {
      options.sim_step_budget = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--sim-backend")) {
      if (auto backend = sim::parse_backend(v)) {
        options.sim_backend = *backend;
      } else {
        usage_error(std::string("unknown --sim-backend '") + v + "' (want " +
                    std::string(sim::kBackendValues) + ")");
      }
    } else if (const char* v = value_of("--prove-budget")) {
      options.prove_budget = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--inject")) {
      options.inject = std::atof(v);
    } else if (const char* v = value_of("--inject-seed")) {
      options.inject_seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--cache-dir")) {
      options.cache_dir = v;
      options.cache = true;
    } else if (const char* v = value_of("--cache-mb")) {
      options.cache_mb = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value_of("--bench-json")) {
      options.bench_json = v;
    } else if (leftover != nullptr) {
      leftover->push_back(arg);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      usage_error(std::string("unknown flag '") + arg + "'");
    }
    // Bare operands with no sink are silently ignored, matching the old
    // per-bench parsers (benches take no positional arguments).
  }
  if (!options.no_cache && (options.cache || !options.cache_dir.empty())) {
    cache::CacheConfig config;
    config.max_bytes = options.cache_mb << 20;
    config.dir = options.cache_dir;
    options.result_cache = std::make_shared<cache::ResultCache>(config);
  }
  return options;
}

const char* RequestOptions::flag_help() {
  return "eval flags: --fast --n=N --temps=a,b,c --seed=N --sicot --progress\n"
         "            --threads=N --serial --deadline-ms=N --retries=N --fail-fast\n"
         "            --sim-budget=N --sim-backend=interp|compiled\n"
         "            --inject=P --inject-seed=N --lint --lint-triage --lint-json\n"
         "            --prove --no-prove --prove-budget=N\n"
         "            --cache --no-cache --cache-dir=PATH --cache-mb=N\n"
         "            --bench-json=PATH";
}

EvalRequest RequestOptions::request() const {
  EvalRequest req;
  req.n_samples = n_samples;
  req.temperatures = temperatures;
  req.seed = seed;
  req.use_sicot = use_sicot;
  req.threads = threads;
  req.deadline_ms = deadline_ms;
  req.retry.max_retries = retries;
  req.fail_fast = fail_fast;
  req.sim_step_budget = sim_step_budget;
  req.sim_backend = sim_backend;
  req.lint = lint;
  req.lint_triage = lint_triage;
  req.prove = prove && !no_prove;
  req.prove_budget = prove_budget;
  req.cache = result_cache.get();
  if (progress) req.on_progress = progress_printer();
  return req;
}

EvalRequest RequestOptions::sicot_request(const llm::SimLlm& cot_model) const {
  EvalRequest req = request();
  req.use_sicot = true;
  req.set_cot_model(cot_model);
  return req;
}

ProgressCallback progress_printer() {
  return [](const EvalProgress& p) {
    if (p.total == 0) return;
    const std::size_t step = std::max<std::size_t>(std::size_t{1}, p.total / 10);
    if (p.completed % step == 0 || p.completed == p.total) {
      std::cerr << "    [" << p.completed << "/" << p.total << " candidates]\n";
    }
  };
}

ChaosScope::ChaosScope(const RequestOptions& options) : injector_(options.inject_seed) {
  if (options.inject <= 0.0) return;
  injector_.arm(util::kSiteLlmGenerate, options.inject);
  injector_.arm(util::kSiteEvalCompile, options.inject);
  injector_.arm(util::kSiteSimRun, options.inject);
  injector_.install();
  armed_ = true;
  std::cerr << "  [chaos] injecting faults at p=" << options.inject << " per site (seed "
            << options.inject_seed << ")\n";
}

ChaosScope::~ChaosScope() {
  if (!armed_) return;
  injector_.uninstall();
  std::cerr << "  [chaos] " << injector_.total_injected() << " faults injected ("
            << injector_.injected(util::kSiteLlmGenerate) << " llm, "
            << injector_.injected(util::kSiteEvalCompile) << " compile, "
            << injector_.injected(util::kSiteSimRun) << " sim)\n";
}

}  // namespace haven::eval
