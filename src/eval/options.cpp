#include "eval/options.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/strings.h"

namespace haven::eval {
namespace {

// One entry per flag: the spec both drives parse() and renders the help
// text, so a flag and its documentation cannot drift apart. `value` is the
// placeholder shown in help (null = boolean flag). `apply` mutates the
// options; it reports malformed values by filling *error and returning
// false (parse() turns that into a usage error, exit 2).
struct FlagSpec {
  const char* name;   // including the leading "--"
  const char* value;  // e.g. "N"; nullptr for boolean flags
  const char* help;   // one-line description for --help
  bool (*apply)(RequestOptions& o, const char* v, std::string* error);
};

const FlagSpec kFlags[] = {
    {"--fast", nullptr, "CI-friendly protocol: n=5, single temperature 0.2",
     [](RequestOptions& o, const char*, std::string*) {
       o.fast = true;
       o.n_samples = 5;  // pass@5 needs k <= n
       o.temperatures = {0.2};
       return true;
     }},
    {"--n", "N", "samples per task (pass@k needs k <= n)",
     [](RequestOptions& o, const char* v, std::string* error) {
       o.n_samples = std::atoi(v);
       if (o.n_samples <= 0) {
         *error = "--n wants a positive sample count";
         return false;
       }
       return true;
     }},
    {"--temps", "a,b,c", "sampling temperatures to sweep",
     [](RequestOptions& o, const char* v, std::string* error) {
       o.temperatures.clear();
       for (const std::string& field : util::split(v, ',')) {
         if (util::trim(field).empty()) continue;
         o.temperatures.push_back(std::atof(field.c_str()));
       }
       if (o.temperatures.empty()) {
         *error = "--temps wants e.g. 0.2,0.5,0.8";
         return false;
       }
       return true;
     }},
    {"--seed", "N", "base evaluation seed",
     [](RequestOptions& o, const char* v, std::string*) {
       o.seed = std::strtoull(v, nullptr, 10);
       return true;
     }},
    {"--sicot", nullptr, "refine prompts through the SI-CoT pipeline",
     [](RequestOptions& o, const char*, std::string*) {
       o.use_sicot = true;
       return true;
     }},
    {"--progress", nullptr, "coarse progress lines on stderr",
     [](RequestOptions& o, const char*, std::string*) {
       o.progress = true;
       return true;
     }},
    {"--threads", "N", "worker threads (0 = one per hardware thread)",
     [](RequestOptions& o, const char* v, std::string*) {
       o.threads = std::atoi(v);
       return true;
     }},
    {"--serial", nullptr, "single-threaded evaluation (= --threads=1)",
     [](RequestOptions& o, const char*, std::string*) {
       o.threads = 1;
       return true;
     }},
    {"--deadline-ms", "N", "per-attempt wall-clock deadline (0 = none)",
     [](RequestOptions& o, const char* v, std::string*) {
       o.deadline_ms = std::atoi(v);
       return true;
     }},
    {"--retries", "N", "transient-fault retries per work unit",
     [](RequestOptions& o, const char* v, std::string*) {
       o.retries = std::atoi(v);
       return true;
     }},
    {"--fail-fast", nullptr, "abort the run on the first faulted unit",
     [](RequestOptions& o, const char*, std::string*) {
       o.fail_fast = true;
       return true;
     }},
    {"--sim-budget", "N", "simulation step budget per candidate (0 = unbounded)",
     [](RequestOptions& o, const char* v, std::string*) {
       o.sim_step_budget = std::strtoull(v, nullptr, 10);
       return true;
     }},
    {"--sim-backend", "interp|compiled", "simulator backend (verdict-identical)",
     [](RequestOptions& o, const char* v, std::string* error) {
       if (auto backend = sim::parse_backend(v)) {
         o.sim_backend = *backend;
         return true;
       }
       *error = std::string("unknown --sim-backend '") + v + "' (want " +
                std::string(sim::kBackendValues) + ")";
       return false;
     }},
    {"--inject", "P", "chaos-mode fault probability per site",
     [](RequestOptions& o, const char* v, std::string*) {
       o.inject = std::atof(v);
       return true;
     }},
    {"--inject-seed", "N", "chaos-mode injection seed",
     [](RequestOptions& o, const char* v, std::string*) {
       o.inject_seed = std::strtoull(v, nullptr, 10);
       return true;
     }},
    {"--lint", nullptr, "lint candidates against the golden reference profile",
     [](RequestOptions& o, const char*, std::string*) {
       o.lint = true;
       return true;
     }},
    {"--lint-triage", nullptr, "skip simulation when lint proves failure",
     [](RequestOptions& o, const char*, std::string*) {
       o.lint_triage = true;
       return true;
     }},
    {"--lint-json", nullptr, "emit per-candidate findings as JSON (implies --lint)",
     [](RequestOptions& o, const char*, std::string*) {
       o.lint = true;
       o.lint_json = true;
       return true;
     }},
    {"--prove", nullptr, "formal equivalence fast-path before simulation",
     [](RequestOptions& o, const char*, std::string*) {
       o.prove = true;
       return true;
     }},
    {"--no-prove", nullptr, "force proving off",
     [](RequestOptions& o, const char*, std::string*) {
       o.no_prove = true;
       return true;
     }},
    {"--prove-budget", "N", "BDD node budget per proof (0 = unbounded)",
     [](RequestOptions& o, const char* v, std::string*) {
       o.prove_budget = std::strtoull(v, nullptr, 10);
       return true;
     }},
    {"--repair-rounds", "N", "self-repair rounds per failed candidate (0 = off)",
     [](RequestOptions& o, const char* v, std::string* error) {
       o.repair_rounds = std::atoi(v);
       if (o.repair_rounds < 0) {
         *error = "--repair-rounds wants an integer >= 0";
         return false;
       }
       return true;
     }},
    {"--repair-budget", "N", "total generations per candidate incl. round 0 (0 = rounds only)",
     [](RequestOptions& o, const char* v, std::string* error) {
       o.repair_budget = std::atoi(v);
       if (o.repair_budget < 0) {
         *error = "--repair-budget wants an integer >= 0";
         return false;
       }
       return true;
     }},
    {"--repair-efficacy", "F", "repair feedback efficacy factor in [0,1]",
     [](RequestOptions& o, const char* v, std::string* error) {
       o.repair_efficacy = std::atof(v);
       if (o.repair_efficacy < 0.0 || o.repair_efficacy > 1.0) {
         *error = "--repair-efficacy wants a number in [0, 1]";
         return false;
       }
       return true;
     }},
    {"--cache", nullptr, "in-memory result cache",
     [](RequestOptions& o, const char*, std::string*) {
       o.cache = true;
       return true;
     }},
    {"--no-cache", nullptr, "force caching off",
     [](RequestOptions& o, const char*, std::string*) {
       o.no_cache = true;
       return true;
     }},
    {"--cache-dir", "PATH", "persistent cache artifact directory (implies --cache)",
     [](RequestOptions& o, const char* v, std::string*) {
       o.cache_dir = v;
       o.cache = true;
       return true;
     }},
    {"--cache-mb", "N", "result-cache budget in MiB",
     [](RequestOptions& o, const char* v, std::string*) {
       o.cache_mb = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
       return true;
     }},
    {"--bench-json", "PATH", "append a machine-readable run record",
     [](RequestOptions& o, const char* v, std::string*) {
       o.bench_json = v;
       return true;
     }},
};

std::string render_flag(const FlagSpec& spec) {
  std::string s = spec.name;
  if (spec.value != nullptr) {
    s += "=";
    s += spec.value;
  }
  return s;
}

// Full per-flag listing behind --help.
std::string help_text() {
  std::string out = "Evaluation flags (one grammar for every eval front end):\n";
  for (const FlagSpec& spec : kFlags) {
    out += util::format("  %-28s %s\n", render_flag(spec).c_str(), spec.help);
  }
  out += util::format("  %-28s %s\n", "--help", "print this help and exit");
  return out;
}

}  // namespace

RequestOptions RequestOptions::parse(int argc, char** argv,
                                     std::vector<std::string>* leftover) {
  RequestOptions options;
  auto usage_error = [&](const std::string& message) {
    std::cerr << message << "\n" << flag_help() << "\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      std::cout << help_text();
      std::exit(0);
    }
    const FlagSpec* matched = nullptr;
    const char* value = nullptr;
    for (const FlagSpec& spec : kFlags) {
      const std::size_t len = std::strlen(spec.name);
      if (std::strncmp(arg, spec.name, len) != 0) continue;
      if (spec.value == nullptr) {
        // Boolean flags match exactly; "--flag=x" is not a boolean match.
        if (arg[len] != '\0') continue;
        matched = &spec;
      } else if (arg[len] == '=') {
        matched = &spec;
        value = arg + len + 1;
      } else if (arg[len] == '\0') {
        if (i + 1 >= argc) usage_error(std::string(spec.name) + " wants a value");
        matched = &spec;
        value = argv[++i];
      } else {
        continue;  // shared prefix of a longer flag (e.g. "--n" vs "--no-cache")
      }
      break;
    }
    if (matched != nullptr) {
      std::string error;
      if (!matched->apply(options, value, &error)) usage_error(error);
    } else if (leftover != nullptr) {
      leftover->push_back(arg);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      usage_error(std::string("unknown flag '") + arg + "'");
    }
    // Bare operands with no sink are silently ignored, matching the old
    // per-bench parsers (benches take no positional arguments).
  }
  if (!options.no_cache && (options.cache || !options.cache_dir.empty())) {
    cache::CacheConfig config;
    config.max_bytes = options.cache_mb << 20;
    config.dir = options.cache_dir;
    options.result_cache = std::make_shared<cache::ResultCache>(config);
  }
  return options;
}

const char* RequestOptions::flag_help() {
  // Compact wrapped summary for usage errors, rendered from the same table.
  static const std::string text = [] {
    std::string out = "eval flags:";
    std::size_t column = out.size();
    for (const FlagSpec& spec : kFlags) {
      const std::string flag = render_flag(spec);
      if (column + 1 + flag.size() > 78) {
        out += "\n           ";
        column = 11;
      }
      out += " " + flag;
      column += 1 + flag.size();
    }
    return out;
  }();
  return text.c_str();
}

EvalRequest RequestOptions::request() const {
  EvalRequest req;
  req.n_samples = n_samples;
  req.temperatures = temperatures;
  req.seed = seed;
  req.use_sicot = use_sicot;
  req.threads = threads;
  req.deadline_ms = deadline_ms;
  req.retry.max_retries = retries;
  req.fail_fast = fail_fast;
  req.sim_step_budget = sim_step_budget;
  req.sim_backend = sim_backend;
  req.lint = lint;
  req.lint_triage = lint_triage;
  req.prove = prove && !no_prove;
  req.prove_budget = prove_budget;
  req.repair.max_rounds = repair_rounds;
  req.repair.attempt_budget = repair_budget;
  req.repair.efficacy = repair_efficacy;
  req.cache = result_cache.get();
  if (progress) req.on_progress = progress_printer();
  return req;
}

EvalRequest RequestOptions::sicot_request(const llm::SimLlm& cot_model) const {
  EvalRequest req = request();
  req.use_sicot = true;
  req.set_cot_model(cot_model);
  return req;
}

ProgressCallback progress_printer() {
  return [](const EvalProgress& p) {
    if (p.total == 0) return;
    const std::size_t step = std::max<std::size_t>(std::size_t{1}, p.total / 10);
    if (p.completed % step == 0 || p.completed == p.total) {
      std::cerr << "    [" << p.completed << "/" << p.total << " candidates]\n";
    }
  };
}

ChaosScope::ChaosScope(const RequestOptions& options) : injector_(options.inject_seed) {
  if (options.inject <= 0.0) return;
  injector_.arm(util::kSiteLlmGenerate, options.inject);
  injector_.arm(util::kSiteEvalCompile, options.inject);
  injector_.arm(util::kSiteSimRun, options.inject);
  injector_.install();
  armed_ = true;
  std::cerr << "  [chaos] injecting faults at p=" << options.inject << " per site (seed "
            << options.inject_seed << ")\n";
}

ChaosScope::~ChaosScope() {
  if (!armed_) return;
  injector_.uninstall();
  std::cerr << "  [chaos] " << injector_.total_injected() << " faults injected ("
            << injector_.injected(util::kSiteLlmGenerate) << " llm, "
            << injector_.injected(util::kSiteEvalCompile) << " compile, "
            << injector_.injected(util::kSiteSimRun) << " sim)\n";
}

}  // namespace haven::eval
