#include "eval/suites.h"

#include "logic/exprgen.h"
#include "util/strings.h"

namespace haven::eval {

using llm::CombPresentation;
using llm::PromptStyle;
using llm::TaskGenConfig;
using llm::TaskKind;
using llm::TaskSpec;

namespace {

constexpr std::uint64_t kMachineSeed = 0x6d61'6368'696e'6531ULL;
constexpr std::uint64_t kHumanSeed = 0x6875'6d61'6e20'2020ULL;
constexpr std::uint64_t kRtllmSeed = 0x7274'6c6c'6d20'2020ULL;

// Force a comb spec with the given presentation and variable count.
TaskSpec make_comb(util::Rng& rng, std::size_t nvars, CombPresentation pres,
                   bool want_minimal = false) {
  TaskSpec spec;
  spec.kind = TaskKind::kCombExpr;
  logic::ExprGenConfig egc;
  egc.num_vars = nvars;
  egc.max_depth = nvars <= 2 ? 3 : 4;
  logic::ExprGenerator gen(egc);
  spec.expr = gen.generate_nontrivial(rng);
  spec.comb_inputs = logic::ExprGenerator::default_var_names(nvars);
  spec.presentation = pres;
  spec.want_minimal = want_minimal;
  return spec;
}

TaskSpec make_fsm(util::Rng& rng, int min_states, int max_states) {
  TaskSpec spec;
  spec.kind = TaskKind::kFsm;
  symbolic::StateDiagramGenConfig cfg;
  cfg.min_states = min_states;
  cfg.max_states = max_states;
  spec.diagram = symbolic::generate_state_diagram(rng, cfg);
  spec.seq.reset = rng.chance(0.4) ? llm::ResetKind::kAsync : llm::ResetKind::kSync;
  return spec;
}

}  // namespace

Suite build_verilogeval_machine() {
  Suite suite;
  suite.name = "VerilogEval-machine";
  util::Rng rng(kMachineSeed);

  // GPT-generated tasks: prose only, simpler mix, verbose phrasing.
  TaskGenConfig config;
  config.p_truth_table = 0;
  config.p_waveform = 0;
  config.p_kmap = 0;
  config.w_fsm = 0.4;           // machine set has few state machines
  config.comb_max_vars = 3;
  config.max_width = 8;
  config.p_negedge = 0.05;
  config.p_active_low = 0.15;

  for (int i = 0; i < 143; ++i) {
    TaskSpec spec = llm::generate_task(rng, config);
    suite.tasks.push_back(make_task(util::format("machine_%03d", i), spec,
                                    PromptStyle::kVanilla, rng));
  }
  return suite;
}

namespace {

// The 156 human tasks: 44 symbolic + 112 engineer-style prose tasks, in a
// deterministic interleaving. Built once; v1 and v2 share the specs.
std::vector<TaskSpec> human_specs() {
  std::vector<TaskSpec> specs;
  util::Rng rng(kHumanSeed);

  // 10 truth tables (2 of them posed as Karnaugh maps with "most concise").
  for (int i = 0; i < 10; ++i) {
    const std::size_t nvars = 2 + static_cast<std::size_t>(i % 3);
    const bool kmap = i >= 8;
    specs.push_back(make_comb(rng, nvars,
                              kmap ? CombPresentation::kKarnaughMap
                                   : CombPresentation::kTruthTable,
                              kmap || i % 3 == 0));
  }
  // 13 waveforms.
  for (int i = 0; i < 13; ++i) {
    specs.push_back(make_comb(rng, 2 + static_cast<std::size_t>(i % 3),
                              CombPresentation::kWaveform));
  }
  // 21 state diagrams.
  for (int i = 0; i < 21; ++i) {
    specs.push_back(make_fsm(rng, 2 + i % 2, 3 + i % 3));
  }
  // 112 engineer-style prose tasks.
  TaskGenConfig config;
  config.p_truth_table = 0;
  config.p_waveform = 0;
  config.p_kmap = 0;
  config.w_fsm = 0;  // FSMs in the human set come as diagrams above
  for (int i = 0; i < 112; ++i) {
    specs.push_back(llm::generate_task(rng, config));
  }
  // Deterministic interleave so symbolic tasks spread through the suite.
  util::Rng shuffle_rng(kHumanSeed ^ 0xff);
  shuffle_rng.shuffle(specs);
  return specs;
}

}  // namespace

Suite build_verilogeval_human() {
  Suite suite;
  suite.name = "VerilogEval-human";
  util::Rng rng(kHumanSeed ^ 0x1);
  const auto specs = human_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    suite.tasks.push_back(make_task(util::format("human_%03zu", i), specs[i],
                                    PromptStyle::kEngineer, rng));
  }
  return suite;
}

Suite build_verilogeval_v2() {
  Suite suite;
  suite.name = "VerilogEval-v2";
  util::Rng rng(kHumanSeed ^ 0x2);
  const auto specs = human_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    suite.tasks.push_back(make_task(util::format("v2_%03zu", i), specs[i],
                                    PromptStyle::kChat, rng));
  }
  return suite;
}

Suite build_symbolic44() {
  Suite full = build_verilogeval_human();
  Suite suite;
  suite.name = "Symbolic-44";
  for (const auto& task : full.tasks) {
    if (task.modality != symbolic::Modality::kNone) suite.tasks.push_back(task);
  }
  return suite;
}

Suite build_rtllm() {
  Suite suite;
  suite.name = "RTLLM-v1.1";
  util::Rng rng(kRtllmSeed);

  // 29 larger designs: wide datapaths, dividers, FSMs with more states.
  TaskGenConfig config;
  config.w_comb = 0.6;
  config.w_alu = 2.0;
  config.w_counter = 1.5;
  config.w_shift = 1.2;
  config.w_clock_divider = 1.5;
  config.w_fsm = 1.5;
  config.w_edge_detector = 1.0;
  config.w_mux = 0.8;
  config.w_decoder = 0.8;
  config.w_adder = 1.2;
  config.max_width = 16;
  config.fsm_min_states = 4;
  config.fsm_max_states = 6;
  config.p_truth_table = 0;
  config.p_waveform = 0;
  config.p_kmap = 0;

  for (int i = 0; i < 29; ++i) {
    TaskSpec spec = llm::generate_task(rng, config);
    // RTLLM designs are bigger: widen datapaths beyond the default cap.
    if (spec.kind == TaskKind::kAlu || spec.kind == TaskKind::kAdder ||
        spec.kind == TaskKind::kRegister) {
      spec.width = std::max(spec.width, 16);
    }
    suite.tasks.push_back(make_task(util::format("rtllm_%02d", i), spec,
                                    PromptStyle::kEngineer, rng));
  }
  return suite;
}

}  // namespace haven::eval
