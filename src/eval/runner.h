// Legacy evaluation-runner API, kept as thin compatibility wrappers over
// eval::EvalEngine (see eval/engine.h for the engine and the redesigned
// EvalRequest). New code should construct an EvalEngine directly; these
// free functions remain so older call sites keep compiling and to pin the
// contract that the engine's serial and parallel paths are bit-identical
// to the original implementation. Protocol (unchanged): temperatures
// {0.2, 0.5, 0.8}, n = 10, best temperature reported.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/engine.h"
#include "eval/passk.h"
#include "llm/simllm.h"

namespace haven::eval {

struct RunnerConfig {
  int n_samples = 10;
  std::vector<double> temperatures = {0.2, 0.5, 0.8};
  bool use_sicot = false;
  // DEPRECATED: raw non-owning pointer, superseded by the optional-style
  // EvalRequest::set_cot_model()/cot_model() accessors which document
  // ownership (the caller keeps the model alive). nullptr = use the CodeGen
  // model itself (the paper's default: "the same pre-trained models for
  // both").
  [[deprecated("use EvalRequest::set_cot_model(); the pointer is non-owning")]]
  const llm::SimLlm* cot_model = nullptr;
  std::uint64_t seed = kDefaultEvalSeed;
  // Worker threads (0 = one per hardware thread, 1 = serial); forwarded to
  // EvalRequest::threads. Thread count never changes results.
  int threads = 0;

  // Special members live in a suppressed region so that merely constructing
  // or copying a RunnerConfig does not trip the cot_model deprecation — only
  // touching the field directly does.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  RunnerConfig() {}
  RunnerConfig(const RunnerConfig&) = default;
  RunnerConfig& operator=(const RunnerConfig&) = default;
  RunnerConfig(RunnerConfig&&) = default;
  RunnerConfig& operator=(RunnerConfig&&) = default;
  ~RunnerConfig() = default;
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
};

// Compatibility wrapper: evaluate one (model, suite) pair via EvalEngine.
// Runs every configured temperature and returns the best by functional
// pass@1.
SuiteResult run_suite(const llm::SimLlm& model, const Suite& suite, const RunnerConfig& config);

// Compatibility wrapper over EvalEngine::check: generate one candidate with
// the given rng and report (syntax_ok, func_ok, candidate_source).
CandidateOutcome check_candidate(const llm::SimLlm& model, const EvalTask& task,
                                 double temperature, bool use_sicot,
                                 const llm::SimLlm* cot_model, util::Rng& rng);

}  // namespace haven::eval
