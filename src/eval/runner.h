// Evaluation runner: sample n candidates per task from a model (optionally
// through the SI-CoT pipeline), check syntax (compiler substitute) and
// functional correctness (differential simulation against the golden
// module), and aggregate pass@k. Follows the paper's protocol: temperatures
// {0.2, 0.5, 0.8}, n = 10, best temperature reported.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cot/sicot.h"
#include "eval/passk.h"
#include "eval/task.h"
#include "llm/simllm.h"

namespace haven::eval {

struct RunnerConfig {
  int n_samples = 10;
  std::vector<double> temperatures = {0.2, 0.5, 0.8};
  bool use_sicot = false;
  // CoT prompting model for SI-CoT; nullptr = use the CodeGen model itself
  // (the paper's default: "the same pre-trained models for both").
  const llm::SimLlm* cot_model = nullptr;
  std::uint64_t seed = 0x484156454eULL;  // "HAVEN"
};

struct TaskResult {
  std::string task_id;
  symbolic::Modality modality = symbolic::Modality::kNone;
  int n = 0;
  int syntax_pass = 0;  // candidates that compile
  int func_pass = 0;    // candidates functionally equivalent to golden
};

struct SuiteResult {
  std::string suite_name;
  std::string model_name;
  double temperature = 0.2;  // the reported (best) temperature
  std::vector<TaskResult> per_task;

  double pass_at(int k) const;         // functional
  double syntax_pass_at(int k) const;  // syntax
  // Per-modality pass counts (Table V rows): {passed, total} at pass@1
  // semantics, counting a task as passed if >= 1 of n samples passed.
  std::pair<int, int> modality_pass(symbolic::Modality m) const;
};

// Evaluate one (model, suite) pair. Runs every configured temperature and
// returns the best by functional pass@1.
SuiteResult run_suite(const llm::SimLlm& model, const Suite& suite, const RunnerConfig& config);

// Single-candidate check, exposed for tests and examples: generate with the
// given rng and report (syntax_ok, func_ok, candidate_source).
struct CandidateOutcome {
  bool syntax_ok = false;
  bool func_ok = false;
  std::string source;
};
CandidateOutcome check_candidate(const llm::SimLlm& model, const EvalTask& task,
                                 double temperature, bool use_sicot,
                                 const llm::SimLlm* cot_model, util::Rng& rng);

}  // namespace haven::eval
