// Evaluation task: prompt + golden reference + stimulus protocol. Suites of
// EvalTasks stand in for VerilogEval v1/v2 and RTLLM v1.1 (see DESIGN.md §1
// for why the substitution preserves the comparisons).
#pragma once

#include <string>
#include <vector>

#include "llm/instruction.h"
#include "llm/task_spec.h"
#include "sim/testbench.h"
#include "symbolic/modality.h"

namespace haven::eval {

struct EvalTask {
  std::string id;
  llm::TaskSpec spec;            // golden semantics
  std::string prompt;
  std::string golden_source;
  sim::StimulusSpec stimulus;
  symbolic::Modality modality = symbolic::Modality::kNone;  // raw presentation
};

struct Suite {
  std::string name;
  std::vector<EvalTask> tasks;
};

// Derive the stimulus protocol from a spec (clock/reset names, polarity,
// cycle count, exhaustive-vs-random vector policy).
sim::StimulusSpec stimulus_for(const llm::TaskSpec& spec);

// Build a full task from a spec (renders prompt + golden, derives stimulus).
EvalTask make_task(std::string id, const llm::TaskSpec& spec, llm::PromptStyle style,
                   util::Rng& rng, bool include_header = true);

}  // namespace haven::eval
