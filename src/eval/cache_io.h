// Serialization and key derivation between the eval engine and the
// haven::cache result cache.
//
// What is cached (see DESIGN.md §9 "Replay soundness"): everything the
// candidate pipeline computes *after* generation — the compile verdict, the
// lint findings, the triage decision, and the simulated functional verdict —
// as a CachedVerdict. Generation itself (SI-CoT refinement + SimLlm
// emission) always runs live: it is cheap, it is what produces the content
// the key hashes, and it keeps the RNG stream position identical on hits and
// misses.
//
// The key binds every input that can influence the cached stages:
//   * the canonicalized candidate source (content addressing proper),
//   * the task identity: id, golden source, and the full StimulusSpec,
//   * the eval knobs that change verdicts or payload shape: sim step budget,
//     lint mode (off / observe / triage), and the prove knobs (on/off +
//     node budget — verdicts are identical either way, but the replayed
//     counter flags are not, so the configs must not share entries),
//   * the stimulus stream: the forked testbench Rng's state_hash(). Random
//     stimulus makes the functional verdict depend on the vector stream, so
//     two byte-identical candidates with different streams must NOT share an
//     entry — replaying across streams would not be bit-identical. Within a
//     fixed (seed, unit, attempt) derivation the stream is stable across
//     runs, which is exactly the cross-run reuse the cache targets.
//   * a schema version, bumped whenever the payload layout changes.
//
// Payloads are versioned little-endian binary; decode_verdict rejects (and
// the engine then treats as a miss) anything malformed rather than throwing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/hash.h"
#include "eval/task.h"
#include "lint/lint.h"
#include "repair/repair.h"

namespace haven::eval {

// Bump when CachedVerdict's encoding or the key derivation changes; old
// entries then miss instead of replaying garbage.
inline constexpr std::uint32_t kVerdictSchemaVersion = 2;
// Extended payload carrying the failure witness (fail_reason), written only
// for repair-enabled runs — their key space is disjoint (task_cache_seed
// binds the repair knobs when enabled), so repair-off runs keep writing and
// replaying byte-identical v2 entries. decode_verdict accepts both.
inline constexpr std::uint32_t kVerdictSchemaVersionExtended = 3;

// The replayable outcome of one candidate's compile→lint→prove→simulate
// stages.
struct CachedVerdict {
  bool syntax_ok = false;
  bool func_ok = false;
  bool triaged = false;    // failed by lint proof; simulation was skipped
  bool simulated = false;  // the diff testbench actually ran
  bool proved = false;     // verdict decided by haven::prove; sim skipped
  bool prove_fallback = false;  // prove attempted, deferred to simulation
  std::int32_t sim_vectors = 0;
  std::vector<lint::Finding> findings;  // empty unless lint was enabled
  // Failure witness (diff miscompare / prove witness), replayed so a warm
  // repair loop distills bit-identical hints. Only round-trips through the
  // extended encoding; always "" for v2 payloads.
  std::string fail_reason;
};

// `extended` selects the v3 layout (appends fail_reason); the default v2
// encoding is byte-identical to the pre-repair engine's.
std::string encode_verdict(const CachedVerdict& v, bool extended = false);
// Strict decode: any truncation, bad enum value, or version mismatch returns
// false and leaves *out untouched enough to be discarded.
bool decode_verdict(std::string_view payload, CachedVerdict* out);

// Lint mode knob folded into the key: off / observe-only / triage.
enum class CacheLintMode : std::uint8_t { kOff = 0, kObserve, kTriage };

// Per-task key base, computed once per task per run: hashes the schema
// version, task id, golden source (canonicalized), stimulus spec, sim step
// budget, lint mode, and the prove knobs (request-level: hashed whether or
// not the task itself turns out to be provable). The repair policy is bound
// ONLY when enabled — a null/disabled policy contributes nothing, so
// repair-off digests are bit-identical to the pre-repair engine's and keep
// hitting warm caches it wrote.
cache::Digest task_cache_seed(const EvalTask& task, std::uint64_t sim_step_budget,
                              CacheLintMode lint_mode, bool prove = false,
                              std::uint64_t prove_budget = 0,
                              const repair::RepairPolicy* repair = nullptr);

// Per-candidate key: the task seed + canonicalized candidate source + the
// testbench stream digest.
cache::Digest unit_cache_key(const cache::Digest& task_seed, std::string_view candidate_source,
                             std::uint64_t tb_stream_hash);

}  // namespace haven::eval
