// The unbiased pass@k estimator of Chen et al. (Eq. 1 in the paper):
//   pass@k = E_tasks[ 1 - C(n-c, k) / C(n, k) ]
// with n samples per task and c functional passes.
#pragma once

#include <cstddef>
#include <vector>

namespace haven::eval {

// Single-task estimate; requires k <= n. Exact (no floating-point binomials:
// computed as a product of ratios).
double pass_at_k(int n, int c, int k);

// Mean over tasks of per-task estimates.
double mean_pass_at_k(const std::vector<std::pair<int, int>>& n_c_pairs, int k);

}  // namespace haven::eval
