#include "eval/task.h"

#include "llm/codegen.h"
#include "llm/instruction.h"

namespace haven::eval {

sim::StimulusSpec stimulus_for(const llm::TaskSpec& spec) {
  sim::StimulusSpec stim;
  stim.sequential = spec.sequential();
  if (stim.sequential) {
    stim.clock = "clk";
    if (spec.seq.reset != llm::ResetKind::kNone) {
      stim.reset = spec.seq.reset_name();
      stim.reset_active_low = spec.seq.reset_active_low;
    }
    stim.cycles = 48;
    if (spec.kind == llm::TaskKind::kClockDivider) stim.cycles = 64;
    if (spec.kind == llm::TaskKind::kFsm) stim.cycles = 64;
  } else {
    stim.max_exhaustive_bits = 12;
    stim.random_vectors = 192;
  }
  return stim;
}

EvalTask make_task(std::string id, const llm::TaskSpec& spec, llm::PromptStyle style,
                   util::Rng& rng, bool include_header) {
  EvalTask task;
  task.id = std::move(id);
  task.spec = spec;
  llm::InstructionOptions opts;
  opts.style = style;
  opts.include_header = include_header;
  task.prompt = llm::render_instruction(spec, opts, rng);
  task.golden_source = llm::generate_source(spec);
  task.stimulus = stimulus_for(spec);
  if (spec.kind == llm::TaskKind::kFsm) {
    task.modality = style == llm::PromptStyle::kVanilla ? symbolic::Modality::kNone
                                                        : symbolic::Modality::kStateDiagram;
  } else if (spec.kind == llm::TaskKind::kCombExpr) {
    switch (spec.presentation) {
      case llm::CombPresentation::kTruthTable:
      case llm::CombPresentation::kKarnaughMap:
        task.modality = symbolic::Modality::kTruthTable;
        break;
      case llm::CombPresentation::kWaveform:
        task.modality = symbolic::Modality::kWaveform;
        break;
      default:
        break;
    }
  }
  return task;
}

}  // namespace haven::eval
