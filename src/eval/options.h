// RequestOptions: the ONE command-line grammar for evaluation front ends.
//
// Every binary that drives an EvalEngine — the table/figure benches, the
// evaluate_model example, and the haven::serve front end — parses its flags
// through RequestOptions::parse() and builds its EvalRequest through
// request(). Before this existed each binary hand-rolled a subset of the
// flags and drifted (some benches lacked --sim-backend / --cache-mb); now a
// flag added here is immediately understood everywhere.
//
// Grammar: value flags accept "--flag=V" and "--flag V"; boolean flags are
// bare. Arguments the grammar does not know go to `leftover` (positional
// operands like model names, or front-end-specific flags) when a sink is
// provided; without a sink an unknown "--flag" is a usage error (exit 2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "eval/engine.h"
#include "sim/backend.h"
#include "util/fault.h"

namespace haven::eval {

struct RequestOptions {
  // Protocol knobs.
  bool fast = false;  // --fast: n=5, single temperature (CI-friendly)
  int n_samples = 10;              // --n=N
  std::vector<double> temperatures = {0.2, 0.5, 0.8};  // --temps=a,b,c
  std::uint64_t seed = kDefaultEvalSeed;  // --seed=N
  bool use_sicot = false;          // --sicot (self-interpreting unless a CoT model is set)
  bool progress = false;           // --progress: coarse progress lines on stderr
  int threads = 0;                 // --threads=N (0 = hardware), --serial (= 1)
  // Fault-tolerance knobs (DESIGN.md §7).
  int deadline_ms = 0;                // --deadline-ms=N per-attempt wall clock
  int retries = 0;                    // --retries=N transient-fault retries
  bool fail_fast = false;             // --fail-fast
  std::uint64_t sim_step_budget = 0;  // --sim-budget=N
  // --sim-backend=interp|compiled (verdict-identical, DESIGN.md §10).
  sim::SimBackend sim_backend = sim::kDefaultSimBackend;
  double inject = 0.0;                          // --inject=P chaos probability
  std::uint64_t inject_seed = 0xC7A05'FA17ULL;  // --inject-seed=N
  // Static-analysis knobs (DESIGN.md §8).
  bool lint = false;         // --lint
  bool lint_triage = false;  // --lint-triage
  bool lint_json = false;    // --lint-json (implies --lint)
  // Formal equivalence fast-path knobs (DESIGN.md §12).
  bool prove = false;     // --prove
  bool no_prove = false;  // --no-prove: force proving off
  std::uint64_t prove_budget = std::uint64_t{1} << 20;  // --prove-budget=N (0 = unbounded)
  // Closed-loop self-repair knobs (DESIGN.md §13).
  int repair_rounds = 0;         // --repair-rounds=N (0 = repair off, the default)
  int repair_budget = 0;         // --repair-budget=N generations incl. round 0 (0 = rounds only)
  double repair_efficacy = 0.65; // --repair-efficacy=F in [0,1]
  // Result-cache knobs (DESIGN.md §9).
  bool cache = false;          // --cache: in-memory result cache
  bool no_cache = false;       // --no-cache: force caching off
  std::string cache_dir;       // --cache-dir=PATH (implies --cache)
  std::size_t cache_mb = 256;  // --cache-mb=N
  std::string bench_json;      // --bench-json=PATH: machine-readable record
  // Built by parse() when caching is enabled; shared by every engine the
  // binary constructs (one cache per process, one artifact dir on disk).
  // shared_ptr because RequestOptions is copied by value.
  std::shared_ptr<cache::ResultCache> result_cache;

  // Parse argv. Unknown arguments go to *leftover when provided (in argv
  // order); otherwise unknown "--flags" are a usage error. Malformed values
  // (e.g. a bad --sim-backend) always error out with exit code 2. "--help"
  // prints the full per-flag help (rendered from the same flag-spec table
  // that drives parsing, so the two cannot drift) and exits 0.
  static RequestOptions parse(int argc, char** argv,
                              std::vector<std::string>* leftover = nullptr);

  // One-line flag summary for usage messages (rendered from the flag table).
  static const char* flag_help();

  // The fully-formed request these options describe.
  EvalRequest request() const;

  // request() with SI-CoT enabled through `cot_model` (non-owning: the
  // caller keeps it alive for as long as the request/engine is used).
  EvalRequest sicot_request(const llm::SimLlm& cot_model) const;
};

// Coarse progress printer behind --progress: one stderr line per ~10% of
// candidates.
ProgressCallback progress_printer();

// Chaos-mode RAII behind --inject=P: arms a FaultInjector at the LLM,
// compile, and sim injection sites and installs it for the scope's lifetime.
// Prints the injection tally on teardown so chaos runs are auditable.
class ChaosScope {
 public:
  explicit ChaosScope(const RequestOptions& options);
  ~ChaosScope();
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;

  bool armed() const { return armed_; }
  const util::FaultInjector& injector() const { return injector_; }

 private:
  util::FaultInjector injector_;
  bool armed_ = false;
};

}  // namespace haven::eval
