// Report formatting helpers shared by the benchmark binaries.
#pragma once

#include <string>

#include "eval/runner.h"

namespace haven::eval {

// "78.8" style percentage (one decimal).
std::string pct(double fraction);

// "6/10(60.0%)" pass-cases/total style (Table V cells).
std::string pass_total(std::pair<int, int> pt);

// One-line summary of a suite result.
std::string summarize(const SuiteResult& result);

// One-line summary of an engine run's counter block: candidate volume,
// failure breakdown, stage times, threads used.
std::string summarize(const EvalCounters& counters);

}  // namespace haven::eval
