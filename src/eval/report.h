// Report formatting helpers shared by the benchmark binaries.
#pragma once

#include <string>

#include "eval/engine.h"

namespace haven::eval {

// "78.8" style percentage (one decimal).
std::string pct(double fraction);

// "6/10(60.0%)" pass-cases/total style (Table V cells).
std::string pass_total(std::pair<int, int> pt);

// One-line summary of a suite result.
std::string summarize(const SuiteResult& result);

// One-line summary of an engine run's counter block: candidate volume,
// failure breakdown, stage times, threads used. When lint ran, appends the
// triage/simulated split and total findings.
std::string summarize(const EvalCounters& counters);

// Multi-line lint report: findings volume, triage precision/recall against
// the simulated verdicts, and the per-axis hallucination histogram (only
// axes with hits). Empty string when lint was not enabled.
std::string summarize(const LintSummary& lint);

// One-line result-cache block: hits/misses with hit rate, evictions, and
// resident bytes. "cache: off" when the run had no cache attached (no
// lookups happened).
std::string summarize_cache(const EvalCounters& counters);

// Machine-readable JSON for a lint-enabled run: the summary block (counters,
// confusion, axis histogram, rule counts) plus every per-candidate finding,
// in deterministic work-unit order.
std::string lint_json(const SuiteResult& result);

}  // namespace haven::eval
