#include "eval/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <future>

#include <thread>

#include "cache/result_cache.h"
#include "cot/sicot.h"
#include "eval/cache_io.h"
#include "eval/passk.h"
#include "lint/lint.h"
#include "logic/truth_table.h"
#include "prove/prove.h"
#include "sim/elaborate.h"
#include "sim/testbench.h"
#include "util/fault.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "verilog/analyzer.h"
#include "verilog/parser.h"

namespace haven::eval {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kException: return "exception";
    case FaultKind::kInjected: return "injected";
    case FaultKind::kDeadline: return "deadline";
    case FaultKind::kSimBudget: return "sim_budget";
  }
  return "?";
}

double SuiteResult::pass_at(int k) const {
  std::vector<std::pair<int, int>> nc;
  nc.reserve(per_task.size());
  for (const auto& t : per_task) nc.emplace_back(t.n, t.func_pass);
  return mean_pass_at_k(nc, k);
}

double SuiteResult::syntax_pass_at(int k) const {
  std::vector<std::pair<int, int>> nc;
  nc.reserve(per_task.size());
  for (const auto& t : per_task) nc.emplace_back(t.n, t.syntax_pass);
  return mean_pass_at_k(nc, k);
}

double LintSummary::precision() const {
  const std::int64_t fired = true_positives + false_positives;
  return fired == 0 ? 1.0 : static_cast<double>(true_positives) / static_cast<double>(fired);
}

double LintSummary::recall() const {
  const std::int64_t failed = true_positives + false_negatives;
  return failed == 0 ? 1.0 : static_cast<double>(true_positives) / static_cast<double>(failed);
}

int LintSummary::dominant_axis() const {
  int best = -1;
  std::int64_t best_count = 0;
  for (int a = 0; a < llm::kNumHalluAxes; ++a) {
    if (axis_candidates[static_cast<std::size_t>(a)] > best_count) {
      best = a;
      best_count = axis_candidates[static_cast<std::size_t>(a)];
    }
  }
  return best;
}

bool counters_consistent(const EvalCounters& c) { return counters_inconsistency(c).empty(); }

std::string counters_inconsistency(const EvalCounters& c) {
  std::string out;
  auto violated = [&](const std::string& term) {
    if (!out.empty()) out += "; ";
    out += term;
  };
  const std::int64_t passes = c.candidates + c.repair_rounds;
  const std::int64_t buckets = c.unit_faults + c.compile_failures + c.lint_triaged +
                               c.proven_equiv + c.proven_inequiv + c.simulated + c.cache_hits;
  if (passes != buckets) {
    violated(util::format(
        "candidates + repair_rounds (%lld + %lld = %lld) != unit_faults + compile_failures + "
        "lint_triaged + proven_equiv + proven_inequiv + simulated + cache_hits "
        "(%lld + %lld + %lld + %lld + %lld + %lld + %lld = %lld)",
        static_cast<long long>(c.candidates), static_cast<long long>(c.repair_rounds),
        static_cast<long long>(passes), static_cast<long long>(c.unit_faults),
        static_cast<long long>(c.compile_failures), static_cast<long long>(c.lint_triaged),
        static_cast<long long>(c.proven_equiv), static_cast<long long>(c.proven_inequiv),
        static_cast<long long>(c.simulated), static_cast<long long>(c.cache_hits),
        static_cast<long long>(buckets)));
  }
  if (c.deadline_exceeded + c.cycles_aborted > c.unit_faults) {
    violated(util::format(
        "deadline_exceeded + cycles_aborted (%lld + %lld) > unit_faults (%lld)",
        static_cast<long long>(c.deadline_exceeded), static_cast<long long>(c.cycles_aborted),
        static_cast<long long>(c.unit_faults)));
  }
  // Every fallback reached the testbench by definition.
  if (c.prove_fallback > c.simulated) {
    violated(util::format("prove_fallback (%lld) > simulated (%lld)",
                          static_cast<long long>(c.prove_fallback),
                          static_cast<long long>(c.simulated)));
  }
  // With a cache attached every non-faulted pass is exactly one lookup; with
  // no cache both counters stay zero (then the check is vacuous).
  if (c.cache_hits + c.cache_misses != 0 &&
      c.cache_hits + c.cache_misses != passes - c.unit_faults) {
    violated(util::format(
        "cache_hits + cache_misses (%lld + %lld = %lld) != candidates + repair_rounds - "
        "unit_faults (%lld)",
        static_cast<long long>(c.cache_hits), static_cast<long long>(c.cache_misses),
        static_cast<long long>(c.cache_hits + c.cache_misses),
        static_cast<long long>(passes - c.unit_faults)));
  }
  // A unit with >= 1 repair round terminates as exactly one of repaired /
  // exhausted / passed-round-0-anyway (stop_on_pass = false burns rounds
  // after a pass), and contributes at least one round.
  if (c.repaired_pass + c.repair_exhausted > c.repair_rounds) {
    violated(util::format(
        "repaired_pass + repair_exhausted (%lld + %lld) > repair_rounds (%lld)",
        static_cast<long long>(c.repaired_pass), static_cast<long long>(c.repair_exhausted),
        static_cast<long long>(c.repair_rounds)));
  }
  return out;
}

std::pair<int, int> SuiteResult::modality_pass(symbolic::Modality m) const {
  // Expected pass-case count under the paper's single-attempt protocol:
  // each task contributes its per-sample pass fraction c/n.
  double passed = 0;
  int total = 0;
  for (const auto& t : per_task) {
    if (t.modality != m) continue;
    ++total;
    if (t.n > 0) passed += static_cast<double>(t.func_pass) / static_cast<double>(t.n);
  }
  // lround, not static_cast<int>(passed + 0.5): the +0.5 trick double-rounds
  // tallies infinitesimally below a half (e.g. 1/3 + 1/12 + 1/12) up to the
  // next integer.
  return {static_cast<int>(std::lround(passed)), total};
}

namespace {

std::uint64_t mix_hash(std::uint64_t seed, const std::string& s) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One (temperature, task, sample) work unit's result plus stage timings and
// the fault record when the unit terminally failed. With repair enabled a
// unit runs the candidate pipeline several times; the verdict-carrying pass
// fills the flags below and every superseded pass folds into `prior`.
struct UnitOutcome {
  bool syntax_ok = false;
  bool func_ok = false;
  bool refined = false;
  bool triaged = false;    // failed by lint proof, simulation skipped
  bool proved = false;     // verdict decided by haven::prove, sim skipped
  bool prove_fallback = false;  // prove attempted, deferred to simulation
  bool simulated = false;  // the diff testbench actually ran
  int sim_vectors = 0;     // vectors/cycles the diff testbench compared
  std::vector<lint::Finding> findings;  // only when lint is enabled
  // Failure witness of this pass: the first diff-sim miscompare or the prove
  // inequivalence witness ("" when passing / compile-failed / triaged).
  // Feeds repair::FeedbackBuilder and replays from the extended cache.
  std::string fail_reason;
  double generate_seconds = 0.0;
  double compile_seconds = 0.0;
  double lint_seconds = 0.0;
  double prove_seconds = 0.0;
  double sim_seconds = 0.0;
  int attempts = 1;  // attempts consumed (1 = no retries)
  bool cache_hit = false;  // verdict replayed from the result cache
  bool faulted = false;
  FaultKind fault_kind = FaultKind::kException;
  std::string fault_what;
  // Self-repair bookkeeping (all zero when repair is off).
  int repair_rounds = 0;          // repair passes this unit ran
  bool repaired = false;          // failed round 0, some repair round passed
  bool repair_exhausted = false;  // ran >= 1 round, final verdict still fails
  // Pipeline-bucket contributions of the superseded (non-verdict) passes,
  // folded by the unit so the reducer keeps one accounting site.
  struct PriorPasses {
    std::int64_t compile_failures = 0;
    std::int64_t sim_mismatches = 0;
    std::int64_t lint_triaged = 0;
    std::int64_t proven_equiv = 0;
    std::int64_t proven_inequiv = 0;
    std::int64_t prove_fallback = 0;
    std::int64_t simulated = 0;
    std::int64_t sim_vectors = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
  } prior;
};

// Per-task cache context shared read-only by the sample fan-out. Null cache
// = caching off (the candidate pipeline is then identical to the uncached
// engine). `extended` selects the v3 verdict payload carrying fail_reason
// (repair-enabled runs only; their task seeds already key a disjoint space).
struct CacheRun {
  cache::ResultCache* cache = nullptr;
  cache::Digest task_seed;
  bool extended = false;
};

// Per-task lint context prepared once before the sample fan-out: the parsed
// golden module, the reference profile, and the triage switch. Null pointer
// = lint disabled (the candidate pipeline is then byte-identical to the
// pre-lint engine).
struct LintRun {
  const lint::ReferenceProfile* profile = nullptr;  // null when golden unusable
  const verilog::ParseOutput* golden = nullptr;     // parsed golden (same cond.)
  bool triage = false;
};

// Per-task prove context prepared once before the sample fan-out. A null
// golden means the task is outside the provable fragment (sequential, sweep
// too wide, golden doesn't lower, or a step budget is in force): every
// candidate simulates as before, with no fallback counted.
struct ProveRun {
  const verilog::ParseOutput* golden = nullptr;
  prove::ProveOptions opts;
};

FaultKind classify_fault(const std::exception& e) {
  if (dynamic_cast<const util::InjectedFault*>(&e) != nullptr) return FaultKind::kInjected;
  if (dynamic_cast<const util::DeadlineExceeded*>(&e) != nullptr) return FaultKind::kDeadline;
  if (dynamic_cast<const sim::BudgetExceeded*>(&e) != nullptr) return FaultKind::kSimBudget;
  return FaultKind::kException;
}

// The candidate pipeline shared by evaluate() and check(): SI-CoT refine,
// generate, compile-check, differential simulation. The draw order against
// `rng` is part of the determinism contract — do not reorder. Neither the
// deadline checks nor the injection hook draw from `rng`, so enabling them
// never perturbs results. A non-null `damping` routes generation through
// generate_with_hints (repair rounds); round 0 and repair-off runs pass null
// and take the byte-identical generate() path.
CandidateOutcome run_candidate(const llm::SimLlm& model, const EvalTask& task,
                               double temperature, bool use_sicot,
                               const llm::SimLlm* cot_model, util::Rng& rng,
                               UnitOutcome* stats, const util::Deadline& deadline,
                               std::uint64_t step_budget, sim::SimBackend sim_backend,
                               const LintRun* lint_run = nullptr,
                               const CacheRun* cache_run = nullptr,
                               const ProveRun* prove_run = nullptr,
                               const llm::AxisDamping* damping = nullptr) {
  CandidateOutcome outcome;

  const Clock::time_point gen_start = Clock::now();
  std::string prompt = task.prompt;
  if (use_sicot) {
    const llm::SimLlm* interpreter = cot_model != nullptr ? cot_model : &model;
    cot::SiCotPipeline pipeline(interpreter);
    const cot::SiCotResult refined = pipeline.refine(prompt, temperature, rng);
    prompt = refined.prompt;
    if (stats != nullptr) stats->refined = refined.transformed;
  }

  llm::GenerationConfig gen;
  gen.temperature = temperature;
  outcome.source = damping != nullptr ? model.generate_with_hints(prompt, gen, *damping, rng)
                                      : model.generate(prompt, gen, rng);
  if (stats != nullptr) stats->generate_seconds = seconds_since(gen_start);
  deadline.check("generate");

  // The testbench stream forks here, right after generation. It used to fork
  // at simulation time, but no stage in between draws from `rng`, so the
  // stream is bit-identical to the historical derivation — and forking early
  // lets the cache key bind the stimulus stream before any cached stage.
  util::Rng tb_rng = rng.fork();

  // Result-cache lookup (content + task + knobs + stimulus stream): a hit
  // replays the stored verdict and short-circuits compile/lint/simulate
  // bit-identically; see DESIGN.md §9 for the soundness argument.
  const bool caching = cache_run != nullptr && cache_run->cache != nullptr && stats != nullptr;
  cache::Digest cache_key;
  if (caching) {
    cache_key = unit_cache_key(cache_run->task_seed, outcome.source, tb_rng.state_hash());
    if (std::optional<std::string> payload = cache_run->cache->lookup(cache_key)) {
      CachedVerdict v;
      if (decode_verdict(*payload, &v)) {
        outcome.syntax_ok = v.syntax_ok;
        outcome.func_ok = v.func_ok;
        stats->syntax_ok = v.syntax_ok;
        stats->func_ok = v.func_ok;
        stats->triaged = v.triaged;
        stats->proved = v.proved;
        stats->prove_fallback = v.prove_fallback;
        stats->simulated = v.simulated;
        stats->sim_vectors = v.sim_vectors;
        stats->findings = std::move(v.findings);
        stats->fail_reason = std::move(v.fail_reason);
        stats->cache_hit = true;
        return outcome;
      }
      // Undecodable payload (older schema, corrupt artifact): treat as a
      // miss; the fresh verdict below overwrites the bad entry.
    }
  }
  // Populate the cache at each completed exit. Faults throw past this, so
  // only terminally successful pipelines are ever stored.
  auto store = [&](const CandidateOutcome& oc) {
    if (!caching) return;
    CachedVerdict v;
    v.syntax_ok = oc.syntax_ok;
    v.func_ok = oc.func_ok;
    v.triaged = stats->triaged;
    v.proved = stats->proved;
    v.prove_fallback = stats->prove_fallback;
    v.simulated = stats->simulated;
    v.sim_vectors = stats->sim_vectors;
    v.findings = stats->findings;
    v.fail_reason = stats->fail_reason;
    cache_run->cache->insert(cache_key, encode_verdict(v, cache_run->extended));
  };

  const Clock::time_point compile_start = Clock::now();
  util::maybe_inject(util::kSiteEvalCompile);
  outcome.syntax_ok = verilog::compile_ok(outcome.source);
  if (stats != nullptr) {
    stats->compile_seconds = seconds_since(compile_start);
    stats->syntax_ok = outcome.syntax_ok;
  }
  deadline.check("compile");

  if (!outcome.syntax_ok) {
    if (lint_run != nullptr && stats != nullptr) {
      // Attribute the compile failure: parse errors and semantic errors map
      // to kSyntax/kSema findings with taxonomy axes.
      const Clock::time_point lint_start = Clock::now();
      const verilog::SourceAnalysis analysis = verilog::analyze_source(outcome.source);
      stats->findings = lint::findings_from_diagnostics(analysis.parse_errors);
      for (const auto& m : analysis.modules) {
        auto more = lint::findings_from_diagnostics(m.diagnostics);
        stats->findings.insert(stats->findings.end(), more.begin(), more.end());
      }
      stats->lint_seconds = seconds_since(lint_start);
    }
    store(outcome);
    return outcome;
  }

  const bool prove_active = prove_run != nullptr && prove_run->golden != nullptr;

  // Lint the compiled candidate against the reference profile. Draws nothing
  // from `rng` (determinism contract) and parses the candidate exactly once;
  // the parsed AST feeds the prover and the simulator below.
  verilog::ParseOutput cand_parsed;
  bool cand_ast_ready = false;
  if (lint_run != nullptr) {
    const Clock::time_point lint_start = Clock::now();
    cand_parsed = verilog::parse_source(outcome.source);
    cand_ast_ready = cand_parsed.ok() && !cand_parsed.file.modules.empty();
    if (cand_ast_ready) {
      lint::LintResult lint_result = lint::lint_candidate(
          cand_parsed.file.modules.front(), &cand_parsed.file, lint_run->profile);
      const bool proven = lint_result.proven_failure();
      if (stats != nullptr) {
        stats->findings = std::move(lint_result.findings);
        stats->lint_seconds = seconds_since(lint_start);
      }
      deadline.check("lint");
      if (lint_run->triage && proven) {
        // Proven findings imply the diff test fails (DESIGN.md §8): score the
        // candidate as a functional failure without simulating.
        outcome.func_ok = false;
        if (stats != nullptr) stats->triaged = true;
        store(outcome);
        return outcome;
      }
    } else if (stats != nullptr) {
      stats->lint_seconds = seconds_since(lint_start);
    }
  } else if (prove_active) {
    // Lint is off but the prover needs the AST; the parse is charged to the
    // prove stage.
    const Clock::time_point parse_start = Clock::now();
    cand_parsed = verilog::parse_source(outcome.source);
    cand_ast_ready = cand_parsed.ok() && !cand_parsed.file.modules.empty();
    if (stats != nullptr) stats->prove_seconds += seconds_since(parse_start);
  }

  // Formal equivalence fast-path (DESIGN.md §12), after lint triage — a
  // candidate with a proven lint failure counts once, under lint_triaged —
  // and before simulation. A proven verdict is bit-identical to the diff
  // testbench's by construction; anything else falls through to it.
  if (prove_active && cand_ast_ready) {
    const Clock::time_point prove_start = Clock::now();
    const prove::ProveResult proof = prove::prove_equivalence(
        cand_parsed.file.modules.front(), &cand_parsed.file,
        prove_run->golden->file.modules.front(), &prove_run->golden->file, task.stimulus,
        prove_run->opts);
    if (stats != nullptr) stats->prove_seconds += seconds_since(prove_start);
    deadline.check("prove");
    if (proof.status == prove::ProveStatus::kEquivalent ||
        proof.status == prove::ProveStatus::kInequivalent) {
      outcome.func_ok = proof.status == prove::ProveStatus::kEquivalent;
      if (stats != nullptr) {
        stats->func_ok = outcome.func_ok;
        stats->proved = true;
        if (!outcome.func_ok) stats->fail_reason = proof.reason;
      }
      store(outcome);
      return outcome;
    }
    // kUnsupported / kBudgetExceeded: defer to the testbench.
    if (stats != nullptr) stats->prove_fallback = true;
  }

  const Clock::time_point sim_start = Clock::now();
  sim::StimulusSpec stimulus = task.stimulus;
  if (step_budget != 0) stimulus.step_budget = step_budget;
  stimulus.backend = sim_backend;
  const verilog::ParseOutput* golden_ast =
      lint_run != nullptr && lint_run->golden != nullptr ? lint_run->golden
      : prove_active                                     ? prove_run->golden
                                                         : nullptr;
  const sim::DiffResult diff =
      (cand_ast_ready && golden_ast != nullptr)
          ? sim::run_diff_test(cand_parsed.file.modules.front(), &cand_parsed.file,
                               golden_ast->file.modules.front(), &golden_ast->file, stimulus,
                               tb_rng, &deadline)
          : sim::run_diff_test(outcome.source, task.golden_source, stimulus, tb_rng,
                               &deadline);
  outcome.func_ok = diff.passed;
  if (stats != nullptr) {
    stats->sim_seconds = seconds_since(sim_start);
    stats->func_ok = outcome.func_ok;
    stats->simulated = true;
    stats->sim_vectors = diff.vectors;
    if (!diff.passed) stats->fail_reason = diff.reason;
  }
  store(outcome);
  return outcome;
}

}  // namespace

CandidateOutcome EvalEngine::check(const llm::SimLlm& model, const EvalTask& task,
                                   double temperature, util::Rng& rng) const {
  const util::Deadline deadline = request_.deadline_ms > 0
                                      ? util::Deadline::after_ms(request_.deadline_ms)
                                      : util::Deadline::none();
  return run_candidate(model, task, temperature, request_.use_sicot,
                       request_.cot_model_ptr(), rng, nullptr, deadline,
                       request_.sim_step_budget, request_.sim_backend);
}

SuiteResult EvalEngine::evaluate(const llm::SimLlm& model, const Suite& suite) const {
  const Clock::time_point wall_start = Clock::now();
  const std::clock_t cpu_start = std::clock();

  const std::size_t n_temps = request_.temperatures.size();
  const std::size_t n_tasks = suite.tasks.size();
  const std::size_t n_samples =
      request_.n_samples > 0 ? static_cast<std::size_t>(request_.n_samples) : 0;
  const std::size_t total = n_temps * n_tasks * n_samples;

  // Per-task seed base, identical to the legacy serial derivation.
  std::vector<std::uint64_t> task_seed(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    task_seed[i] = mix_hash(request_.seed, model.name() + "|" + suite.tasks[i].id);
  }

  const llm::SimLlm* cot_model = request_.cot_model_ptr();

  // Per-task lint context: golden module parsed once, reference profile
  // distilled once, shared read-only by every worker. A golden that fails to
  // parse (broken task definition) degrades that task to reference-free
  // lint; the simulation path then reports the failure as before.
  const bool lint_enabled = request_.lint || request_.lint_triage;
  struct GoldenCtx {
    verilog::ParseOutput parsed;
    lint::ReferenceProfile profile;
    bool usable = false;
  };
  std::vector<GoldenCtx> goldens(lint_enabled ? n_tasks : 0);
  if (lint_enabled) {
    for (std::size_t i = 0; i < n_tasks; ++i) {
      const EvalTask& task = suite.tasks[i];
      GoldenCtx& g = goldens[i];
      g.parsed = verilog::parse_source(task.golden_source);
      if (!g.parsed.ok() || g.parsed.file.modules.empty()) continue;
      const verilog::Module& gm = g.parsed.file.modules.front();
      lint::profile_from_golden(gm, &g.parsed.file, &g.profile);
      g.profile.sequential = task.stimulus.sequential;
      g.profile.clock = task.stimulus.clock;
      g.profile.reset = task.stimulus.reset;
      // Replicate the testbench's exhaustive-sweep policy (sim/testbench.cpp):
      // data inputs are the golden's non-clock/reset inputs, swept
      // exhaustively when their total bit count fits the budget.
      if (!task.stimulus.sequential) {
        int total_bits = 0;
        for (const auto& p : gm.ports) {
          if (p.dir == verilog::Dir::kOutput) continue;
          if (p.name == task.stimulus.clock || p.name == task.stimulus.reset) continue;
          total_bits += p.width();
        }
        g.profile.exhaustive_comb =
            total_bits <= task.stimulus.max_exhaustive_bits && total_bits <= 20;
      }
      try {
        (void)sim::elaborate(gm, &g.parsed.file);
      } catch (const sim::ElabError&) {
        g.profile.golden_elab_ok = false;
      }
      // Golden truth rows for the constant-output proof: only combinational
      // expression tasks carry an exact semantic function.
      if (task.spec.kind == llm::TaskKind::kCombExpr && task.spec.expr != nullptr &&
          !task.spec.comb_inputs.empty() && task.spec.comb_inputs.size() <= 20) {
        const logic::TruthTable tt = logic::TruthTable::from_expr(
            *task.spec.expr, task.spec.comb_inputs, task.spec.comb_output);
        lint::ReferenceProfile::OutputTruth truth;
        truth.port = task.spec.comb_output;
        const std::uint32_t rows = std::uint32_t{1}
                                   << static_cast<std::uint32_t>(task.spec.comb_inputs.size());
        for (std::uint32_t row = 0; row < rows; ++row) {
          const logic::Tri v = tt.row(row);
          truth.defined_zero |= v == logic::Tri::kFalse;
          truth.defined_one |= v == logic::Tri::kTrue;
        }
        g.profile.truth.push_back(std::move(truth));
      }
      g.usable = true;
    }
  }

  // Per-task cache seeds: task identity + eval knobs hashed once, shared
  // read-only by every worker. The per-candidate key then adds the
  // candidate's content and its stimulus stream (see eval/cache_io.h).
  cache::ResultCache* result_cache = request_.cache;
  std::int64_t cache_evictions_before = 0;
  std::vector<CacheRun> cache_runs(result_cache != nullptr ? n_tasks : 0);
  if (result_cache != nullptr) {
    const CacheLintMode lint_mode = request_.lint_triage ? CacheLintMode::kTriage
                                    : lint_enabled       ? CacheLintMode::kObserve
                                                         : CacheLintMode::kOff;
    for (std::size_t i = 0; i < n_tasks; ++i) {
      cache_runs[i].cache = result_cache;
      cache_runs[i].task_seed =
          task_cache_seed(suite.tasks[i], request_.sim_step_budget, lint_mode, request_.prove,
                          request_.prove_budget, &request_.repair);
      cache_runs[i].extended = request_.repair.enabled();
    }
    cache_evictions_before = result_cache->stats().evictions;
  }

  // Per-task prove context: eligibility decided once per task, shared
  // read-only by every worker. Eligibility is structural (combinational spec,
  // sweep fits, golden lowers, no step budget in force — a budget-blown sim
  // must still surface as a unit fault); the dry run is unbudgeted so that a
  // small request budget exhausts per candidate, counted under
  // prove_fallback, instead of silently disabling the task.
  const bool prove_enabled = request_.prove;
  prove::ProveOptions prove_opts;
  prove_opts.node_budget = request_.prove_budget;
  std::vector<ProveRun> prove_runs(prove_enabled ? n_tasks : 0);
  std::vector<verilog::ParseOutput> prove_goldens(prove_enabled ? n_tasks : 0);
  if (prove_enabled) {
    for (std::size_t i = 0; i < n_tasks; ++i) {
      const EvalTask& task = suite.tasks[i];
      prove_runs[i].opts = prove_opts;
      if (request_.sim_step_budget != 0 || task.stimulus.step_budget != 0) continue;
      const verilog::ParseOutput* golden = nullptr;
      if (lint_enabled && goldens[i].usable) {
        golden = &goldens[i].parsed;
      } else if (!lint_enabled) {
        prove_goldens[i] = verilog::parse_source(task.golden_source);
        if (prove_goldens[i].ok() && !prove_goldens[i].file.modules.empty()) {
          golden = &prove_goldens[i];
        }
      }
      if (golden == nullptr) continue;
      if (!prove::golden_provable(golden->file.modules.front(), &golden->file, task.stimulus,
                                  prove::ProveOptions{0})) {
        continue;
      }
      prove_runs[i].golden = golden;
    }
  }

  // Work-unit index layout: temperature-major, then task, then sample.
  auto decode = [&](std::size_t unit, std::size_t& ti, std::size_t& task_i, int& s) {
    ti = unit / (n_tasks * n_samples);
    const std::size_t rest = unit % (n_tasks * n_samples);
    task_i = rest / n_samples;
    s = static_cast<int>(rest % n_samples);
  };

  // One isolated work unit: run the candidate pipeline, retrying transient
  // faults per the request's policy. Attempt k derives its RNG from
  // (seed, unit, k) — the k = 0 term is zero, so first attempts reproduce
  // the legacy derivation bit for bit — and its fault-injection context
  // from (seed, unit, k), so chaos runs are deterministic at any thread
  // count. Every exception is converted into a structured fault record;
  // nothing escapes the unit.
  auto run_unit = [&](std::size_t unit) -> UnitOutcome {
    std::size_t ti = 0, task_i = 0;
    int s = 0;
    decode(unit, ti, task_i, s);
    const double temperature = request_.temperatures[ti];
    const int max_retries = std::max(0, request_.retry.max_retries);
    LintRun lint_run;
    if (lint_enabled && goldens[task_i].usable) {
      lint_run.profile = &goldens[task_i].profile;
      lint_run.golden = &goldens[task_i].parsed;
    }
    lint_run.triage = request_.lint_triage;
    const repair::RepairPolicy& policy = request_.repair;
    const repair::FeedbackBuilder feedback;
    UnitOutcome stats;
    for (int attempt = 0;; ++attempt) {
      stats = UnitOutcome{};  // drop partial stage results of a failed attempt
      stats.attempts = attempt + 1;
      // Round 0 uses this seed unmodified (the legacy derivation, bit for
      // bit); repair round r >= 1 XORs in a per-round term below.
      const std::uint64_t unit_seed =
          task_seed[task_i] ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s + 1)) ^
          static_cast<std::uint64_t>(temperature * 4096) ^
          (0xda942042e4dd58b5ULL * static_cast<std::uint64_t>(attempt));
      util::Rng rng(unit_seed);
      util::FaultInjector::ScopedContext fault_context(
          request_.seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(unit) + 1)) ^
          (0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(attempt) + 1)));
      // One deadline per attempt, covering every repair round of the attempt:
      // repair stretches a candidate's work, it does not extend its time box.
      const util::Deadline deadline = request_.deadline_ms > 0
                                          ? util::Deadline::after_ms(request_.deadline_ms)
                                          : util::Deadline::none();
      try {
        run_candidate(model, suite.tasks[task_i], temperature, request_.use_sicot, cot_model,
                      rng, &stats, deadline, request_.sim_step_budget, request_.sim_backend,
                      lint_enabled ? &lint_run : nullptr,
                      result_cache != nullptr ? &cache_runs[task_i] : nullptr,
                      prove_enabled ? &prove_runs[task_i] : nullptr);
        if (!policy.enabled()) return stats;

        // Closed-loop self-repair (DESIGN.md §13): distill the latest pass's
        // failure evidence into a hint, damp the hinted axes, regenerate.
        // Round r's RNG depends only on (unit_seed, r), and its hint only on
        // rounds 0..r-1, so round sequences are prefix-stable across
        // max_rounds settings — pass@k is monotone in rounds by construction.
        // A fault inside any round retries the whole unit like before.
        std::vector<UnitOutcome> rounds;
        auto last = [&]() -> const UnitOutcome& {
          return rounds.empty() ? stats : rounds.back();
        };
        while (policy.admits_round(static_cast<int>(rounds.size()),
                                   1 + static_cast<int>(rounds.size()))) {
          const UnitOutcome& prev = last();
          if (policy.stop_on_pass && prev.func_ok) break;
          repair::Evidence evidence;
          evidence.passed = prev.func_ok;
          evidence.compile_failed = !prev.syntax_ok;
          evidence.lint_triaged = prev.triaged;
          evidence.proven_inequiv = prev.proved && !prev.func_ok;
          evidence.sim_mismatch = prev.simulated && !prev.func_ok;
          evidence.findings = &prev.findings;
          evidence.fail_reason = prev.fail_reason;
          const llm::AxisDamping damping =
              repair::damping_for(feedback.distill(evidence), policy.efficacy);
          const std::uint64_t round = static_cast<std::uint64_t>(rounds.size()) + 1;
          util::Rng round_rng(unit_seed ^ (0x8bb84b93962eacc9ULL * round));
          UnitOutcome pass;
          run_candidate(model, suite.tasks[task_i], temperature, request_.use_sicot, cot_model,
                        round_rng, &pass, deadline, request_.sim_step_budget,
                        request_.sim_backend, lint_enabled ? &lint_run : nullptr,
                        result_cache != nullptr ? &cache_runs[task_i] : nullptr,
                        prove_enabled ? &prove_runs[task_i] : nullptr, &damping);
          rounds.push_back(std::move(pass));
        }
        if (rounds.empty()) return stats;

        // Merge: the verdict is the first passing pass (else the last). The
        // merged outcome carries that pass's flags/findings/witness; every
        // superseded pass folds its pipeline buckets into `prior` so the
        // reducer's accounting identity extends exactly by repair_rounds.
        std::vector<UnitOutcome*> passes;
        passes.reserve(rounds.size() + 1);
        passes.push_back(&stats);
        for (UnitOutcome& r : rounds) passes.push_back(&r);
        std::size_t verdict_i = passes.size() - 1;
        for (std::size_t p = 0; p < passes.size(); ++p) {
          if (passes[p]->func_ok) {
            verdict_i = p;
            break;
          }
        }
        const bool round0_refined = stats.refined;
        double gen_s = 0, comp_s = 0, lint_s = 0, prove_s = 0, sim_s = 0;
        for (const UnitOutcome* p : passes) {
          gen_s += p->generate_seconds;
          comp_s += p->compile_seconds;
          lint_s += p->lint_seconds;
          prove_s += p->prove_seconds;
          sim_s += p->sim_seconds;
        }
        UnitOutcome merged = std::move(*passes[verdict_i]);
        for (std::size_t p = 0; p < passes.size(); ++p) {
          if (p == verdict_i) continue;
          const UnitOutcome& pass = *passes[p];
          if (pass.cache_hit) {
            ++merged.prior.cache_hits;
          } else {
            if (result_cache != nullptr) ++merged.prior.cache_misses;
            merged.prior.compile_failures += !pass.syntax_ok;
            merged.prior.sim_mismatches += pass.syntax_ok && !pass.func_ok;
            merged.prior.lint_triaged += pass.triaged;
            merged.prior.proven_equiv += pass.proved && pass.func_ok;
            merged.prior.proven_inequiv += pass.proved && !pass.func_ok;
            merged.prior.prove_fallback += pass.prove_fallback;
            merged.prior.simulated += pass.simulated;
            merged.prior.sim_vectors += pass.sim_vectors;
          }
        }
        merged.refined = round0_refined;
        merged.attempts = attempt + 1;
        merged.generate_seconds = gen_s;
        merged.compile_seconds = comp_s;
        merged.lint_seconds = lint_s;
        merged.prove_seconds = prove_s;
        merged.sim_seconds = sim_s;
        merged.repair_rounds = static_cast<int>(rounds.size());
        merged.repaired = merged.func_ok && verdict_i >= 1;
        merged.repair_exhausted = !merged.func_ok;
        return merged;
      } catch (const std::exception& e) {
        if (attempt < max_retries && request_.retry.should_retry(e)) {
          const int backoff = request_.retry.backoff_ms(attempt);
          if (backoff > 0) std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
          continue;
        }
        stats.faulted = true;
        stats.fault_kind = classify_fault(e);
        stats.fault_what = e.what();
        return stats;
      } catch (...) {
        stats.faulted = true;
        stats.fault_kind = FaultKind::kException;
        stats.fault_what = "unknown non-standard exception";
        return stats;
      }
    }
  };

  auto make_fault = [&](std::size_t unit, const UnitOutcome& u) -> UnitFault {
    std::size_t ti = 0, task_i = 0;
    int s = 0;
    decode(unit, ti, task_i, s);
    UnitFault fault;
    fault.kind = u.fault_kind;
    fault.task_id = suite.tasks[task_i].id;
    fault.sample = s;
    fault.temperature = request_.temperatures[ti];
    fault.attempts = u.attempts;
    fault.what = u.fault_what;
    return fault;
  };

  auto report_progress = [&](std::size_t unit) {
    if (!request_.on_progress) return;
    std::size_t ti = 0, task_i = 0;
    int s = 0;
    decode(unit, ti, task_i, s);
    EvalProgress progress;
    progress.completed = unit + 1;
    progress.total = total;
    progress.temperature = request_.temperatures[ti];
    progress.task_id = suite.tasks[task_i].id;
    progress.sample = s;
    request_.on_progress(progress);
  };

  util::ThreadPool* external_pool = request_.pool;
  const std::size_t requested_threads =
      external_pool != nullptr ? external_pool->worker_count()
      : request_.threads <= 0 ? util::ThreadPool::default_worker_count()
                              : static_cast<std::size_t>(request_.threads);
  const std::size_t workers = std::min(requested_threads, total == 0 ? std::size_t{1} : total);

  std::vector<UnitOutcome> outcomes(total);

  // In fail_fast mode the first faulted unit (in index order) condemns the
  // run: queued-but-unstarted work is cancelled and EvalAborted is thrown.
  // An external (shared) pool is never cancelled — its queue carries other
  // evaluations' work — so there the abort waits out the remaining units
  // (see run_on_pool) instead of dropping them.
  auto abort_if_fail_fast = [&](std::size_t i, util::ThreadPool* cancellable) {
    if (!request_.fail_fast || !outcomes[i].faulted) return;
    if (cancellable != nullptr) cancellable->cancel();
    throw EvalAborted(make_fault(i, outcomes[i]));
  };

  // Fan the units out over `pool`, collecting strictly in index order: the
  // reduction below (and the progress stream) must never observe completion
  // order.
  auto run_on_pool = [&](util::ThreadPool& pool, bool owned) {
    std::vector<std::future<UnitOutcome>> futures;
    futures.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      futures.push_back(pool.submit([&run_unit, i] { return run_unit(i); }));
    }
    try {
      for (std::size_t i = 0; i < total; ++i) {
        outcomes[i] = futures[i].get();
        abort_if_fail_fast(i, owned ? &pool : nullptr);
        report_progress(i);
      }
    } catch (...) {
      // Every queued task captures this stack frame; on a shared pool they
      // would keep running after it unwinds. Block on each outstanding
      // future (cancelled tasks are already ready with a broken promise) so
      // no task can outlive the frame, then let the abort out.
      for (std::future<UnitOutcome>& future : futures) {
        if (future.valid()) future.wait();
      }
      throw;
    }
  };

  if (external_pool != nullptr) {
    run_on_pool(*external_pool, /*owned=*/false);
  } else if (workers <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      outcomes[i] = run_unit(i);
      abort_if_fail_fast(i, nullptr);
      report_progress(i);
    }
  } else {
    util::ThreadPool pool(workers);
    run_on_pool(pool, /*owned=*/true);
  }

  EvalCounters counters;
  std::vector<UnitFault> faults;
  LintSummary lint_summary;
  lint_summary.enabled = lint_enabled;
  std::vector<CandidateFindings> candidate_findings;
  counters.threads_used = static_cast<int>(workers);
  for (std::size_t i = 0; i < total; ++i) {
    const UnitOutcome& u = outcomes[i];
    ++counters.candidates;
    counters.retries += u.attempts - 1;
    if (u.faulted) {
      // A faulted unit's partial stage results are discarded: it counts
      // toward candidates/unit_faults only and scores as a total failure.
      ++counters.unit_faults;
      counters.deadline_exceeded += u.fault_kind == FaultKind::kDeadline;
      counters.cycles_aborted += u.fault_kind == FaultKind::kSimBudget;
      faults.push_back(make_fault(i, u));
      continue;
    }
    counters.sicot_refinements += u.refined;
    counters.lint_findings += static_cast<std::int64_t>(u.findings.size());
    counters.generate_seconds += u.generate_seconds;
    counters.compile_seconds += u.compile_seconds;
    counters.lint_seconds += u.lint_seconds;
    counters.prove_seconds += u.prove_seconds;
    counters.sim_seconds += u.sim_seconds;
    if (u.cache_hit) {
      // A hit replays the verdict without running compile/lint/simulate: it
      // lands in its own accounting bucket and nowhere else. The lint block
      // below still runs — findings replay bit-identically from the cache.
      ++counters.cache_hits;
    } else {
      if (result_cache != nullptr) ++counters.cache_misses;
      counters.compile_failures += !u.syntax_ok;
      counters.sim_mismatches += u.syntax_ok && !u.func_ok;
      counters.lint_triaged += u.triaged;
      counters.proven_equiv += u.proved && u.func_ok;
      counters.proven_inequiv += u.proved && !u.func_ok;
      counters.prove_fallback += u.prove_fallback;
      counters.simulated += u.simulated;
      counters.sim_vectors += u.sim_vectors;
    }
    // Superseded repair passes (folded by the unit) land in the same buckets
    // as live passes, extending the identity's LHS by exactly repair_rounds.
    counters.compile_failures += u.prior.compile_failures;
    counters.sim_mismatches += u.prior.sim_mismatches;
    counters.lint_triaged += u.prior.lint_triaged;
    counters.proven_equiv += u.prior.proven_equiv;
    counters.proven_inequiv += u.prior.proven_inequiv;
    counters.prove_fallback += u.prior.prove_fallback;
    counters.simulated += u.prior.simulated;
    counters.sim_vectors += u.prior.sim_vectors;
    counters.cache_hits += u.prior.cache_hits;
    counters.cache_misses += u.prior.cache_misses;
    counters.repair_rounds += u.repair_rounds;
    counters.repaired_pass += u.repaired;
    counters.repair_exhausted += u.repair_exhausted;

    if (!lint_enabled) continue;
    bool flagged = false;
    std::uint32_t axis_mask = 0;
    for (const lint::Finding& f : u.findings) {
      flagged |= f.predicts_failure;
      ++lint_summary.rule_counts[lint::rule_id(f.rule)];
      if (f.diag.severity != verilog::Severity::kNote) {
        axis_mask |= std::uint32_t{1} << static_cast<int>(f.axis);
      }
    }
    lint_summary.flagged_candidates += flagged;
    for (int a = 0; a < llm::kNumHalluAxes; ++a) {
      lint_summary.axis_candidates[static_cast<std::size_t>(a)] +=
          (axis_mask >> a) & 1u;
    }
    // Confusion vs the simulated verdict (compiled candidates only: compile
    // failures have no testbench ground truth). Triaged candidates are true
    // positives by the soundness argument.
    if (u.syntax_ok) {
      const bool failed = !u.func_ok;
      if (flagged && failed) {
        ++lint_summary.true_positives;
      } else if (flagged) {
        ++lint_summary.false_positives;
      } else if (failed) {
        ++lint_summary.false_negatives;
      } else {
        ++lint_summary.true_negatives;
      }
    }
    if (!u.findings.empty()) {
      std::size_t ti = 0, task_i = 0;
      int s = 0;
      decode(i, ti, task_i, s);
      CandidateFindings cf;
      cf.task_id = suite.tasks[task_i].id;
      cf.sample = s;
      cf.temperature = request_.temperatures[ti];
      cf.findings = u.findings;
      candidate_findings.push_back(std::move(cf));
    }
  }
  lint_summary.findings = counters.lint_findings;

  // The accounting identity is enforced HERE, once, where the buckets are
  // filled (debug builds). Tests assert counters_consistent() on results
  // instead of re-deriving the sum per call site; the diagnostic names the
  // specific violated term(s) so a broken build fails loudly, not opaquely.
#ifndef NDEBUG
  if (const std::string broken = counters_inconsistency(counters); !broken.empty()) {
    std::fprintf(stderr, "EvalCounters accounting identity violated: %s\n", broken.c_str());
    assert(false && "EvalCounters accounting identity violated");
  }
#endif

  SuiteResult best;
  double best_pass1 = 0.0;
  bool have_best = false;
  for (std::size_t ti = 0; ti < n_temps; ++ti) {
    SuiteResult result;
    result.suite_name = suite.name;
    result.model_name = model.name();
    result.temperature = request_.temperatures[ti];
    result.per_task.reserve(n_tasks);
    for (std::size_t task_i = 0; task_i < n_tasks; ++task_i) {
      TaskResult tr;
      tr.task_id = suite.tasks[task_i].id;
      tr.modality = suite.tasks[task_i].modality;
      tr.n = request_.n_samples;
      const std::size_t base = (ti * n_tasks + task_i) * n_samples;
      for (std::size_t s = 0; s < n_samples; ++s) {
        const UnitOutcome& u = outcomes[base + s];
        // Faulted units score as total failures even when an earlier stage
        // succeeded before the fault (e.g. compiled, then sim deadline blew).
        if (u.faulted) continue;
        tr.syntax_pass += u.syntax_ok;
        tr.func_pass += u.func_ok;
      }
      result.per_task.push_back(std::move(tr));
    }
    const double pass1 = result.pass_at(1);
    if (!have_best || pass1 > best_pass1) {
      best = std::move(result);
      best_pass1 = pass1;
      have_best = true;
    }
  }
  if (!have_best) {
    // No temperatures configured: return an empty, but labelled, result.
    best.suite_name = suite.name;
    best.model_name = model.name();
  }

  if (result_cache != nullptr) {
    const cache::CacheStats cs = result_cache->stats();
    counters.cache_evictions = cs.evictions - cache_evictions_before;
    counters.cache_bytes = cs.bytes;
  }

  counters.wall_seconds = seconds_since(wall_start);
  counters.cpu_seconds =
      static_cast<double>(std::clock() - cpu_start) / static_cast<double>(CLOCKS_PER_SEC);
  best.counters = counters;
  best.faults = std::move(faults);
  best.lint = std::move(lint_summary);
  best.lint_findings = std::move(candidate_findings);
  return best;
}

}  // namespace haven::eval
