#include "eval/engine.h"

#include <chrono>
#include <cmath>
#include <ctime>
#include <future>

#include "cot/sicot.h"
#include "eval/passk.h"
#include "sim/testbench.h"
#include "util/thread_pool.h"
#include "verilog/analyzer.h"

namespace haven::eval {

double SuiteResult::pass_at(int k) const {
  std::vector<std::pair<int, int>> nc;
  nc.reserve(per_task.size());
  for (const auto& t : per_task) nc.emplace_back(t.n, t.func_pass);
  return mean_pass_at_k(nc, k);
}

double SuiteResult::syntax_pass_at(int k) const {
  std::vector<std::pair<int, int>> nc;
  nc.reserve(per_task.size());
  for (const auto& t : per_task) nc.emplace_back(t.n, t.syntax_pass);
  return mean_pass_at_k(nc, k);
}

std::pair<int, int> SuiteResult::modality_pass(symbolic::Modality m) const {
  // Expected pass-case count under the paper's single-attempt protocol:
  // each task contributes its per-sample pass fraction c/n.
  double passed = 0;
  int total = 0;
  for (const auto& t : per_task) {
    if (t.modality != m) continue;
    ++total;
    if (t.n > 0) passed += static_cast<double>(t.func_pass) / static_cast<double>(t.n);
  }
  // lround, not static_cast<int>(passed + 0.5): the +0.5 trick double-rounds
  // tallies infinitesimally below a half (e.g. 1/3 + 1/12 + 1/12) up to the
  // next integer.
  return {static_cast<int>(std::lround(passed)), total};
}

namespace {

std::uint64_t mix_hash(std::uint64_t seed, const std::string& s) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One (temperature, task, sample) work unit's result plus stage timings.
struct UnitOutcome {
  bool syntax_ok = false;
  bool func_ok = false;
  bool refined = false;
  double generate_seconds = 0.0;
  double compile_seconds = 0.0;
  double sim_seconds = 0.0;
};

// The candidate pipeline shared by evaluate() and check(): SI-CoT refine,
// generate, compile-check, differential simulation. The draw order against
// `rng` is part of the determinism contract — do not reorder.
CandidateOutcome run_candidate(const llm::SimLlm& model, const EvalTask& task,
                               double temperature, bool use_sicot,
                               const llm::SimLlm* cot_model, util::Rng& rng,
                               UnitOutcome* stats) {
  CandidateOutcome outcome;

  const Clock::time_point gen_start = Clock::now();
  std::string prompt = task.prompt;
  if (use_sicot) {
    const llm::SimLlm* interpreter = cot_model != nullptr ? cot_model : &model;
    cot::SiCotPipeline pipeline(interpreter);
    const cot::SiCotResult refined = pipeline.refine(prompt, temperature, rng);
    prompt = refined.prompt;
    if (stats != nullptr) stats->refined = refined.transformed;
  }

  llm::GenerationConfig gen;
  gen.temperature = temperature;
  outcome.source = model.generate(prompt, gen, rng);
  if (stats != nullptr) stats->generate_seconds = seconds_since(gen_start);

  const Clock::time_point compile_start = Clock::now();
  outcome.syntax_ok = verilog::compile_ok(outcome.source);
  if (stats != nullptr) {
    stats->compile_seconds = seconds_since(compile_start);
    stats->syntax_ok = outcome.syntax_ok;
  }
  if (!outcome.syntax_ok) return outcome;

  const Clock::time_point sim_start = Clock::now();
  util::Rng tb_rng = rng.fork();
  const sim::DiffResult diff =
      sim::run_diff_test(outcome.source, task.golden_source, task.stimulus, tb_rng);
  outcome.func_ok = diff.passed;
  if (stats != nullptr) {
    stats->sim_seconds = seconds_since(sim_start);
    stats->func_ok = outcome.func_ok;
  }
  return outcome;
}

}  // namespace

CandidateOutcome EvalEngine::check(const llm::SimLlm& model, const EvalTask& task,
                                   double temperature, util::Rng& rng) const {
  return run_candidate(model, task, temperature, request_.use_sicot,
                       request_.cot_model_ptr(), rng, nullptr);
}

SuiteResult EvalEngine::evaluate(const llm::SimLlm& model, const Suite& suite) const {
  const Clock::time_point wall_start = Clock::now();
  const std::clock_t cpu_start = std::clock();

  const std::size_t n_temps = request_.temperatures.size();
  const std::size_t n_tasks = suite.tasks.size();
  const std::size_t n_samples =
      request_.n_samples > 0 ? static_cast<std::size_t>(request_.n_samples) : 0;
  const std::size_t total = n_temps * n_tasks * n_samples;

  // Per-task seed base, identical to the legacy serial derivation.
  std::vector<std::uint64_t> task_seed(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    task_seed[i] = mix_hash(request_.seed, model.name() + "|" + suite.tasks[i].id);
  }

  const llm::SimLlm* cot_model = request_.cot_model_ptr();

  // Work-unit index layout: temperature-major, then task, then sample.
  auto decode = [&](std::size_t unit, std::size_t& ti, std::size_t& task_i, int& s) {
    ti = unit / (n_tasks * n_samples);
    const std::size_t rest = unit % (n_tasks * n_samples);
    task_i = rest / n_samples;
    s = static_cast<int>(rest % n_samples);
  };

  auto run_unit = [&](std::size_t unit) -> UnitOutcome {
    std::size_t ti = 0, task_i = 0;
    int s = 0;
    decode(unit, ti, task_i, s);
    const double temperature = request_.temperatures[ti];
    util::Rng rng(task_seed[task_i] ^
                  (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s + 1)) ^
                  static_cast<std::uint64_t>(temperature * 4096));
    UnitOutcome stats;
    run_candidate(model, suite.tasks[task_i], temperature, request_.use_sicot, cot_model,
                  rng, &stats);
    return stats;
  };

  auto report_progress = [&](std::size_t unit) {
    if (!request_.on_progress) return;
    std::size_t ti = 0, task_i = 0;
    int s = 0;
    decode(unit, ti, task_i, s);
    EvalProgress progress;
    progress.completed = unit + 1;
    progress.total = total;
    progress.temperature = request_.temperatures[ti];
    progress.task_id = suite.tasks[task_i].id;
    progress.sample = s;
    request_.on_progress(progress);
  };

  const std::size_t requested_threads = request_.threads <= 0
                                            ? util::ThreadPool::default_worker_count()
                                            : static_cast<std::size_t>(request_.threads);
  const std::size_t workers = std::min(requested_threads, total == 0 ? std::size_t{1} : total);

  std::vector<UnitOutcome> outcomes(total);
  if (workers <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      outcomes[i] = run_unit(i);
      report_progress(i);
    }
  } else {
    util::ThreadPool pool(workers);
    std::vector<std::future<UnitOutcome>> futures;
    futures.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      futures.push_back(pool.submit([&run_unit, i] { return run_unit(i); }));
    }
    // Collect strictly in index order: the reduction below (and the progress
    // stream) must never observe completion order.
    for (std::size_t i = 0; i < total; ++i) {
      outcomes[i] = futures[i].get();
      report_progress(i);
    }
  }

  EvalCounters counters;
  counters.threads_used = static_cast<int>(workers);
  for (const UnitOutcome& u : outcomes) {
    ++counters.candidates;
    counters.compile_failures += !u.syntax_ok;
    counters.sim_mismatches += u.syntax_ok && !u.func_ok;
    counters.sicot_refinements += u.refined;
    counters.generate_seconds += u.generate_seconds;
    counters.compile_seconds += u.compile_seconds;
    counters.sim_seconds += u.sim_seconds;
  }

  SuiteResult best;
  double best_pass1 = 0.0;
  bool have_best = false;
  for (std::size_t ti = 0; ti < n_temps; ++ti) {
    SuiteResult result;
    result.suite_name = suite.name;
    result.model_name = model.name();
    result.temperature = request_.temperatures[ti];
    result.per_task.reserve(n_tasks);
    for (std::size_t task_i = 0; task_i < n_tasks; ++task_i) {
      TaskResult tr;
      tr.task_id = suite.tasks[task_i].id;
      tr.modality = suite.tasks[task_i].modality;
      tr.n = request_.n_samples;
      const std::size_t base = (ti * n_tasks + task_i) * n_samples;
      for (std::size_t s = 0; s < n_samples; ++s) {
        tr.syntax_pass += outcomes[base + s].syntax_ok;
        tr.func_pass += outcomes[base + s].func_ok;
      }
      result.per_task.push_back(std::move(tr));
    }
    const double pass1 = result.pass_at(1);
    if (!have_best || pass1 > best_pass1) {
      best = std::move(result);
      best_pass1 = pass1;
      have_best = true;
    }
  }
  if (!have_best) {
    // No temperatures configured: return an empty, but labelled, result.
    best.suite_name = suite.name;
    best.model_name = model.name();
  }

  counters.wall_seconds = seconds_since(wall_start);
  counters.cpu_seconds =
      static_cast<double>(std::clock() - cpu_start) / static_cast<double>(CLOCKS_PER_SEC);
  best.counters = counters;
  return best;
}

}  // namespace haven::eval
