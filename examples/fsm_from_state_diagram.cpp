// Domain scenario: generate a Moore FSM from the paper's state-diagram
// notation, watch SI-CoT translate the diagram into natural language, and
// verify the generated module against a golden reference with the built-in
// differential testbench.
//
//   $ ./build/examples/fsm_from_state_diagram
#include <iostream>

#include "core/haven.h"
#include "llm/codegen.h"
#include "llm/spec_parser.h"
#include "sim/testbench.h"
#include "verilog/analyzer.h"

int main() {
  using namespace haven;

  const std::string prompt =
      "Implement the Moore finite state machine given by the state diagram below.\n"
      "A[out=0]-[x=0]->B\n"
      "A[out=0]-[x=1]->A\n"
      "B[out=1]-[x=0]->A\n"
      "B[out=1]-[x=1]->B\n"
      "The reset state is A.\n"
      "Use synchronous active-high reset 'rst'.\n"
      "module top_module(input clk, input rst, input x, output out);\n";

  std::cout << "== User prompt (paper Table II notation) ==\n" << prompt << "\n";

  HavenConfig config;
  config.base_model = llm::kBaseCodeQwen;
  const HavenPipeline haven = HavenPipeline::build(config);

  // Step 1+2 of SI-CoT: identify the symbolic component and interpret it.
  util::Rng rng(7);
  const std::string refined = haven.refine_prompt(prompt, 0.2, rng);
  std::cout << "== SI-CoT refined prompt ==\n" << refined << "\n";

  // CodeGen-LLM inference.
  const std::string candidate = haven.generate(prompt, 0.2, rng);
  std::cout << "== Generated module ==\n" << candidate << "\n";

  // Golden reference directly from the diagram semantics.
  const llm::ParsedInstruction truth = llm::parse_instruction(prompt);
  const std::string golden = llm::generate_source(*truth.spec);

  sim::StimulusSpec stimulus;
  stimulus.sequential = true;
  stimulus.reset = "rst";
  stimulus.cycles = 64;
  util::Rng tb_rng(99);
  const sim::DiffResult result = sim::run_diff_test(candidate, golden, stimulus, tb_rng);
  std::cout << "== Differential testbench ==\n"
            << "vectors compared: " << result.vectors << "\n"
            << "functional match: " << (result.passed ? "PASS" : "FAIL") << "\n";
  if (!result.passed) std::cout << "first divergence:  " << result.reason << "\n";
  std::cout << "\n(A fallible model occasionally hallucinates the diagram - rerun with a\n"
               "different seed to watch the taxonomy in action.)\n";
  return 0;
}
