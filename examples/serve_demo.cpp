// Demonstrates the haven::serve evaluation service: two tenants submit
// overlapping jobs, the second submission coalesces onto the first's
// computation (bit-identical SuiteResult, no recompute), a third job with an
// impossible deadline is rejected upfront, and a streaming-progress
// subscriber watches units complete in index order.
//
//   $ ./build/examples/serve_demo [eval flags]
//
// Also runs the line protocol over a scripted session, which is exactly how
// the CI smoke job drives the daemon over stdin/stdout.
#include <atomic>
#include <iostream>
#include <sstream>

#include "eval/options.h"
#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "serve/protocol.h"
#include "serve/serve.h"

int main(int argc, char** argv) {
  using namespace haven;

  const eval::RequestOptions options = eval::RequestOptions::parse(argc, argv);

  serve::ServerConfig config;
  config.threads = options.threads;
  config.initial_unit_seconds = 0.050;  // calibrate the feasibility estimator
  serve::Server server(config);

  auto make_job = [&](const std::string& tenant) {
    serve::EvalJob job;
    job.tenant = tenant;
    job.model = llm::make_model("RTLCoder-DeepSeek");
    job.suite = eval::build_rtllm();
    job.suite.tasks.resize(8);
    job.request = eval::EvalRequest{}.with_samples(2).with_temperature(0.2);
    return job;
  };

  // Tenant A subscribes to streaming progress; tenant B's identical job
  // coalesces onto A's computation.
  std::atomic<std::size_t> units_seen{0};
  serve::JobTicket a = server.submit(make_job("tenant-a"));
  a.subscribe([&units_seen](const eval::EvalProgress& p) {
    ++units_seen;
    if (p.completed == p.total) {
      std::cout << "  [progress] " << p.completed << "/" << p.total
                << " units complete\n";
    }
  });
  serve::JobTicket b = server.submit(make_job("tenant-b"));
  std::cout << "tenant-b coalesced: " << (b.coalesced() ? "yes" : "no") << "\n";

  // A job that cannot possibly finish in 1ms is rejected at admission. It
  // must be a *distinct* computation (different seed): an identical one
  // would coalesce first — attaching to an in-flight result is free, so
  // coalescing always wins over feasibility rejection.
  serve::EvalJob hopeless = make_job("tenant-c");
  hopeless.request.with_seed(0xFEEDBEEF);
  hopeless.deadline_ms = 1;
  serve::JobTicket c = server.submit(std::move(hopeless));
  std::cout << "tenant-c status: " << serve::job_status_name(c.status());
  if (c.status() == serve::JobStatus::kRejected) std::cout << " (" << c.error() << ")";
  std::cout << "\n";

  a.wait();
  b.wait();
  const bool identical =
      serve::verdict_digest(a.result()) == serve::verdict_digest(b.result());
  std::cout << "verdicts bit-identical: " << (identical ? "yes" : "no")
            << "  (pass@1 = " << a.result().pass_at(1) << ", " << units_seen.load()
            << " progress units streamed)\n";

  const serve::ServeCounters stats = server.stats();
  std::cout << "counters: submitted=" << stats.submitted << " admitted=" << stats.admitted
            << " coalesced=" << stats.coalesced << " rejected=" << stats.rejected
            << " completed=" << stats.completed << "\n";

  // The same flow over the line protocol (the daemon's stdin/stdout face).
  std::istringstream script(
      "SUBMIT tenant-a RTLCoder-DeepSeek rtllm tasks=4 n=2 temps=0.2\n"
      "SUBMIT tenant-b RTLCoder-DeepSeek rtllm tasks=4 n=2 temps=0.2\n"
      "ONESHOT RTLCoder-DeepSeek rtllm tasks=4 n=2 temps=0.2\n"
      "WAIT *\n"
      "STATS\n"
      "DRAIN\n"
      "QUIT\n");
  std::cout << "\nline protocol session:\n";
  serve::LineServer line_server(server, script, std::cout);
  line_server.run();
  return identical && b.coalesced() ? 0 : 1;
}
