// Table III reproduction: show the SI-CoT interpretation of all three
// symbolic modalities — state diagram (LLM-interpreted), truth table and
// waveform chart (parser-interpreted) — before and after.
//
//   $ ./build/examples/sicot_demo
#include <iostream>

#include "cot/sicot.h"
#include "llm/model_zoo.h"

int main() {
  using namespace haven;

  // A perfect CoT model so the demo shows the intended interpretations
  // (swap in make_model("CodeQwen") to watch a fallible interpreter).
  llm::HallucinationProfile zero;
  const llm::SimLlm cot("DemoCoT", zero.scaled(0.0));
  const cot::SiCotPipeline pipeline(&cot);

  const char* prompts[] = {
      // Table III row 1: state diagram.
      "Implement this FSM.\n"
      "A[out=0]-[x=0]->B\n"
      "A[out=0]-[x=1]->A\n"
      "B[out=1]-[x=0]->A\n"
      "B[out=1]-[x=1]->B\n",
      // Table III row 2: truth table.
      "Implement the truth table below.\n"
      "a b out\n"
      "0 0 0\n"
      "0 1 0\n"
      "1 0 0\n"
      "1 1 1\n",
      // Table III row 3: waveform chart.
      "Implement the combinational function shown by the waveform below.\n"
      "a: 0 1 1 0\n"
      "b: 1 0 1 0\n"
      "out: 1 0 0 1\n"
      "time(ns): 0 10 20 30\n",
  };

  util::Rng rng(1);
  for (const char* prompt : prompts) {
    const cot::SiCotResult result = pipeline.refine(prompt, 0.2, rng);
    std::cout << "==== Instruction before interpretation ====\n"
              << prompt << "\n"
              << "==== After SI-CoT (" << symbolic::modality_name(result.modality)
              << (result.modality == symbolic::Modality::kStateDiagram ? ", LLM"
                                                                        : ", parser")
              << ") ====\n"
              << result.prompt << "\n\n";
  }
  return 0;
}
