// Evaluate two models from the zoo on the RTLLM-style suite and print
// pass@k with the unbiased estimator — the same machinery the Table IV
// bench uses, at inspectable scale.
//
//   $ ./build/examples/evaluate_model [model-name ...]
#include <iostream>

#include "eval/report.h"
#include "eval/runner.h"
#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace haven;

  std::vector<std::string> models;
  for (int i = 1; i < argc; ++i) models.emplace_back(argv[i]);
  if (models.empty()) models = {"GPT-4", "RTLCoder-DeepSeek", "OriGen-DeepSeek"};

  const eval::Suite suite = eval::build_rtllm();
  eval::RunnerConfig config;
  config.n_samples = 10;
  config.temperatures = {0.2, 0.5, 0.8};

  util::TablePrinter table({"Model", "func p@1", "func p@5", "syntax p@5", "best T"});
  for (const auto& name : models) {
    if (llm::find_model_card(name) == nullptr) {
      std::cerr << "unknown model '" << name << "'; available:\n";
      for (const auto& card : llm::model_zoo()) std::cerr << "  " << card.name << "\n";
      return 1;
    }
    const eval::SuiteResult result = eval::run_suite(llm::make_model(name), suite, config);
    table.add_row({name, eval::pct(result.pass_at(1)), eval::pct(result.pass_at(5)),
                   eval::pct(result.syntax_pass_at(5)),
                   util::format("%.1f", result.temperature)});
    std::cout << eval::summarize(result) << "\n";
  }
  std::cout << "\n" << suite.name << " (" << suite.tasks.size() << " tasks, n="
            << config.n_samples << "):\n" << table.to_string();
  return 0;
}
