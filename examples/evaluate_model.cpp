// Evaluate two models from the zoo on the RTLLM-style suite and print
// pass@k with the unbiased estimator — the same machinery the Table IV
// bench uses, at inspectable scale. Demonstrates the EvalEngine API:
// threaded fan-out, progress callback, and the per-run counter block.
//
// All eval knobs come from the shared flag grammar (eval::RequestOptions);
// positional arguments name the models to evaluate.
//
//   $ ./build/examples/evaluate_model [eval flags] [--stats] [model-name ...]
#include <cstring>
#include <iostream>

#include "cache/result_cache.h"
#include "eval/engine.h"
#include "eval/options.h"
#include "eval/report.h"
#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace haven;

  std::vector<std::string> leftover;
  const eval::RequestOptions options = eval::RequestOptions::parse(argc, argv, &leftover);

  bool stats = false;
  std::vector<std::string> models;
  for (const std::string& arg : leftover) {
    if (arg == "--stats") {
      stats = true;
    } else if (util::starts_with(arg, "--")) {
      std::cerr << "unknown flag '" << arg << "'\n"
                << eval::RequestOptions::flag_help() << "\n"
                << "plus: --stats; positional args name zoo models\n";
      return 2;
    } else {
      models.push_back(arg);
    }
  }
  if (models.empty()) models = {"GPT-4", "RTLCoder-DeepSeek", "OriGen-DeepSeek"};

  const eval::ChaosScope chaos(options);

  const eval::Suite suite = eval::build_rtllm();
  eval::EvalRequest request = options.request();
  if (!options.progress) {
    request.on_progress = [](const eval::EvalProgress& p) {
      if (p.completed == p.total || p.completed % 200 == 0) {
        std::cerr << "\r  " << p.completed << "/" << p.total << " candidates"
                  << (p.completed == p.total ? "\n" : "") << std::flush;
      }
    };
  }
  const eval::EvalEngine engine(request);

  util::TablePrinter table({"Model", "func p@1", "func p@5", "syntax p@5", "best T"});
  for (const auto& name : models) {
    if (llm::find_model_card(name) == nullptr) {
      std::cerr << "unknown model '" << name << "'; available:\n";
      for (const auto& card : llm::model_zoo()) std::cerr << "  " << card.name << "\n";
      return 1;
    }
    const eval::SuiteResult result = engine.evaluate(llm::make_model(name), suite);
    table.add_row({name, eval::pct(result.pass_at(1)), eval::pct(result.pass_at(5)),
                   eval::pct(result.syntax_pass_at(5)),
                   util::format("%.1f", result.temperature)});
    std::cout << eval::summarize(result) << "\n";
    std::cout << "  " << eval::summarize(result.counters) << "\n";
    if (stats) std::cout << "  " << eval::summarize_cache(result.counters) << "\n";
    if (result.lint.enabled) {
      std::cout << "  " << eval::summarize(result.lint) << "\n";
      if (options.lint_json) std::cout << eval::lint_json(result) << "\n";
    }
  }
  std::cout << "\n" << suite.name << " (" << suite.tasks.size() << " tasks, n="
            << request.n_samples << "):\n" << table.to_string();
  if (stats && options.result_cache != nullptr) {
    const cache::CacheStats cs = options.result_cache->stats();
    std::cout << util::format(
        "cache totals: %lld hits (%lld from disk) / %lld misses, %lld insertions, "
        "%lld evictions, %lld disk writes, %lld disk errors, %lld entries / %.1f KiB "
        "resident\n",
        static_cast<long long>(cs.hits), static_cast<long long>(cs.disk_hits),
        static_cast<long long>(cs.misses), static_cast<long long>(cs.insertions),
        static_cast<long long>(cs.evictions), static_cast<long long>(cs.disk_writes),
        static_cast<long long>(cs.disk_errors), static_cast<long long>(cs.entries),
        static_cast<double>(cs.bytes) / 1024.0);
  }
  return 0;
}
