// Evaluate two models from the zoo on the RTLLM-style suite and print
// pass@k with the unbiased estimator — the same machinery the Table IV
// bench uses, at inspectable scale. Demonstrates the EvalEngine API:
// threaded fan-out, progress callback, and the per-run counter block.
//
//   $ ./build/examples/evaluate_model [--threads=N] [--deadline-ms=N]
//       [--retries=N] [--fail-fast] [--inject=P] [--lint] [--lint-triage]
//       [--lint-json] [--cache] [--cache-dir=PATH] [--cache-mb=N]
//       [--no-cache] [--sim-backend=interp|compiled] [--stats] [model-name ...]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "cache/result_cache.h"
#include "eval/engine.h"
#include "eval/report.h"
#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "sim/backend.h"
#include "util/fault.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace haven;

  int threads = 0;  // 0 = one worker per hardware thread
  int deadline_ms = 0;
  int retries = 0;
  bool fail_fast = false;
  double inject = 0.0;
  bool lint = false;
  bool lint_triage = false;
  bool lint_json = false;
  bool use_cache = false;
  bool no_cache = false;
  std::string cache_dir;
  std::size_t cache_mb = 256;
  sim::SimBackend sim_backend = sim::kDefaultSimBackend;
  bool stats = false;
  std::vector<std::string> models;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
      fail_fast = true;
    } else if (std::strncmp(argv[i], "--inject=", 9) == 0) {
      inject = std::atof(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--lint-triage") == 0) {
      lint_triage = true;
    } else if (std::strcmp(argv[i], "--lint-json") == 0) {
      lint = true;
      lint_json = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      use_cache = true;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      no_cache = true;
    } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
      cache_dir = argv[i] + 12;
      use_cache = true;
    } else if (std::strncmp(argv[i], "--cache-mb=", 11) == 0) {
      cache_mb = static_cast<std::size_t>(std::strtoull(argv[i] + 11, nullptr, 10));
    } else if (std::strncmp(argv[i], "--sim-backend=", 14) == 0) {
      if (auto b = sim::parse_backend(argv[i] + 14)) {
        sim_backend = *b;
      } else {
        std::cerr << "unknown --sim-backend '" << (argv[i] + 14) << "' (want interp|compiled)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      models.emplace_back(argv[i]);
    }
  }
  if (models.empty()) models = {"GPT-4", "RTLCoder-DeepSeek", "OriGen-DeepSeek"};

  util::FaultInjector injector;
  if (inject > 0.0) {
    injector.arm(util::kSiteLlmGenerate, inject);
    injector.arm(util::kSiteEvalCompile, inject);
    injector.arm(util::kSiteSimRun, inject);
    injector.install();
  }

  // One cache shared across all evaluated models; rerunning the binary with
  // --cache-dir replays every verdict from the artifact store.
  cache::CacheConfig cache_config;
  cache_config.max_bytes = cache_mb << 20;
  cache_config.dir = cache_dir;
  cache::ResultCache result_cache(cache_config);
  const bool caching = !no_cache && use_cache;

  const eval::Suite suite = eval::build_rtllm();
  eval::EvalRequest request;
  request.n_samples = 10;
  request.temperatures = {0.2, 0.5, 0.8};
  request.threads = threads;
  request.deadline_ms = deadline_ms;
  request.retry.max_retries = retries;
  request.fail_fast = fail_fast;
  request.lint = lint;
  request.lint_triage = lint_triage;
  request.sim_backend = sim_backend;
  if (caching) request.cache = &result_cache;
  request.on_progress = [](const eval::EvalProgress& p) {
    if (p.completed == p.total || p.completed % 200 == 0) {
      std::cerr << "\r  " << p.completed << "/" << p.total << " candidates"
                << (p.completed == p.total ? "\n" : "") << std::flush;
    }
  };
  const eval::EvalEngine engine(request);

  util::TablePrinter table({"Model", "func p@1", "func p@5", "syntax p@5", "best T"});
  for (const auto& name : models) {
    if (llm::find_model_card(name) == nullptr) {
      std::cerr << "unknown model '" << name << "'; available:\n";
      for (const auto& card : llm::model_zoo()) std::cerr << "  " << card.name << "\n";
      return 1;
    }
    const eval::SuiteResult result = engine.evaluate(llm::make_model(name), suite);
    table.add_row({name, eval::pct(result.pass_at(1)), eval::pct(result.pass_at(5)),
                   eval::pct(result.syntax_pass_at(5)),
                   util::format("%.1f", result.temperature)});
    std::cout << eval::summarize(result) << "\n";
    std::cout << "  " << eval::summarize(result.counters) << "\n";
    if (stats) std::cout << "  " << eval::summarize_cache(result.counters) << "\n";
    if (result.lint.enabled) {
      std::cout << "  " << eval::summarize(result.lint) << "\n";
      if (lint_json) std::cout << eval::lint_json(result) << "\n";
    }
  }
  std::cout << "\n" << suite.name << " (" << suite.tasks.size() << " tasks, n="
            << request.n_samples << "):\n" << table.to_string();
  if (stats && caching) {
    const cache::CacheStats cs = result_cache.stats();
    std::cout << util::format(
        "cache totals: %lld hits (%lld from disk) / %lld misses, %lld insertions, "
        "%lld evictions, %lld disk writes, %lld disk errors, %lld entries / %.1f KiB "
        "resident\n",
        static_cast<long long>(cs.hits), static_cast<long long>(cs.disk_hits),
        static_cast<long long>(cs.misses), static_cast<long long>(cs.insertions),
        static_cast<long long>(cs.evictions), static_cast<long long>(cs.disk_writes),
        static_cast<long long>(cs.disk_errors), static_cast<long long>(cs.entries),
        static_cast<double>(cs.bytes) / 1024.0);
  }
  if (inject > 0.0) {
    injector.uninstall();
    std::cerr << "  [chaos] " << injector.total_injected() << " faults injected\n";
  }
  return 0;
}
