// Evaluate two models from the zoo on the RTLLM-style suite and print
// pass@k with the unbiased estimator — the same machinery the Table IV
// bench uses, at inspectable scale. Demonstrates the EvalEngine API:
// threaded fan-out, progress callback, and the per-run counter block.
//
//   $ ./build/examples/evaluate_model [--threads=N] [model-name ...]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "eval/engine.h"
#include "eval/report.h"
#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace haven;

  int threads = 0;  // 0 = one worker per hardware thread
  std::vector<std::string> models;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      models.emplace_back(argv[i]);
    }
  }
  if (models.empty()) models = {"GPT-4", "RTLCoder-DeepSeek", "OriGen-DeepSeek"};

  const eval::Suite suite = eval::build_rtllm();
  eval::EvalRequest request;
  request.n_samples = 10;
  request.temperatures = {0.2, 0.5, 0.8};
  request.threads = threads;
  request.on_progress = [](const eval::EvalProgress& p) {
    if (p.completed == p.total || p.completed % 200 == 0) {
      std::cerr << "\r  " << p.completed << "/" << p.total << " candidates"
                << (p.completed == p.total ? "\n" : "") << std::flush;
    }
  };
  const eval::EvalEngine engine(request);

  util::TablePrinter table({"Model", "func p@1", "func p@5", "syntax p@5", "best T"});
  for (const auto& name : models) {
    if (llm::find_model_card(name) == nullptr) {
      std::cerr << "unknown model '" << name << "'; available:\n";
      for (const auto& card : llm::model_zoo()) std::cerr << "  " << card.name << "\n";
      return 1;
    }
    const eval::SuiteResult result = engine.evaluate(llm::make_model(name), suite);
    table.add_row({name, eval::pct(result.pass_at(1)), eval::pct(result.pass_at(5)),
                   eval::pct(result.syntax_pass_at(5)),
                   util::format("%.1f", result.temperature)});
    std::cout << eval::summarize(result) << "\n";
    std::cout << "  " << eval::summarize(result.counters) << "\n";
  }
  std::cout << "\n" << suite.name << " (" << suite.tasks.size() << " tasks, n="
            << request.n_samples << "):\n" << table.to_string();
  return 0;
}
