// Walk the Fig 2 dataset-generation flow step by step at a small scale and
// print what each stage produces: corpus files, vanilla pairs, topic
// matches, augmented K-dataset samples, and L-dataset exercises.
//
//   $ ./build/examples/dataset_pipeline
#include <iostream>

#include "dataset/corpus.h"
#include "dataset/exemplar.h"
#include "dataset/kdataset.h"
#include "dataset/ldataset.h"
#include "dataset/vanilla.h"
#include "util/strings.h"

int main() {
  using namespace haven;
  util::Rng rng(0xf16'2);

  // Step 4: the curated exemplar library.
  const auto& exemplars = dataset::exemplar_library();
  std::cout << "Exemplar library: " << exemplars.size() << " entries, e.g.\n";
  std::cout << "--- \"" << exemplars.front().title << "\" ---\n"
            << exemplars.front().instruction << "\n";

  // Step 5: corpus -> vanilla instruction-code pairs.
  const auto corpus = dataset::generate_corpus(300, rng);
  const auto pairs = dataset::build_vanilla_pairs(corpus, rng);
  std::size_t compiling = 0;
  for (const auto& p : pairs) compiling += p.compiles;
  std::cout << "Corpus: " << corpus.size() << " files -> " << pairs.size()
            << " pairs with modules, " << compiling << " compile (vanilla dataset)\n\n";
  std::cout << "--- a vanilla instruction (GPT-3.5 style) ---\n"
            << pairs.front().instruction << "\n\n";

  // Steps 6-8: topic matching, augmentation, verification.
  util::Rng k_rng(1);
  const dataset::KDatasetResult k = dataset::build_k_dataset(pairs, k_rng);
  std::cout << "K-dataset: " << k.matched << " pairs matched an exemplar, " << k.rewritten
            << " rewrites, " << k.verified << " verified, " << k.rejected
            << " rejected by the compiler\n\n";
  if (!k.dataset.samples.empty()) {
    std::cout << "--- an HDL-aligned (K) instruction ---\n"
              << k.dataset.samples.front().instruction << "\n\n";
  }

  // Steps 9-12: the logical-enhanced dataset.
  util::Rng l_rng(2);
  dataset::LDatasetConfig l_config;
  l_config.count = 50;
  const dataset::Dataset l = dataset::build_l_dataset(l_config, l_rng);
  std::cout << "L-dataset: " << l.samples.size() << " exercises\n\n";
  std::cout << "--- a logical-reasoning (L) sample ---\n"
            << l.samples.front().instruction << "\n"
            << l.samples.front().code << "\n";
  return 0;
}
