// Use the Verilog frontend as a standalone lint/analysis tool: parse a file
// (or a built-in demo snippet), print diagnostics, lint warnings, detected
// topics and Verilog-specific attributes — the same machinery the dataset
// pipeline uses for topic matching (the slang substitute).
//
//   $ ./build/examples/verilog_lint [file.v]
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/strings.h"
#include "verilog/analyzer.h"

namespace {

const char* kDemo = R"(
// Demo input: a state machine with several classic lint findings.
module demo_fsm(input clk, input rst, input x, output reg out);
  localparam S0 = 1'b0, S1 = 1'b1;
  reg state, next_state;
  wire dead_code;
  assign dead_code = x & ~x;
  always @(posedge clk)
    if (rst) state <= S0;
    else state = next_state;   // blocking assign in clocked logic
  always @(*)
    case (state)
      S0: begin next_state = x ? S1 : S0; out = 1'b0; end
      S1: begin next_state = x ? S1 : S0; out = 1'b1; end
    endcase                    // no default: latch risk
endmodule
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace haven;

  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    source = kDemo;
    std::cout << "(no file given; linting the built-in demo)\n" << kDemo << "\n";
  }

  const verilog::SourceAnalysis analysis = verilog::analyze_source(source);
  if (!analysis.parse_errors.empty()) {
    std::cout << "parse errors:\n";
    for (const auto& d : analysis.parse_errors) std::cout << "  " << d.to_string() << "\n";
    return 2;
  }

  for (const auto& module : analysis.modules) {
    std::cout << "module " << module.module_name << ":\n";
    for (const auto& e : module.errors) std::cout << "  error:   " << e.to_string() << "\n";
    for (const auto& w : module.warnings) std::cout << "  warning: " << w.to_string() << "\n";

    std::vector<std::string> topics;
    for (const auto t : module.topics) topics.push_back(verilog::topic_name(t));
    std::cout << "  topics:  " << util::join(topics, ", ") << "\n";

    const verilog::Attributes& a = module.attributes;
    std::vector<std::string> attrs;
    if (a.has_clock) attrs.push_back(a.negedge_clock ? "negedge-clock" : "posedge-clock");
    if (a.async_reset) attrs.push_back("async-reset");
    if (a.sync_reset) attrs.push_back("sync-reset");
    if (a.active_low_reset) attrs.push_back("active-low-reset");
    if (a.has_enable) attrs.push_back(a.active_low_enable ? "active-low-enable" : "enable");
    std::cout << "  attrs:   " << (attrs.empty() ? "(none)" : util::join(attrs, ", ")) << "\n";
    std::cout << "  verdict: " << (module.ok() ? "compiles" : "REJECTED") << "\n";
  }
  return analysis.ok() ? 0 : 3;
}
