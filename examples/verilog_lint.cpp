// Standalone Verilog lint tool over the haven::lint subsystem: parse a file
// (or a built-in demo snippet), run the dataflow-based rule set, and print
// every finding with its severity, rule id, and attributed hallucination
// axis — the same analysis the eval engine runs per candidate under --lint.
// Topic/attribute extraction (the slang substitute) is printed alongside.
//
//   $ ./build/examples/verilog_lint [--json] [file.v]
//
// Exit codes: 0 clean, 2 parse failure, 3 error-grade findings, 4 warnings.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint/lint.h"
#include "util/strings.h"
#include "verilog/analyzer.h"

namespace {

const char* kDemo = R"(
// Demo input: a state machine with several classic lint findings.
module demo_fsm(input clk, input rst, input x, output reg out);
  localparam S0 = 1'b0, S1 = 1'b1;
  reg state, next_state;
  wire dead_code;
  assign dead_code = x & ~x;
  always @(posedge clk)
    if (rst) state <= S0;
    else state <= next_state;
  always @(state)                // sensitivity list missing 'x'
    case (state)
      S0: begin next_state = x ? S1 : S0; out = 1'b0; end
      S1: begin next_state = x ? S1 : S0; out = 1'b1; end
    endcase                      // no default: latch risk
endmodule
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace haven;

  bool json = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      path = argv[i];
    }
  }

  std::string source;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    source = kDemo;
    if (!json) std::cout << "(no file given; linting the built-in demo)\n" << kDemo << "\n";
  }

  const lint::SourceLint result = lint::lint_source(source);
  if (json) {
    std::cout << lint::findings_json(result.findings) << "\n";
  } else {
    for (const auto& f : result.findings) {
      std::cout << verilog::severity_name(f.diag.severity) << " " << f.diag.rule << " line "
                << f.diag.line << ": " << f.diag.message << "  [axis "
                << llm::hallu_axis_name(f.axis) << (f.proven ? ", proven" : "") << "]\n";
    }
    if (result.findings.empty()) std::cout << "no findings\n";
  }
  if (!result.parsed) return 2;

  if (!json) {
    // Topic and attribute extraction, as before (the slang substitute).
    const verilog::SourceAnalysis analysis = verilog::analyze_source(source);
    for (const auto& module : analysis.modules) {
      std::cout << "module " << module.module_name << ":\n";
      std::vector<std::string> topics;
      for (const auto t : module.topics) topics.push_back(verilog::topic_name(t));
      std::cout << "  topics:  " << util::join(topics, ", ") << "\n";

      const verilog::Attributes& a = module.attributes;
      std::vector<std::string> attrs;
      if (a.has_clock) attrs.push_back(a.negedge_clock ? "negedge-clock" : "posedge-clock");
      if (a.async_reset) attrs.push_back("async-reset");
      if (a.sync_reset) attrs.push_back("sync-reset");
      if (a.active_low_reset) attrs.push_back("active-low-reset");
      if (a.has_enable) attrs.push_back(a.active_low_enable ? "active-low-enable" : "enable");
      std::cout << "  attrs:   " << (attrs.empty() ? "(none)" : util::join(attrs, ", "))
                << "\n";
      std::cout << "  verdict: " << (module.ok() ? "compiles" : "REJECTED") << "\n";
    }
  }

  bool has_error = false, has_warning = false;
  for (const auto& f : result.findings) {
    has_error |= f.diag.severity == verilog::Severity::kError;
    has_warning |= f.diag.severity == verilog::Severity::kWarning;
  }
  return has_error ? 3 : (has_warning ? 4 : 0);
}
