// Quickstart: build the full HaVen pipeline (synthetic corpus -> vanilla
// pairs -> K/L datasets -> fine-tuning) and generate Verilog for a prompt,
// end to end.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/haven.h"
#include "verilog/analyzer.h"

int main() {
  using namespace haven;

  // 1. Build HaVen on top of the CodeQwen base card. This runs the entire
  //    Fig 2 data flow and the fine-tuning simulation; it takes well under a
  //    second at the default miniature scale.
  HavenConfig config;
  config.base_model = llm::kBaseCodeQwen;
  const HavenPipeline haven = HavenPipeline::build(config);

  const HavenBuildReport& report = haven.report();
  std::cout << "Built " << haven.codegen_model().name() << ":\n"
            << "  corpus files:        " << report.corpus_files << "\n"
            << "  valid vanilla pairs: " << report.vanilla_pairs << "\n"
            << "  K-dataset samples:   " << report.k_samples << "\n"
            << "  L-dataset samples:   " << report.l_samples << "\n"
            << "  know_convention:     " << report.base_profile.know_convention << " -> "
            << report.tuned_profile.know_convention << "\n"
            << "  misalignment:        " << report.base_profile.misalignment << " -> "
            << report.tuned_profile.misalignment << "\n\n";

  // 2. Ask for a design the way an HDL engineer would.
  const std::string prompt =
      "Design a 4-bit up counter with output 'q'. Use asynchronous active-low reset 'rst_n' "
      "and active-high enable 'en'.\n"
      "module top_module(input clk, input rst_n, input en, output [3:0] q);\n";
  std::cout << "Prompt:\n" << prompt << "\n";

  // 3. Generate. The prompt goes through SI-CoT (a no-op here: no symbolic
  //    payload) and then the fine-tuned CodeGen model.
  util::Rng rng(2025);
  const std::string verilog = haven.generate(prompt, /*temperature=*/0.2, rng);
  std::cout << "Generated Verilog:\n" << verilog << "\n";

  // 4. Check it with the built-in compiler substitute.
  std::cout << "Compiles: " << (verilog::compile_ok(verilog) ? "yes" : "no") << "\n";
  return 0;
}
