#include <gtest/gtest.h>

#include <cstdlib>

#include "nlp/evolution.h"
#include "nlp/text.h"
#include "util/strings.h"

namespace haven::nlp {
namespace {

TEST(Text, TokenizeWordsLowercasesAndSplits) {
  const auto words = tokenize_words("Implement a 4-bit FSM, please!");
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[0], "implement");
  EXPECT_EQ(words[2], "4");
  EXPECT_EQ(words[4], "fsm");
}

TEST(Text, JaccardSimilarityBounds) {
  EXPECT_DOUBLE_EQ(jaccard_similarity("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity("a b", "c d"), 0.0);
  const double mid = jaccard_similarity("design a counter", "design a register");
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity("", ""), 1.0);
}

TEST(Text, BowCosineRespectsCounts) {
  EXPECT_NEAR(bow_cosine("a a b", "a a b"), 1.0, 1e-9);
  EXPECT_NEAR(bow_cosine("a", "b"), 0.0, 1e-9);
  EXPECT_GT(bow_cosine("counter with reset", "counter with enable"),
            bow_cosine("counter with reset", "multiplexer of inputs"));
}

TEST(Text, ExpandTemplate) {
  EXPECT_EQ(expand_template("Design a {w}-bit {kind}.", {{"w", "4"}, {"kind", "counter"}}),
            "Design a 4-bit counter.");
  EXPECT_EQ(expand_template("keep {unknown} as-is", {}), "keep {unknown} as-is");
  EXPECT_EQ(expand_template("unterminated {brace", {{"brace", "x"}}), "unterminated {brace");
}

TEST(Text, SynonymGroups) {
  const auto& group = synonyms_of("implement");
  EXPECT_FALSE(group.empty());
  EXPECT_NE(std::find(group.begin(), group.end(), "design"), group.end());
  EXPECT_TRUE(synonyms_of("zzznotaword").empty());
}

// --- instruction evolution --------------------------------------------------------

TEST(Evolution, RespectsWordDeltaBound) {
  util::Rng rng(11);
  const std::string original =
      "Implement the module described below. The output signal equals a plus b.";
  for (int i = 0; i < 100; ++i) {
    const std::string evolved = evolve_instruction(original, rng);
    const long delta = static_cast<long>(util::word_count(evolved)) -
                       static_cast<long>(util::word_count(original));
    EXPECT_LE(std::labs(delta), 10);
  }
}

TEST(Evolution, ProtectsSymbolicPayloads) {
  util::Rng rng(12);
  const std::string original =
      "Implement the truth table below.\n"
      "a b out\n"
      "0 0 0\n"
      "1 1 1\n"
      "module top_module(input a, input b, output out);\n";
  for (int i = 0; i < 50; ++i) {
    const std::string evolved = evolve_instruction(original, rng);
    EXPECT_NE(evolved.find("a b out"), std::string::npos);
    EXPECT_NE(evolved.find("0 0 0"), std::string::npos);
    EXPECT_NE(evolved.find("module top_module(input a, input b, output out);"),
              std::string::npos);
  }
}

TEST(Evolution, ProtectsStateDiagramLines) {
  EXPECT_TRUE(is_protected_line("A[out=0]-[x=0]->B"));
  EXPECT_TRUE(is_protected_line("module m(input a);"));
  EXPECT_TRUE(is_protected_line("a: 0 1 0 1"));
  EXPECT_TRUE(is_protected_line("0 1 0"));
  EXPECT_FALSE(is_protected_line("Implement the following machine carefully"));
}

TEST(Evolution, ProducesVariety) {
  util::Rng rng(13);
  const std::string original = "Implement a module where the output equals a AND b.";
  std::set<std::string> variants;
  for (int i = 0; i < 60; ++i) variants.insert(evolve_instruction(original, rng));
  EXPECT_GT(variants.size(), 5u);
}

TEST(Evolution, PreservesSemanticCoreKeywords) {
  util::Rng rng(14);
  const std::string original = "Design a 6-bit down counter that wraps modulo-10.";
  for (int i = 0; i < 50; ++i) {
    const std::string evolved = evolve_instruction(original, rng);
    // Numbers and domain keywords must survive (only openers/synonyms vary).
    EXPECT_NE(evolved.find("6-bit"), std::string::npos) << evolved;
    EXPECT_NE(evolved.find("modulo-10"), std::string::npos) << evolved;
    EXPECT_NE(util::to_lower(evolved).find("counter"), std::string::npos) << evolved;
  }
}

}  // namespace
}  // namespace haven::nlp
