// Suite-level prove parity: the formal equivalence fast-path must be verdict-
// identical to plain simulation through the whole evaluation stack — across
// suites, seeds, thread counts, lint triage, chaos injection, and the result
// cache (whose keys deliberately bind the prove knobs, so prove-on and
// prove-off runs never share entries). Unit-level prover correctness lives in
// prove_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "eval/engine.h"
#include "eval/suites.h"
#include "llm/model_zoo.h"
#include "util/fault.h"

namespace haven::eval {
namespace {

Suite small_rtllm(std::size_t n_tasks) {
  Suite suite = build_rtllm();
  if (suite.tasks.size() > n_tasks) suite.tasks.resize(n_tasks);
  return suite;
}

// Everything the prover is allowed to touch must still come out bit-identical:
// per-task verdicts and every counter that describes WHAT was decided. Only
// the counters describing HOW (simulated work volume vs proof volume) may
// legitimately differ, and those are bound by expect_work_conserved below.
void expect_verdicts_identical(const SuiteResult& sim_only, const SuiteResult& proved) {
  EXPECT_EQ(sim_only.suite_name, proved.suite_name);
  EXPECT_EQ(sim_only.model_name, proved.model_name);
  ASSERT_EQ(sim_only.per_task.size(), proved.per_task.size());
  for (std::size_t i = 0; i < sim_only.per_task.size(); ++i) {
    EXPECT_EQ(sim_only.per_task[i].task_id, proved.per_task[i].task_id);
    EXPECT_EQ(sim_only.per_task[i].n, proved.per_task[i].n);
    EXPECT_EQ(sim_only.per_task[i].syntax_pass, proved.per_task[i].syntax_pass);
    EXPECT_EQ(sim_only.per_task[i].func_pass, proved.per_task[i].func_pass)
        << sim_only.per_task[i].task_id;
  }
  EXPECT_EQ(sim_only.counters.candidates, proved.counters.candidates);
  EXPECT_EQ(sim_only.counters.compile_failures, proved.counters.compile_failures);
  EXPECT_EQ(sim_only.counters.sim_mismatches, proved.counters.sim_mismatches);
  EXPECT_EQ(sim_only.counters.sicot_refinements, proved.counters.sicot_refinements);
  EXPECT_EQ(sim_only.counters.unit_faults, proved.counters.unit_faults);
  EXPECT_EQ(sim_only.counters.lint_triaged, proved.counters.lint_triaged);
  EXPECT_EQ(sim_only.counters.lint_findings, proved.counters.lint_findings);
}

// Conservation of verdict work: every candidate the prove run settled formally
// is exactly one candidate the sim-only run had to simulate, and fallbacks
// land back in the simulated bucket — nothing is dropped or double-counted.
void expect_work_conserved(const SuiteResult& sim_only, const SuiteResult& proved) {
  EXPECT_EQ(sim_only.counters.simulated,
            proved.counters.simulated + proved.counters.proven_equiv +
                proved.counters.proven_inequiv);
  EXPECT_LE(proved.counters.prove_fallback, proved.counters.simulated);
  EXPECT_EQ(sim_only.counters.proven_equiv, 0);
  EXPECT_EQ(sim_only.counters.proven_inequiv, 0);
  EXPECT_EQ(sim_only.counters.prove_fallback, 0);
  EXPECT_TRUE(counters_consistent(sim_only.counters));
  EXPECT_TRUE(counters_consistent(proved.counters));
}

EvalRequest prove_request(bool prove, std::uint64_t seed, int threads = 4) {
  EvalRequest request;
  request.n_samples = 2;
  request.temperatures = {0.2, 0.8};
  request.threads = threads;
  request.seed = seed;
  request.prove = prove;
  return request;
}

TEST(EvalProveDiff, FullSuiteVerdictIdentical) {
  const Suite suite = build_rtllm();  // all designs, comb + sequential
  const llm::SimLlm model = llm::make_model("RTLCoder-DeepSeek");
  const SuiteResult sim_only =
      EvalEngine(prove_request(false, kDefaultEvalSeed)).evaluate(model, suite);
  const SuiteResult proved =
      EvalEngine(prove_request(true, kDefaultEvalSeed)).evaluate(model, suite);
  expect_verdicts_identical(sim_only, proved);
  expect_work_conserved(sim_only, proved);
  // The run must actually prove something to mean anything: the acceptance
  // criterion is verdict identity WHILE the formal path carries real load.
  EXPECT_GT(proved.counters.proven_equiv + proved.counters.proven_inequiv, 0);
  EXPECT_LT(proved.counters.simulated, sim_only.counters.simulated);
}

TEST(EvalProveDiff, MultiSeedMultiSuiteParity) {
  const llm::SimLlm model = llm::make_model("CodeLlama");
  for (const std::uint64_t seed : {0x1ULL, 0xBEEFULL, 0x5EED5EEDULL}) {
    for (const Suite& suite : {small_rtllm(10), build_symbolic44()}) {
      const SuiteResult sim_only = EvalEngine(prove_request(false, seed)).evaluate(model, suite);
      const SuiteResult proved = EvalEngine(prove_request(true, seed)).evaluate(model, suite);
      expect_verdicts_identical(sim_only, proved);
      expect_work_conserved(sim_only, proved);
    }
  }
}

// The prover must not perturb scheduling determinism: a serial prove run and
// a wide prove run agree with each other and with serial/wide sim-only runs.
TEST(EvalProveDiff, ThreadCountInvariance) {
  const Suite suite = small_rtllm(12);
  const llm::SimLlm model = llm::make_model("RTLCoder-DeepSeek");
  const SuiteResult serial =
      EvalEngine(prove_request(true, 0x7412ULL, 1)).evaluate(model, suite);
  const SuiteResult wide = EvalEngine(prove_request(true, 0x7412ULL, 8)).evaluate(model, suite);
  expect_verdicts_identical(serial, wide);
  EXPECT_EQ(serial.counters.proven_equiv, wide.counters.proven_equiv);
  EXPECT_EQ(serial.counters.proven_inequiv, wide.counters.proven_inequiv);
  EXPECT_EQ(serial.counters.prove_fallback, wide.counters.prove_fallback);
  EXPECT_EQ(serial.counters.simulated, wide.counters.simulated);
  const SuiteResult sim_only =
      EvalEngine(prove_request(false, 0x7412ULL, 8)).evaluate(model, suite);
  expect_verdicts_identical(sim_only, wide);
  expect_work_conserved(sim_only, wide);
}

// Ordering seam between the two zero-simulation paths: lint triage fires
// first, so a candidate with a proven lint failure counts ONCE (lint_triaged)
// and is never offered to the prover. Turning prove on must leave the
// lint_triaged count untouched, and the counter identity must keep holding
// with all four buckets (triaged / proven / simulated / cached) live at once.
TEST(EvalProveDiff, LintTriageFiresBeforeProve) {
  const Suite suite = small_rtllm(12);
  const llm::SimLlm model = llm::make_model("CodeQwen");
  EvalRequest without_prove = prove_request(false, 0x717AULL);
  EvalRequest with_prove = prove_request(true, 0x717AULL);
  without_prove.lint = with_prove.lint = true;
  without_prove.lint_triage = with_prove.lint_triage = true;
  const SuiteResult lint_only = EvalEngine(without_prove).evaluate(model, suite);
  const SuiteResult lint_and_prove = EvalEngine(with_prove).evaluate(model, suite);
  expect_verdicts_identical(lint_only, lint_and_prove);
  expect_work_conserved(lint_only, lint_and_prove);
  EXPECT_GT(lint_and_prove.counters.lint_triaged, 0);  // triage actually fired
  EXPECT_EQ(lint_only.counters.lint_triaged, lint_and_prove.counters.lint_triaged);
  EXPECT_GT(lint_and_prove.counters.proven_equiv + lint_and_prove.counters.proven_inequiv, 0);
}

// Chaos-injected candidates: faults must land on the same units with the
// same classification whether or not the prover is on. Only the llm and
// compile sites are armed — a candidate the prover settles never reaches the
// simulator, so arming kSiteSimRun would (correctly) change which draws
// happen; that asymmetry is exactly what the fast-path is for.
TEST(EvalProveDiff, ChaosInjectionParity) {
  auto chaos_run = [](bool prove, util::FaultInjector* injector) {
    injector->arm(util::kSiteLlmGenerate, 0.2);
    injector->arm(util::kSiteEvalCompile, 0.2);
    injector->install();
    const llm::SimLlm model = llm::make_model("RTLCoder-DeepSeek");
    const SuiteResult result =
        EvalEngine(prove_request(prove, 0xC405ULL)).evaluate(model, small_rtllm(8));
    injector->uninstall();
    return result;
  };
  util::FaultInjector sim_injector(0xC405);
  util::FaultInjector prove_injector(0xC405);
  const SuiteResult sim_only = chaos_run(false, &sim_injector);
  const SuiteResult proved = chaos_run(true, &prove_injector);
  expect_verdicts_identical(sim_only, proved);
  expect_work_conserved(sim_only, proved);
  EXPECT_GT(proved.counters.unit_faults, 0);
  EXPECT_EQ(sim_injector.total_injected(), prove_injector.total_injected());
  ASSERT_EQ(sim_only.faults.size(), proved.faults.size());
  for (std::size_t i = 0; i < sim_only.faults.size(); ++i) {
    EXPECT_EQ(sim_only.faults[i].task_id, proved.faults[i].task_id);
    EXPECT_EQ(sim_only.faults[i].sample, proved.faults[i].sample);
    EXPECT_EQ(static_cast<int>(sim_only.faults[i].kind),
              static_cast<int>(proved.faults[i].kind));
  }
}

// Prove is result-affecting in the counter sense, so cache digests bind it:
// a cache warmed with prove off must NOT serve a prove-on run (the replayed
// proved/fallback bits would be wrong), but each configuration replays
// itself, and the verdicts agree across all four runs.
TEST(EvalProveDiff, WarmCacheKeepsConfigsDistinct) {
  const Suite suite = small_rtllm(8);
  const llm::SimLlm model = llm::make_model("RTLCoder-DeepSeek");
  cache::ResultCache cache;
  EvalRequest off = prove_request(false, kDefaultEvalSeed);
  EvalRequest on = prove_request(true, kDefaultEvalSeed);
  off.cache = on.cache = &cache;

  const SuiteResult off_cold = EvalEngine(off).evaluate(model, suite);
  EXPECT_EQ(off_cold.counters.cache_hits, 0);
  EXPECT_EQ(off_cold.counters.cache_misses, off_cold.counters.candidates);

  // Same candidates, same verdicts — but a disjoint key space.
  const SuiteResult on_cold = EvalEngine(on).evaluate(model, suite);
  EXPECT_EQ(on_cold.counters.cache_hits, 0);
  EXPECT_EQ(on_cold.counters.cache_misses, on_cold.counters.candidates);
  expect_verdicts_identical(off_cold, on_cold);
  expect_work_conserved(off_cold, on_cold);

  // Each configuration replays its own entries bit-identically.
  const SuiteResult on_warm = EvalEngine(on).evaluate(model, suite);
  EXPECT_EQ(on_warm.counters.cache_hits, on_warm.counters.candidates);
  EXPECT_EQ(on_warm.counters.cache_misses, 0);
  EXPECT_EQ(on_warm.counters.simulated, 0);
  EXPECT_TRUE(counters_consistent(on_warm.counters));
  const SuiteResult off_warm = EvalEngine(off).evaluate(model, suite);
  EXPECT_EQ(off_warm.counters.cache_hits, off_warm.counters.candidates);
  ASSERT_EQ(on_warm.per_task.size(), off_warm.per_task.size());
  for (std::size_t i = 0; i < on_warm.per_task.size(); ++i) {
    EXPECT_EQ(on_warm.per_task[i].syntax_pass, off_warm.per_task[i].syntax_pass);
    EXPECT_EQ(on_warm.per_task[i].func_pass, off_warm.per_task[i].func_pass);
  }
}

// A starved node budget exhausts mid-proof; every such candidate must land in
// prove_fallback and re-join the simulated bucket with its verdict unchanged.
TEST(EvalProveDiff, BudgetExhaustionFallsBackToSimulation) {
  const Suite suite = build_symbolic44();  // all-combinational: every task is eligible
  const llm::SimLlm model = llm::make_model("RTLCoder-DeepSeek");
  EvalRequest starved = prove_request(true, kDefaultEvalSeed);
  starved.prove_budget = 64;  // far below any real cone
  const SuiteResult sim_only =
      EvalEngine(prove_request(false, kDefaultEvalSeed)).evaluate(model, suite);
  const SuiteResult proved = EvalEngine(starved).evaluate(model, suite);
  expect_verdicts_identical(sim_only, proved);
  expect_work_conserved(sim_only, proved);
  EXPECT_GT(proved.counters.prove_fallback, 0);
}

}  // namespace
}  // namespace haven::eval
