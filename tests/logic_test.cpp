#include <gtest/gtest.h>

#include "logic/expr.h"
#include "logic/expr_parser.h"
#include "logic/exprgen.h"
#include "logic/kmap.h"
#include "logic/qm.h"
#include "logic/truth_table.h"
#include "util/rng.h"

namespace haven::logic {
namespace {

ExprPtr ab_and() { return Expr::and_(Expr::var("a"), Expr::var("b")); }

// --- Expr --------------------------------------------------------------------

TEST(Expr, EvalBasicOps) {
  const std::vector<std::string> vars = {"a", "b"};
  const ExprPtr e_and = ab_and();
  EXPECT_FALSE(e_and->eval(vars, 0b00));
  EXPECT_FALSE(e_and->eval(vars, 0b01));
  EXPECT_FALSE(e_and->eval(vars, 0b10));
  EXPECT_TRUE(e_and->eval(vars, 0b11));

  const ExprPtr e_xor = Expr::xor_(Expr::var("a"), Expr::var("b"));
  EXPECT_TRUE(e_xor->eval(vars, 0b01));
  EXPECT_FALSE(e_xor->eval(vars, 0b11));

  const ExprPtr e_nor = Expr::binary(Op::kNor, Expr::var("a"), Expr::var("b"));
  EXPECT_TRUE(e_nor->eval(vars, 0b00));
  EXPECT_FALSE(e_nor->eval(vars, 0b10));
}

TEST(Expr, EvalUnboundVariableThrows) {
  const ExprPtr e = Expr::var("q");
  EXPECT_THROW(e->eval({"a"}, 0), std::out_of_range);
}

TEST(Expr, CollectVarsFirstAppearanceOrder) {
  const ExprPtr e = Expr::or_(Expr::and_(Expr::var("b"), Expr::var("a")), Expr::var("b"));
  const auto vars = e->collect_vars();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "b");
  EXPECT_EQ(vars[1], "a");
}

TEST(Expr, SizeAndDepth) {
  const ExprPtr e = Expr::not_(ab_and());
  EXPECT_EQ(e->size(), 4u);
  EXPECT_EQ(e->depth(), 3u);
}

TEST(Expr, ToVerilogSpellings) {
  EXPECT_EQ(ab_and()->to_verilog(), "(a & b)");
  EXPECT_EQ(Expr::not_(Expr::var("a"))->to_verilog(), "(~a)");
  EXPECT_EQ(Expr::binary(Op::kNand, Expr::var("a"), Expr::var("b"))->to_verilog(),
            "(~(a & b))");
  EXPECT_EQ(Expr::constant(true)->to_verilog(), "1'b1");
}

TEST(Expr, ToEnglishSpellings) {
  EXPECT_EQ(ab_and()->to_english(), "(a AND b)");
  EXPECT_EQ(Expr::binary(Op::kXnor, Expr::var("x"), Expr::var("y"))->to_english(),
            "(x XNOR y)");
}

// --- parser ------------------------------------------------------------------

TEST(ExprParser, ParsesPrecedenceCorrectly) {
  // a | b & c == a | (b & c)
  const ExprPtr e = parse_expr_or_throw("a | b & c");
  const ExprPtr want = Expr::or_(Expr::var("a"), Expr::and_(Expr::var("b"), Expr::var("c")));
  EXPECT_TRUE(exprs_equivalent(*e, *want));
  EXPECT_EQ(e->op(), Op::kOr);
}

TEST(ExprParser, ParsesParensAndNot) {
  const ExprPtr e = parse_expr_or_throw("~(a | b) & c");
  const std::vector<std::string> vars = {"a", "b", "c"};
  EXPECT_TRUE(e->eval(vars, 0b100));
  EXPECT_FALSE(e->eval(vars, 0b101));
}

TEST(ExprParser, ParsesXnorNandNor) {
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a ~^ b"),
                               *Expr::binary(Op::kXnor, Expr::var("a"), Expr::var("b"))));
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a ~& b"),
                               *Expr::binary(Op::kNand, Expr::var("a"), Expr::var("b"))));
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a ~| b"),
                               *Expr::binary(Op::kNor, Expr::var("a"), Expr::var("b"))));
}

TEST(ExprParser, AcceptsDoubleOperatorsAsBitwise) {
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a && b"), *ab_and()));
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a || b"),
                               *Expr::or_(Expr::var("a"), Expr::var("b"))));
}

TEST(ExprParser, ParsesConstants) {
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("1'b1"), *Expr::constant(true)));
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("0"), *Expr::constant(false)));
}

TEST(ExprParser, RejectsMalformedInput) {
  EXPECT_FALSE(parse_expr("a &").expr);
  EXPECT_FALSE(parse_expr("(a").expr);
  EXPECT_FALSE(parse_expr("a b").expr);
  EXPECT_FALSE(parse_expr("").expr);
  EXPECT_FALSE(parse_expr("a @ b").expr);
}

TEST(ExprParser, RoundTripThroughVerilogPrinting) {
  util::Rng rng(101);
  ExprGenerator gen({.num_vars = 4, .max_depth = 5});
  for (int i = 0; i < 50; ++i) {
    const ExprPtr e = gen.generate(rng);
    const ExprPtr back = parse_expr_or_throw(e->to_verilog());
    EXPECT_TRUE(exprs_equivalent(*e, *back)) << e->to_verilog();
  }
}

// --- truth table ---------------------------------------------------------------

TEST(TruthTable, FromExprTabulates) {
  const TruthTable tt = TruthTable::from_expr(*ab_and());
  EXPECT_EQ(tt.num_rows(), 4u);
  EXPECT_EQ(tt.count_true(), 1u);
  EXPECT_EQ(tt.row(0b11), Tri::kTrue);
  EXPECT_EQ(tt.minterms(), (std::vector<std::uint32_t>{3}));
}

TEST(TruthTable, MatchesRespectsDontCares) {
  TruthTable tt({"a", "b"});
  tt.set_row(0b11, true);
  tt.set_row(0b01, Tri::kDontCare);
  // a&b matches: row 01 is don't-care so its disagreement is fine.
  EXPECT_TRUE(tt.matches(*ab_and()));
  // a|b does not: row 10 defined false but a|b gives true.
  EXPECT_FALSE(tt.matches(*Expr::or_(Expr::var("a"), Expr::var("b"))));
}

TEST(TruthTable, SumOfMintermsReconstructs) {
  util::Rng rng(7);
  ExprGenerator gen({.num_vars = 3, .max_depth = 4});
  for (int i = 0; i < 25; ++i) {
    const ExprPtr e = gen.generate_nontrivial(rng);
    const TruthTable tt = TruthTable::from_expr(*e);
    EXPECT_TRUE(tt.matches(*tt.to_sum_of_minterms()));
  }
}

TEST(TruthTable, SumOfMintermsOfEmptyIsConstZero) {
  TruthTable tt({"a"});
  const ExprPtr e = tt.to_sum_of_minterms();
  EXPECT_EQ(e->op(), Op::kConst);
  EXPECT_FALSE(e->value());
}

TEST(TruthTable, RejectsTooManyInputs) {
  std::vector<std::string> many(17, "v");
  for (std::size_t i = 0; i < many.size(); ++i) many[i] += std::to_string(i);
  EXPECT_THROW(TruthTable tt(many), std::invalid_argument);
}

TEST(TruthTable, ExprsEquivalentOnDifferentVarSets) {
  // a & b  vs  b & a (common vars) -> equivalent.
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a & b"), *parse_expr_or_throw("b & a")));
  // a  vs  a | (b & ~b) -> equivalent despite extra var.
  EXPECT_TRUE(exprs_equivalent(*parse_expr_or_throw("a"),
                               *parse_expr_or_throw("a | (b & ~b)")));
  EXPECT_FALSE(exprs_equivalent(*parse_expr_or_throw("a"), *parse_expr_or_throw("b")));
}

// --- Quine-McCluskey ------------------------------------------------------------

TEST(QuineMcCluskey, MinimizesClassicExample) {
  // f(a,b,c) = sum m(3,5,6,7): minimal SOP = ab + ac + bc (6 literals).
  TruthTable tt({"a", "b", "c"});
  for (std::uint32_t m : {3u, 5u, 6u, 7u}) tt.set_row(m, true);
  const MinimizeResult r = minimize(tt);
  EXPECT_TRUE(tt.matches(*r.expr));
  EXPECT_EQ(r.cover.size(), 3u);
  EXPECT_EQ(r.literal_count, 6);
}

TEST(QuineMcCluskey, HandlesConstantZeroAndOne) {
  TruthTable zero({"a", "b"});
  const MinimizeResult rz = minimize(zero);
  EXPECT_TRUE(rz.cover.empty());
  EXPECT_TRUE(zero.matches(*rz.expr));

  TruthTable one({"a", "b"});
  for (std::uint32_t m = 0; m < 4; ++m) one.set_row(m, true);
  const MinimizeResult ro = minimize(one);
  EXPECT_TRUE(ro.is_constant_one);
  EXPECT_TRUE(one.matches(*ro.expr));
}

TEST(QuineMcCluskey, UsesDontCaresToSimplify) {
  // f = m(1) with don't-cares on 3: minimal cover is just "b" (with inputs
  // b,a ordering: minterm 1 = b=1,a=0; dc 3 = b=1,a=1) -> single literal.
  TruthTable tt({"b", "a"});
  tt.set_row(1, Tri::kTrue);
  tt.set_row(3, Tri::kDontCare);
  const MinimizeResult r = minimize(tt);
  EXPECT_EQ(r.literal_count, 1);
  EXPECT_TRUE(tt.matches(*r.expr));
}

TEST(QuineMcCluskey, PrimeImplicantsOfXor) {
  // XOR has no merging: primes are the two minterms themselves.
  TruthTable tt({"a", "b"});
  tt.set_row(0b01, true);
  tt.set_row(0b10, true);
  const auto primes = prime_implicants(tt);
  EXPECT_EQ(primes.size(), 2u);
  const MinimizeResult r = minimize(tt);
  EXPECT_EQ(r.cover.size(), 2u);
  EXPECT_EQ(r.literal_count, 4);
}

TEST(QuineMcCluskey, RandomFunctionsAlwaysCovered) {
  util::Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    ExprGenerator gen({.num_vars = 4, .max_depth = 5});
    const TruthTable tt = gen.generate_table(rng, trial % 2 ? 0.2 : 0.0);
    const MinimizeResult r = minimize(tt);
    EXPECT_TRUE(tt.matches(*r.expr)) << "trial " << trial;
  }
}

TEST(QuineMcCluskey, MinimizedNeverLargerThanSumOfMinterms) {
  util::Rng rng(66);
  ExprGenerator gen({.num_vars = 4, .max_depth = 5});
  for (int trial = 0; trial < 20; ++trial) {
    const TruthTable tt = gen.generate_table(rng);
    const MinimizeResult r = minimize(tt);
    const std::size_t som_size = tt.to_sum_of_minterms()->size();
    EXPECT_LE(r.expr->size(), som_size == 0 ? 1 : som_size);
  }
}


TEST(QuineMcCluskey, LiteralCountIsExactForThreeVariables) {
  // Brute-force check: for every 3-variable function, no sum-of-products
  // cover built from prime implicants uses fewer literals than minimize()'s
  // (exhaustive subset search over the prime implicants).
  for (std::uint32_t truth = 1; truth < 255; truth += 7) {  // sampled functions
    TruthTable tt({"a", "b", "c"});
    for (std::uint32_t row = 0; row < 8; ++row) {
      tt.set_row(row, ((truth >> row) & 1u) != 0);
    }
    const MinimizeResult result = minimize(tt);
    const auto primes = prime_implicants(tt);
    ASSERT_LE(primes.size(), 16u);
    int best = result.literal_count;
    const auto minterms = tt.minterms();
    for (std::uint32_t subset = 1; subset < (1u << primes.size()); ++subset) {
      int literals = 0;
      bool covers_all = true;
      for (std::uint32_t m : minterms) {
        bool covered = false;
        for (std::size_t pi = 0; pi < primes.size(); ++pi) {
          if ((subset >> pi) & 1u) covered = covered || primes[pi].covers(m);
        }
        covers_all = covers_all && covered;
      }
      if (!covers_all) continue;
      for (std::size_t pi = 0; pi < primes.size(); ++pi) {
        if ((subset >> pi) & 1u) literals += primes[pi].literal_count();
      }
      best = std::min(best, literals);
    }
    EXPECT_EQ(result.literal_count, best) << "function mask " << truth;
  }
}

TEST(QuineMcCluskey, ImplicantToVerilog) {
  Implicant imp;
  imp.mask = 0b101;
  imp.bits = 0b001;
  EXPECT_EQ(implicant_to_verilog(imp, {"a", "b", "c"}), "(a & ~c)");
  Implicant full;
  EXPECT_EQ(implicant_to_verilog(full, {"a"}), "1'b1");
}

// --- Karnaugh map ----------------------------------------------------------------

TEST(KarnaughMap, GraySequence) {
  EXPECT_EQ(gray_sequence(2), (std::vector<std::uint32_t>{0, 1, 3, 2}));
  EXPECT_EQ(gray_sequence(1), (std::vector<std::uint32_t>{0, 1}));
}

TEST(KarnaughMap, LayoutMatchesTruthTable) {
  const TruthTable tt = TruthTable::from_expr(
      *parse_expr_or_throw("a & b | c & d"), {"a", "b", "c", "d"}, "out");
  const KarnaughMap km(tt);
  EXPECT_EQ(km.rows(), 4u);
  EXPECT_EQ(km.cols(), 4u);
  for (std::size_t r = 0; r < km.rows(); ++r) {
    for (std::size_t c = 0; c < km.cols(); ++c) {
      EXPECT_EQ(km.cell(r, c), tt.row(km.cell_minterm(r, c)));
    }
  }
}

TEST(KarnaughMap, AdjacentCellsDifferInOneBit) {
  const TruthTable tt = TruthTable::from_expr(*parse_expr_or_throw("a ^ b ^ c"),
                                              {"a", "b", "c"}, "out");
  const KarnaughMap km(tt);
  for (std::size_t r = 0; r < km.rows(); ++r) {
    for (std::size_t c = 0; c + 1 < km.cols(); ++c) {
      const auto diff = km.cell_minterm(r, c) ^ km.cell_minterm(r, c + 1);
      EXPECT_EQ(__builtin_popcount(diff), 1);
    }
  }
}

TEST(KarnaughMap, RendersCellValues) {
  TruthTable tt({"a", "b"});
  tt.set_row(0b11, true);
  tt.set_row(0b01, Tri::kDontCare);
  const std::string out = KarnaughMap(tt).render();
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(KarnaughMap, RejectsUnsupportedSizes) {
  TruthTable tt({"a"});
  EXPECT_THROW(KarnaughMap km(tt), std::invalid_argument);
}

// --- generator -------------------------------------------------------------------

TEST(ExprGenerator, RespectsDepthBound) {
  util::Rng rng(77);
  ExprGenerator gen({.num_vars = 3, .max_depth = 3});
  for (int i = 0; i < 100; ++i) {
    // NOT wrapping can add at most 2 to depth beyond bound in pathological
    // nesting; enforce a loose but meaningful bound.
    EXPECT_LE(gen.generate(rng)->depth(), 6u);
  }
}

TEST(ExprGenerator, NontrivialHasTwoVarsAndMixedRows) {
  util::Rng rng(88);
  ExprGenerator gen({.num_vars = 3, .max_depth = 4});
  for (int i = 0; i < 30; ++i) {
    const ExprPtr e = gen.generate_nontrivial(rng);
    EXPECT_GE(e->collect_vars().size(), 2u);
    const TruthTable tt = TruthTable::from_expr(*e);
    EXPECT_GT(tt.count_true(), 0u);
    EXPECT_LT(tt.count_true(), tt.num_rows());
  }
}

TEST(ExprGenerator, GeneratedTableHasDefinedExtremes) {
  util::Rng rng(99);
  ExprGenerator gen({.num_vars = 4, .max_depth = 3});
  const TruthTable tt = gen.generate_table(rng, 0.5);
  bool has_true = false, has_false = false;
  for (std::uint32_t a = 0; a < tt.num_rows(); ++a) {
    has_true |= tt.row(a) == Tri::kTrue;
    has_false |= tt.row(a) == Tri::kFalse;
  }
  EXPECT_TRUE(has_true);
  EXPECT_TRUE(has_false);
}

}  // namespace
}  // namespace haven::logic
