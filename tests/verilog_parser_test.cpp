#include <gtest/gtest.h>

#include "verilog/parser.h"
#include "verilog/pretty.h"

namespace haven::verilog {
namespace {

Module parse_one(const std::string& src) {
  ParseOutput out = parse_source(src);
  EXPECT_TRUE(out.ok()) << (out.diagnostics.empty() ? "" : out.diagnostics[0].to_string());
  EXPECT_EQ(out.file.modules.size(), 1u);
  return out.file.modules.front();
}

TEST(Parser, AnsiModuleHeader) {
  const Module m = parse_one(R"(
module adder (
  input  wire [3:0] a,
  input  wire [3:0] b,
  output wire [4:0] sum
);
  assign sum = a + b;
endmodule
)");
  EXPECT_EQ(m.name, "adder");
  ASSERT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.ports[0].dir, Dir::kInput);
  EXPECT_EQ(m.ports[2].dir, Dir::kOutput);
  EXPECT_EQ(m.ports[2].width(), 5);
}

TEST(Parser, NonAnsiModuleHeader) {
  const Module m = parse_one(R"(
module foo(a, b, y);
  input a;
  input b;
  output reg y;
  always @(*) y = a & b;
endmodule
)");
  ASSERT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.ports[2].name, "y");
  EXPECT_TRUE(m.ports[2].is_reg);
}

TEST(Parser, NonAnsiMissingDirectionIsError) {
  const ParseOutput out = parse_source("module foo(a, b); input a; endmodule");
  EXPECT_FALSE(out.ok());
}

TEST(Parser, ParameterHeaderAndUse) {
  const Module m = parse_one(R"(
module counter #(parameter WIDTH = 4) (
  input clk,
  input rst,
  output reg [WIDTH-1:0] q
);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
)");
  EXPECT_EQ(m.find_port("q")->width(), 4);
}

TEST(Parser, LocalparamInBody) {
  const Module m = parse_one(R"(
module fsm(input clk, input rst, input x, output reg out);
  localparam S0 = 2'b00, S1 = 2'b01;
  reg [1:0] state, next_state;
  always @(posedge clk or posedge rst) begin
    if (rst) state <= S0;
    else state <= next_state;
  end
  always @(*) begin
    next_state = state;
    out = 1'b0;
    case (state)
      S0: begin next_state = x ? S1 : S0; out = 1'b0; end
      S1: begin next_state = x ? S1 : S0; out = 1'b1; end
      default: next_state = S0;
    endcase
  end
endmodule
)");
  EXPECT_EQ(m.name, "fsm");
  int always_count = 0;
  for (const auto& item : m.items) always_count += std::holds_alternative<AlwaysBlock>(item);
  EXPECT_EQ(always_count, 2);
}

TEST(Parser, SensitivityListVariants) {
  const Module m = parse_one(R"(
module dff(input clk, input rst_n, input d, output reg q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 1'b0;
    else q <= d;
endmodule
)");
  const auto* ab = std::get_if<AlwaysBlock>(&m.items[0]);
  ASSERT_NE(ab, nullptr);
  ASSERT_EQ(ab->sens.size(), 2u);
  EXPECT_EQ(ab->sens[0].edge, Edge::kPos);
  EXPECT_EQ(ab->sens[1].edge, Edge::kNeg);
}

TEST(Parser, AlwaysStarBothSpellings) {
  for (const char* sens : {"@*", "@(*)"}) {
    const std::string src = std::string("module m(input a, output reg y); always ") + sens +
                            " y = a; endmodule";
    const Module m = parse_one(src);
    const auto* ab = std::get_if<AlwaysBlock>(&m.items[0]);
    ASSERT_NE(ab, nullptr);
    EXPECT_TRUE(ab->star);
  }
}

TEST(Parser, CaseWithMultipleLabelsAndDefault) {
  const Module m = parse_one(R"(
module mux(input [1:0] sel, input [3:0] d, output reg y);
  always @(*)
    case (sel)
      2'b00, 2'b01: y = d[0];
      2'b10: y = d[2];
      default: y = d[3];
    endcase
endmodule
)");
  const auto* ab = std::get_if<AlwaysBlock>(&m.items[0]);
  ASSERT_NE(ab, nullptr);
  ASSERT_EQ(ab->body->kind, StmtKind::kCase);
  ASSERT_EQ(ab->body->case_items.size(), 3u);
  EXPECT_EQ(ab->body->case_items[0].labels.size(), 2u);
  EXPECT_TRUE(ab->body->case_items[2].labels.empty());
}

TEST(Parser, ConcatReplicationSelects) {
  const Module m = parse_one(R"(
module shifty(input [7:0] in, input b, output [7:0] out, output [3:0] rep);
  assign out = {in[6:0], b};
  assign rep = {4{b}};
endmodule
)");
  const auto* ca = std::get_if<ContAssign>(&m.items[0]);
  ASSERT_NE(ca, nullptr);
  EXPECT_EQ(ca->rhs->kind, ExprKind::kConcat);
  const auto* ca2 = std::get_if<ContAssign>(&m.items[1]);
  ASSERT_NE(ca2, nullptr);
  EXPECT_EQ(ca2->rhs->kind, ExprKind::kReplicate);
  EXPECT_EQ(ca2->rhs->repeat, 4u);
}

TEST(Parser, TernaryPrecedence) {
  const Module m = parse_one(
      "module t(input a, input b, input c, output y); assign y = a ? b : c; endmodule");
  const auto* ca = std::get_if<ContAssign>(&m.items[0]);
  ASSERT_NE(ca, nullptr);
  EXPECT_EQ(ca->rhs->kind, ExprKind::kTernary);
}

TEST(Parser, OperatorPrecedenceShape) {
  // a + b * c must parse as a + (b * c).
  const Module m = parse_one(
      "module p(input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);"
      " assign y = a + b * c; endmodule");
  const auto* ca = std::get_if<ContAssign>(&m.items[0]);
  ASSERT_EQ(ca->rhs->op, "+");
  EXPECT_EQ(ca->rhs->operands[1]->op, "*");
}

TEST(Parser, ForLoopStatement) {
  const Module m = parse_one(R"(
module f(input [7:0] in, output reg [7:0] out);
  integer i;
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      out[i] = in[7 - i];
  end
endmodule
)");
  EXPECT_EQ(m.name, "f");
}

TEST(Parser, ModuleInstancesNamedAndPositional) {
  const ParseOutput out = parse_source(R"(
module half(input a, input b, output s);
  assign s = a ^ b;
endmodule
module top(input x, input y, output z, output w);
  half u1 (.a(x), .b(y), .s(z));
  half u2 (x, y, w);
endmodule
)");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.file.modules.size(), 2u);
  const Module& top = out.file.modules[1];
  int inst_count = 0;
  for (const auto& item : top.items) inst_count += std::holds_alternative<Instance>(item);
  EXPECT_EQ(inst_count, 2);
}

TEST(Parser, RecoversAndParsesSecondModule) {
  const ParseOutput out = parse_source(R"(
module broken(input a;
module good(input a, output y);
  assign y = a;
endmodule
)");
  EXPECT_FALSE(out.ok());
  ASSERT_EQ(out.file.modules.size(), 1u);
  EXPECT_EQ(out.file.modules[0].name, "good");
}

TEST(Parser, PythonStyleCodeIsRejected) {
  // Knowledge-hallucination example from the paper's Table II: "def" instead
  // of "module".
  EXPECT_FALSE(syntax_ok("def adder_4bit(): return a + b"));
}

TEST(Parser, MissingEndmoduleIsRejected) {
  EXPECT_FALSE(syntax_ok("module m(input a, output y); assign y = a;"));
}

TEST(Parser, MissingSemicolonIsRejected) {
  EXPECT_FALSE(syntax_ok("module m(input a, output y); assign y = a endmodule"));
}

TEST(Parser, EmptySourceIsRejected) {
  EXPECT_FALSE(syntax_ok(""));
  EXPECT_FALSE(syntax_ok("// just a comment\n"));
}

TEST(Parser, DelayControlsAreSkipped) {
  const Module m = parse_one(R"(
module d(input a, output reg y);
  initial begin
    #10 y = 0;
    y = #5 a;
  end
endmodule
)");
  EXPECT_EQ(m.name, "d");
}

TEST(Parser, WireWithInitializer) {
  const Module m = parse_one(
      "module w(input a, input b, output y); wire t = a & b; assign y = t; endmodule");
  const auto* d = std::get_if<NetDecl>(&m.items[0]);
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->init != nullptr);
}

// --- pretty-printer round trips -----------------------------------------------

TEST(Pretty, RoundTripPreservesStructure) {
  const char* src = R"(
module rt (
  input clk,
  input rst,
  input [3:0] d,
  output reg [3:0] q,
  output wire p
);
  wire [3:0] next;
  assign next = d ^ q;
  assign p = ^q;
  always @(posedge clk or posedge rst)
    if (rst)
      q <= 4'b0000;
    else
      q <= next;
endmodule
)";
  const Module m1 = parse_one(src);
  const std::string printed = print_module(m1);
  const Module m2 = parse_one(printed);
  EXPECT_EQ(m1.name, m2.name);
  EXPECT_EQ(m1.ports.size(), m2.ports.size());
  EXPECT_EQ(m1.items.size(), m2.items.size());
  // Second round trip must be a fixpoint.
  EXPECT_EQ(printed, print_module(m2));
}

TEST(Pretty, PrintsCaseAndParams) {
  const Module m = parse_one(R"(
module c #(parameter W = 2) (input [W-1:0] s, output reg y);
  always @(*)
    casez (s)
      2'b1?: y = 1'b1;
      default: y = 1'b0;
    endcase
endmodule
)");
  const std::string printed = print_module(m);
  EXPECT_NE(printed.find("casez"), std::string::npos);
  EXPECT_NE(printed.find("parameter W = 2"), std::string::npos);
  EXPECT_TRUE(syntax_ok(printed));
}

}  // namespace
}  // namespace haven::verilog
